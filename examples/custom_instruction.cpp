// ISA customization walkthrough (Section 5.4): a DSP engineer wants
// to know whether adding VecSqrtSgn — sqrt(a) * sign(-b), the
// Householder-alpha pattern — and VecMulSub would speed up QR
// decomposition. With Isaria the experiment is: flip two flags in the
// ISA configuration, regenerate the compiler, recompile, measure. No
// compiler rules are written by hand.

#include <cstdio>

#include "baseline/harness.h"
#include "compiler/pipeline.h"
#include "support/panic.h"

using namespace isaria;

namespace
{

struct Variant
{
    const char *label;
    IsaConfig config;
};

} // namespace

int
main()
{
    return guardedMain([&] {
    KernelHarness harness(KernelSpec::qrd(4));
    RunOutcome scalar = harness.runScalarBaseline();
    std::printf("QR decomposition 4x4, unvectorized baseline: %llu "
                "cycles\n\n",
                static_cast<unsigned long long>(scalar.cycles));

    Variant variants[4] = {{"base ISA", {}},
                           {"+ VecMulSub", {}},
                           {"+ VecSqrtSgn", {}},
                           {"+ both", {}}};
    variants[1].config.enableMulSub = true;
    variants[2].config.enableSqrtSgn = true;
    variants[3].config.enableMulSub = true;
    variants[3].config.enableSqrtSgn = true;

    SynthConfig synth;
    synth.timeoutSeconds = 20;

    std::uint64_t baseCycles = 0;
    for (const Variant &variant : variants) {
        IsaSpec isa(variant.config);
        std::printf("[%s] regenerating the compiler...\n",
                    isa.name().c_str());
        GeneratedCompiler gen = generateCompiler(isa, synth);
        RunOutcome out = harness.runCompiler(gen.compiler);
        if (baseCycles == 0)
            baseCycles = out.cycles;
        double speedup =
            100.0 * (static_cast<double>(baseCycles) / out.cycles - 1.0);
        std::printf("  %-14s %7llu cycles  %+5.1f%% vs base ISA  "
                    "(correct: %s, %zu rules)\n\n",
                    variant.label,
                    static_cast<unsigned long long>(out.cycles), speedup,
                    out.correct ? "yes" : "NO",
                    gen.phased.all.size());
    }

    std::printf("The paper's Table 2 reports the same experiment on "
                "real Tensilica tooling: ~0.5%% for VecMulSub,\n~1.7%% "
                "for VecSqrtSgn, ~2%% combined — small wins discovered "
                "in an afternoon instead of a compiler-\nengineering "
                "project.\n");
    return 0;
    });
}
