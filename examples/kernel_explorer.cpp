// Kernel explorer: pick a kernel family and size on the command line,
// run every comparator on it, and optionally dump the generated DSP
// assembly — the workflow a DSP engineer uses to understand where the
// cycles go.
//
// Usage:
//   kernel_explorer [conv R C KR KC | matmul N M K | qprod | qrd N]
//                   [--target=NAME]
//                   [--asm] [--budget SECONDS] [--optimize]
//                   [--speculate]
//                   [--eqsat-threads=N] [--mem-mb=N] [--fault=SPEC]
//                   [--eqsat-scheduler={simple,backoff}]
//                   [--eqsat-match-limit=N] [--eqsat-ban-length=N]
//                   [--cache-dir=DIR] [--memo-entries=N]
//                   [--trace FILE] [--trace-format {jsonl,chrome}]
//                   [--stats] [--report FILE] [--metrics FILE]
//                   [--metrics-interval SECONDS]
//
// --report=FILE writes the schema-versioned CompileReport JSON for
// the Isaria compile (see src/compiler/report.h; validated by
// tools/validate_report.py). --metrics=FILE publishes the always-on
// metrics registry as an OpenMetrics text page at exit — and every
// --metrics-interval seconds while running.
//
// --eqsat-threads=N runs every equality-saturation search phase on N
// worker threads (default: ISARIA_EQSAT_THREADS, else the hardware
// concurrency; 1 = sequential). The result is identical for any N —
// only compile time changes. Rule synthesis itself is parallelized
// the same way and is byte-identical at any thread count.
//
// --eqsat-scheduler=backoff enables egg-style rule backoff in every
// saturation: a rule whose matches exceed --eqsat-match-limit
// (default 1000) in one iteration is banned for --eqsat-ban-length
// iterations (default 5); both double per repeat offense. Keeps
// explosive associativity/commutativity rules from starving the
// directed lowering rules. Deterministic at any --eqsat-threads.
//
// --cache-dir=DIR persists synthesized rule sets under DIR keyed by
// a fingerprint of the ISA + synthesis configuration (defaults to
// $ISARIA_CACHE when set; empty = no caching). A warm cache makes
// compiler generation near-instant.
//
// --memo-entries=N enables the in-memory compile memo: up to N
// previously compiled programs are served from the memo instead of
// re-running equality saturation.
//
// --mem-mb=N caps the accounted e-graph footprint of every
// saturation at N MiB; a compile that hits the ceiling degrades to
// the best program found so far instead of failing.
//
// --fault=SPEC arms the deterministic fault-injection harness (same
// grammar as ISARIA_FAULT, e.g. --fault=shard-search:1). compile()
// absorbs every injected fault; the degradation path taken is
// printed after the cycle table.
//
// --speculate runs the Fig. 3 compile loop speculatively on one
// persistent e-graph: every round runs under an e-graph snapshot and
// is rewound by snapshot/restore afterwards — the pruning step — so
// each round saturates into the previous round's recycled arena
// memory instead of a freshly grown heap. Produces the same program
// as the default loop, never a worse one; a non-improving round is
// reported as a rollback.
//
// --optimize additionally runs the post-lowering machine passes
// (MAC fusion, DCE, dual-issue scheduling) on the Isaria output and
// reports the extra cycles they recover.
//
// --target=NAME compiles for that machine description (canonical
// name or alias, e.g. --target=rvv8): lane width, op set, cost
// model, and cycle timing all come from the description. Default:
// ISARIA_TARGET env, else fusion-g3-w4.
//
// With no arguments, explores a 4x4 convolution with a 3x3 filter.

#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/diospyros.h"
#include "baseline/harness.h"
#include "baseline/slp.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "isa/machine_desc.h"
#include "lower/lower.h"
#include "lower/optimize.h"
#include "obs/obs.h"
#include "support/fault.h"
#include "support/panic.h"
#include "support/signal.h"
#include "term/sexpr.h"

using namespace isaria;

int
main(int argc, char **argv)
{
    return guardedMain([&] {
    // Consumes --trace/--trace-format/--stats/--metrics/--report
    // before the kernel args.
    obs::ScopedTrace trace(obs::ObsOptions::parse(argc, argv));

    KernelSpec spec = KernelSpec::conv2d(4, 4, 3, 3);
    bool dumpAsm = false;
    bool optimize = false;
    bool speculate = false;
    double budget = 20;
    int eqsatThreads = 0; // 0 = auto (env / hardware concurrency)
    EqSatScheduler scheduler = EqSatScheduler::Simple;
    std::size_t schedMatchLimit = 0; // 0 = scheduler default
    std::size_t schedBanLength = 0;  // 0 = scheduler default
    std::size_t memLimitMb = 0; // 0 = unlimited
    RuleCache cache = RuleCache::fromEnv(); // $ISARIA_CACHE default
    std::size_t memoEntries = 0; // 0 = memo disabled
    MachineDesc machine = MachineDesc::fromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intAt = [&](int offset) { return std::atoi(argv[i + offset]); };
        if (arg == "conv" && i + 4 < argc) {
            spec = KernelSpec::conv2d(intAt(1), intAt(2), intAt(3),
                                      intAt(4));
            i += 4;
        } else if (arg == "matmul" && i + 3 < argc) {
            spec = KernelSpec::matmul(intAt(1), intAt(2), intAt(3));
            i += 3;
        } else if (arg == "qprod") {
            spec = KernelSpec::qprod();
        } else if (arg == "qrd" && i + 1 < argc) {
            spec = KernelSpec::qrd(intAt(1));
            i += 1;
        } else if (arg == "--asm") {
            dumpAsm = true;
        } else if (arg == "--optimize") {
            optimize = true;
        } else if (arg == "--speculate") {
            speculate = true;
        } else if (arg == "--budget" && i + 1 < argc) {
            budget = std::atof(argv[i + 1]);
            i += 1;
        } else if (arg.rfind("--eqsat-threads=", 0) == 0) {
            eqsatThreads = std::atoi(arg.c_str() + 16);
        } else if (arg == "--eqsat-threads" && i + 1 < argc) {
            eqsatThreads = std::atoi(argv[i + 1]);
            i += 1;
        } else if (arg.rfind("--eqsat-scheduler=", 0) == 0) {
            auto parsed = eqSatSchedulerFromName(arg.c_str() + 18);
            if (!parsed) {
                std::fprintf(stderr,
                             "bad --eqsat-scheduler (want simple or "
                             "backoff): %s\n",
                             arg.c_str() + 18);
                return 1;
            }
            scheduler = *parsed;
        } else if (arg.rfind("--eqsat-match-limit=", 0) == 0) {
            schedMatchLimit = static_cast<std::size_t>(
                std::atoll(arg.c_str() + 20));
        } else if (arg.rfind("--eqsat-ban-length=", 0) == 0) {
            schedBanLength = static_cast<std::size_t>(
                std::atoll(arg.c_str() + 19));
        } else if (arg.rfind("--mem-mb=", 0) == 0) {
            memLimitMb = static_cast<std::size_t>(
                std::atoll(arg.c_str() + 9));
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache = RuleCache(arg.substr(12));
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache = RuleCache(argv[i + 1]);
            i += 1;
        } else if (arg.rfind("--memo-entries=", 0) == 0) {
            memoEntries = static_cast<std::size_t>(
                std::atoll(arg.c_str() + 15));
        } else if (arg.rfind("--target=", 0) == 0) {
            auto found = machineByName(arg.substr(9));
            if (!found) {
                std::fprintf(stderr,
                             "unknown --target %s (known: %s)\n",
                             arg.c_str() + 9,
                             knownMachineNames().c_str());
                return 1;
            }
            machine = *found;
        } else if (arg.rfind("--fault=", 0) == 0) {
            auto plan = FaultPlan::parse(arg.c_str() + 8);
            if (!plan.ok()) {
                std::fprintf(stderr, "bad --fault spec: %s\n",
                             plan.error().toString().c_str());
                return 1;
            }
            setFaultPlan(plan.value());
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 1;
        }
    }

    KernelHarness h(spec, machine);
    std::printf("Kernel: %s (%d outputs, %zu-chunk program)\n",
                spec.label().c_str(), h.kernel().totalOutputs(),
                h.scalarProgram().root().children.size());
    std::printf("Target: %s (%d lanes)\n", machine.name().c_str(),
                machine.vectorWidth);

    IsaSpec isa(machine);
    std::printf("Generating the Isaria compiler (budget %.0fs%s)...\n",
                budget,
                cache.enabled() ? (", cache " + cache.dir()).c_str()
                                : "");
    SynthConfig synth = synthConfigFor(machine);
    synth.timeoutSeconds = budget;
    synth.numThreads = eqsatThreads;
    synth.derivLimits.numThreads = eqsatThreads;
    CompilerConfig compilerConfig = compilerConfigFor(machine);
    compilerConfig.withEqSatThreads(eqsatThreads);
    compilerConfig.withScheduler(scheduler, schedMatchLimit,
                                 schedBanLength);
    compilerConfig.withMemLimitBytes(memLimitMb * 1024 * 1024);
    compilerConfig.withSpeculation(speculate);
    compilerConfig.memoEntries = memoEntries;
    // Ctrl-C during a long exploration degrades the in-flight compile
    // to best-so-far instead of killing the run mid-saturation
    // (guardedMain has already routed SIGINT/SIGTERM to this token).
    compilerConfig.withCancellation(&processShutdownToken());
    GeneratedCompiler gen =
        generateCompiler(isa, cache, synth, compilerConfig);
    if (gen.synth.fromCache)
        std::printf("  (rule set served from the persistent cache)\n");
    IsariaCompiler dios = makeDiospyrosCompiler(compilerConfig);

    RunOutcome base = h.runScalarBaseline();
    RunOutcome slp = h.runSlp();
    RunOutcome nature = h.runNature();
    RunOutcome diosOut = h.runCompiler(dios);
    RunOutcome isariaOut = h.runCompiler(gen.compiler);

    auto row = [&](const char *label, const RunOutcome &out) {
        if (!out.supported) {
            std::printf("  %-22s %s\n", label, "(shape unsupported)");
            return;
        }
        std::printf("  %-22s %8llu cycles  %5.2fx  %s\n", label,
                    static_cast<unsigned long long>(out.cycles),
                    static_cast<double>(base.cycles) / out.cycles,
                    out.correct ? "ok" : "WRONG");
    };
    std::printf("\nCycle counts (speedup over scalar baseline):\n");
    row("scalar baseline", base);
    row("SLP auto-vectorizer", slp);
    row("Nature library", nature);
    row("Diospyros (hand rules)", diosOut);
    row("Isaria (generated)", isariaOut);
    std::printf("\nIsaria compile: %.1fs, %d EqSat calls, peak %zu "
                "e-nodes, abstract cost %llu -> %llu\n",
                isariaOut.compileStats.seconds,
                isariaOut.compileStats.eqsatCalls,
                isariaOut.compileStats.peakNodes,
                static_cast<unsigned long long>(
                    isariaOut.compileStats.initialCost),
                static_cast<unsigned long long>(
                    isariaOut.compileStats.finalCost));
    const CompileStats &ist = isariaOut.compileStats;
    if (speculate)
        std::printf("Speculation: %d round%s rolled back\n",
                    ist.speculativeRollbacks,
                    ist.speculativeRollbacks == 1 ? "" : "s");
    if (ist.degradation != DegradeLevel::None) {
        std::printf("\nDegradation: %s (%d fault%s injected%s)\n",
                    degradeLevelName(ist.degradation),
                    ist.faultsInjected,
                    ist.faultsInjected == 1 ? "" : "s",
                    isariaOut.loweredScalarFallback
                        ? "; harness re-lowered the scalar program"
                        : "");
        for (const std::string &event : ist.degradeEvents)
            std::printf("  ! %s\n", event.c_str());
    }
    if (trace.options().stats)
        std::printf("\nPer-round compile breakdown:\n%s",
                    isariaOut.compileStats.toString().c_str());
    if (!trace.options().reportPath.empty()) {
        CompileReport report = makeCompileReport(
            spec.label(), isariaOut.compileStats, machine.name());
        if (writeCompileReport(trace.options().reportPath, report))
            std::printf("\nCompile report written: %s\n",
                        trace.options().reportPath.c_str());
    }

    if (optimize) {
        RecExpr compiled = gen.compiler.compile(h.scalarProgram());
        LowerOptions options;
        options.width = machine.vectorWidth;
        options.totalOutputs = h.kernel().totalOutputs();
        options.scalarizeRawChunks = true;
        VmProgram raw = lowerProgram(compiled, options);
        VmOptStats stats;
        VmProgram tuned = optimizeProgram(raw, machine.latency, &stats);
        RunOutcome before = h.runProgramChecked(raw);
        RunOutcome after = h.runProgramChecked(tuned);
        std::printf("\nPost-lowering passes: %llu -> %llu cycles "
                    "(%zu MACs fused, %zu dead, %zu moved; correct: "
                    "%s)\n",
                    static_cast<unsigned long long>(before.cycles),
                    static_cast<unsigned long long>(after.cycles),
                    stats.fusedMacs, stats.deadRemoved, stats.moved,
                    after.correct ? "yes" : "NO");
    }

    if (dumpAsm) {
        RecExpr compiled = gen.compiler.compile(h.scalarProgram());
        LowerOptions options;
        options.width = machine.vectorWidth;
        options.totalOutputs = h.kernel().totalOutputs();
        options.scalarizeRawChunks = true;
        std::printf("\nIsaria-generated DSP assembly:\n%s",
                    lowerProgram(compiled, options).toString().c_str());
    }
    return 0;
    });
}
