// Quickstart: the whole Isaria pipeline on the paper's running
// example (Section 2.1) — a ragged 4-wide vector addition.
//
//   var r0 = x[0] + y[0];   var r1 = x[1] + y[1];
//   var r2 = x[2] + y[2];   var r3 = x[3];
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --trace=trace.json --trace-format=chrome to record a profile
// of the whole run (open it at https://ui.perfetto.dev), or --stats
// for an aggregated per-phase report on stderr.

#include <cstdio>

#include "compiler/pipeline.h"
#include "lower/lower.h"
#include "obs/obs.h"
#include "term/sexpr.h"
#include "vm/machine.h"
#include "vm/reference.h"
#include "support/panic.h"

using namespace isaria;

int
main(int argc, char **argv)
{
    return guardedMain([&] {
    obs::ScopedTrace trace(obs::ObsOptions::parse(argc, argv));
    // 1. The target ISA: a stock Fusion-G3-like DSP (4-wide SIMD).
    IsaSpec isa;

    // 2. Offline: synthesize rewrite rules from the ISA's interpreter
    //    and organize them into phases (Fig. 2's left half). A small
    //    budget is plenty for this program.
    SynthConfig synth;
    synth.timeoutSeconds = 10;
    std::printf("Generating a vectorizing compiler for '%s'...\n",
                isa.name().c_str());
    GeneratedCompiler gen = generateCompiler(isa, synth);
    std::printf("  %zu rules: %zu expansion, %zu compilation, "
                "%zu optimization\n\n",
                gen.phased.all.size(),
                gen.phased.countOf(Phase::Expansion),
                gen.phased.countOf(Phase::Compilation),
                gen.phased.countOf(Phase::Optimization));

    // 3. The input kernel, already lifted to the vector DSL (the
    //    front-end does this for imperative kernels; see
    //    examples/kernel_explorer.cpp).
    RecExpr program = parseSexpr(
        "(List (Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1)) "
        "(+ (Get x 2) (Get y 2)) (Get x 3)))");
    std::printf("Input program:\n  %s\n\n", printSexpr(program).c_str());

    // 4. Compile: phased equality saturation with pruning (Fig. 3).
    CompileStats stats;
    RecExpr compiled = gen.compiler.compile(program, &stats);
    std::printf("Vectorized program (cost %llu -> %llu):\n  %s\n\n",
                static_cast<unsigned long long>(stats.initialCost),
                static_cast<unsigned long long>(stats.finalCost),
                printSexpr(compiled).c_str());

    // 5. Lower to the virtual DSP and simulate, checking the result
    //    against reference evaluation.
    VmMemory inputs;
    inputs[internSymbol("x")] = {1, 2, 3, 4};
    inputs[internSymbol("y")] = {10, 20, 30, 40};

    VmProgram code = lowerProgram(compiled, {});
    std::printf("Generated DSP code:\n%s\n", code.toString().c_str());

    VmRunResult run = runProgram(code, inputs);
    auto reference = evalProgramDoubles(program, inputs);
    const auto &got = run.memory.at(outputArraySymbol());
    std::printf("Result: [%g %g %g %g] in %llu cycles (max error %g)\n",
                got[0], got[1], got[2], got[3],
                static_cast<unsigned long long>(run.cycles),
                maxAbsDiff({got.begin(), got.begin() + 4}, reference));
    return 0;
    });
}
