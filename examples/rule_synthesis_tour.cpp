// A tour of the offline pipeline: watch rule synthesis discover the
// vectorization rules of Section 2 from nothing but the ISA's
// interpreter, then see the cost-based analysis sort them into the
// three phases of Section 3.2.
//
// Usage: rule_synthesis_tour [--cache-dir=DIR]
//
// --cache-dir=DIR persists the synthesized rule set under DIR
// (defaults to $ISARIA_CACHE when set); rerunning the tour with an
// unchanged configuration then skips synthesis entirely.

#include <cstdio>
#include <string>

#include "cache/rule_cache.h"
#include "phase/phase.h"
#include "synth/synthesize.h"
#include "support/panic.h"

using namespace isaria;

int
main(int argc, char **argv)
{
    return guardedMain([&] {
    IsaSpec isa;
    SynthConfig config;
    config.timeoutSeconds = 20;
    RuleCache cache = RuleCache::fromEnv();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--cache-dir=", 0) == 0) {
            cache = RuleCache(arg.substr(12));
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 1;
        }
    }

    std::printf("Synthesizing rewrite rules for '%s' from its "
                "interpreter...\n",
                isa.name().c_str());
    SynthReport report = synthesizeRulesCached(isa, config, cache);
    if (report.fromCache)
        std::printf("  (served from cache dir %s — delete the entry "
                    "to re-synthesize)\n",
                    cache.dir().c_str());
    std::printf("  candidates considered: %zu\n",
                report.candidatesConsidered);
    std::printf("  rejected as unsound:   %zu\n", report.rejectedUnsound);
    std::printf("  pruned as derivable:   %zu\n", report.prunedDerivable);
    std::printf("  rules kept:            %zu (1-wide), %zu after lane "
                "generalization\n",
                report.oneWideRules.size(), report.rules.size());
    std::printf("  time: enumerate %.1fs, shrink %.1fs, generalize "
                "%.1fs\n\n",
                report.enumerateSeconds, report.shrinkSeconds,
                report.generalizeSeconds);

    DspCostModel cost;
    PhasedRules phased = assignPhases(report.rules, cost);
    std::printf("Phase discovery (alpha=%lld, beta=%lld):\n",
                static_cast<long long>(cost.params().alpha),
                static_cast<long long>(cost.params().beta));

    for (Phase phase : {Phase::Expansion, Phase::Compilation,
                        Phase::Optimization}) {
        std::printf("\n=== %s (%zu rules) — examples:\n",
                    phaseName(phase), phased.countOf(phase));
        int shown = 0;
        for (const PhasedRule &pr : phased.all) {
            if (pr.phase != phase || shown >= 6)
                continue;
            ++shown;
            std::printf("  [CD=%4lld CA=%4lld] %s\n",
                        static_cast<long long>(pr.costDifferential),
                        static_cast<long long>(pr.aggregateCost),
                        pr.rule.toString().c_str());
        }
    }

    std::printf("\nProved vs tested: ");
    std::size_t proved = 0;
    for (const Rule &rule : report.rules.rules())
        proved += rule.verifiedExactly;
    std::printf("%zu rules proved by polynomial normalization, %zu "
                "validated by exact-rational sampling.\n",
                proved, report.rules.size() - proved);
    return 0;
    });
}
