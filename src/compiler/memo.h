#ifndef ISARIA_COMPILER_MEMO_H
#define ISARIA_COMPILER_MEMO_H

/**
 * @file
 * In-memory compile memo: kernel term -> compiled program.
 *
 * The Fig. 3 loop is expensive (several equality saturations) and
 * deterministic up to wall-clock budgets, while workloads — bench
 * sweeps, the kernel explorer's --asm/--optimize re-compiles, a
 * service compiling the same hot kernels over and over — repeat
 * programs verbatim. The memo keys on the unfolded-tree hash of the
 * input program (with a full equalTree check against collisions) and
 * returns the first compilation's output, so repeats cost one lookup.
 *
 * Thread-safe: a mutex guards the table, and the stored expressions
 * are copied out on hit. Capacity-bounded with FIFO eviction — the
 * memo is a working-set cache, not an unbounded leak.
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "term/rec_expr.h"

namespace isaria
{

/** A bounded program -> compiled-program cache (see file comment). */
class CompileMemo
{
  public:
    /** @p maxEntries of 0 disables the memo entirely. */
    explicit CompileMemo(std::size_t maxEntries = 0)
        : maxEntries_(maxEntries)
    {}

    CompileMemo(const CompileMemo &) = delete;
    CompileMemo &operator=(const CompileMemo &) = delete;

    /** Movable so IsariaCompiler stays movable: the contents migrate,
     *  the mutex is freshly constructed. The source must not be in
     *  concurrent use while being moved from. */
    CompileMemo(CompileMemo &&other) noexcept
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        maxEntries_ = other.maxEntries_;
        table_ = std::move(other.table_);
        order_ = std::move(other.order_);
        stats_ = other.stats_;
    }

    bool enabled() const { return maxEntries_ > 0; }

    /** Re-bounds the memo (drops everything; used at construction). */
    void
    setCapacity(std::size_t maxEntries)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        maxEntries_ = maxEntries;
        table_.clear();
        order_.clear();
    }

    struct Entry
    {
        RecExpr compiled;
        std::uint64_t cost = 0;
    };

    /** Cumulative hit/miss/eviction counters. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
    };

    /** The memoized compilation of @p program, if present. */
    std::optional<Entry> lookup(const RecExpr &program) const;

    /** Records @p entry for @p program (idempotent per program). */
    void store(const RecExpr &program, Entry entry);

    Stats stats() const;

    void clear();

  private:
    struct Slot
    {
        RecExpr program;
        Entry entry;
    };

    mutable std::mutex mutex_;
    std::size_t maxEntries_ = 0;
    /** treeHash -> slots with that hash (collision chain). */
    std::unordered_map<std::size_t, std::vector<Slot>> table_;
    /** Insertion order (hashes; chains evict front-first) for FIFO
     *  eviction. */
    std::deque<std::size_t> order_;
    mutable Stats stats_;
};

} // namespace isaria

#endif // ISARIA_COMPILER_MEMO_H
