#ifndef ISARIA_COMPILER_REPORT_H
#define ISARIA_COMPILER_REPORT_H

/**
 * @file
 * The per-compile report artifact: one schema-versioned JSON object
 * per compile() call, carrying everything a service operator needs to
 * answer "what did this request cost and did it degrade" — wall time,
 * cost trajectory, per-round saturation reports (stop reason, node /
 * class / byte counts, search and apply seconds, scheduler activity),
 * the degradation ladder, memoization, and the process metrics
 * registry's histogram quantiles at emission time.
 *
 * This is the exact payload the future compile-as-a-service daemon
 * (ROADMAP item 1) streams back per request; today it is reachable as
 * `--report=<file>` on every example binary (via ObsOptions) and is
 * validated in CI by tools/validate_report.py against the schema
 * spelled out there. Bump kCompileReportSchemaVersion on any
 * incompatible field change.
 */

#include <string>

#include "compiler/compiler.h"

namespace isaria
{

/** Version stamped into every CompileReport ("schema_version").
 *  v2: added "target" (the machine description's canonical name). */
inline constexpr int kCompileReportSchemaVersion = 2;

/** One compile() call's structured outcome. */
struct CompileReport
{
    /** Kernel label ("conv2d 4x4 k3x3"); never empty in emitted
     *  reports — makeCompileReport defaults it to "unknown". */
    std::string kernel;
    /** Canonical target name (MachineDesc::name, width-bearing);
     *  never empty — makeCompileReport defaults it to the session
     *  machine. */
    std::string target;
    CompileStats stats;

    /** The report as a single JSON object (embeds the current metrics
     *  registry snapshot under "metrics"). */
    std::string toJson() const;
};

/** Builds a report for @p stats, labelled @p kernel, compiled for
 *  @p target (empty = the session machine, MachineDesc::fromEnv). */
CompileReport makeCompileReport(std::string kernel,
                                const CompileStats &stats,
                                std::string target = {});

/**
 * Serializes @p report to @p path (tempfile + rename, like every
 * other published artifact). False — with a stderr diagnostic — on
 * I/O failure.
 */
bool writeCompileReport(const std::string &path,
                        const CompileReport &report);

/** One EqSatReport as a JSON object (shared by rounds/optimization). */
std::string eqSatReportJson(const EqSatReport &report);

} // namespace isaria

#endif // ISARIA_COMPILER_REPORT_H
