#ifndef ISARIA_COMPILER_COMPILER_H
#define ISARIA_COMPILER_COMPILER_H

/**
 * @file
 * The Isaria compile-time scheduler: the Compile algorithm of Fig. 3.
 *
 * An IsariaCompiler is what the offline pipeline emits: a phased rule
 * system plus the cost model. Compilation loops
 *
 *   fresh e-graph <- program
 *   saturate expansion rules; saturate compilation rules
 *   extract the cheapest program; prune (restart from it)
 *
 * until the extracted cost stops improving, then runs one saturation
 * of optimization rules. Both pruning and phasing can be disabled to
 * reproduce the Section 5.2 ablations.
 */

#include <algorithm>
#include <vector>

#include "compiler/memo.h"
#include "egraph/runner.h"
#include "phase/phase.h"

namespace isaria
{

/** Knobs of the compile-time scheduler. */
struct CompilerConfig
{
    DspCostModel costModel;
    /**
     * Per-phase EqSat budgets (the paper applies a 180 s timeout per
     * call; defaults here are laptop-scale). Expansion is kept
     * shallow — it only needs to surface permutations and padding —
     * while compilation runs deep enough for the per-op compile rules
     * to recurse to the leaves of each lane.
     */
    EqSatLimits expansionLimits = {.maxNodes = 30'000,
                                   .maxIters = 2,
                                   .timeoutSeconds = 0.8,
                                   .maxMatchesPerRule = 20'000,
                                   .maxMatchesPerClass = 24};
    EqSatLimits compilationLimits = {.maxNodes = 60'000,
                                     .maxIters = 10,
                                     .timeoutSeconds = 2.0,
                                     .maxMatchesPerRule = 8'000,
                                     .maxMatchesPerClass = 32};
    /** Budgets for the final optimization saturation. */
    EqSatLimits optLimits = {.maxNodes = 100'000,
                             .maxIters = 5,
                             .timeoutSeconds = 1.5,
                             .maxMatchesPerRule = 30'000,
                             .maxMatchesPerClass = 48};
    /** Safety cap on the improve loop of Fig. 3. */
    int maxLoopIterations = 10;
    /** Greedy pruning between loop iterations (Section 3.3). */
    bool pruning = true;
    /**
     * Speculative phase exploration: the improve loop keeps one
     * persistent e-graph across rounds. Each round snapshots the
     * empty graph, seeds it with the best program so far, saturates,
     * extracts, and is rolled back with restore() whether it improved
     * or not — only `current` (the extracted term) advances; the
     * saturated equalities are not carried into later rounds. The
     * payoff is memory recycling: restore() keeps every arena chunk
     * hot, so rounds after the first saturate into recycled chunks
     * instead of growing a fresh heap per round. Never emits a worse
     * program than the non-speculative loop: `current` only advances
     * on a strict cost improvement, and every round sees exactly the
     * seeded graph the plain pruning loop would build.
     */
    bool speculation = false;
    /** Phase-scheduled saturation; false = one saturation over the
     *  whole rule set (the Section 2.2 / 5.2 strawman). */
    bool phasing = true;
    /**
     * Wall-clock grace budget for the best-so-far extraction of a
     * round whose saturation was cancelled. The cancellation token has
     * already fired at that point, so the extraction — which *is* the
     * degradation path — runs under this fresh deadline instead of the
     * token; a healthy round's extraction polls the token itself.
     */
    double cancelledExtractGraceSeconds = 2.0;
    /**
     * Entries retained by the in-memory compile memo (kernel term ->
     * compiled program); 0 disables memoization. Each IsariaCompiler
     * owns its memo, so hits are always consistent with this
     * compiler's rule set and budgets. Repeated compiles of the same
     * kernel (bench sweeps, --asm/--optimize re-lowering) become a
     * hash lookup.
     */
    std::size_t memoEntries = 0;

    /**
     * Sets the e-matching thread count of every per-phase EqSat
     * budget (the --eqsat-threads knob; see EqSatLimits::numThreads).
     */
    CompilerConfig &
    withEqSatThreads(int threads)
    {
        expansionLimits.numThreads = threads;
        compilationLimits.numThreads = threads;
        optLimits.numThreads = threads;
        return *this;
    }

    /**
     * Caps the accounted e-graph footprint of every saturation at
     * @p bytes (the --mem-mb knob; 0 = unlimited). A saturation that
     * hits the ceiling stops with StopReason::MemLimit and the round
     * still extracts the best program found so far.
     */
    CompilerConfig &
    withMemLimitBytes(std::size_t bytes)
    {
        expansionLimits.maxBytes = bytes;
        compilationLimits.maxBytes = bytes;
        optLimits.maxBytes = bytes;
        return *this;
    }

    /**
     * Threads a caller-owned cancellation token through every
     * saturation and the Fig. 3 loop itself: once the token fires,
     * in-flight search work is interrupted within a few thousand
     * e-matching steps and compile() returns the best program
     * extracted so far (degradation recorded in CompileStats).
     */
    CompilerConfig &
    withCancellation(const CancellationToken *token)
    {
        expansionLimits.cancel = token;
        compilationLimits.cancel = token;
        optLimits.cancel = token;
        return *this;
    }

    /** Toggles speculative phase exploration (see `speculation`). */
    CompilerConfig &
    withSpeculation(bool on)
    {
        speculation = on;
        return *this;
    }

    /**
     * A copy of this config with every eqsat budget shrunk by
     * @p scale in (0, 1] — the serve tier's soft-pressure band.
     * Wall-clock timeouts, node ceilings, and the improve-loop cap
     * all scale down, and the backoff scheduler is forced on with a
     * proportionally smaller match budget so explosive rules are
     * throttled first. The request still runs the full degradation
     * ladder; it just reaches "good enough" sooner and returns the
     * pool slot to the queue.
     */
    CompilerConfig
    scaledForPressure(double scale) const
    {
        CompilerConfig out = *this;
        if (scale <= 0 || scale >= 1)
            return out;
        auto shrink = [&](EqSatLimits &limits) {
            limits.timeoutSeconds *= scale;
            limits.maxNodes = std::max<std::size_t>(
                1'000, static_cast<std::size_t>(
                           static_cast<double>(limits.maxNodes) * scale));
            limits.maxIters =
                std::max(1, static_cast<int>(limits.maxIters * scale));
            limits.scheduler = EqSatScheduler::Backoff;
            limits.schedMatchLimit = std::max<std::size_t>(
                64, static_cast<std::size_t>(
                        static_cast<double>(limits.schedMatchLimit) *
                        scale));
        };
        shrink(out.expansionLimits);
        shrink(out.compilationLimits);
        shrink(out.optLimits);
        out.maxLoopIterations =
            std::max(1, static_cast<int>(out.maxLoopIterations * scale));
        return out;
    }

    /**
     * Sets the rule-application scheduling policy of every per-phase
     * EqSat budget (the --eqsat-scheduler knob; see EqSatScheduler).
     * @p matchLimit / @p banLength tune the backoff thresholds; pass 0
     * to keep a limit's default.
     */
    CompilerConfig &
    withScheduler(EqSatScheduler scheduler, std::size_t matchLimit = 0,
                  std::size_t banLength = 0)
    {
        for (EqSatLimits *limits :
             {&expansionLimits, &compilationLimits, &optLimits}) {
            limits->scheduler = scheduler;
            if (matchLimit)
                limits->schedMatchLimit = matchLimit;
            if (banLength)
                limits->schedBanLength = banLength;
        }
        return *this;
    }
};

/**
 * How far compile() had to walk down the graceful-degradation ladder
 * (ordered: each level subsumes the ones before it).
 */
enum class DegradeLevel
{
    /** Clean run: every phase completed within budget. */
    None,
    /** A saturation stopped on a resource budget, cancellation, or an
     *  injected fault, and the round extracted best-so-far. */
    BestSoFar,
    /** A phase failed outright; compile() fell back to the previous
     *  round's program. */
    RoundFallback,
    /** The whole pipeline failed; compile() returned its input (the
     *  scalar program) unchanged — direct scalar lowering. */
    ScalarFallback,
};

/** Human-readable degradation-level name. */
const char *degradeLevelName(DegradeLevel level);

/**
 * Sub-stats for one round of the Fig. 3 improve loop: the full
 * reports of both saturations (stop reason, node/class counts at the
 * stop, phase timings) plus the cost of the extraction that closed
 * the round. The strawman (no-phases) path records its single
 * saturation as one round's `compilation`.
 */
struct RoundStats
{
    int round = 0;
    EqSatReport expansion;
    EqSatReport compilation;
    /** The round ran an expansion saturation (false for strawman). */
    bool ranExpansion = false;
    std::uint64_t extractedCost = 0;
};

/** Observability for the experiments. */
struct CompileStats
{
    std::uint64_t initialCost = 0;
    std::uint64_t finalCost = 0;
    int loopIterations = 0;
    int eqsatCalls = 0;
    double seconds = 0;
    std::size_t peakNodes = 0;
    /** A saturation hit its node or byte budget — the "ran out of
     *  memory" condition of the paper's ablations. */
    bool ranOutOfMemory = false;
    /** Deepest degradation rung this compile hit (None = clean). */
    DegradeLevel degradation = DegradeLevel::None;
    /** One human-readable entry per degradation event, in order
     *  ("round 2: compilation stopped early (mem-limit), extracted
     *  best-so-far"). */
    std::vector<std::string> degradeEvents;
    /** Saturations whose stop was forced by an injected fault. */
    int faultsInjected = 0;
    /** Rounds the speculative loop rolled back for not improving the
     *  extracted cost (always 0 without CompilerConfig::speculation). */
    int speculativeRollbacks = 0;
    /** The result came from the compiler's in-memory memo; no eqsat
     *  work ran (see CompilerConfig::memoEntries). */
    bool memoHit = false;
    /** Every saturation report, in call order (kept for existing
     *  consumers; `rounds` is the structured view). */
    std::vector<EqSatReport> reports;
    /** Per-round sub-stats of the improve loop. */
    std::vector<RoundStats> rounds;
    /** Report of the final optimization saturation, if it ran. */
    EqSatReport optimization;
    bool ranOptimization = false;

    /** Per-round breakdown (what `--stats` prints per compile). */
    std::string toString() const;
};

/** A generated vectorizing compiler for one ISA instance. */
class IsariaCompiler
{
  public:
    IsariaCompiler(PhasedRules rules, CompilerConfig config);

    /**
     * Vectorizes @p program (Fig. 3). Never fails to return a
     * runnable program: a round that exhausts a budget (or is
     * cancelled, or absorbs an injected fault) extracts the best
     * program found so far, a phase that fails outright falls back to
     * the previous round's program, and a whole-pipeline failure
     * returns @p program itself (direct scalar lowering). The path
     * taken is recorded in CompileStats::degradation/degradeEvents.
     */
    RecExpr compile(const RecExpr &program,
                    CompileStats *stats = nullptr) const;

    /**
     * Compiles @p program under @p config instead of the construction
     * config — the serve tier's per-request plumbing: one shared
     * compiler (rules, warm memo) serves many requests, each with its
     * own budgets, cancellation token, byte ceiling, and scheduler
     * knobs. The memo is always consulted (a hit compiled under fuller
     * budgets is at least as good as what this request would build),
     * but only stored into when @p memoWrite is set *and* the compile
     * was clean — a soft-pressure or deadline-cut result must not pin
     * a worse program for future full-budget requests.
     */
    RecExpr compile(const RecExpr &program, const CompilerConfig &config,
                    CompileStats *stats, bool memoWrite) const;

    const PhasedRules &rules() const { return rules_; }
    const CompilerConfig &config() const { return config_; }

    /** Hit/miss counters of the in-memory compile memo. */
    CompileMemo::Stats memoStats() const { return memo_.stats(); }

  private:
    /** The fallible Fig. 3 body; compile() wraps it in the ladder's
     *  last rung (scalar fallback on any escaped failure). */
    RecExpr compileImpl(const RecExpr &program,
                        const CompilerConfig &config,
                        CompileStats &st) const;

    PhasedRules rules_;
    CompilerConfig config_;
    /** Program -> compiled-program memo (thread-safe; see
     *  CompilerConfig::memoEntries). */
    mutable CompileMemo memo_;
    std::vector<CompiledRule> expansion_;
    std::vector<CompiledRule> compilation_;
    std::vector<CompiledRule> optimization_;
    std::vector<CompiledRule> everything_;
};

} // namespace isaria

#endif // ISARIA_COMPILER_COMPILER_H
