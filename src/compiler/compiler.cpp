#include "compiler/compiler.h"

#include "egraph/extract.h"
#include "support/panic.h"
#include "support/timer.h"

namespace isaria
{

IsariaCompiler::IsariaCompiler(PhasedRules rules, CompilerConfig config)
    : rules_(std::move(rules)), config_(config)
{
    expansion_ = compileRules(rules_.ofPhase(Phase::Expansion));
    compilation_ = compileRules(rules_.ofPhase(Phase::Compilation));
    optimization_ = compileRules(rules_.ofPhase(Phase::Optimization));
    for (const PhasedRule &pr : rules_.all)
        everything_.emplace_back(pr.rule);
}

RecExpr
IsariaCompiler::compile(const RecExpr &program, CompileStats *stats) const
{
    Stopwatch watch;
    CompileStats local;
    CompileStats &st = stats ? *stats : local;
    st = CompileStats{};

    const DspCostModel &cost = config_.costModel;
    st.initialCost = cost.exprCost(program);

    auto note = [&](const EqSatReport &report) {
        ++st.eqsatCalls;
        st.peakNodes = std::max(st.peakNodes, report.nodes);
        st.ranOutOfMemory |= report.stop == StopReason::NodeLimit;
        st.reports.push_back(report);
    };

    auto extractOrDie = [&](const EGraph &eg, EClassId root) {
        auto got = extractBest(eg, root, cost);
        ISARIA_ASSERT(got.has_value(), "extraction found no program");
        return std::move(*got);
    };

    RecExpr current = program;

    if (!config_.phasing) {
        // Strawman (Section 2.2): a single equality saturation over
        // the entire synthesized rule set.
        EGraph eg;
        EClassId root = eg.addExpr(current);
        note(runEqSat(eg, everything_, config_.compilationLimits));
        Extracted best = extractOrDie(eg, root);
        st.finalCost = best.cost;
        st.seconds = watch.elapsedSeconds();
        return std::move(best.expr);
    }

    std::uint64_t oldCost = st.initialCost;

    if (config_.pruning) {
        // The Fig. 3 loop: fresh e-graph, expansion, compilation,
        // extract, prune by restarting from the extraction.
        for (int iter = 0; iter < config_.maxLoopIterations; ++iter) {
            ++st.loopIterations;
            EGraph eg;
            EClassId root = eg.addExpr(current);
            note(runEqSat(eg, expansion_, config_.expansionLimits));
            note(runEqSat(eg, compilation_, config_.compilationLimits));
            Extracted best = extractOrDie(eg, root);
            current = std::move(best.expr);
            if (best.cost == oldCost)
                break;
            oldCost = best.cost;
        }
    } else {
        // Ablation (Section 5.2): retain the e-graph across loop
        // iterations — alternate the phases with no pruning.
        EGraph eg;
        EClassId root = eg.addExpr(current);
        for (int iter = 0; iter < config_.maxLoopIterations; ++iter) {
            ++st.loopIterations;
            note(runEqSat(eg, expansion_, config_.expansionLimits));
            note(runEqSat(eg, compilation_, config_.compilationLimits));
            Extracted best = extractOrDie(eg, root);
            std::uint64_t newCost = best.cost;
            current = std::move(best.expr);
            if (newCost == oldCost)
                break;
            oldCost = newCost;
        }
    }

    // Final phase: optimize the chosen vectorization.
    {
        EGraph eg;
        EClassId root = eg.addExpr(current);
        note(runEqSat(eg, optimization_, config_.optLimits));
        Extracted best = extractOrDie(eg, root);
        st.finalCost = best.cost;
        current = std::move(best.expr);
    }

    st.seconds = watch.elapsedSeconds();
    return current;
}

} // namespace isaria
