#include "compiler/compiler.h"

#include <cinttypes>
#include <cstdio>

#include "egraph/extract.h"
#include "obs/obs.h"
#include "support/panic.h"
#include "support/timer.h"

namespace isaria
{

IsariaCompiler::IsariaCompiler(PhasedRules rules, CompilerConfig config)
    : rules_(std::move(rules)), config_(config)
{
    expansion_ = compileRules(rules_.ofPhase(Phase::Expansion));
    compilation_ = compileRules(rules_.ofPhase(Phase::Compilation));
    optimization_ = compileRules(rules_.ofPhase(Phase::Optimization));
    for (const PhasedRule &pr : rules_.all)
        everything_.emplace_back(pr.rule);
}

std::string
CompileStats::toString() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "compile: cost %" PRIu64 " -> %" PRIu64
                  " in %.3fs, %d rounds, %d eqsats, peak %zu nodes%s\n",
                  initialCost, finalCost, seconds, loopIterations,
                  eqsatCalls, peakNodes,
                  ranOutOfMemory ? " [hit node budget]" : "");
    out += line;
    // EqSatReport::toString carries the stop reason and flags step
    // budget truncation, so a false "saturated" reads as such here.
    for (const RoundStats &r : rounds) {
        if (r.ranExpansion) {
            std::snprintf(line, sizeof line,
                          "  round %d: expansion %s\n", r.round,
                          r.expansion.toString().c_str());
            out += line;
        }
        std::snprintf(line, sizeof line,
                      "  round %d: compilation %s -> cost %" PRIu64
                      "\n",
                      r.round, r.compilation.toString().c_str(),
                      r.extractedCost);
        out += line;
    }
    if (ranOptimization) {
        std::snprintf(line, sizeof line, "  optimize: %s\n",
                      optimization.toString().c_str());
        out += line;
    }
    return out;
}

RecExpr
IsariaCompiler::compile(const RecExpr &program, CompileStats *stats) const
{
    Stopwatch watch;
    obs::Span compileSpan("compile");
    CompileStats local;
    CompileStats &st = stats ? *stats : local;
    st = CompileStats{};

    const DspCostModel &cost = config_.costModel;
    st.initialCost = cost.exprCost(program);

    auto note = [&](const EqSatReport &report) {
        ++st.eqsatCalls;
        st.peakNodes = std::max(st.peakNodes, report.nodes);
        st.ranOutOfMemory |= report.stop == StopReason::NodeLimit;
        st.reports.push_back(report);
    };

    auto extractOrDie = [&](const EGraph &eg, EClassId root) {
        obs::Span extractSpan("compile/extract",
                              static_cast<std::int64_t>(eg.numNodes()));
        auto got = extractBest(eg, root, cost);
        ISARIA_ASSERT(got.has_value(), "extraction found no program");
        return std::move(*got);
    };

    RecExpr current = program;

    if (!config_.phasing) {
        // Strawman (Section 2.2): a single equality saturation over
        // the entire synthesized rule set.
        obs::Span roundSpan("compile/round", 1);
        EGraph eg;
        EClassId root = eg.addExpr(current);
        RoundStats round;
        round.round = 1;
        round.compilation =
            runEqSat(eg, everything_, config_.compilationLimits);
        note(round.compilation);
        Extracted best = extractOrDie(eg, root);
        round.extractedCost = best.cost;
        st.rounds.push_back(round);
        st.finalCost = best.cost;
        st.seconds = watch.elapsedSeconds();
        obs::counter("compile/cost",
                     static_cast<std::int64_t>(best.cost));
        return std::move(best.expr);
    }

    std::uint64_t oldCost = st.initialCost;

    // The Fig. 3 loop. With pruning each round restarts from a fresh
    // e-graph seeded with the previous extraction; the ablation keeps
    // one e-graph across rounds.
    EGraph keptGraph;
    EClassId keptRoot = 0;
    if (!config_.pruning)
        keptRoot = keptGraph.addExpr(current);

    for (int iter = 0; iter < config_.maxLoopIterations; ++iter) {
        ++st.loopIterations;
        // Rounds are numbered from 1 in stats and trace output.
        obs::Span roundSpan("compile/round", iter + 1);
        RoundStats round;
        round.round = iter + 1;
        round.ranExpansion = true;

        EGraph freshGraph;
        EGraph &eg = config_.pruning ? freshGraph : keptGraph;
        EClassId root =
            config_.pruning ? eg.addExpr(current) : keptRoot;

        round.expansion =
            runEqSat(eg, expansion_, config_.expansionLimits);
        note(round.expansion);
        round.compilation =
            runEqSat(eg, compilation_, config_.compilationLimits);
        note(round.compilation);

        Extracted best = extractOrDie(eg, root);
        round.extractedCost = best.cost;
        st.rounds.push_back(round);
        obs::counter("compile/cost",
                     static_cast<std::int64_t>(best.cost));
        std::uint64_t newCost = best.cost;
        current = std::move(best.expr);
        if (newCost == oldCost)
            break;
        oldCost = newCost;
    }

    // Final phase: optimize the chosen vectorization.
    {
        obs::Span optSpan("compile/optimize");
        EGraph eg;
        EClassId root = eg.addExpr(current);
        st.optimization = runEqSat(eg, optimization_, config_.optLimits);
        st.ranOptimization = true;
        note(st.optimization);
        Extracted best = extractOrDie(eg, root);
        st.finalCost = best.cost;
        current = std::move(best.expr);
    }

    st.seconds = watch.elapsedSeconds();
    return current;
}

} // namespace isaria
