#include "compiler/compiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "egraph/extract.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/fault.h"
#include "support/panic.h"
#include "support/timer.h"

namespace isaria
{

IsariaCompiler::IsariaCompiler(PhasedRules rules, CompilerConfig config)
    : rules_(std::move(rules)), config_(config),
      memo_(config.memoEntries)
{
    expansion_ = compileRules(rules_.ofPhase(Phase::Expansion));
    compilation_ = compileRules(rules_.ofPhase(Phase::Compilation));
    optimization_ = compileRules(rules_.ofPhase(Phase::Optimization));
    for (const PhasedRule &pr : rules_.all)
        everything_.emplace_back(pr.rule);
}

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
      case DegradeLevel::None: return "none";
      case DegradeLevel::BestSoFar: return "best-so-far";
      case DegradeLevel::RoundFallback: return "round-fallback";
      case DegradeLevel::ScalarFallback: return "scalar-fallback";
    }
    return "?";
}

namespace
{

/** Always-on registry sites of the compile loop (registered once per
 *  process; handles are cheap POD ids — see obs/metrics.h). */
struct CompileMetrics
{
    obs::HistogramHandle wallNs = obs::metricHistogram("compile/wall_ns");
    obs::HistogramHandle roundNs =
        obs::metricHistogram("compile/round_ns");
    obs::HistogramHandle extractNs =
        obs::metricHistogram("compile/extract_ns");
    obs::CounterHandle compiles = obs::metricCounter("compile/compiles");
    obs::CounterHandle memoHits = obs::metricCounter("compile/memo/hit");
    obs::CounterHandle memoMisses =
        obs::metricCounter("compile/memo/miss");
    obs::CounterHandle degraded = obs::metricCounter("compile/degraded");
    obs::CounterHandle faults =
        obs::metricCounter("compile/faults_injected");
    obs::CounterHandle rollbacks =
        obs::metricCounter("compile/speculative_rollbacks");
    obs::GaugeHandle finalCost = obs::metricGauge("compile/final_cost");
};

CompileMetrics &
compileMetrics()
{
    static CompileMetrics metrics;
    return metrics;
}

/** Seconds elapsed on @p watch as integral nanoseconds. */
std::uint64_t
elapsedNs(const Stopwatch &watch)
{
    double seconds = watch.elapsedSeconds();
    return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

/** RAII latency-histogram sample: records the scope's wall time. */
struct ScopedLatency
{
    explicit ScopedLatency(obs::HistogramHandle handle) : handle(handle)
    {}
    ~ScopedLatency() { obs::metricRecord(handle, elapsedNs(watch)); }

    obs::HistogramHandle handle;
    Stopwatch watch;
};

/** Records one rung of the degradation ladder in stats and obs. */
void
noteDegrade(CompileStats &st, DegradeLevel level, std::string what)
{
    st.degradation = std::max(st.degradation, level);
    st.degradeEvents.push_back(std::move(what));
    obs::counter("compile/degraded", static_cast<std::int64_t>(level));
    obs::metricAdd(compileMetrics().degraded);
}

} // namespace

std::string
CompileStats::toString() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "compile: cost %" PRIu64 " -> %" PRIu64
                  " in %.3fs, %d rounds, %d eqsats, peak %zu nodes%s%s\n",
                  initialCost, finalCost, seconds, loopIterations,
                  eqsatCalls, peakNodes,
                  ranOutOfMemory ? " [hit node budget]" : "",
                  memoHit ? " [memo hit]" : "");
    out += line;
    // EqSatReport::toString carries the stop reason and flags step
    // budget truncation, so a false "saturated" reads as such here.
    for (const RoundStats &r : rounds) {
        if (r.ranExpansion) {
            std::snprintf(line, sizeof line,
                          "  round %d: expansion %s\n", r.round,
                          r.expansion.toString().c_str());
            out += line;
        }
        std::snprintf(line, sizeof line,
                      "  round %d: compilation %s -> cost %" PRIu64
                      "\n",
                      r.round, r.compilation.toString().c_str(),
                      r.extractedCost);
        out += line;
    }
    if (ranOptimization) {
        std::snprintf(line, sizeof line, "  optimize: %s\n",
                      optimization.toString().c_str());
        out += line;
    }
    if (speculativeRollbacks > 0) {
        std::snprintf(line, sizeof line,
                      "  speculation: %d round%s rolled back\n",
                      speculativeRollbacks,
                      speculativeRollbacks == 1 ? "" : "s");
        out += line;
    }
    if (degradation != DegradeLevel::None) {
        std::snprintf(line, sizeof line,
                      "  degraded: %s (%d fault%s injected)\n",
                      degradeLevelName(degradation), faultsInjected,
                      faultsInjected == 1 ? "" : "s");
        out += line;
        for (const std::string &event : degradeEvents)
            out += "    ! " + event + "\n";
    }
    return out;
}

RecExpr
IsariaCompiler::compile(const RecExpr &program, CompileStats *stats) const
{
    return compile(program, config_, stats, /*memoWrite=*/true);
}

RecExpr
IsariaCompiler::compile(const RecExpr &program,
                        const CompilerConfig &config, CompileStats *stats,
                        bool memoWrite) const
{
    Stopwatch watch;
    obs::Span compileSpan("compile");
    CompileStats local;
    CompileStats &st = stats ? *stats : local;
    st = CompileStats{};

    const CompileMetrics &cm = compileMetrics();
    auto finishMetrics = [&] {
        obs::metricAdd(cm.compiles);
        obs::metricRecord(cm.wallNs, elapsedNs(watch));
        obs::metricSet(cm.finalCost,
                       static_cast<std::int64_t>(st.finalCost));
        obs::metricAdd(cm.faults,
                       static_cast<std::uint64_t>(st.faultsInjected));
        obs::metricAdd(
            cm.rollbacks,
            static_cast<std::uint64_t>(st.speculativeRollbacks));
    };

    const DspCostModel &cost = config.costModel;
    st.initialCost = cost.exprCost(program);

    // Memo fast path: a verbatim repeat of a compiled program costs
    // one tree-hash lookup instead of the whole Fig. 3 loop.
    if (auto hit = memo_.lookup(program)) {
        st.memoHit = true;
        st.finalCost = hit->cost;
        st.seconds = watch.elapsedSeconds();
        obs::counter("compile/memo/hit", 1);
        obs::metricAdd(cm.memoHits);
        finishMetrics();
        return std::move(hit->compiled);
    }
    if (memo_.enabled()) {
        obs::counter("compile/memo/miss", 1);
        obs::metricAdd(cm.memoMisses);
    }

    // The ladder's last rung: whatever escapes the per-round guards
    // of compileImpl — including failures outside any round — still
    // yields a runnable program: the scalar input itself.
    try {
        RecExpr out = compileImpl(program, config, st);
        st.seconds = watch.elapsedSeconds();
        // Only clean compiles are worth memoizing: a degraded result
        // (budget cancellation, injected fault) — or one compiled
        // under a request's shrunk budgets (memoWrite false) — should
        // be retried fresh next time rather than pinned in the cache.
        if (memoWrite && st.degradation == DegradeLevel::None)
            memo_.store(program, {out, st.finalCost});
        finishMetrics();
        return out;
    } catch (const std::exception &e) {
        noteDegrade(st, DegradeLevel::ScalarFallback,
                    std::string("pipeline failed (") + e.what() +
                        "); emitting the scalar input program");
        st.finalCost = st.initialCost;
        st.seconds = watch.elapsedSeconds();
        finishMetrics();
        return program;
    }
}

RecExpr
IsariaCompiler::compileImpl(const RecExpr &program,
                            const CompilerConfig &config,
                            CompileStats &st) const
{
    const DspCostModel &cost = config.costModel;
    const CancellationToken *token = config.compilationLimits.cancel;

    auto note = [&](const char *phase, int round,
                    const EqSatReport &report) {
        ++st.eqsatCalls;
        st.peakNodes = std::max(st.peakNodes, report.nodes);
        st.ranOutOfMemory |= report.stop == StopReason::NodeLimit ||
                             report.stop == StopReason::MemLimit;
        if (report.faultInjected)
            ++st.faultsInjected;
        // NodeLimit/TimeLimit/IterLimit are the routine budget exits
        // the paper's scheduler is built around; only the new
        // resource/cancellation/fault stops count as degradation.
        if (report.stop == StopReason::MemLimit ||
            report.stop == StopReason::Cancelled) {
            noteDegrade(st, DegradeLevel::BestSoFar,
                        "round " + std::to_string(round) + ": " + phase +
                            " stopped early (" +
                            stopReasonName(report.stop) +
                            (report.faultInjected ? ", fault injected"
                                                  : "") +
                            "); extracting best-so-far");
        }
        st.reports.push_back(report);
    };

    // One extraction engine for the whole compile: its dependency
    // index is keyed on (graphId, generation), so rounds that extract
    // repeatedly from an unchanged graph (and the no-pruning ablation,
    // which keeps one graph across rounds) skip the index rebuild.
    Extractor extractor;
    auto extractChecked = [&](const EGraph &eg, EClassId root) {
        obs::Span extractSpan("compile/extract",
                              static_cast<std::int64_t>(eg.numNodes()));
        ScopedLatency extractLatency(compileMetrics().extractNs);
        // Extraction is interruptible (satellite of the caching PR):
        // a healthy round's extraction polls the caller's token, so a
        // cancel that lands mid-extraction stops it within a few
        // hundred class visits. If the token has *already* fired —
        // this extraction is the best-so-far degradation path — it
        // runs under a fresh grace deadline instead, so degradation
        // stays bounded without being self-defeating.
        bool alreadyCancelled = token && token->cancelled();
        Deadline grace(alreadyCancelled
                           ? config.cancelledExtractGraceSeconds
                           : 0);
        ExecControl control(alreadyCancelled ? &grace : nullptr,
                            alreadyCancelled ? nullptr : token);
        auto got = extractor.extract(eg, root, cost, &control);
        if (!got.has_value()) {
            if (control.interrupted())
                ISARIA_FATAL("extraction interrupted (cancelled or "
                             "out of grace budget)");
            ISARIA_FATAL("extraction found no program");
        }
        return std::move(*got);
    };

    RecExpr current = program;

    if (!config.phasing) {
        // Strawman (Section 2.2): a single equality saturation over
        // the entire synthesized rule set. Its one round degrades
        // straight to the input program on failure.
        obs::Span roundSpan("compile/round", 1);
        ScopedLatency roundLatency(compileMetrics().roundNs);
        RoundStats round;
        round.round = 1;
        try {
            EGraph eg;
            EClassId root = eg.addExpr(current);
            round.compilation =
                runEqSat(eg, everything_, config.compilationLimits);
            note("compilation", 1, round.compilation);
            Extracted best = extractChecked(eg, root);
            round.extractedCost = best.cost;
            st.rounds.push_back(round);
            st.finalCost = best.cost;
            obs::counter("compile/cost",
                         static_cast<std::int64_t>(best.cost));
            return std::move(best.expr);
        } catch (const std::exception &e) {
            noteDegrade(st, DegradeLevel::RoundFallback,
                        std::string("strawman round failed (") + e.what() +
                            "); keeping the input program");
            st.rounds.push_back(round);
            st.finalCost = st.initialCost;
            return current;
        }
    }

    std::uint64_t oldCost = st.initialCost;

    if (config.speculation) {
        // Speculative phase exploration: the Fig. 3 pruning loop on
        // ONE persistent e-graph. Each round snapshots the graph
        // while it is empty, seeds it with the best program so far,
        // saturates, extracts, and then restore()s back to empty —
        // after an improving round as much as a non-improving one.
        // The restore is the pruning step: it throws away the
        // saturated closure but keeps every arena chunk hot, so
        // rounds after the first saturate into recycled memory
        // instead of growing a fresh heap each time. Because each
        // round therefore sees exactly the seed the non-speculative
        // pruning loop would build, speculation never emits a worse
        // program; a round whose extraction fails to improve is
        // counted as a rollback and ends the loop, mirroring the
        // plain loop's fixed-point test.
        EGraph eg;
        for (int iter = 0; iter < config.maxLoopIterations; ++iter) {
            ++st.loopIterations;
            obs::Span roundSpan("compile/round", iter + 1);
            ScopedLatency roundLatency(compileMetrics().roundNs);
            RoundStats round;
            round.round = iter + 1;
            round.ranExpansion = true;
            std::uint64_t newCost = oldCost;
            eg.snapshot();
            bool roundFailed = false;
            try {
                EClassId root = eg.addExpr(current);
                round.expansion =
                    runEqSat(eg, expansion_, config.expansionLimits);
                note("expansion", round.round, round.expansion);
                round.compilation = runEqSat(eg, compilation_,
                                             config.compilationLimits);
                note("compilation", round.round, round.compilation);
                Extracted best = extractChecked(eg, root);
                round.extractedCost = best.cost;
                st.rounds.push_back(round);
                obs::counter("compile/cost",
                             static_cast<std::int64_t>(best.cost));
                newCost = best.cost;
                if (newCost < oldCost)
                    current = std::move(best.expr);
            } catch (const std::exception &e) {
                noteDegrade(st, DegradeLevel::RoundFallback,
                            "round " + std::to_string(round.round) +
                                " failed (" + e.what() +
                                "); keeping the previous round's "
                                "program");
                st.rounds.push_back(round);
                roundFailed = true;
            }
            bool improved = !roundFailed && newCost < oldCost;
            if (improved) {
                oldCost = newCost;
            } else if (!roundFailed) {
                ++st.speculativeRollbacks;
                obs::counter(
                    "compile/speculative/rollback",
                    static_cast<std::int64_t>(st.speculativeRollbacks));
            }
            // Rewind to the empty graph either way. A failed rollback
            // — the "egraph-snapshot-restore" fault site fires before
            // any mutation — leaves the graph exactly as it was, so
            // the best-so-far result stands; the loop just cannot
            // recycle the graph and stops.
            try {
                eg.restore();
            } catch (const FaultInjected &) {
                ++st.faultsInjected;
                noteDegrade(st, DegradeLevel::BestSoFar,
                            "round " + std::to_string(round.round) +
                                ": speculative rollback absorbed an "
                                "injected fault; keeping best-so-far");
                eg.discardSnapshot();
                break;
            }
            // A cancelled round still extracted best-so-far above;
            // stop iterating instead of burning more rounds.
            if (!improved || (token && token->cancelled()))
                break;
        }
    } else {

    // The Fig. 3 loop. With pruning each round restarts from a fresh
    // e-graph seeded with the previous extraction; the ablation keeps
    // one e-graph across rounds.
    EGraph keptGraph;
    EClassId keptRoot = 0;
    if (!config.pruning)
        keptRoot = keptGraph.addExpr(current);

    for (int iter = 0; iter < config.maxLoopIterations; ++iter) {
        ++st.loopIterations;
        // Rounds are numbered from 1 in stats and trace output.
        obs::Span roundSpan("compile/round", iter + 1);
        ScopedLatency roundLatency(compileMetrics().roundNs);
        RoundStats round;
        round.round = iter + 1;
        round.ranExpansion = true;
        std::uint64_t newCost = 0;

        // Per-round guard: a phase that fails outright (rather than
        // stopping on a budget) falls back to the previous round's
        // program — `current` is only updated after a successful
        // extraction, so it is always the best completed round.
        try {
            EGraph freshGraph;
            EGraph &eg = config.pruning ? freshGraph : keptGraph;
            EClassId root =
                config.pruning ? eg.addExpr(current) : keptRoot;

            round.expansion =
                runEqSat(eg, expansion_, config.expansionLimits);
            note("expansion", round.round, round.expansion);
            round.compilation =
                runEqSat(eg, compilation_, config.compilationLimits);
            note("compilation", round.round, round.compilation);

            Extracted best = extractChecked(eg, root);
            round.extractedCost = best.cost;
            st.rounds.push_back(round);
            obs::counter("compile/cost",
                         static_cast<std::int64_t>(best.cost));
            newCost = best.cost;
            current = std::move(best.expr);
        } catch (const std::exception &e) {
            noteDegrade(st, DegradeLevel::RoundFallback,
                        "round " + std::to_string(round.round) +
                            " failed (" + e.what() +
                            "); keeping the previous round's program");
            st.rounds.push_back(round);
            break;
        }

        // A cancelled round still extracted best-so-far above; now
        // stop iterating instead of burning more rounds.
        if (token && token->cancelled())
            break;
        if (newCost == oldCost)
            break;
        oldCost = newCost;
    }

    } // !config.speculation

    // Final phase: optimize the chosen vectorization. Failure keeps
    // the unoptimized (still valid) program.
    try {
        obs::Span optSpan("compile/optimize");
        EGraph eg;
        EClassId root = eg.addExpr(current);
        st.optimization = runEqSat(eg, optimization_, config.optLimits);
        st.ranOptimization = true;
        note("optimize", st.loopIterations, st.optimization);
        Extracted best = extractChecked(eg, root);
        st.finalCost = best.cost;
        current = std::move(best.expr);
    } catch (const std::exception &e) {
        noteDegrade(st, DegradeLevel::RoundFallback,
                    std::string("optimization phase failed (") + e.what() +
                        "); keeping the unoptimized program");
        st.finalCost = oldCost;
    }

    return current;
}

} // namespace isaria
