#include "compiler/report.h"

#include <cstdio>
#include <fstream>

#include "isa/machine_desc.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace isaria
{

namespace
{

std::string
boolJson(bool value)
{
    return value ? "true" : "false";
}

/** Seconds → integral nanoseconds (what the histograms record). */
std::uint64_t
secondsToNs(double seconds)
{
    if (seconds <= 0)
        return 0;
    return static_cast<std::uint64_t>(seconds * 1e9);
}

} // namespace

std::string
eqSatReportJson(const EqSatReport &r)
{
    std::string out = "{";
    out += "\"stop\":\"" + std::string(stopReasonName(r.stop)) + "\"";
    out += ",\"iterations\":" + std::to_string(r.iterations);
    out += ",\"nodes\":" + std::to_string(r.nodes);
    out += ",\"classes\":" + std::to_string(r.classes);
    out += ",\"bytes\":" + std::to_string(r.bytes);
    out += ",\"wall_ns\":" + std::to_string(secondsToNs(r.seconds));
    out += ",\"search_ns\":" + std::to_string(secondsToNs(r.searchSeconds));
    out += ",\"apply_ns\":" + std::to_string(secondsToNs(r.applySeconds));
    out += ",\"threads\":" + std::to_string(r.threads);
    out += ",\"step_budget_exhausted\":" + boolJson(r.stepBudgetExhausted);
    out += ",\"fault_injected\":" + boolJson(r.faultInjected);
    out += ",\"sched_bans\":" + std::to_string(r.schedBans);
    out += ",\"sched_skipped_searches\":" +
           std::to_string(r.schedSkippedSearches);
    out += ",\"sched_throttled_matches\":" +
           std::to_string(r.schedThrottledMatches);
    out += "}";
    return out;
}

std::string
CompileReport::toJson() const
{
    const CompileStats &st = stats;
    std::string out = "{";
    out += "\"schema_version\":" +
           std::to_string(kCompileReportSchemaVersion);
    out += ",\"kernel\":\"" + obs::jsonEscape(kernel) + "\"";
    out += ",\"target\":\"" + obs::jsonEscape(target) + "\"";
    out += ",\"wall_ns\":" + std::to_string(secondsToNs(st.seconds));
    out += ",\"initial_cost\":" + std::to_string(st.initialCost);
    out += ",\"final_cost\":" + std::to_string(st.finalCost);
    out += ",\"loop_iterations\":" + std::to_string(st.loopIterations);
    out += ",\"eqsat_calls\":" + std::to_string(st.eqsatCalls);
    out += ",\"peak_nodes\":" + std::to_string(st.peakNodes);
    out += ",\"ran_out_of_memory\":" + boolJson(st.ranOutOfMemory);
    out += ",\"memo_hit\":" + boolJson(st.memoHit);
    out += ",\"speculative_rollbacks\":" +
           std::to_string(st.speculativeRollbacks);
    out += ",\"degradation\":\"" +
           std::string(degradeLevelName(st.degradation)) + "\"";
    out += ",\"faults_injected\":" + std::to_string(st.faultsInjected);
    out += ",\"degrade_events\":[";
    for (std::size_t i = 0; i < st.degradeEvents.size(); ++i) {
        if (i)
            out += ',';
        out += "\"" + obs::jsonEscape(st.degradeEvents[i]) + "\"";
    }
    out += "]";
    out += ",\"rounds\":[";
    for (std::size_t i = 0; i < st.rounds.size(); ++i) {
        const RoundStats &round = st.rounds[i];
        if (i)
            out += ',';
        out += "{\"round\":" + std::to_string(round.round);
        out += ",\"ran_expansion\":" + boolJson(round.ranExpansion);
        if (round.ranExpansion)
            out += ",\"expansion\":" + eqSatReportJson(round.expansion);
        out += ",\"compilation\":" + eqSatReportJson(round.compilation);
        out +=
            ",\"extracted_cost\":" + std::to_string(round.extractedCost);
        out += "}";
    }
    out += "]";
    out += ",\"ran_optimization\":" + boolJson(st.ranOptimization);
    if (st.ranOptimization)
        out += ",\"optimization\":" + eqSatReportJson(st.optimization);
    out += ",\"metrics\":" + obs::metricsJson(obs::snapshotMetrics());
    out += "}";
    return out;
}

CompileReport
makeCompileReport(std::string kernel, const CompileStats &stats,
                  std::string target)
{
    CompileReport report;
    report.kernel = kernel.empty() ? "unknown" : std::move(kernel);
    report.target = target.empty() ? MachineDesc::fromEnv().name()
                                   : std::move(target);
    report.stats = stats;
    return report;
}

bool
writeCompileReport(const std::string &path, const CompileReport &report)
{
    std::string temp = path + ".tmp";
    {
        std::ofstream out(temp);
        if (!out) {
            std::fprintf(stderr,
                         "[report] cannot open report file: %s\n",
                         temp.c_str());
            return false;
        }
        out << report.toJson() << "\n";
        if (!out.good())
            return false;
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "[report] cannot publish report: %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

} // namespace isaria
