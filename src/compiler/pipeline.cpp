#include "compiler/pipeline.h"

namespace isaria
{

GeneratedCompiler
generateCompiler(const IsaSpec &isa, const SynthConfig &synthConfig,
                 const CompilerConfig &config)
{
    SynthReport synth = synthesizeRules(isa, synthConfig);
    PhasedRules phased = assignPhases(synth.rules, config.costModel);
    IsariaCompiler compiler(phased, config);
    return GeneratedCompiler{std::move(synth), std::move(phased),
                             std::move(compiler)};
}

} // namespace isaria
