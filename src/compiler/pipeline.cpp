#include "compiler/pipeline.h"

#include "obs/obs.h"

namespace isaria
{

namespace
{

GeneratedCompiler
assembleCompiler(SynthReport synth, const CompilerConfig &config)
{
    PhasedRules phased = assignPhases(synth.rules, config.costModel);
    obs::Span buildSpan("pipeline/build-compiler",
                        static_cast<std::int64_t>(phased.all.size()));
    IsariaCompiler compiler(phased, config);
    return GeneratedCompiler{std::move(synth), std::move(phased),
                             std::move(compiler)};
}

} // namespace

GeneratedCompiler
generateCompiler(const IsaSpec &isa, const SynthConfig &synthConfig,
                 const CompilerConfig &config)
{
    obs::Span pipelineSpan("pipeline/generate");
    return assembleCompiler(synthesizeRules(isa, synthConfig), config);
}

GeneratedCompiler
generateCompiler(const IsaSpec &isa, const RuleCache &cache,
                 const SynthConfig &synthConfig,
                 const CompilerConfig &config)
{
    obs::Span pipelineSpan("pipeline/generate");
    return assembleCompiler(
        synthesizeRulesCached(isa, synthConfig, cache), config);
}

SynthConfig
synthConfigFor(const MachineDesc &machine)
{
    SynthConfig config;
    config.costParams = machine.cost;
    return config;
}

CompilerConfig
compilerConfigFor(const MachineDesc &machine)
{
    CompilerConfig config;
    config.costModel = DspCostModel(machine.cost);
    return config;
}

} // namespace isaria
