#include "compiler/pipeline.h"

#include "obs/obs.h"

namespace isaria
{

GeneratedCompiler
generateCompiler(const IsaSpec &isa, const SynthConfig &synthConfig,
                 const CompilerConfig &config)
{
    obs::Span pipelineSpan("pipeline/generate");
    SynthReport synth = synthesizeRules(isa, synthConfig);
    PhasedRules phased = assignPhases(synth.rules, config.costModel);
    obs::Span buildSpan("pipeline/build-compiler",
                        static_cast<std::int64_t>(phased.all.size()));
    IsariaCompiler compiler(phased, config);
    return GeneratedCompiler{std::move(synth), std::move(phased),
                             std::move(compiler)};
}

} // namespace isaria
