#ifndef ISARIA_COMPILER_PIPELINE_H
#define ISARIA_COMPILER_PIPELINE_H

/**
 * @file
 * The end-to-end offline pipeline of Fig. 2: ISA specification + cost
 * model in, vectorizing compiler out.
 */

#include "cache/rule_cache.h"
#include "compiler/compiler.h"
#include "synth/synthesize.h"

namespace isaria
{

/** Everything the offline stage produced. */
struct GeneratedCompiler
{
    SynthReport synth;
    PhasedRules phased;
    IsariaCompiler compiler;
};

/**
 * Runs rule synthesis and phase discovery for @p isa and assembles
 * the compile-time scheduler — the whole "offline compiler
 * generation" half of Fig. 2.
 */
GeneratedCompiler generateCompiler(const IsaSpec &isa,
                                   const SynthConfig &synthConfig = {},
                                   const CompilerConfig &config = {});

/**
 * Cache-aware offline stage: rule synthesis goes through @p cache
 * (see synthesizeRulesCached), so an unchanged configuration skips
 * enumeration and verification entirely on a warm cache. Phase
 * assignment is always recomputed under config.costModel — it is
 * cheap, and the compiler's thresholds may differ from the
 * fingerprinted synthesis cost parameters.
 */
GeneratedCompiler generateCompiler(const IsaSpec &isa,
                                   const RuleCache &cache,
                                   const SynthConfig &synthConfig = {},
                                   const CompilerConfig &config = {});

/**
 * A SynthConfig whose cost parameters (shortcut detection,
 * alpha/beta) come from @p machine's cost table instead of the
 * default-constructed one. Start from this when retargeting; every
 * other knob keeps its default and stays caller-tunable.
 */
SynthConfig synthConfigFor(const MachineDesc &machine);

/**
 * A CompilerConfig whose cost model (extraction, improvement test,
 * phase thresholds) is @p machine's. The machine-honest counterpart
 * of CompilerConfig{} for non-default targets.
 */
CompilerConfig compilerConfigFor(const MachineDesc &machine);

} // namespace isaria

#endif // ISARIA_COMPILER_PIPELINE_H
