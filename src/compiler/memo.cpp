#include "compiler/memo.h"

#include "support/panic.h"

namespace isaria
{

std::optional<CompileMemo::Entry>
CompileMemo::lookup(const RecExpr &program) const
{
    if (!enabled())
        return std::nullopt;
    std::size_t h = program.treeHash();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(h);
    if (it != table_.end()) {
        for (const Slot &slot : it->second) {
            if (slot.program.equalTree(program)) {
                ++stats_.hits;
                return slot.entry;
            }
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

void
CompileMemo::store(const RecExpr &program, Entry entry)
{
    if (!enabled())
        return;
    std::size_t h = program.treeHash();
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Slot> &chain = table_[h];
    for (const Slot &slot : chain) {
        if (slot.program.equalTree(program))
            return; // first result wins; keep stats monotone
    }
    chain.push_back(Slot{program, std::move(entry)});
    order_.push_back(h);
    ++stats_.insertions;
    while (order_.size() > maxEntries_) {
        std::size_t victim = order_.front();
        order_.pop_front();
        auto vit = table_.find(victim);
        ISARIA_ASSERT(vit != table_.end() && !vit->second.empty(),
                      "memo eviction order out of sync");
        vit->second.erase(vit->second.begin());
        if (vit->second.empty())
            table_.erase(vit);
        ++stats_.evictions;
    }
}

CompileMemo::Stats
CompileMemo::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CompileMemo::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    table_.clear();
    order_.clear();
}

} // namespace isaria
