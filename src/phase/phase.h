#ifndef ISARIA_PHASE_PHASE_H
#define ISARIA_PHASE_PHASE_H

/**
 * @file
 * Cost-based phase discovery (Section 3.2).
 *
 * Every synthesized rule P ~> Q is scored by two metrics computed from
 * the abstract cost model (wildcards cost one leaf):
 *
 *   cost differential  CD = C(P) - C(Q)   (Definition 3)
 *   aggregate cost     CA = C(P) + C(Q)   (Definition 4)
 *
 * Rules with CD > alpha are *compilation* rules (they lower scalar
 * work onto vector instructions); of the rest, CA > beta marks
 * *expansion* rules (scalar-side exploration) and CA <= beta marks
 * *optimization* rules (vector-side cleanup).
 */

#include <string>
#include <vector>

#include "isa/cost_model.h"
#include "synth/ruleset.h"

namespace isaria
{

/** The three rule phases of Section 3.2. */
enum class Phase
{
    Expansion,
    Compilation,
    Optimization,
};

const char *phaseName(Phase phase);

/** A rule with its phase assignment and the metrics that drove it. */
struct PhasedRule
{
    Rule rule;
    Phase phase;
    std::int64_t costDifferential;
    std::int64_t aggregateCost;
};

/** A full rule system organized by phase. */
struct PhasedRules
{
    std::vector<PhasedRule> all;

    /** Rules of one phase, in input order. */
    std::vector<Rule> ofPhase(Phase phase) const;

    std::size_t countOf(Phase phase) const;

    /** CSV rows "name,phase,aggregate,differential" (Figure 8 data). */
    std::string toCsv() const;
};

/** Scores and phases every rule of @p rules under @p cost. */
PhasedRules assignPhases(const RuleSet &rules, const DspCostModel &cost);

/** Phase of a single rule under @p cost. */
Phase phaseOf(const Rule &rule, const DspCostModel &cost);

} // namespace isaria

#endif // ISARIA_PHASE_PHASE_H
