#include "phase/phase.h"

#include "obs/obs.h"

namespace isaria
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Expansion: return "expansion";
      case Phase::Compilation: return "compilation";
      case Phase::Optimization: return "optimization";
    }
    return "?";
}

namespace
{

PhasedRule
scoreRule(const Rule &rule, const DspCostModel &cost)
{
    auto lhs = static_cast<std::int64_t>(cost.exprCost(rule.lhs));
    auto rhs = static_cast<std::int64_t>(cost.exprCost(rule.rhs));
    PhasedRule out;
    out.rule = rule;
    out.costDifferential = lhs - rhs;
    out.aggregateCost = lhs + rhs;
    const CostParams &p = cost.params();
    if (out.costDifferential > p.alpha)
        out.phase = Phase::Compilation;
    else if (out.aggregateCost > p.beta)
        out.phase = Phase::Expansion;
    else
        out.phase = Phase::Optimization;
    return out;
}

} // namespace

std::vector<Rule>
PhasedRules::ofPhase(Phase phase) const
{
    std::vector<Rule> out;
    for (const PhasedRule &pr : all) {
        if (pr.phase == phase)
            out.push_back(pr.rule);
    }
    return out;
}

std::size_t
PhasedRules::countOf(Phase phase) const
{
    std::size_t count = 0;
    for (const PhasedRule &pr : all)
        count += pr.phase == phase;
    return count;
}

std::string
PhasedRules::toCsv() const
{
    std::string out = "name,phase,aggregate_cost,cost_differential\n";
    for (const PhasedRule &pr : all) {
        out += pr.rule.name;
        out += ',';
        out += phaseName(pr.phase);
        out += ',';
        out += std::to_string(pr.aggregateCost);
        out += ',';
        out += std::to_string(pr.costDifferential);
        out += '\n';
    }
    return out;
}

PhasedRules
assignPhases(const RuleSet &rules, const DspCostModel &cost)
{
    obs::Span span("phase/assign",
                   static_cast<std::int64_t>(rules.size()));
    PhasedRules out;
    out.all.reserve(rules.size());
    for (const Rule &rule : rules.rules())
        out.all.push_back(scoreRule(rule, cost));
    if (obs::enabled()) {
        for (Phase phase : {Phase::Expansion, Phase::Compilation,
                            Phase::Optimization}) {
            obs::counter(
                (std::string("phase/") + phaseName(phase)).c_str(),
                static_cast<std::int64_t>(out.countOf(phase)));
        }
    }
    return out;
}

Phase
phaseOf(const Rule &rule, const DspCostModel &cost)
{
    return scoreRule(rule, cost).phase;
}

} // namespace isaria
