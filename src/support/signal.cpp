#include "support/signal.h"

#include <atomic>

namespace isaria
{

namespace
{

/** Written from the signal handler; sig_atomic_t per POSIX. */
volatile std::sig_atomic_t lastSignal = 0;

/** True once the handler ran at least once (second signal = hard
 *  exit; see installProcessSignalHandlers doc). */
std::atomic<bool> shutdownRequested{false};

void
shutdownHandler(int signum)
{
    if (shutdownRequested.exchange(true, std::memory_order_acq_rel)) {
        // Second request: the graceful path is stuck or the operator
        // is insisting. Restore the default disposition and re-raise
        // so the process dies with the conventional signal status.
        std::signal(signum, SIG_DFL);
        std::raise(signum);
        return;
    }
    lastSignal = signum;
    processShutdownToken().cancel();
}

} // namespace

CancellationToken &
processShutdownToken()
{
    static CancellationToken token;
    return token;
}

void
installProcessSignalHandlers()
{
    static const bool installed = [] {
        // Touch the token before any handler can fire so the
        // function-local static is constructed outside signal context.
        processShutdownToken();
        std::signal(SIGPIPE, SIG_IGN);
        std::signal(SIGTERM, shutdownHandler);
        std::signal(SIGINT, shutdownHandler);
        return true;
    }();
    (void)installed;
}

int
lastShutdownSignal()
{
    return static_cast<int>(lastSignal);
}

void
resetProcessShutdownForTests()
{
    processShutdownToken().reset();
    shutdownRequested.store(false, std::memory_order_release);
    lastSignal = 0;
}

} // namespace isaria
