#include "support/interner.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "support/panic.h"

namespace isaria
{

namespace
{

struct InternTable
{
    std::mutex mutex;
    std::unordered_map<std::string, SymbolId> byName;
    /** A deque, not a vector: symbolName hands out references into
     *  this container that callers hold after the lock is released,
     *  so growth must never relocate existing strings. */
    std::deque<std::string> names;
};

InternTable &
table()
{
    static InternTable instance;
    return instance;
}

} // namespace

SymbolId
internSymbol(std::string_view name)
{
    auto &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    auto it = t.byName.find(std::string(name));
    if (it != t.byName.end())
        return it->second;
    auto id = static_cast<SymbolId>(t.names.size());
    t.names.emplace_back(name);
    t.byName.emplace(t.names.back(), id);
    return id;
}

const std::string &
symbolName(SymbolId id)
{
    auto &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    ISARIA_ASSERT(id < t.names.size(), "unknown symbol id");
    return t.names[id];
}

std::size_t
internedSymbolCount()
{
    auto &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    return t.names.size();
}

} // namespace isaria
