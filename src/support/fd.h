#ifndef ISARIA_SUPPORT_FD_H
#define ISARIA_SUPPORT_FD_H

/**
 * @file
 * RAII ownership for POSIX file descriptors.
 *
 * The serve daemon juggles a listener socket plus one descriptor per
 * connection across accept, worker, and monitor threads; every early
 * return on a malformed frame or a mid-request fault must still close
 * the descriptor. UniqueFd is the one owner: move-only, closes on
 * destruction, and survives double-close-free refactoring the way a
 * unique_ptr does.
 */

#include <unistd.h>

#include <utility>

namespace isaria
{

/** Move-only owner of one file descriptor (-1 = empty). */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}

    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    UniqueFd(UniqueFd &&other) noexcept
        : fd_(std::exchange(other.fd_, -1))
    {}

    UniqueFd &
    operator=(UniqueFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }

    ~UniqueFd() { reset(); }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    explicit operator bool() const { return valid(); }

    /** Closes the held descriptor (if any) and adopts @p fd. */
    void
    reset(int fd = -1)
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = fd;
    }

    /** Releases ownership without closing. */
    int release() { return std::exchange(fd_, -1); }

  private:
    int fd_ = -1;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_FD_H
