#ifndef ISARIA_SUPPORT_SIGNAL_H
#define ISARIA_SUPPORT_SIGNAL_H

/**
 * @file
 * Process-wide signal handling for the CLI tools and the daemon.
 *
 * Two behaviors every long-lived Isaria binary wants:
 *
 * 1. **SIGPIPE is ignored.** A client that hangs up mid-response must
 *    surface as an EPIPE write error the serving code can absorb, not
 *    as a process kill — the default SIGPIPE disposition would take
 *    the whole daemon down with one disconnecting socket.
 * 2. **SIGTERM / SIGINT trip a global CancellationToken** instead of
 *    killing the process outright. CancellationToken::cancel() is one
 *    atomic store, so it is async-signal-safe; every budgeted phase
 *    already polls its token, which means Ctrl-C mid-compile walks
 *    the graceful-degradation ladder (best-so-far extraction) and the
 *    daemon gets a drain window (stop accepting, finish or cancel
 *    in-flight work, flush a final metrics snapshot).
 *
 * guardedMain (support/panic.h) installs these handlers for every
 * binary; installation is idempotent and keeps the first registration.
 */

#include <csignal>

#include "support/cancel.h"

namespace isaria
{

/**
 * The token SIGTERM/SIGINT cancel. Long-running work that should be
 * interruptible by Ctrl-C threads this into its CompilerConfig /
 * EqSatLimits; the serve daemon watches it to begin draining.
 */
CancellationToken &processShutdownToken();

/**
 * Ignores SIGPIPE and routes SIGTERM/SIGINT to processShutdownToken()
 * (idempotent; the first call installs, later calls are no-ops).
 * A second SIGTERM/SIGINT after the token has already fired restores
 * the default disposition and re-raises, so a wedged process can
 * still be killed by pressing Ctrl-C twice.
 */
void installProcessSignalHandlers();

/** The last shutdown signal received (0 when none fired yet). */
int lastShutdownSignal();

/** Test hook: re-arms the token and clears the last-signal record.
 *  Not for production code — the handlers stay installed. */
void resetProcessShutdownForTests();

} // namespace isaria

#endif // ISARIA_SUPPORT_SIGNAL_H
