#ifndef ISARIA_SUPPORT_RESULT_H
#define ISARIA_SUPPORT_RESULT_H

/**
 * @file
 * Structured, recoverable errors for module boundaries.
 *
 * The compile loop is budgeted (per-phase timeouts, node and byte
 * ceilings), so running out of a resource — or being handed a
 * malformed rules file — is an *expected* outcome, not a process
 * abort. Library boundaries (rule loading, lowering, the pipeline)
 * report such outcomes as a Result<T>: either a value or an Error
 * diagnostic the caller can degrade around.
 *
 * ISARIA_PANIC (internal invariant violated) still aborts; only user-
 * facing failures travel through this type or the FatalError
 * exception it pairs with (support/panic.h).
 */

#include <optional>
#include <string>
#include <utility>

#include "support/panic.h"

namespace isaria
{

/** A recoverable diagnostic: what failed and (optionally) where. */
struct Error
{
    std::string message;
    /** 1-based line of the offending input, or 0 when not line-keyed. */
    int line = 0;

    /** "line N: message" when line-keyed, else just the message. */
    std::string
    toString() const
    {
        if (line > 0)
            return "line " + std::to_string(line) + ": " + message;
        return message;
    }
};

/** Either a T or an Error. */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The value; asserts ok(). */
    T &
    value()
    {
        ISARIA_ASSERT(ok(), "Result::value() on an error");
        return *value_;
    }
    const T &
    value() const
    {
        ISARIA_ASSERT(ok(), "Result::value() on an error");
        return *value_;
    }

    /** The diagnostic; asserts !ok(). */
    const Error &
    error() const
    {
        ISARIA_ASSERT(!ok(), "Result::error() on a value");
        return error_;
    }

    /** Moves the value out; asserts ok(). */
    T
    take()
    {
        ISARIA_ASSERT(ok(), "Result::take() on an error");
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Error error_;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_RESULT_H
