#include "support/fault.h"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/hash.h"

namespace isaria
{

namespace
{

/** Process-wide armed plan + per-site arrival counters. */
struct FaultState
{
    /** Fast-path gate: false means every check is one load. */
    std::atomic<bool> armed{false};
    FaultPlan plan;
    std::atomic<std::uint64_t> arrivals[kNumFaultSites];
};

FaultState &
state()
{
    static FaultState s;
    return s;
}

/** Arms the plan from ISARIA_FAULT exactly once, if present. */
void
initFromEnvOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("ISARIA_FAULT");
        if (!env || !*env)
            return;
        auto parsed = FaultPlan::parse(env);
        if (!parsed.ok()) {
            std::fprintf(stderr,
                         "warning: ignoring malformed ISARIA_FAULT: %s\n",
                         parsed.error().toString().c_str());
            return;
        }
        setFaultPlan(parsed.value());
    });
}

bool
parseU64(std::string_view text, std::uint64_t &out)
{
    auto res = std::from_chars(text.data(), text.data() + text.size(), out);
    return res.ec == std::errc() && res.ptr == text.data() + text.size();
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::EGraphAlloc: return "egraph-alloc";
      case FaultSite::ShardSearch: return "shard-search";
      case FaultSite::Rebuild: return "rebuild";
      case FaultSite::SynthVerify: return "synth-verify";
      case FaultSite::RuleParse: return "rule-parse";
      case FaultSite::SnapshotRestore: return "egraph-snapshot-restore";
      case FaultSite::EGraphMetrics: return "egraph-metrics";
      case FaultSite::NumSites: break;
    }
    return "?";
}

std::optional<FaultSite>
faultSiteFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        if (name == faultSiteName(site))
            return site;
    }
    return std::nullopt;
}

FaultInjected::FaultInjected(FaultSite site)
    : site_(site),
      message_(std::string("injected fault at ") + faultSiteName(site))
{}

Result<FaultPlan>
FaultPlan::parse(std::string_view spec)
{
    FaultPlan plan;
    while (!spec.empty()) {
        std::size_t comma = spec.find(',');
        std::string_view item = spec.substr(0, comma);
        spec = comma == std::string_view::npos ? std::string_view{}
                                               : spec.substr(comma + 1);
        if (item.empty())
            continue;

        std::size_t colon = item.find(':');
        if (colon == std::string_view::npos)
            return Error{"fault spec missing ':' in '" +
                         std::string(item) + "'"};
        auto site = faultSiteFromName(item.substr(0, colon));
        if (!site)
            return Error{"unknown fault site '" +
                         std::string(item.substr(0, colon)) + "'"};

        SiteSpec &out = plan.sites[static_cast<std::size_t>(*site)];
        std::string_view trigger = item.substr(colon + 1);
        std::size_t slash = trigger.find('/');
        if (slash == std::string_view::npos) {
            // One-shot ordinal: "site:N".
            std::uint64_t n = 0;
            if (!parseU64(trigger, n) || n == 0)
                return Error{"bad fault ordinal '" +
                             std::string(trigger) + "' (want N >= 1)"};
            out.armed = true;
            out.ordinal = n;
            continue;
        }
        // Seeded coin: "site:N/D@SEED".
        std::size_t at = trigger.find('@', slash);
        if (at == std::string_view::npos)
            return Error{"seeded fault spec missing '@SEED' in '" +
                         std::string(trigger) + "'"};
        std::uint64_t numer = 0, denom = 0, seed = 0;
        if (!parseU64(trigger.substr(0, slash), numer) ||
            !parseU64(trigger.substr(slash + 1, at - slash - 1), denom) ||
            !parseU64(trigger.substr(at + 1), seed) || denom == 0) {
            return Error{"bad seeded fault spec '" + std::string(trigger) +
                         "' (want N/D@SEED with D >= 1)"};
        }
        out.armed = true;
        out.numer = numer;
        out.denom = denom;
        out.seed = seed;
    }
    return plan;
}

void
setFaultPlan(const FaultPlan &plan)
{
    FaultState &s = state();
    s.plan = plan;
    bool any = false;
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        s.arrivals[i].store(0, std::memory_order_relaxed);
        any |= plan.sites[i].armed;
    }
    s.armed.store(any, std::memory_order_release);
}

void
clearFaultPlan()
{
    setFaultPlan(FaultPlan{});
}

bool
faultPlanActive()
{
    initFromEnvOnce();
    return state().armed.load(std::memory_order_acquire);
}

bool
faultShouldFire(FaultSite site)
{
    FaultState &s = state();
    if (!s.armed.load(std::memory_order_relaxed)) {
        // One extra acquire load the first few times, until the env
        // plan (if any) is armed.
        initFromEnvOnce();
        if (!s.armed.load(std::memory_order_acquire))
            return false;
    }
    std::size_t index = static_cast<std::size_t>(site);
    const FaultPlan::SiteSpec &spec = s.plan.sites[index];
    if (!spec.armed)
        return false;
    // Arrival ordinals are 1-based: exactly one thread observes each.
    std::uint64_t n =
        s.arrivals[index].fetch_add(1, std::memory_order_relaxed) + 1;
    if (spec.ordinal != 0)
        return n == spec.ordinal;
    return hashMix(spec.seed ^ n) % spec.denom < spec.numer;
}

} // namespace isaria
