#ifndef ISARIA_SUPPORT_RNG_H
#define ISARIA_SUPPORT_RNG_H

/**
 * @file
 * Deterministic splitmix64 random-number generator.
 *
 * All randomized pieces of Isaria (fingerprint environments, sampling
 * verification) must be reproducible run to run, so they take an
 * explicitly seeded Rng rather than touching global state.
 */

#include <cstdint>

#include "support/hash.h"

namespace isaria
{

/** Small, fast, deterministic RNG (splitmix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        return hashMix(state_);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform signed value in [lo, hi] inclusive. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    std::uint64_t state_;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_RNG_H
