#ifndef ISARIA_SUPPORT_TIMER_H
#define ISARIA_SUPPORT_TIMER_H

/**
 * @file
 * Wall-clock stopwatch and deadline helpers.
 *
 * Equality saturation and rule synthesis are budgeted by wall-clock
 * deadlines (the paper's per-EqSat timeout and offline timeout), so a
 * lightweight monotonic-clock wrapper is used throughout.
 */

#include <chrono>

namespace isaria
{

/** Monotonic stopwatch started at construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Elapsed seconds since construction or last reset. */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    void reset() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * A wall-clock budget. A non-positive budget means "unlimited".
 */
class Deadline
{
  public:
    /** Creates a deadline @p seconds from now (<= 0 for unlimited). */
    explicit Deadline(double seconds)
        : limited_(seconds > 0), budget_(seconds)
    {}

    static Deadline unlimited() { return Deadline(0); }

    bool
    expired() const
    {
        return limited_ && watch_.elapsedSeconds() >= budget_;
    }

    /** Seconds remaining (a large value when unlimited). */
    double
    remainingSeconds() const
    {
        if (!limited_)
            return 1e18;
        return budget_ - watch_.elapsedSeconds();
    }

  private:
    bool limited_;
    double budget_;
    Stopwatch watch_;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_TIMER_H
