#include "support/rational.h"

#include <cmath>
#include <numeric>

#include "support/panic.h"

namespace isaria
{

namespace
{

/** Checked multiply; returns false on overflow. */
bool
mulOk(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    return !__builtin_mul_overflow(a, b, &out);
}

/** Checked add; returns false on overflow. */
bool
addOk(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    return !__builtin_add_overflow(a, b, &out);
}

/** Integer square root when n is a perfect square, else -1. */
std::int64_t
perfectSqrt(std::int64_t n)
{
    if (n < 0)
        return -1;
    auto root = static_cast<std::int64_t>(std::llround(std::sqrt(
        static_cast<double>(n))));
    for (std::int64_t r = std::max<std::int64_t>(0, root - 2);
         r <= root + 2; ++r) {
        std::int64_t sq;
        if (mulOk(r, r, sq) && sq == n)
            return r;
    }
    return -1;
}

} // namespace

Rational
Rational::make(std::int64_t num, std::int64_t den)
{
    if (den == 0)
        return invalid();
    if (num == INT64_MIN || den == INT64_MIN)
        return invalid(); // |INT64_MIN| is not representable
    if (den < 0) {
        num = -num;
        den = -den;
    }
    std::int64_t g = std::gcd(num < 0 ? -num : num, den);
    if (g > 1) {
        num /= g;
        den /= g;
    }
    return Rational(num, den, true);
}

Rational
Rational::invalid()
{
    return Rational(0, 0, false);
}

Rational
Rational::operator+(const Rational &other) const
{
    if (!valid_ || !other.valid_)
        return invalid();
    // a/b + c/d = (a*d + c*b) / (b*d)
    std::int64_t ad, cb, sum, bd;
    if (!mulOk(num_, other.den_, ad) || !mulOk(other.num_, den_, cb) ||
        !addOk(ad, cb, sum) || !mulOk(den_, other.den_, bd)) {
        return invalid();
    }
    return make(sum, bd);
}

Rational
Rational::operator-(const Rational &other) const
{
    return *this + (-other);
}

Rational
Rational::operator*(const Rational &other) const
{
    if (!valid_ || !other.valid_)
        return invalid();
    // Cross-reduce first to keep intermediates small.
    std::int64_t a = num_, b = den_, c = other.num_, d = other.den_;
    std::int64_t g1 = std::gcd(a < 0 ? -a : a, d);
    std::int64_t g2 = std::gcd(c < 0 ? -c : c, b);
    if (g1 > 1) { a /= g1; d /= g1; }
    if (g2 > 1) { c /= g2; b /= g2; }
    std::int64_t n, m;
    if (!mulOk(a, c, n) || !mulOk(b, d, m))
        return invalid();
    return make(n, m);
}

Rational
Rational::operator/(const Rational &other) const
{
    if (!valid_ || !other.valid_ || other.num_ == 0)
        return invalid();
    return *this * make(other.den_, other.num_);
}

Rational
Rational::operator-() const
{
    if (!valid_)
        return invalid();
    if (num_ == INT64_MIN)
        return invalid();
    return Rational(-num_, den_, true);
}

Rational
Rational::sgn() const
{
    if (!valid_)
        return invalid();
    return Rational(num_ > 0 ? 1 : num_ < 0 ? -1 : 0);
}

Rational
Rational::sqrt() const
{
    if (!valid_ || num_ < 0)
        return invalid();
    std::int64_t rn = perfectSqrt(num_);
    std::int64_t rd = perfectSqrt(den_);
    if (rn < 0 || rd < 0)
        return invalid();
    return make(rn, rd);
}

bool
Rational::operator==(const Rational &other) const
{
    if (!valid_ || !other.valid_)
        return false;
    return num_ == other.num_ && den_ == other.den_;
}

bool
Rational::operator<(const Rational &other) const
{
    ISARIA_ASSERT(valid_ && other.valid_, "ordering undefined rationals");
    // a/b < c/d  <=>  a*d < c*b   (b, d > 0). Use wide arithmetic.
    return static_cast<__int128>(num_) * other.den_ <
           static_cast<__int128>(other.num_) * den_;
}

double
Rational::toDouble() const
{
    if (!valid_)
        return std::nan("");
    return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string
Rational::toString() const
{
    if (!valid_)
        return "#undef";
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

std::size_t
Rational::hash() const
{
    if (!valid_)
        return 0x9e3779b97f4a7c15ull;
    std::size_t h = std::hash<std::int64_t>{}(num_);
    h ^= std::hash<std::int64_t>{}(den_) + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
}

} // namespace isaria
