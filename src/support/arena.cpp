#include "support/arena.h"

namespace isaria
{

void *
Arena::allocateSlow(std::size_t bytes, std::size_t align)
{
    // Walk forward through chunks retained by an earlier release();
    // they are empty (used == 0) and may satisfy the request without
    // touching the heap.
    while (active_ + 1 < chunks_.size()) {
        ++active_;
        Chunk &chunk = chunks_[active_];
        std::size_t at = (chunk.used + align - 1) & ~(align - 1);
        if (at + bytes <= chunk.capacity) {
            chunk.used = at + bytes;
            bytesAllocated_ += bytes;
            ++allocations_;
            return chunk.data.get() + at;
        }
        // Too small for this request; skip it (it stays empty and is
        // revisited after the next release).
    }

    // Fresh chunk: geometric growth from kMin to kMax, or a dedicated
    // chunk when a single request is larger than kMax. The chunk base
    // comes from operator new[], so it satisfies any fundamental
    // alignment without an offset (allocate() already rejected
    // over-aligned requests).
    std::size_t capacity = kMinChunkBytes;
    if (!chunks_.empty()) {
        std::size_t last = chunks_.back().capacity;
        capacity = last >= kMaxChunkBytes ? kMaxChunkBytes : last * 2;
    }
    if (bytes + align > capacity)
        capacity = bytes + align;

    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(capacity);
    chunk.capacity = capacity;
    chunk.used = bytes;
    ++chunkAllocations_;
    chunks_.push_back(std::move(chunk));
    active_ = chunks_.size() - 1;
    bytesAllocated_ += bytes;
    ++allocations_;
    return chunks_.back().data.get();
}

} // namespace isaria
