#ifndef ISARIA_SUPPORT_PANIC_H
#define ISARIA_SUPPORT_PANIC_H

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for conditions that indicate a bug in Isaria itself: it
 * aborts, because no caller can meaningfully continue past a broken
 * invariant. fatal() is for user errors (bad configuration, malformed
 * input): it throws FatalError, so library callers can catch it at a
 * module boundary, convert it to a Result diagnostic, and degrade
 * instead of killing the process. Binaries wrap main in guardedMain()
 * (below) to turn an uncaught FatalError into a clean exit(1).
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

namespace isaria
{

/**
 * A recoverable user-facing failure (malformed input, impossible
 * request). Thrown by ISARIA_FATAL; catch it at module boundaries.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string message)
        : message_(std::move(message))
    {}

    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    throw FatalError(std::string(file) + ":" + std::to_string(line) +
                     ": " + msg);
}

/** Installs the process-wide signal policy (SIGPIPE ignored,
 *  SIGTERM/SIGINT trip processShutdownToken); see support/signal.h.
 *  Declared here so guardedMain can call it without pulling the
 *  signal header into every translation unit. */
void installProcessSignalHandlers();

/**
 * Runs @p body, turning an escaped FatalError (or any stray
 * exception) into a diagnostic plus nonzero exit instead of a
 * std::terminate abort. Every CLI main wraps itself in this. Also
 * installs the default signal handlers first, so a disconnecting
 * pipe never kills a tool and Ctrl-C cancels through the graceful-
 * degradation ladder instead of skipping it.
 */
template <typename Body>
int
guardedMain(Body &&body)
{
    try {
        installProcessSignalHandlers();
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}

} // namespace isaria

/** Abort with a message: an internal invariant was violated. */
#define ISARIA_PANIC(msg) ::isaria::panicImpl(__FILE__, __LINE__, (msg))

/** Throw FatalError: the user supplied an impossible request. */
#define ISARIA_FATAL(msg) ::isaria::fatalImpl(__FILE__, __LINE__, (msg))

/** Cheap always-on assertion used at module boundaries. */
#define ISARIA_ASSERT(cond, msg)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ISARIA_PANIC(msg);                                              \
    } while (0)

#endif // ISARIA_SUPPORT_PANIC_H
