#ifndef ISARIA_SUPPORT_PANIC_H
#define ISARIA_SUPPORT_PANIC_H

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for conditions that indicate a bug in Isaria itself;
 * fatal() is for user errors (bad configuration, malformed input).
 */

#include <cstdio>
#include <cstdlib>

namespace isaria
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace isaria

/** Abort with a message: an internal invariant was violated. */
#define ISARIA_PANIC(msg) ::isaria::panicImpl(__FILE__, __LINE__, (msg))

/** Exit with a message: the user supplied an impossible request. */
#define ISARIA_FATAL(msg) ::isaria::fatalImpl(__FILE__, __LINE__, (msg))

/** Cheap always-on assertion used at module boundaries. */
#define ISARIA_ASSERT(cond, msg)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ISARIA_PANIC(msg);                                              \
    } while (0)

#endif // ISARIA_SUPPORT_PANIC_H
