#ifndef ISARIA_SUPPORT_THREAD_POOL_H
#define ISARIA_SUPPORT_THREAD_POOL_H

/**
 * @file
 * A small work-stealing thread pool for read-only fan-out phases.
 *
 * The equality-saturation search phase is embarrassingly parallel: the
 * e-graph is frozen, every (rule, class-shard) task only reads it and
 * writes a private match buffer. The pool is sized once and reused
 * across saturation iterations; the calling thread participates as
 * worker 0, so a pool of size 1 runs entirely inline (no threads are
 * ever spawned) and is the sequential legacy path.
 *
 * Scheduling is range-splitting work stealing: the task index space
 * [0, n) is carved into one contiguous chunk per worker, each worker
 * pops from the front of its own chunk, and an idle worker steals the
 * back half of the largest remaining chunk. Both ends are claimed via
 * compare-and-swap on a packed (begin, end) word, so the pool is
 * TSan-clean by construction.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace isaria
{

class ThreadPool
{
  public:
    /**
     * Creates a pool that runs tasks on @p threads workers in total,
     * including the caller; @p threads - 1 OS threads are spawned.
     * @p threads < 1 is treated as 1.
     */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Total workers, including the calling thread. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Runs fn(taskIndex) for every index in [0, numTasks), distributed
     * over the pool, and returns once all calls have completed. The
     * caller executes tasks too. @p fn must not throw and may be
     * invoked concurrently from different threads (with distinct task
     * indices). Not reentrant: do not call parallelFor from inside a
     * task.
     */
    void parallelFor(std::size_t numTasks,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Thread count requested by the environment: ISARIA_EQSAT_THREADS
     * when set to a positive integer, otherwise hardware_concurrency
     * (at least 1).
     */
    static unsigned defaultThreads();

  private:
    /** Packed half-open task range; begin in the low 32 bits. */
    using PackedRange = std::uint64_t;

    static PackedRange
    pack(std::uint32_t begin, std::uint32_t end)
    {
        return (static_cast<std::uint64_t>(end) << 32) | begin;
    }
    static std::uint32_t unpackBegin(PackedRange r)
    {
        return static_cast<std::uint32_t>(r);
    }
    static std::uint32_t unpackEnd(PackedRange r)
    {
        return static_cast<std::uint32_t>(r >> 32);
    }

    void workerLoop(std::size_t worker);
    void runTasks(std::size_t worker);
    /** Claims one task index; false when all chunks are empty. */
    bool claimTask(std::size_t worker, std::uint32_t &task);

    std::vector<std::thread> workers_;
    /** One remaining-task chunk per worker. */
    std::vector<std::atomic<PackedRange>> chunks_;
    const std::function<void(std::size_t)> *fn_ = nullptr;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Incremented per parallelFor; workers sleep between jobs. */
    std::uint64_t generation_ = 0;
    /** Tasks not yet finished in the current job. */
    std::atomic<std::size_t> pending_{0};
    /** Workers currently inside runTasks (guarded by mutex_). */
    std::size_t activeWorkers_ = 0;
    bool stopping_ = false;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_THREAD_POOL_H
