#ifndef ISARIA_SUPPORT_FAULT_H
#define ISARIA_SUPPORT_FAULT_H

/**
 * @file
 * Deterministic fault injection for chaos-testing the pipeline.
 *
 * Every recoverable failure path in Isaria — e-graph allocation
 * refusing memory, a search shard dying, rebuild failing, the
 * synthesis verifier erroring, a rules file failing to parse — has a
 * named *injection site*. A FaultPlan arms some sites so that chosen
 * arrivals fail, which is how the chaos tests prove each stage
 * degrades cleanly instead of aborting.
 *
 * Triggering is deterministic. Each site keeps an atomic arrival
 * counter; a spec either names one arrival ordinal ("the n-th hit
 * fails") or a seeded per-arrival coin ("each hit fails with
 * probability p, decided by hashing seed ^ ordinal"), so a plan
 * produces the same failures run after run — and, because the effect
 * of a fired fault is always "abandon this phase deterministically",
 * the same degraded output at any thread count.
 *
 * Spec grammar (ISARIA_FAULT environment variable or --fault):
 *
 *   plan  := spec (',' spec)*
 *   spec  := site ':' N            // the N-th arrival fails (1-based)
 *          | site ':' N '/' D '@' SEED   // each arrival fails iff
 *                                        // hash(SEED^ordinal) % D < N
 *   site  := egraph-alloc | shard-search | rebuild
 *          | synth-verify | rule-parse | egraph-snapshot-restore
 *          | egraph-metrics
 *
 * The disabled path costs one relaxed atomic load per site check.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/panic.h"
#include "support/result.h"

namespace isaria
{

/** Where a fault can be injected. Keep names in faultSiteName. */
enum class FaultSite
{
    /** EGraph::add — a simulated allocation failure. */
    EGraphAlloc,
    /** One (rule, shard) search task of the parallel search phase. */
    ShardSearch,
    /** EGraph::rebuild as driven by the saturation runner. */
    Rebuild,
    /** One verifyRule call inside rule synthesis. */
    SynthVerify,
    /** Rules-file loading. */
    RuleParse,
    /** EGraph::restore — a speculative-phase rollback failing. */
    SnapshotRestore,
    /** The saturation loop's per-iteration metrics sampling point —
     *  proves a telemetry failure degrades like any other
     *  mid-iteration fault instead of aborting the compile. */
    EGraphMetrics,
    NumSites,
};

inline constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Stable human-readable site name (the spec grammar's `site`). */
const char *faultSiteName(FaultSite site);

/** Inverse of faultSiteName. */
std::optional<FaultSite> faultSiteFromName(std::string_view name);

/** The exception a fired injection site raises. */
class FaultInjected : public std::exception
{
  public:
    explicit FaultInjected(FaultSite site);

    FaultSite site() const { return site_; }
    const char *what() const noexcept override { return message_.c_str(); }

  private:
    FaultSite site_;
    std::string message_;
};

/** An armed set of sites (parsed from the spec grammar above). */
struct FaultPlan
{
    struct SiteSpec
    {
        bool armed = false;
        /** One-shot ordinal (0 = not ordinal-triggered). */
        std::uint64_t ordinal = 0;
        /** Seeded coin: fire iff hash(seed^n) % denom < numer. */
        std::uint64_t numer = 0;
        std::uint64_t denom = 0;
        std::uint64_t seed = 0;
    };

    SiteSpec sites[kNumFaultSites];

    /** Parses the spec grammar; diagnostics name the bad token. */
    static Result<FaultPlan> parse(std::string_view spec);
};

/**
 * Installs @p plan process-wide and resets all arrival counters.
 * Passing a default-constructed plan disarms every site.
 */
void setFaultPlan(const FaultPlan &plan);

/** Disarms all sites (counters keep running; cheap). */
void clearFaultPlan();

/**
 * True when fault injection is armed at any site — either via
 * setFaultPlan or the ISARIA_FAULT environment variable (parsed
 * lazily on first use; a malformed value disarms with a warning).
 */
bool faultPlanActive();

/**
 * Records one arrival at @p site and reports whether it must fail.
 * Thread-safe; the n-th arrival fires exactly once across threads.
 */
bool faultShouldFire(FaultSite site);

/** Throw-style injection point for exception-reporting sites. */
inline void
faultPoint(FaultSite site)
{
    if (faultShouldFire(site))
        throw FaultInjected(site);
}

} // namespace isaria

#endif // ISARIA_SUPPORT_FAULT_H
