#ifndef ISARIA_SUPPORT_INTERNER_H
#define ISARIA_SUPPORT_INTERNER_H

/**
 * @file
 * Global string interner for symbol names.
 *
 * Terms refer to program variables (array names, scalar inputs) by a
 * dense integer id; the interner maps names to ids and back. A single
 * process-wide table keeps ids stable across modules, which lets terms,
 * environments, and the simulator's memory image agree on identity.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace isaria
{

/** Dense id for an interned symbol name. */
using SymbolId = std::uint32_t;

/** Interns @p name, returning its stable id (idempotent). */
SymbolId internSymbol(std::string_view name);

/** Returns the name for an id previously returned by internSymbol. */
const std::string &symbolName(SymbolId id);

/** Number of symbols interned so far (useful for generating fresh ones). */
std::size_t internedSymbolCount();

} // namespace isaria

#endif // ISARIA_SUPPORT_INTERNER_H
