#ifndef ISARIA_SUPPORT_CANCEL_H
#define ISARIA_SUPPORT_CANCEL_H

/**
 * @file
 * Cooperative cancellation for budgeted phases.
 *
 * The paper's compile loop is wall-clock budgeted per EqSat call;
 * callers embedding the compiler additionally want to abandon an
 * in-flight compile (a request was dropped, a better candidate
 * arrived). Both are realized cooperatively: a CancellationToken is
 * threaded through EqSatLimits into the saturation runner and its
 * thread-pool search shards, which poll it — together with the
 * wall-clock deadline — every few thousand e-matching steps, so a
 * long single iteration cannot overshoot its budget unboundedly.
 *
 * Polling is cheap (one relaxed atomic load; the clock is read at the
 * same stride) and purely observational: an interrupted search phase
 * discards its partial matches, so a cancelled run stops on the last
 * completed iteration's e-graph — the same deterministic state for
 * any thread count.
 */

#include <atomic>

#include "support/timer.h"

namespace isaria
{

/** A sticky cancel flag shared between a caller and a running phase. */
class CancellationToken
{
  public:
    /** Requests cancellation (thread-safe, idempotent). */
    void cancel() { cancelled_.store(true, std::memory_order_release); }

    /** True once cancel() has been called. */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Re-arms the token for reuse across runs (not thread-safe). */
    void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> cancelled_{false};
};

/**
 * The interrupt sources a budgeted phase polls: an optional deadline
 * and an optional cancellation token. Either pointer may be null.
 */
class ExecControl
{
  public:
    ExecControl(const Deadline *deadline, const CancellationToken *token)
        : deadline_(deadline), token_(token)
    {}

    /** True when the phase should stop now. */
    bool
    interrupted() const
    {
        if (token_ && token_->cancelled())
            return true;
        return deadline_ && deadline_->expired();
    }

    /** True when the stop was caller-initiated (vs. the clock). */
    bool
    cancelled() const
    {
        return token_ && token_->cancelled();
    }

  private:
    const Deadline *deadline_;
    const CancellationToken *token_;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_CANCEL_H
