#ifndef ISARIA_SUPPORT_ARENA_H
#define ISARIA_SUPPORT_ARENA_H

/**
 * @file
 * Bump-pointer arena with chunked growth, high-water marks, and a
 * non-owning vector built on top of it.
 *
 * The e-graph's saturation loop is allocation-bound: every e-node
 * spill buffer, hash-cons payload, and op-index append used to be an
 * individual `new`. The Arena replaces those with pointer bumps into
 * geometrically-growing chunks (4 KiB doubling to 1 MiB; oversize
 * requests get a dedicated chunk), which is both faster and — because
 * a Mark captures the exact allocation frontier — what makes
 * EGraph::snapshot()/restore() possible: releasing to a mark rewinds
 * every allocation made after it in O(chunks), retaining the chunks
 * for reuse.
 *
 * Invariants:
 *  - Memory is never returned to the OS by release(); chunks are
 *    reused. Only the destructor (or the object being moved from)
 *    frees them.
 *  - Pointers handed out before a mark stay valid across
 *    release(mark); pointers handed out after it dangle.
 *  - allocations()/chunkAllocations() are monotonic (they survive
 *    release), so they can serve as before/after deltas when counting
 *    allocator traffic; bytesAllocated() is the live frontier and
 *    rewinds with release.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "support/panic.h"

namespace isaria
{

class Arena
{
  public:
    static constexpr std::size_t kMinChunkBytes = 4 * 1024;
    static constexpr std::size_t kMaxChunkBytes = 1024 * 1024;

    /** A high-water mark: the allocation frontier at one instant. */
    struct Mark
    {
        std::size_t chunk = 0;
        std::size_t used = 0;
        std::uint64_t bytesAllocated = 0;
    };

    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;
    Arena(Arena &&) noexcept = default;
    Arena &operator=(Arena &&) noexcept = default;

    /** @p align must be a power of two. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        ISARIA_ASSERT((align & (align - 1)) == 0,
                      "arena alignment must be a power of two");
        // Chunk bases come from operator new[], which only guarantees
        // fundamental alignment — an over-aligned request could slip
        // through the offset-only alignment below, so reject it here
        // on every path, not just in allocateSlow.
        ISARIA_ASSERT(align <= alignof(std::max_align_t),
                      "arena cannot serve over-aligned requests");
        if (!chunks_.empty()) {
            Chunk &chunk = chunks_[active_];
            std::size_t at = (chunk.used + align - 1) & ~(align - 1);
            if (at + bytes <= chunk.capacity) {
                chunk.used = at + bytes;
                bytesAllocated_ += bytes;
                ++allocations_;
                return chunk.data.get() + at;
            }
        }
        return allocateSlow(bytes, align);
    }

    template <typename T>
    T *
    allocateArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is never destructed");
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /** The current allocation frontier. */
    Mark
    mark() const
    {
        Mark m;
        m.chunk = active_;
        m.used = chunks_.empty() ? 0 : chunks_[active_].used;
        m.bytesAllocated = bytesAllocated_;
        return m;
    }

    /**
     * Rewinds the frontier to @p mark. Everything allocated after the
     * mark is reclaimed (its chunks stay resident for reuse);
     * everything allocated before it is untouched.
     */
    void
    release(const Mark &m)
    {
        ISARIA_ASSERT(m.chunk <= active_,
                      "arena mark is ahead of the frontier");
        for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i)
            chunks_[i].used = 0;
        if (!chunks_.empty())
            chunks_[m.chunk].used = m.used;
        active_ = m.chunk;
        bytesAllocated_ = m.bytesAllocated;
    }

    /** Rewinds everything, retaining the chunks. */
    void
    reset()
    {
        release(Mark{});
    }

    /** Live bytes inside chunks (rewinds with release). */
    std::uint64_t bytesAllocated() const { return bytesAllocated_; }

    /** Total chunk capacity resident (never shrinks). */
    std::uint64_t
    bytesReserved() const
    {
        std::uint64_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.capacity;
        return total;
    }

    std::size_t numChunks() const { return chunks_.size(); }

    /** Monotonic count of allocate() calls (survives release). */
    std::uint64_t allocations() const { return allocations_; }

    /** Monotonic count of chunks obtained from the heap. */
    std::uint64_t chunkAllocations() const { return chunkAllocations_; }

    /**
     * True if @p p points into a block handed out before @p m was
     * taken (so it stays valid across release(m)). False for
     * pointers past the mark or outside the arena entirely.
     */
    bool
    allocatedBefore(const void *p, const Mark &m) const
    {
        for (std::size_t i = 0; i < chunks_.size(); ++i) {
            const std::byte *base = chunks_[i].data.get();
            if (p < base || p >= base + chunks_[i].capacity)
                continue;
            if (i != m.chunk)
                return i < m.chunk;
            return static_cast<std::size_t>(
                       static_cast<const std::byte *>(p) - base) < m.used;
        }
        return false;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    void *allocateSlow(std::size_t bytes, std::size_t align);

    std::vector<Chunk> chunks_;
    /** Index of the chunk currently being bumped (0 when empty). */
    std::size_t active_ = 0;
    std::uint64_t bytesAllocated_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t chunkAllocations_ = 0;
};

/**
 * A vector of trivially-copyable elements whose storage lives in an
 * Arena. It does not own its buffer: growth allocates a fresh arena
 * block and abandons the old one (bounded 2x churn), and destruction
 * frees nothing. After the owning arena is released past this
 * vector's buffer, call resetStorage() before reuse — the old pointer
 * would alias whatever the arena hands out next.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ArenaVector elements are moved with memcpy");

  public:
    ArenaVector() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    T operator[](std::size_t i) const { return data_[i]; }
    T &operator[](std::size_t i) { return data_[i]; }

    void
    push_back(Arena &arena, T value)
    {
        if (size_ == capacity_)
            grow(arena);
        data_[size_++] = value;
    }

    void clear() { size_ = 0; }

    /** Drops count to @p n (which must not exceed size()). */
    void
    truncate(std::size_t n)
    {
        ISARIA_ASSERT(n <= size_, "ArenaVector::truncate grows");
        size_ = static_cast<std::uint32_t>(n);
    }

    /** Forgets the buffer entirely (after the arena was released). */
    void
    resetStorage()
    {
        data_ = nullptr;
        size_ = 0;
        capacity_ = 0;
    }

  private:
    void
    grow(Arena &arena)
    {
        std::uint32_t fresh = capacity_ ? capacity_ * 2 : 4;
        T *block = arena.allocateArray<T>(fresh);
        if (size_)
            std::memcpy(block, data_, size_ * sizeof(T));
        data_ = block;
        capacity_ = fresh;
    }

    T *data_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t capacity_ = 0;
};

/**
 * An Arena plus size-bucketed free lists, for node-based containers
 * (the e-graph's hash-cons table) whose erase/insert churn would
 * otherwise grow a pure bump allocator without bound. Deallocated
 * blocks are recycled by exact size; container node allocations are a
 * handful of distinct sizes, so the bucket map stays tiny.
 *
 * `enabled = false` routes every request straight to the global
 * allocator — the A/B switch the scaling benchmark uses to measure
 * the arena's allocator-traffic win.
 */
struct ArenaPool
{
    Arena arena;
    bool enabled = true;
    std::unordered_map<std::size_t, std::vector<void *>> freeBySize;

    void *
    allocate(std::size_t bytes)
    {
        if (!enabled)
            return ::operator new(bytes);
        auto it = freeBySize.find(bytes);
        if (it != freeBySize.end() && !it->second.empty()) {
            void *p = it->second.back();
            it->second.pop_back();
            return p;
        }
        return arena.allocate(bytes, alignof(std::max_align_t));
    }

    void
    deallocate(void *p, std::size_t bytes)
    {
        if (!enabled) {
            ::operator delete(p);
            return;
        }
        freeBySize[bytes].push_back(p);
    }

    /**
     * Drops every free-list block allocated at or after @p m — called
     * just before arena.release(m), which would leave such blocks
     * dangling. Blocks that predate the mark stay recyclable.
     */
    void
    dropFreeBlocksAtOrAfter(const Arena::Mark &m)
    {
        for (auto &[bytes, blocks] : freeBySize) {
            std::size_t keep = 0;
            for (void *p : blocks) {
                if (arena.allocatedBefore(p, m))
                    blocks[keep++] = p;
            }
            blocks.resize(keep);
        }
    }
};

/**
 * Minimal std allocator over an ArenaPool (for the e-graph's memo
 * table). The pool must outlive every container using it; EGraph pins
 * its pool behind a unique_ptr so the allocator survives moves.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    explicit PoolAllocator(ArenaPool *pool) : pool_(pool) {}

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) : pool_(other.pool())
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(pool_->allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        pool_->deallocate(p, n * sizeof(T));
    }

    ArenaPool *pool() const { return pool_; }

    bool
    operator==(const PoolAllocator &other) const
    {
        return pool_ == other.pool_;
    }
    bool
    operator!=(const PoolAllocator &other) const
    {
        return pool_ != other.pool_;
    }

  private:
    ArenaPool *pool_;
};

} // namespace isaria

#endif // ISARIA_SUPPORT_ARENA_H
