#ifndef ISARIA_SUPPORT_RATIONAL_H
#define ISARIA_SUPPORT_RATIONAL_H

/**
 * @file
 * Exact checked 64-bit rational arithmetic.
 *
 * Rule-soundness filtering must never accept a rewrite because of a
 * floating-point rounding coincidence, so all interpreter semantics run
 * over exact rationals. Any operation that leaves the representable
 * domain (overflow, division by zero, irrational square root) produces
 * an *invalid* rational, and invalidity propagates through every
 * subsequent operation — the option semantics of Section 3.1.
 */

#include <cstdint>
#include <functional>
#include <string>

namespace isaria
{

/**
 * An exact rational number num/den with checked arithmetic.
 *
 * Invariants for valid values: den > 0, gcd(|num|, den) == 1.
 * Invalid values compare unequal to everything, including themselves
 * being distinguishable only via valid().
 */
class Rational
{
  public:
    /** Constructs the rational 0. */
    constexpr Rational() : num_(0), den_(1), valid_(true) {}

    /** Constructs an integer-valued rational. */
    constexpr Rational(std::int64_t value)
        : num_(value), den_(1), valid_(true)
    {}

    /** Constructs num/den, normalizing sign and common factors. */
    static Rational make(std::int64_t num, std::int64_t den);

    /** Returns the canonical invalid (undefined) rational. */
    static Rational invalid();

    bool valid() const { return valid_; }
    std::int64_t num() const { return num_; }
    std::int64_t den() const { return den_; }

    /** True iff this is a valid whole number. */
    bool isInteger() const { return valid_ && den_ == 1; }

    Rational operator+(const Rational &other) const;
    Rational operator-(const Rational &other) const;
    Rational operator*(const Rational &other) const;
    Rational operator/(const Rational &other) const;
    Rational operator-() const;

    /** Sign as a rational: -1, 0, or +1 (invalid propagates). */
    Rational sgn() const;

    /**
     * Exact square root.
     *
     * Defined only when the value is a perfect square of a rational
     * (both numerator and denominator are perfect squares after
     * normalization); otherwise invalid. Negative arguments are
     * invalid.
     */
    Rational sqrt() const;

    /** Structural equality; any invalid operand compares unequal. */
    bool operator==(const Rational &other) const;
    bool operator!=(const Rational &other) const { return !(*this == other); }

    /** Ordering on valid rationals; ordering invalid values panics. */
    bool operator<(const Rational &other) const;

    /** Approximate double value for reporting (invalid -> NaN). */
    double toDouble() const;

    /** Renders as "n" or "n/d" or "#undef". */
    std::string toString() const;

    /** Hash compatible with operator== (all invalids hash alike). */
    std::size_t hash() const;

  private:
    Rational(std::int64_t num, std::int64_t den, bool valid)
        : num_(num), den_(den), valid_(valid)
    {}

    std::int64_t num_;
    std::int64_t den_;
    bool valid_;
};

} // namespace isaria

template <>
struct std::hash<isaria::Rational>
{
    std::size_t
    operator()(const isaria::Rational &r) const
    {
        return r.hash();
    }
};

#endif // ISARIA_SUPPORT_RATIONAL_H
