#include "support/thread_pool.h"

#include <cstdlib>

#include "support/panic.h"

namespace isaria
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads < 1)
        threads = 1;
    chunks_ = std::vector<std::atomic<PackedRange>>(threads);
    for (auto &chunk : chunks_)
        chunk.store(pack(0, 0), std::memory_order_relaxed);
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("ISARIA_EQSAT_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
ThreadPool::parallelFor(std::size_t numTasks,
                        const std::function<void(std::size_t)> &fn)
{
    if (numTasks == 0)
        return;
    if (workers_.empty() || numTasks == 1) {
        for (std::size_t i = 0; i < numTasks; ++i)
            fn(i);
        return;
    }
    ISARIA_ASSERT(numTasks < (std::size_t{1} << 32),
                  "parallelFor task count exceeds 2^32");

    // Seed one contiguous chunk of the index space per worker; idle
    // workers rebalance by stealing.
    const std::size_t threads = chunks_.size();
    for (std::size_t w = 0; w < threads; ++w) {
        auto begin = static_cast<std::uint32_t>(numTasks * w / threads);
        auto end = static_cast<std::uint32_t>(numTasks * (w + 1) / threads);
        chunks_[w].store(pack(begin, end), std::memory_order_relaxed);
    }
    pending_.store(numTasks, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        ++generation_;
    }
    wake_.notify_all();

    runTasks(0);

    // Wait until every task ran *and* every worker has left runTasks,
    // so the next job cannot race a straggler still scanning chunks.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0 &&
               activeWorkers_ == 0;
    });
    fn_ = nullptr;
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seenGeneration;
            });
            if (stopping_)
                return;
            seenGeneration = generation_;
            ++activeWorkers_;
        }
        runTasks(worker);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
        }
        done_.notify_all();
    }
}

void
ThreadPool::runTasks(std::size_t worker)
{
    const std::function<void(std::size_t)> &fn = *fn_;
    std::uint32_t task = 0;
    while (claimTask(worker, task)) {
        fn(task);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Pair the notify with the waiter's predicate check.
            { std::lock_guard<std::mutex> lock(mutex_); }
            done_.notify_all();
        }
    }
}

bool
ThreadPool::claimTask(std::size_t worker, std::uint32_t &task)
{
    // Fast path: pop the front of our own chunk.
    std::atomic<PackedRange> &own = chunks_[worker];
    PackedRange r = own.load();
    while (unpackBegin(r) < unpackEnd(r)) {
        if (own.compare_exchange_weak(
                r, pack(unpackBegin(r) + 1, unpackEnd(r)))) {
            task = unpackBegin(r);
            return true;
        }
    }

    // Steal the back half of the largest remaining chunk. Retry until
    // a claim succeeds or every chunk is seen empty in one sweep.
    for (;;) {
        std::size_t victim = chunks_.size();
        std::uint32_t victimSize = 0;
        for (std::size_t v = 0; v < chunks_.size(); ++v) {
            PackedRange vr = chunks_[v].load();
            std::uint32_t size = unpackEnd(vr) - unpackBegin(vr);
            if (unpackBegin(vr) < unpackEnd(vr) && size > victimSize) {
                victim = v;
                victimSize = size;
            }
        }
        if (victim == chunks_.size())
            return false;

        std::atomic<PackedRange> &target = chunks_[victim];
        PackedRange vr = target.load();
        std::uint32_t begin = unpackBegin(vr);
        std::uint32_t end = unpackEnd(vr);
        if (begin >= end)
            continue;
        std::uint32_t stolen = end - (end - begin + 1) / 2;
        if (!target.compare_exchange_weak(vr, pack(begin, stolen)))
            continue;
        // We own [stolen, end): run its first task, keep the rest.
        own.store(pack(stolen + 1, end));
        task = stolen;
        return true;
    }
}

} // namespace isaria
