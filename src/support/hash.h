#ifndef ISARIA_SUPPORT_HASH_H
#define ISARIA_SUPPORT_HASH_H

/**
 * @file
 * Hash-combining helpers shared by the term and e-graph modules.
 */

#include <cstddef>
#include <cstdint>

namespace isaria
{

/** Mixes @p value into the running hash @p seed (boost-style). */
inline void
hashCombine(std::size_t &seed, std::size_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/** Finalizing mix from splitmix64; good avalanche for table indexing. */
inline std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace isaria

#endif // ISARIA_SUPPORT_HASH_H
