#ifndef ISARIA_ISA_ISA_SPEC_H
#define ISARIA_ISA_ISA_SPEC_H

/**
 * @file
 * The target instruction set, as a configuration over the DSL.
 *
 * The baseline models the Tensilica Fusion G3's single-precision
 * vector pipeline (4-wide SIMD) as used by Diospyros and Isaria. The
 * two custom instructions of Section 5.4 — VecMulSub and VecSqrtSgn —
 * can be toggled on, which is exactly how a DSP engineer explores an
 * ISA customization: flip the flag (a few lines of interpreter and
 * cost model in the paper), re-run the offline pipeline, get a new
 * compiler.
 */

#include <string>
#include <vector>

#include "term/op.h"

namespace isaria
{

/** Which optional instructions the target DSP provides. */
struct IsaConfig
{
    /** SIMD width in lanes (Fusion G3 single-precision: 4). */
    int vectorWidth = 4;
    /** Custom multiply-subtract (Section 5.4). */
    bool enableMulSub = false;
    /** Custom square-root-sign-product (Section 5.4). */
    bool enableSqrtSgn = false;
};

/** An instruction set instance: enabled ops + width. */
class IsaSpec
{
  public:
    explicit IsaSpec(IsaConfig config = {});

    const IsaConfig &config() const { return config_; }
    int vectorWidth() const { return config_.vectorWidth; }

    /** True if @p op exists on this target. */
    bool opEnabled(Op op) const;

    /** Scalar arithmetic ops available to rule synthesis. */
    const std::vector<Op> &scalarOps() const { return scalarOps_; }

    /** Lane-wise vector ops available to rule synthesis. */
    const std::vector<Op> &vectorOps() const { return vectorOps_; }

    /** Short identifier, e.g. "fusion-g3+mulsub". */
    std::string name() const;

  private:
    IsaConfig config_;
    std::vector<Op> scalarOps_;
    std::vector<Op> vectorOps_;
};

} // namespace isaria

#endif // ISARIA_ISA_ISA_SPEC_H
