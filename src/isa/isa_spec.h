#ifndef ISARIA_ISA_ISA_SPEC_H
#define ISARIA_ISA_ISA_SPEC_H

/**
 * @file
 * The target instruction set, as a view over one MachineDesc.
 *
 * An IsaSpec is what rule synthesis and the offline pipeline consume:
 * the enabled op lists, the lane width, and the target name — all
 * derived from a machine description (machine_desc.h), never from
 * parallel hardcoded defaults. The legacy IsaConfig surface survives
 * as the Fusion-family customization knob of Section 5.4: flip a
 * flag (a few lines of interpreter and cost model in the paper),
 * re-run the offline pipeline, get a new compiler.
 */

#include <string>
#include <vector>

#include "isa/machine_desc.h"
#include "term/op.h"

namespace isaria
{

/**
 * Legacy Fusion-family customization surface: width plus the two
 * Section 5.4 custom instructions. IsaSpec(IsaConfig) always means
 * the fusion-g3 family; use IsaSpec(MachineDesc) for other targets.
 */
struct IsaConfig
{
    /** SIMD width in lanes (Fusion G3 single-precision: 4). */
    int vectorWidth = 4;
    /** Custom multiply-subtract (Section 5.4). */
    bool enableMulSub = false;
    /** Custom square-root-sign-product (Section 5.4). */
    bool enableSqrtSgn = false;
};

/** An instruction set instance: enabled ops + width, from a machine
 *  description. */
class IsaSpec
{
  public:
    /** The session default target (MachineDesc::fromEnv). */
    IsaSpec();
    /** The fusion-g3 family with @p config's width and custom ops. */
    explicit IsaSpec(IsaConfig config);
    /** Any target. */
    explicit IsaSpec(MachineDesc machine);

    /** The full machine description this spec was built from. */
    const MachineDesc &machine() const { return machine_; }
    /** Width + custom-op view (legacy accessor). */
    const IsaConfig &config() const { return config_; }
    int vectorWidth() const { return machine_.vectorWidth; }

    /** True if @p op exists on this target. */
    bool opEnabled(Op op) const;

    /** Scalar arithmetic ops available to rule synthesis. */
    const std::vector<Op> &scalarOps() const { return scalarOps_; }

    /** Lane-wise vector ops available to rule synthesis. */
    const std::vector<Op> &vectorOps() const { return vectorOps_; }

    /** Canonical target name, e.g. "fusion-g3-w4+mulsub" — always
     *  width-bearing (MachineDesc::name). */
    std::string name() const { return machine_.name(); }

  private:
    MachineDesc machine_;
    IsaConfig config_;
    std::vector<Op> scalarOps_;
    std::vector<Op> vectorOps_;
};

} // namespace isaria

#endif // ISARIA_ISA_ISA_SPEC_H
