#include "isa/machine_desc.h"

#include <cstdlib>

#include "support/panic.h"

namespace isaria
{

std::string
MachineDesc::name() const
{
    std::string out = family + "-w" + std::to_string(vectorWidth);
    if (enableMulSub)
        out += "+mulsub";
    if (enableSqrtSgn)
        out += "+sqrtsgn";
    if (!enableVecMac)
        out += "-nomac";
    return out;
}

MachineDesc
MachineDesc::fusionG3(bool mulSub, bool sqrtSgn)
{
    // The defaults of CostParams and LatencyModel *are* the Fusion
    // G3 numbers (see cost_model.h / machine.h); this factory only
    // names the family and applies the custom-op toggles.
    MachineDesc m;
    m.family = "fusion-g3";
    m.vectorWidth = 4;
    m.enableMulSub = mulSub;
    m.enableSqrtSgn = sqrtSgn;
    return m;
}

MachineDesc
MachineDesc::rvv8()
{
    MachineDesc m;
    m.family = "rvv";
    m.vectorWidth = 8;
    // An application-class core: vfmsac exists (mulsub), there is no
    // sqrt-sign-product custom op.
    m.enableMulSub = true;
    m.enableSqrtSgn = false;
    m.enableVecMac = true;

    // Cost table: the scalar FPU is pipelined and much closer to the
    // vector unit than Fusion's slow scalar path, lane moves
    // (vslide/vmv) are cheaper, and vector div/sqrt are relatively
    // pricier. Alpha/beta shrink with the smaller scalar/vector gap.
    m.cost.leaf = 1;
    m.cost.scalarAlu = 8;
    m.cost.scalarDiv = 24;
    m.cost.scalarSqrt = 30;
    m.cost.scalarMulSub = 9;
    m.cost.scalarSqrtSgn = 30;
    m.cost.vecAlu = 1;
    m.cost.vecDiv = 8;
    m.cost.vecSqrt = 10;
    m.cost.vecMac = 1;
    m.cost.vecSqrtSgn = 10;
    m.cost.laneMove = 16;
    m.cost.vecBase = 1;
    m.cost.concat = 6;
    m.cost.listBase = 1;
    m.cost.alpha = 12;
    m.cost.beta = 10;

    // Timing: single-issue (vector and load/store share the one
    // pipe), longer but pipelined vector latencies, a faster scalar
    // FPU, slightly slower memory.
    m.latency.dualIssue = false;
    m.latency.scalarAlu = 6;
    m.latency.scalarDiv = 24;
    m.latency.scalarSqrt = 30;
    m.latency.scalarSgn = 3;
    m.latency.scalarNeg = 3;
    m.latency.vectorAlu = 4;
    m.latency.vectorDiv = 24;
    m.latency.vectorSqrt = 28;
    m.latency.load = 4;
    m.latency.insertLane = 3;
    m.latency.loadConst = 1;
    m.latency.store = 2;
    return m;
}

const MachineDesc &
MachineDesc::fromEnv()
{
    static const MachineDesc machine = [] {
        const char *env = std::getenv("ISARIA_TARGET");
        if (env == nullptr || *env == '\0')
            return fusionG3();
        std::optional<MachineDesc> found = machineByName(env);
        if (!found) {
            std::string msg =
                "ISARIA_TARGET names unknown machine \"" +
                std::string(env) + "\" (known: " +
                knownMachineNames() + ")";
            ISARIA_PANIC(msg.c_str());
        }
        return *found;
    }();
    return machine;
}

std::optional<MachineDesc>
machineByName(const std::string &name)
{
    for (const MachineDesc &m : knownMachines()) {
        if (name == m.name())
            return m;
    }
    if (name == "fusion" || name == "fusion-g3")
        return MachineDesc::fusionG3();
    if (name == "rvv" || name == "rvv8")
        return MachineDesc::rvv8();
    return std::nullopt;
}

const std::vector<MachineDesc> &
knownMachines()
{
    static const std::vector<MachineDesc> machines = {
        MachineDesc::fusionG3(), MachineDesc::rvv8()};
    return machines;
}

std::string
knownMachineNames()
{
    std::string out;
    for (const MachineDesc &m : knownMachines()) {
        if (!out.empty())
            out += ", ";
        out += m.name();
    }
    return out;
}

} // namespace isaria
