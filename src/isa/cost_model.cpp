#include "isa/cost_model.h"

#include <vector>

#include "support/panic.h"

namespace isaria
{

std::uint64_t
DspCostModel::nodeCost(Op op, std::int64_t,
                       std::span<const std::uint64_t> childCosts) const
{
    const CostParams &p = params_;

    auto sumChildren = [&]() {
        std::uint64_t total = 0;
        for (std::uint64_t c : childCosts)
            total = satAddCost(total, c);
        return total;
    };

    switch (op) {
      case Op::Const:
      case Op::Symbol:
      case Op::Get:
      case Op::Wildcard:
        return p.leaf;

      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Neg:
      case Op::Sgn:
        return satAddCost(p.scalarAlu, sumChildren());
      case Op::Div:
        return satAddCost(p.scalarDiv, sumChildren());
      case Op::Sqrt:
        return satAddCost(p.scalarSqrt, sumChildren());
      case Op::MulSub:
        return satAddCost(p.scalarMulSub, sumChildren());
      case Op::SqrtSgn:
        return satAddCost(p.scalarSqrtSgn, sumChildren());

      case Op::Vec: {
        // Leaves ride along with a vector load; computed values must
        // each be moved into a lane.
        std::uint64_t total = p.vecBase;
        for (std::uint64_t c : childCosts) {
            if (c <= p.leaf)
                total = satAddCost(total, c);
            else
                total = satAddCost(total, satAddCost(c, p.laneMove));
        }
        return total;
      }
      case Op::Concat:
        return satAddCost(p.concat, sumChildren());

      case Op::VecAdd:
      case Op::VecMinus:
      case Op::VecMul:
      case Op::VecNeg:
      case Op::VecSgn:
        return satAddCost(p.vecAlu, sumChildren());
      case Op::VecDiv:
        return satAddCost(p.vecDiv, sumChildren());
      case Op::VecSqrt:
        return satAddCost(p.vecSqrt, sumChildren());
      case Op::VecMAC:
      case Op::VecMulSub:
        return satAddCost(p.vecMac, sumChildren());
      case Op::VecSqrtSgn:
        return satAddCost(p.vecSqrtSgn, sumChildren());

      case Op::List:
        return satAddCost(p.listBase, sumChildren());

      default:
        ISARIA_PANIC("cost of unknown op");
    }
}

std::uint64_t
DspCostModel::exprCost(const RecExpr &expr) const
{
    ISARIA_ASSERT(!expr.empty(), "cost of empty term");
    // Tree semantics: a shared node is paid once per use, matching
    // what extraction computes for the equivalent unfolded term.
    std::vector<std::uint64_t> costs(expr.size());
    std::vector<std::uint64_t> kids;
    for (NodeId id = 0; id < static_cast<NodeId>(expr.size()); ++id) {
        const TermNode &n = expr.node(id);
        kids.clear();
        for (NodeId child : n.children)
            kids.push_back(costs[child]);
        costs[id] = nodeCost(n.op, n.payload, kids);
    }
    return costs[expr.rootId()];
}

} // namespace isaria
