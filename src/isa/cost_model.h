#ifndef ISARIA_ISA_COST_MODEL_H
#define ISARIA_ISA_COST_MODEL_H

/**
 * @file
 * The abstract cost model (Definition 1) for the target DSP.
 *
 * Costs are estimated cycles, scaled so every node adds at least one
 * unit — the strict monotonicity of Definition 2 that extraction
 * relies on. Two structural facts about the Fusion G3 drive the
 * numbers:
 *
 *  - Scalar floating-point ops run on the slow scalar path while the
 *    SIMD unit retires one lane-wise op per cycle, so a scalar ALU op
 *    is modeled as several times the cost of a vector ALU op. This
 *    gap is what separates expansion-rule aggregates from
 *    optimization-rule aggregates (beta sits between them, §3.2).
 *
 *  - Building a `Vec` literal out of *computed* scalars requires
 *    moving each value into a vector register lane by lane, while a
 *    literal of leaves (array elements, constants) can be loaded
 *    directly. The lane-move penalty is what gives compilation rules
 *    their large cost differential (alpha, §3.2).
 */

#include <span>

#include "egraph/extract.h"
#include "term/rec_expr.h"

namespace isaria
{

/** Tunable weights of the DSP cost model. */
struct CostParams
{
    std::uint64_t leaf = 1;       ///< Const / Symbol / Get / Wildcard.
    std::uint64_t scalarAlu = 12; ///< + - * neg sgn on the scalar path.
    std::uint64_t scalarDiv = 20;
    std::uint64_t scalarSqrt = 26;
    std::uint64_t scalarMulSub = 14;
    std::uint64_t scalarSqrtSgn = 26;
    std::uint64_t vecAlu = 1;  ///< Lane-wise SIMD op, fully pipelined.
    std::uint64_t vecDiv = 6;
    std::uint64_t vecSqrt = 8;
    std::uint64_t vecMac = 1;
    std::uint64_t vecSqrtSgn = 8;
    /** Inserting one *computed* scalar into a vector lane. */
    std::uint64_t laneMove = 25;
    /** Base cost of assembling / loading a Vec literal. */
    std::uint64_t vecBase = 1;
    std::uint64_t concat = 4;
    std::uint64_t listBase = 1;

    /** Phase threshold on cost differential (Section 3.2). */
    std::int64_t alpha = 15;
    /** Phase threshold on aggregate cost (Section 3.2). */
    std::int64_t beta = 12;
};

/**
 * Strictly monotonic cost function over DSL terms and e-nodes.
 *
 * Shared by extraction (via the CostFn interface), phase assignment
 * (on patterns, where wildcards cost one leaf), and the compiler's
 * improvement test.
 */
class DspCostModel : public CostFn
{
  public:
    DspCostModel(CostParams params = {}) : params_(params) {}

    const CostParams &params() const { return params_; }

    std::uint64_t
    nodeCost(Op op, std::int64_t payload,
             std::span<const std::uint64_t> childCosts) const override;

    /** Cost of a whole term (tree semantics, shared nodes re-counted). */
    std::uint64_t exprCost(const RecExpr &expr) const;

  private:
    CostParams params_;
};

} // namespace isaria

#endif // ISARIA_ISA_COST_MODEL_H
