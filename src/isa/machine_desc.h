#ifndef ISARIA_ISA_MACHINE_DESC_H
#define ISARIA_ISA_MACHINE_DESC_H

/**
 * @file
 * The machine description: one value that fully determines a target.
 *
 * Everything the pipeline knows about a DSP comes from here — lane
 * width, which optional ops exist, the abstract cost table that
 * drives extraction and phase assignment, the cycle-simulator latency
 * table, and the issue-slot shape. IsaSpec, the lowering width, the
 * verifier's sampling width, the VM lane width, and the rule-cache
 * fingerprint are all instantiated from one MachineDesc, so two
 * targets can never silently disagree about any of them.
 *
 * Two targets ship in the registry:
 *
 *   fusion-g3-w4   the paper's 4-wide Tensilica Fusion G3-like DSP
 *                  (dual-issue VLIW, slow scalar float path), with
 *                  the Section 5.4 custom ops as toggles;
 *   rvv-w8+mulsub  an 8-wide RVV-flavoured vector unit: single
 *                  issue, a faster scalar FPU (smaller scalar/vector
 *                  gap), cheaper lane moves, pricier vector
 *                  div/sqrt, and a fused multiply-subtract.
 *
 * The registry is open: construct any MachineDesc by hand, or start
 * from a factory and mutate fields. `ISARIA_TARGET=<name>` retargets
 * every default-constructed IsaSpec/KernelHarness, which is how the
 * fig4-fig9 benches and the integration suites run per-target with
 * zero code changes.
 */

#include <optional>
#include <string>
#include <vector>

#include "isa/cost_model.h"
#include "vm/machine.h"

namespace isaria
{

/** A complete, self-consistent description of one target. */
struct MachineDesc
{
    /** Target family, the leading component of name(). */
    std::string family = "fusion-g3";
    /** SIMD width in lanes; the single source of truth for the
     *  lowering width, the verifier default width, and the VM lane
     *  width. */
    int vectorWidth = 4;

    // --- Op set (per-op enables beyond the always-on base set).
    /** Custom multiply-subtract (Section 5.4). */
    bool enableMulSub = false;
    /** Custom square-root-sign-product (Section 5.4). */
    bool enableSqrtSgn = false;
    /** Fused multiply-accumulate on the vector unit. */
    bool enableVecMac = true;

    /** Abstract cost table (Definition 1) incl. alpha/beta phase
     *  thresholds. Drives extraction, phase assignment, and the
     *  synthesizer's shortcut detection. */
    CostParams cost;
    /** Cycle-simulator timing: per-op latencies and the issue-slot
     *  shape (LatencyModel::dualIssue). */
    LatencyModel latency;

    /**
     * Canonical target name, e.g. "fusion-g3-w4" or
     * "rvv-w8+mulsub". Always embeds the lane width and every
     * optional-op toggle, so cache entry paths, CompileReport.target,
     * and bench labels can never conflate two widths or op sets.
     */
    std::string name() const;

    /** The paper's 4-wide Fusion G3-like DSP; @p mulSub / @p sqrtSgn
     *  toggle the Section 5.4 custom instructions. */
    static MachineDesc fusionG3(bool mulSub = false,
                                bool sqrtSgn = false);
    /** The 8-wide RVV-flavoured second target (see file comment). */
    static MachineDesc rvv8();

    /**
     * The session's default target: `ISARIA_TARGET` resolved through
     * machineByName() when set (panics on an unknown name — a typo'd
     * sweep must fail loudly, not silently measure fusion), otherwise
     * fusionG3(). Every default-constructed IsaSpec and KernelHarness
     * goes through here.
     */
    static const MachineDesc &fromEnv();
};

/**
 * Resolves @p name against the built-in registry. Accepts canonical
 * names ("fusion-g3-w4", "rvv-w8+mulsub") and the short aliases
 * "fusion", "fusion-g3", "rvv", "rvv8". Nullopt for unknown names.
 */
std::optional<MachineDesc> machineByName(const std::string &name);

/** The built-in targets, canonical-name order. */
const std::vector<MachineDesc> &knownMachines();

/** Comma-separated canonical names, for diagnostics. */
std::string knownMachineNames();

} // namespace isaria

#endif // ISARIA_ISA_MACHINE_DESC_H
