#include "isa/isa_spec.h"

#include "support/panic.h"

namespace isaria
{

IsaSpec::IsaSpec(IsaConfig config) : config_(config)
{
    ISARIA_ASSERT(config_.vectorWidth >= 1, "bad vector width");

    scalarOps_ = {Op::Add, Op::Sub, Op::Mul, Op::Div,
                  Op::Neg, Op::Sgn, Op::Sqrt};
    vectorOps_ = {Op::VecAdd, Op::VecMinus, Op::VecMul, Op::VecDiv,
                  Op::VecNeg, Op::VecSgn,   Op::VecSqrt, Op::VecMAC};
    if (config_.enableMulSub) {
        scalarOps_.push_back(Op::MulSub);
        vectorOps_.push_back(Op::VecMulSub);
    }
    if (config_.enableSqrtSgn) {
        scalarOps_.push_back(Op::SqrtSgn);
        vectorOps_.push_back(Op::VecSqrtSgn);
    }
}

bool
IsaSpec::opEnabled(Op op) const
{
    switch (op) {
      case Op::MulSub:
      case Op::VecMulSub:
        return config_.enableMulSub;
      case Op::SqrtSgn:
      case Op::VecSqrtSgn:
        return config_.enableSqrtSgn;
      case Op::Wildcard:
        return false;
      default:
        return true;
    }
}

std::string
IsaSpec::name() const
{
    std::string out = "fusion-g3";
    if (config_.enableMulSub)
        out += "+mulsub";
    if (config_.enableSqrtSgn)
        out += "+sqrtsgn";
    return out;
}

} // namespace isaria
