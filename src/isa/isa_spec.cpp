#include "isa/isa_spec.h"

#include "support/panic.h"

namespace isaria
{

namespace
{

MachineDesc
fusionFromConfig(const IsaConfig &config)
{
    MachineDesc m =
        MachineDesc::fusionG3(config.enableMulSub, config.enableSqrtSgn);
    m.vectorWidth = config.vectorWidth;
    return m;
}

} // namespace

IsaSpec::IsaSpec() : IsaSpec(MachineDesc::fromEnv()) {}

IsaSpec::IsaSpec(IsaConfig config) : IsaSpec(fusionFromConfig(config)) {}

IsaSpec::IsaSpec(MachineDesc machine) : machine_(std::move(machine))
{
    ISARIA_ASSERT(machine_.vectorWidth >= 1, "bad vector width");
    config_.vectorWidth = machine_.vectorWidth;
    config_.enableMulSub = machine_.enableMulSub;
    config_.enableSqrtSgn = machine_.enableSqrtSgn;

    scalarOps_ = {Op::Add, Op::Sub, Op::Mul, Op::Div,
                  Op::Neg, Op::Sgn, Op::Sqrt};
    vectorOps_ = {Op::VecAdd, Op::VecMinus, Op::VecMul, Op::VecDiv,
                  Op::VecNeg, Op::VecSgn,   Op::VecSqrt};
    if (machine_.enableVecMac)
        vectorOps_.push_back(Op::VecMAC);
    if (machine_.enableMulSub) {
        scalarOps_.push_back(Op::MulSub);
        vectorOps_.push_back(Op::VecMulSub);
    }
    if (machine_.enableSqrtSgn) {
        scalarOps_.push_back(Op::SqrtSgn);
        vectorOps_.push_back(Op::VecSqrtSgn);
    }
}

bool
IsaSpec::opEnabled(Op op) const
{
    switch (op) {
      case Op::MulSub:
      case Op::VecMulSub:
        return machine_.enableMulSub;
      case Op::SqrtSgn:
      case Op::VecSqrtSgn:
        return machine_.enableSqrtSgn;
      case Op::VecMAC:
        return machine_.enableVecMac;
      case Op::Wildcard:
        return false;
      default:
        return true;
    }
}

} // namespace isaria
