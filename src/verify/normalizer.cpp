#include "verify/normalizer.h"

namespace isaria
{

bool
RatFunc::equivalent(const RatFunc &other) const
{
    if (num.poisoned() || den.poisoned() || other.num.poisoned() ||
        other.den.poisoned()) {
        return false;
    }
    return num.times(other.den) == other.num.times(den);
}

std::optional<Rational>
RatFunc::asConstant() const
{
    auto n = num.asConstant();
    auto d = den.asConstant();
    if (!n || !d || *d == Rational(0))
        return std::nullopt;
    return *n / *d;
}

std::string
RatFunc::toString() const
{
    return "(" + num.toString() + ") / (" + den.toString() + ")";
}

AtomId
Normalizer::leafAtom(int kind, std::int64_t payload)
{
    auto key = std::make_pair(kind, payload);
    auto it = leafAtoms_.find(key);
    if (it == leafAtoms_.end())
        it = leafAtoms_.emplace(key, nextAtom_++).first;
    return it->second;
}

AtomId
Normalizer::opaqueAtom(const std::string &key)
{
    auto it = opaqueAtoms_.find(key);
    if (it == opaqueAtoms_.end()) {
        it = opaqueAtoms_.emplace(key, nextAtom_++).first;
        opaqueIds_.insert(it->second);
    }
    if (collector_)
        collector_->insert(it->second);
    return it->second;
}

std::optional<RatFunc>
Normalizer::opaqueCall(const char *tag, const RatFunc &arg)
{
    // Constant-fold when the argument is a known rational.
    if (auto c = arg.asConstant()) {
        Rational folded = (tag[0] == 'q') ? c->sqrt() : c->sgn();
        if (folded.valid()) {
            return RatFunc{Poly::constant(folded),
                           Poly::constant(Rational(1))};
        }
        if (tag[0] == 'q' && *c < Rational(0)) {
            // sqrt of a negative constant: no term this normalizes
            // to; bail out to sampling.
            return std::nullopt;
        }
        // Irrational sqrt of a constant: keep opaque.
    }
    std::string key = std::string(tag) + "|" + arg.toString();
    return RatFunc{Poly::atom(opaqueAtom(key)),
                   Poly::constant(Rational(1))};
}

std::optional<RatFunc>
Normalizer::normalize(const RecExpr &expr, NodeId root)
{
    const TermNode &n = expr.node(root);
    auto one = [] { return Poly::constant(Rational(1)); };
    auto lift = [&](Poly p) { return RatFunc{std::move(p), one()}; };

    auto norm2 = [&](std::optional<RatFunc> &a, std::optional<RatFunc> &b) {
        a = normalize(expr, n.children[0]);
        b = normalize(expr, n.children[1]);
        return a && b;
    };

    switch (n.op) {
      case Op::Const:
        return lift(Poly::constant(Rational(n.payload)));
      case Op::Symbol:
        return lift(Poly::atom(leafAtom(1, n.payload)));
      case Op::Get:
        return lift(Poly::atom(leafAtom(2, n.payload)));
      case Op::Wildcard:
        return lift(Poly::atom(leafAtom(0, n.payload)));

      case Op::Add:
      case Op::Sub: {
        std::optional<RatFunc> a, b;
        if (!norm2(a, b))
            return std::nullopt;
        Poly cross = (n.op == Op::Add)
                         ? a->num.times(b->den).plus(b->num.times(a->den))
                         : a->num.times(b->den).minus(b->num.times(a->den));
        RatFunc out{std::move(cross), a->den.times(b->den)};
        if (out.num.poisoned() || out.den.poisoned())
            return std::nullopt;
        return out;
      }
      case Op::Mul: {
        std::optional<RatFunc> a, b;
        if (!norm2(a, b))
            return std::nullopt;
        RatFunc out{a->num.times(b->num), a->den.times(b->den)};
        if (out.num.poisoned() || out.den.poisoned())
            return std::nullopt;
        return out;
      }
      case Op::Div: {
        std::optional<RatFunc> a, b;
        if (!norm2(a, b))
            return std::nullopt;
        if (b->num.isZero())
            return std::nullopt; // identically-zero divisor
        RatFunc out{a->num.times(b->den), a->den.times(b->num)};
        if (out.num.poisoned() || out.den.poisoned())
            return std::nullopt;
        return out;
      }
      case Op::Neg: {
        auto a = normalize(expr, n.children[0]);
        if (!a)
            return std::nullopt;
        return RatFunc{a->num.negated(), a->den};
      }
      case Op::Sqrt: {
        auto a = normalize(expr, n.children[0]);
        if (!a)
            return std::nullopt;
        return opaqueCall("q", *a);
      }
      case Op::Sgn: {
        auto a = normalize(expr, n.children[0]);
        if (!a)
            return std::nullopt;
        return opaqueCall("s", *a);
      }
      case Op::MulSub: {
        // acc - a*b, expanded exactly.
        auto acc = normalize(expr, n.children[0]);
        auto a = normalize(expr, n.children[1]);
        auto b = normalize(expr, n.children[2]);
        if (!acc || !a || !b)
            return std::nullopt;
        RatFunc prod{a->num.times(b->num), a->den.times(b->den)};
        Poly cross =
            acc->num.times(prod.den).minus(prod.num.times(acc->den));
        RatFunc out{std::move(cross), acc->den.times(prod.den)};
        if (out.num.poisoned() || out.den.poisoned())
            return std::nullopt;
        return out;
      }
      case Op::SqrtSgn: {
        // sqrt(a) * sgn(neg b): compose the two opaque calls exactly.
        auto a = normalize(expr, n.children[0]);
        auto b = normalize(expr, n.children[1]);
        if (!a || !b)
            return std::nullopt;
        auto qa = opaqueCall("q", *a);
        auto sb = opaqueCall("s", RatFunc{b->num.negated(), b->den});
        if (!qa || !sb)
            return std::nullopt;
        RatFunc out{qa->num.times(sb->num), qa->den.times(sb->den)};
        if (out.num.poisoned() || out.den.poisoned())
            return std::nullopt;
        return out;
      }

      default:
        // Vector and structural operators are outside the fragment.
        return std::nullopt;
    }
}

bool
polyProveEqual(const RecExpr &lhs, const RecExpr &rhs)
{
    Normalizer normalizer;
    // Opaque applications are collected as they are *encountered*,
    // not read off the final polynomial: an atom cancelled
    // algebraically (say, multiplied by zero) still carries a
    // definedness condition that must match across the sides.
    std::set<AtomId> atomsA, atomsB;
    normalizer.trackOpaque(&atomsA);
    auto a = normalizer.normalize(lhs);
    if (!a)
        return false;
    normalizer.trackOpaque(&atomsB);
    auto b = normalizer.normalize(rhs);
    normalizer.trackOpaque(nullptr);
    if (!b)
        return false;

    // Totality restriction: denominators must be nonzero constants.
    auto denConst = [](const RatFunc &f) {
        auto c = f.den.asConstant();
        return c && *c != Rational(0);
    };
    if (!denConst(*a) || !denConst(*b))
        return false;

    if (atomsA != atomsB)
        return false;

    return a->equivalent(*b);
}

} // namespace isaria
