#ifndef ISARIA_VERIFY_POLY_H
#define ISARIA_VERIFY_POLY_H

/**
 * @file
 * Multivariate polynomials with exact rational coefficients.
 *
 * The soundness verifier normalizes both sides of a candidate rewrite
 * rule into rational functions whose polynomials decide equality for
 * the ring fragment of the DSL. Coefficient arithmetic is checked; an
 * overflow poisons the polynomial, and the verifier falls back to
 * sampling.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/rational.h"

namespace isaria
{

/** Id of a polynomial variable (wildcard, symbol, or opaque term). */
using AtomId = std::int32_t;

/** A product of atoms-to-powers, e.g. x^2 * y. Kept sorted by atom. */
struct Monomial
{
    std::vector<std::pair<AtomId, int>> factors;

    bool operator==(const Monomial &other) const = default;
    bool operator<(const Monomial &other) const;

    /** Product of two monomials (exponents add). */
    Monomial times(const Monomial &other) const;

    std::string toString() const;
};

/** Sparse multivariate polynomial; zero coefficients are dropped. */
class Poly
{
  public:
    Poly() = default;

    static Poly constant(Rational value);
    static Poly atom(AtomId id);

    /** True after any coefficient arithmetic left the int64 domain. */
    bool poisoned() const { return poisoned_; }

    bool isZero() const { return !poisoned_ && terms_.empty(); }

    /** The constant value, when this polynomial has no variables. */
    std::optional<Rational> asConstant() const;

    /** Inserts every atom occurring in this polynomial into @p out. */
    void collectAtoms(std::set<AtomId> &out) const;

    Poly plus(const Poly &other) const;
    Poly minus(const Poly &other) const;
    Poly times(const Poly &other) const;
    Poly negated() const;

    /** Structural equality; poisoned polynomials never compare equal. */
    bool operator==(const Poly &other) const;

    /** Canonical rendering, usable as a stable interning key. */
    std::string toString() const;

  private:
    void insert(Monomial m, Rational coeff);

    std::map<Monomial, Rational> terms_;
    bool poisoned_ = false;
};

} // namespace isaria

#endif // ISARIA_VERIFY_POLY_H
