#ifndef ISARIA_VERIFY_VERIFIER_H
#define ISARIA_VERIFY_VERIFIER_H

/**
 * @file
 * Rule soundness checking (the role Rosette/SMT plays in the paper).
 *
 * A candidate rule is first *projected* lane by lane onto scalar terms
 * (lane-wise vector ops become their scalar counterparts, Vec literals
 * select one lane, vector wildcards become per-lane scalar wildcards)
 * and each projection is checked exactly by polynomial normalization.
 * If every lane proves, the rule is Proved. Otherwise the rule is
 * subjected to high-volume exact-rational sampling — the same
 * test-based filter Ruler applies before SMT — and is Tested on full
 * agreement with sufficient definedness, or Rejected.
 */

#include <optional>

#include "term/pattern.h"

namespace isaria
{

/** Outcome of soundness checking. */
enum class Verdict
{
    Proved,   ///< Every lane projection proved by normalization.
    Tested,   ///< Agreed on all samples with enough defined cases.
    Rejected, ///< A counterexample sample, or insufficient evidence.
};

const char *verdictName(Verdict verdict);

/** Knobs for the sampling fallback. */
struct VerifyOptions
{
    int samples = 96;
    /** Minimum samples on which both sides were fully defined. */
    int minDefined = 5;
    /** Lane width for vector wildcards when the rule has no Vec.
     *  The synthesis pipeline always overrides this with the target
     *  ISA's width (effectiveSynthConfig); the default only applies
     *  to standalone verifyRule() calls with no machine in scope. */
    int defaultWidth = 4;
    std::uint64_t seed = 0xC0FFEEULL;
};

/** Checks the candidate rule `lhs ~> rhs`. */
Verdict verifyRule(const Rule &rule, const VerifyOptions &options = {});

/**
 * Projects lane @p lane of a (possibly vector-sorted) term onto a
 * scalar term. Returns nullopt when the term is outside the lane-wise
 * fragment (Concat, List, mixed Vec widths shorter than the lane).
 * Exposed for tests and for the synthesizer's lane generalization.
 */
std::optional<RecExpr> projectLane(const RecExpr &expr, int lane);

/** The common width of every Vec literal, or nullopt if mixed/none. */
std::optional<int> uniformVecWidth(const RecExpr &expr);

} // namespace isaria

#endif // ISARIA_VERIFY_VERIFIER_H
