#include "verify/verifier.h"

#include <algorithm>

#include "interp/cvec.h"
#include "interp/eval.h"
#include "support/rng.h"
#include "verify/normalizer.h"

namespace isaria
{

namespace
{

/** Per-lane scalar wildcard standing in for lane @p lane of ?v. */
std::int32_t
laneWildcardId(std::int32_t vectorWildcard, int lane)
{
    return 2'000'000 + vectorWildcard * 16 + lane;
}

/** Recursive lane projection; returns the new root or nullopt. */
std::optional<NodeId>
projectNode(const RecExpr &src, NodeId id, const std::vector<Sort> &sorts,
            int lane, RecExpr &out)
{
    const TermNode &n = src.node(id);
    switch (n.op) {
      case Op::Wildcard:
        if (sorts[id] == Sort::Vector) {
            return out.addWildcard(laneWildcardId(
                static_cast<std::int32_t>(n.payload), lane));
        }
        return out.addWildcard(static_cast<std::int32_t>(n.payload));

      case Op::Const:
      case Op::Symbol:
      case Op::Get:
        return out.add(n.op, {}, n.payload);

      case Op::Vec: {
        if (lane >= static_cast<int>(n.children.size()))
            return std::nullopt;
        return projectNode(src, n.children[lane], sorts, lane, out);
      }

      case Op::Concat:
      case Op::List:
        return std::nullopt;

      case Op::VecMAC:
      case Op::VecMulSub: {
        auto acc = projectNode(src, n.children[0], sorts, lane, out);
        auto a = projectNode(src, n.children[1], sorts, lane, out);
        auto b = projectNode(src, n.children[2], sorts, lane, out);
        if (!acc || !a || !b)
            return std::nullopt;
        NodeId prod = out.add(Op::Mul, {*a, *b});
        return out.add(n.op == Op::VecMAC ? Op::Add : Op::Sub,
                       {*acc, prod});
      }

      default: {
        Op op = n.op;
        if (isLaneWiseVectorOp(op)) {
            op = scalarCounterpart(op);
            if (op == Op::NumOps)
                return std::nullopt;
        }
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children) {
            auto k = projectNode(src, child, sorts, lane, out);
            if (!k)
                return std::nullopt;
            kids.push_back(*k);
        }
        return out.add(op, std::move(kids), n.payload);
      }
    }
}

/** Wildcards of @p expr with their inferred sorts. */
std::vector<std::pair<std::int32_t, Sort>>
wildcardSorts(const RecExpr &expr)
{
    std::vector<Sort> sorts = expr.inferSorts();
    std::vector<std::pair<std::int32_t, Sort>> out;
    for (NodeId id = 0; id < static_cast<NodeId>(expr.size()); ++id) {
        const TermNode &n = expr.node(id);
        if (n.op != Op::Wildcard)
            continue;
        auto wid = static_cast<std::int32_t>(n.payload);
        Sort sort = sorts[id] == Sort::Vector ? Sort::Vector : Sort::Scalar;
        auto it = std::find_if(out.begin(), out.end(),
                               [&](const auto &p) { return p.first == wid; });
        if (it == out.end())
            out.emplace_back(wid, sort);
    }
    return out;
}

Verdict
sampleRule(const Rule &rule, int width, const VerifyOptions &options)
{
    auto wilds = wildcardSorts(rule.lhs);
    // Fold in rhs-only sort information (ids are shared, rhs has no
    // extra wildcards for well-formed rules).
    for (const auto &[wid, sort] : wildcardSorts(rule.rhs)) {
        for (auto &[lw, lsort] : wilds) {
            if (lw == wid && lsort != sort) {
                // Sort conflict between the sides: such a rule can
                // never be well-typed at apply time.
                return Verdict::Rejected;
            }
        }
    }

    const auto &pool = nicePool();
    Rng rng(options.seed);
    int defined = 0;
    for (int s = 0; s < options.samples; ++s) {
        Env env;
        auto pick = [&]() -> Rational {
            switch (s) {
              case 0: return Rational(0);
              case 1: return Rational(1);
              case 2: return Rational(-1);
              default: return pool[rng.nextBelow(pool.size())];
            }
        };
        for (const auto &[wid, sort] : wilds) {
            if (sort == Sort::Vector) {
                std::vector<Rational> lanes;
                for (int l = 0; l < width; ++l)
                    lanes.push_back(pick());
                env.wildcards[wid] = Value::vector(std::move(lanes));
            } else {
                env.wildcards[wid] = Value::scalar(pick());
            }
        }
        Value a = evalTerm(rule.lhs, env);
        Value b = evalTerm(rule.rhs, env);
        if (!a.agreesWith(b))
            return Verdict::Rejected;
        if (a.fullyDefined())
            ++defined;
    }
    return defined >= options.minDefined ? Verdict::Tested
                                         : Verdict::Rejected;
}

} // namespace

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Proved: return "proved";
      case Verdict::Tested: return "tested";
      case Verdict::Rejected: return "rejected";
    }
    return "?";
}

std::optional<RecExpr>
projectLane(const RecExpr &expr, int lane)
{
    RecExpr out;
    std::vector<Sort> sorts = expr.inferSorts();
    auto root = projectNode(expr, expr.rootId(), sorts, lane, out);
    if (!root)
        return std::nullopt;
    // The projection may have left dead nodes; re-extract the live
    // subtree so downstream tree operations see a tidy term.
    return out.subExpr(*root);
}

std::optional<int>
uniformVecWidth(const RecExpr &expr)
{
    std::optional<int> width;
    for (NodeId id = 0; id < static_cast<NodeId>(expr.size()); ++id) {
        const TermNode &n = expr.node(id);
        if (n.op != Op::Vec)
            continue;
        int w = static_cast<int>(n.children.size());
        if (width && *width != w)
            return std::nullopt;
        width = w;
    }
    return width;
}

Verdict
verifyRule(const Rule &rule, const VerifyOptions &options)
{
    // Determine lane count: the (uniform) width of the rule's Vec
    // literals if any, else 1 for a purely scalar or purely
    // whole-vector rule.
    std::optional<int> lw = uniformVecWidth(rule.lhs);
    std::optional<int> rw = uniformVecWidth(rule.rhs);
    int lanes = 1;
    bool mixed = false;
    if (lw && rw && *lw != *rw)
        mixed = true;
    else if (lw || rw)
        lanes = lw ? *lw : *rw;

    int sampleWidth = lanes > 1 ? lanes : options.defaultWidth;

    if (!mixed) {
        bool allProved = true;
        for (int lane = 0; lane < lanes && allProved; ++lane) {
            auto pl = projectLane(rule.lhs, lane);
            auto pr = projectLane(rule.rhs, lane);
            if (!pl || !pr || !polyProveEqual(*pl, *pr))
                allProved = false;
        }
        if (allProved)
            return Verdict::Proved;
    }

    return sampleRule(rule, sampleWidth, options);
}

} // namespace isaria
