#ifndef ISARIA_VERIFY_NORMALIZER_H
#define ISARIA_VERIFY_NORMALIZER_H

/**
 * @file
 * Normalization of scalar DSL terms into rational functions.
 *
 * Terms over {+, -, *, /, neg, constants, variables} normalize into a
 * formal quotient of polynomials; equality of the cross products then
 * decides term equality over the rationals. `sqrt` and `sgn` are
 * treated as uninterpreted functions: each application becomes an
 * opaque atom keyed by the canonical form of its argument, which is
 * sound (never equates unequal terms) but incomplete (misses
 * identities like sgn(-x) = -sgn(x), which fall back to sampling).
 *
 * Equality is modulo definedness: (a*b)/b normalizes to a even though
 * the left side is undefined at b = 0. This matches the IEEE float
 * semantics of the target DSP, where division is total.
 */

#include <map>
#include <optional>
#include <set>
#include <string>

#include "term/rec_expr.h"
#include "verify/poly.h"

namespace isaria
{

/** A formal quotient of polynomials (denominator nonzero as a poly). */
struct RatFunc
{
    Poly num;
    Poly den;

    /** Equality by cross-multiplication. */
    bool equivalent(const RatFunc &other) const;

    /** The constant value, if this is a constant function. */
    std::optional<Rational> asConstant() const;

    std::string toString() const;
};

/**
 * Normalizes scalar terms, interning atoms for variables and for
 * opaque (sqrt/sgn) applications. One Normalizer must be shared when
 * comparing terms so their atoms align.
 */
class Normalizer
{
  public:
    /**
     * Normalizes the subtree at @p root. Returns nullopt when the
     * term leaves the supported fragment (vector sorts, a denominator
     * that is identically zero, coefficient overflow).
     */
    std::optional<RatFunc> normalize(const RecExpr &expr, NodeId root);

    std::optional<RatFunc>
    normalize(const RecExpr &expr)
    {
        return normalize(expr, expr.rootId());
    }

    /** True for atoms standing in for sqrt/sgn applications. */
    bool isOpaqueAtom(AtomId id) const { return opaqueIds_.count(id) > 0; }

    /**
     * Collects, into @p out, every opaque application *encountered*
     * while normalizing subsequent terms — including ones later
     * cancelled algebraically (e.g. multiplied by zero), which is
     * what the totality check needs.
     */
    void trackOpaque(std::set<AtomId> *out) { collector_ = out; }

  private:
    AtomId leafAtom(int kind, std::int64_t payload);
    AtomId opaqueAtom(const std::string &key);
    std::optional<RatFunc> opaqueCall(const char *tag, const RatFunc &arg);

    std::map<std::pair<int, std::int64_t>, AtomId> leafAtoms_;
    std::map<std::string, AtomId> opaqueAtoms_;
    std::set<AtomId> opaqueIds_;
    std::set<AtomId> *collector_ = nullptr;
    AtomId nextAtom_ = 0;
};

/**
 * True iff the two scalar terms provably denote the same *total*
 * function: both sides must normalize with a constant nonzero
 * denominator (no residual division by a variable quantity) and
 * mention the same opaque sqrt/sgn applications. Those restrictions
 * keep "equal modulo definedness" facts like (a*b)/b = a out of the
 * e-graph, where congruence would let a division-by-zero instance
 * collapse unrelated classes (e.g. via (* a (/ b a)) = b at a = 0
 * together with (* 0 x) = 0).
 */
bool polyProveEqual(const RecExpr &lhs, const RecExpr &rhs);

} // namespace isaria

#endif // ISARIA_VERIFY_NORMALIZER_H
