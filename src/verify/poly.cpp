#include "verify/poly.h"

#include <algorithm>

namespace isaria
{

bool
Monomial::operator<(const Monomial &other) const
{
    return factors < other.factors;
}

Monomial
Monomial::times(const Monomial &other) const
{
    Monomial out;
    std::size_t i = 0, j = 0;
    while (i < factors.size() || j < other.factors.size()) {
        if (j == other.factors.size() ||
            (i < factors.size() &&
             factors[i].first < other.factors[j].first)) {
            out.factors.push_back(factors[i++]);
        } else if (i == factors.size() ||
                   other.factors[j].first < factors[i].first) {
            out.factors.push_back(other.factors[j++]);
        } else {
            out.factors.emplace_back(factors[i].first,
                                     factors[i].second +
                                         other.factors[j].second);
            ++i;
            ++j;
        }
    }
    return out;
}

std::string
Monomial::toString() const
{
    if (factors.empty())
        return "1";
    std::string out;
    for (std::size_t i = 0; i < factors.size(); ++i) {
        if (i)
            out += '*';
        out += 'a' + std::to_string(factors[i].first);
        if (factors[i].second != 1)
            out += '^' + std::to_string(factors[i].second);
    }
    return out;
}

Poly
Poly::constant(Rational value)
{
    Poly p;
    if (!value.valid()) {
        p.poisoned_ = true;
        return p;
    }
    if (value != Rational(0))
        p.terms_.emplace(Monomial{}, value);
    return p;
}

Poly
Poly::atom(AtomId id)
{
    Poly p;
    Monomial m;
    m.factors.emplace_back(id, 1);
    p.terms_.emplace(std::move(m), Rational(1));
    return p;
}

void
Poly::insert(Monomial m, Rational coeff)
{
    if (poisoned_)
        return;
    if (!coeff.valid()) {
        poisoned_ = true;
        terms_.clear();
        return;
    }
    auto it = terms_.find(m);
    if (it == terms_.end()) {
        if (coeff != Rational(0))
            terms_.emplace(std::move(m), coeff);
        return;
    }
    Rational sum = it->second + coeff;
    if (!sum.valid()) {
        poisoned_ = true;
        terms_.clear();
        return;
    }
    if (sum == Rational(0))
        terms_.erase(it);
    else
        it->second = sum;
}

Poly
Poly::plus(const Poly &other) const
{
    Poly out = *this;
    if (other.poisoned_)
        out.poisoned_ = true;
    if (out.poisoned_) {
        out.terms_.clear();
        return out;
    }
    for (const auto &[mono, coeff] : other.terms_)
        out.insert(mono, coeff);
    return out;
}

Poly
Poly::minus(const Poly &other) const
{
    return plus(other.negated());
}

Poly
Poly::negated() const
{
    Poly out;
    out.poisoned_ = poisoned_;
    for (const auto &[mono, coeff] : terms_)
        out.terms_.emplace(mono, -coeff);
    return out;
}

Poly
Poly::times(const Poly &other) const
{
    Poly out;
    if (poisoned_ || other.poisoned_) {
        out.poisoned_ = true;
        return out;
    }
    for (const auto &[ma, ca] : terms_) {
        for (const auto &[mb, cb] : other.terms_) {
            out.insert(ma.times(mb), ca * cb);
            if (out.poisoned_)
                return out;
        }
    }
    return out;
}

std::optional<Rational>
Poly::asConstant() const
{
    if (poisoned_)
        return std::nullopt;
    if (terms_.empty())
        return Rational(0);
    if (terms_.size() == 1 && terms_.begin()->first.factors.empty())
        return terms_.begin()->second;
    return std::nullopt;
}

void
Poly::collectAtoms(std::set<AtomId> &out) const
{
    for (const auto &[mono, coeff] : terms_) {
        for (const auto &[atom, exp] : mono.factors)
            out.insert(atom);
    }
}

bool
Poly::operator==(const Poly &other) const
{
    if (poisoned_ || other.poisoned_)
        return false;
    return terms_ == other.terms_;
}

std::string
Poly::toString() const
{
    if (poisoned_)
        return "<poisoned>";
    if (terms_.empty())
        return "0";
    std::string out;
    for (const auto &[mono, coeff] : terms_) {
        if (!out.empty())
            out += " + ";
        out += coeff.toString();
        if (!mono.factors.empty()) {
            out += '*';
            out += mono.toString();
        }
    }
    return out;
}

} // namespace isaria
