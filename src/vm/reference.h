#ifndef ISARIA_VM_REFERENCE_H
#define ISARIA_VM_REFERENCE_H

/**
 * @file
 * Reference (double-precision) evaluation of DSL programs.
 *
 * Used for differential testing: whatever the compiler and the
 * lowering pipeline produce must compute the same outputs as a direct
 * interpretation of the program over the same inputs.
 */

#include <vector>

#include "term/rec_expr.h"
#include "vm/machine.h"

namespace isaria
{

/**
 * Evaluates a program (List of vector chunks) over the named input
 * arrays, returning the flattened lane values of every chunk in
 * order (padding lanes included).
 */
std::vector<double> evalProgramDoubles(const RecExpr &program,
                                       const VmMemory &inputs);

/** Maximum absolute difference, or infinity on length mismatch. */
double maxAbsDiff(const std::vector<double> &a,
                  const std::vector<double> &b);

} // namespace isaria

#endif // ISARIA_VM_REFERENCE_H
