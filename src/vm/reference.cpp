#include "vm/reference.h"

#include <cmath>
#include <limits>

#include "support/panic.h"

namespace isaria
{

namespace
{

double
signOf(double x)
{
    return x > 0 ? 1.0 : x < 0 ? -1.0 : 0.0;
}

struct RefEval
{
    const RecExpr &expr;
    const VmMemory &memory;
    std::vector<std::vector<double>> memo;
    std::vector<bool> done;

    RefEval(const RecExpr &e, const VmMemory &m)
        : expr(e), memory(m), memo(e.size()), done(e.size(), false)
    {}

    const std::vector<double> &
    eval(NodeId id)
    {
        if (done[id])
            return memo[id];
        const TermNode &n = expr.node(id);
        std::vector<double> out;
        auto lane = [&](NodeId child) { return eval(child)[0]; };
        switch (n.op) {
          case Op::Const:
            out = {static_cast<double>(n.payload)};
            break;
          case Op::Get: {
            auto it = memory.find(getArray(n.payload));
            ISARIA_ASSERT(it != memory.end(), "reference: missing array");
            auto idx = static_cast<std::size_t>(getIndex(n.payload));
            ISARIA_ASSERT(idx < it->second.size(),
                          "reference: index out of bounds");
            out = {it->second[idx]};
            break;
          }
          case Op::Symbol: {
            auto it = memory.find(static_cast<SymbolId>(n.payload));
            ISARIA_ASSERT(it != memory.end() && !it->second.empty(),
                          "reference: missing symbol");
            out = {it->second[0]};
            break;
          }
          case Op::Add:
            out = {lane(n.children[0]) + lane(n.children[1])};
            break;
          case Op::Sub:
            out = {lane(n.children[0]) - lane(n.children[1])};
            break;
          case Op::Mul:
            out = {lane(n.children[0]) * lane(n.children[1])};
            break;
          case Op::Div:
            out = {lane(n.children[0]) / lane(n.children[1])};
            break;
          case Op::Neg:
            out = {-lane(n.children[0])};
            break;
          case Op::Sgn:
            out = {signOf(lane(n.children[0]))};
            break;
          case Op::Sqrt:
            out = {std::sqrt(lane(n.children[0]))};
            break;
          case Op::MulSub:
            out = {lane(n.children[0]) -
                   lane(n.children[1]) * lane(n.children[2])};
            break;
          case Op::SqrtSgn:
            out = {std::sqrt(lane(n.children[0])) *
                   signOf(-lane(n.children[1]))};
            break;
          case Op::Vec:
            for (NodeId child : n.children)
                out.push_back(lane(child));
            break;
          case Op::Concat: {
            out = eval(n.children[0]);
            const auto &tail = eval(n.children[1]);
            out.insert(out.end(), tail.begin(), tail.end());
            break;
          }
          case Op::VecAdd:
          case Op::VecMinus:
          case Op::VecMul:
          case Op::VecDiv: {
            const auto &a = eval(n.children[0]);
            const auto &b = eval(n.children[1]);
            ISARIA_ASSERT(a.size() == b.size(), "reference: width");
            out.resize(a.size());
            for (std::size_t l = 0; l < a.size(); ++l) {
                switch (n.op) {
                  case Op::VecAdd: out[l] = a[l] + b[l]; break;
                  case Op::VecMinus: out[l] = a[l] - b[l]; break;
                  case Op::VecMul: out[l] = a[l] * b[l]; break;
                  default: out[l] = a[l] / b[l]; break;
                }
            }
            break;
          }
          case Op::VecNeg:
          case Op::VecSgn:
          case Op::VecSqrt: {
            const auto &a = eval(n.children[0]);
            out.resize(a.size());
            for (std::size_t l = 0; l < a.size(); ++l) {
                out[l] = n.op == Op::VecNeg    ? -a[l]
                         : n.op == Op::VecSgn ? signOf(a[l])
                                               : std::sqrt(a[l]);
            }
            break;
          }
          case Op::VecMAC:
          case Op::VecMulSub: {
            const auto &acc = eval(n.children[0]);
            const auto &a = eval(n.children[1]);
            const auto &b = eval(n.children[2]);
            out.resize(acc.size());
            for (std::size_t l = 0; l < acc.size(); ++l) {
                double prod = a[l] * b[l];
                out[l] = n.op == Op::VecMAC ? acc[l] + prod
                                             : acc[l] - prod;
            }
            break;
          }
          case Op::VecSqrtSgn: {
            const auto &a = eval(n.children[0]);
            const auto &b = eval(n.children[1]);
            out.resize(a.size());
            for (std::size_t l = 0; l < a.size(); ++l)
                out[l] = std::sqrt(a[l]) * signOf(-b[l]);
            break;
          }
          default:
            ISARIA_PANIC("reference evaluation hit an unexpected op");
        }
        memo[id] = std::move(out);
        done[id] = true;
        return memo[id];
    }
};

} // namespace

std::vector<double>
evalProgramDoubles(const RecExpr &program, const VmMemory &inputs)
{
    ISARIA_ASSERT(!program.empty(), "reference: empty program");
    const TermNode &root = program.root();
    ISARIA_ASSERT(root.op == Op::List, "reference: root must be List");
    RefEval ref(program, inputs);
    std::vector<double> out;
    for (NodeId chunk : root.children) {
        const auto &lanes = ref.eval(chunk);
        out.insert(out.end(), lanes.begin(), lanes.end());
    }
    return out;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return std::numeric_limits<double>::infinity();
    double worst = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = std::fabs(a[i] - b[i]);
        if (std::isnan(a[i]) != std::isnan(b[i]))
            return std::numeric_limits<double>::infinity();
        if (!std::isnan(d))
            worst = std::max(worst, d);
    }
    return worst;
}

} // namespace isaria
