#include "vm/machine.h"

#include <array>
#include <cmath>

#include "obs/obs.h"
#include "support/panic.h"

namespace isaria
{

int
LatencyModel::latencyOf(VmOp op) const
{
    switch (op) {
      case VmOp::LoadScalar:
      case VmOp::LoadVec:
        return load;
      case VmOp::LoadConstS:
      case VmOp::LoadConstV:
        return loadConst;
      case VmOp::InsertLane:
      case VmOp::Splat:
        return insertLane;
      case VmOp::StoreScalar:
      case VmOp::StoreVec:
        return store;
      case VmOp::SAdd:
      case VmOp::SSub:
      case VmOp::SMul:
      case VmOp::SMulSub:
        return scalarAlu;
      case VmOp::SDiv:
        return scalarDiv;
      case VmOp::SSqrt:
      case VmOp::SSqrtSgn:
        return scalarSqrt;
      case VmOp::SSgn:
        return scalarSgn;
      case VmOp::SNeg:
        return scalarNeg;
      case VmOp::VAdd:
      case VmOp::VSub:
      case VmOp::VMul:
      case VmOp::VMac:
      case VmOp::VMulSub:
      case VmOp::VNeg:
      case VmOp::VSgn:
        return vectorAlu;
      case VmOp::VDiv:
        return vectorDiv;
      case VmOp::VSqrt:
      case VmOp::VSqrtSgn:
        return vectorSqrt;
    }
    return 1;
}

namespace
{

double
signOf(double x)
{
    return x > 0 ? 1.0 : x < 0 ? -1.0 : 0.0;
}

/** Functional + timing state of one run. */
struct Machine
{
    const VmProgram &program;
    const LatencyModel &latency;
    VmMemory memory;
    std::vector<double> sregs;
    std::vector<std::vector<double>> vregs;
    std::vector<std::uint64_t> sready;
    std::vector<std::uint64_t> vready;
    std::uint64_t computeFree = 0;
    std::uint64_t moveFree = 0;
    std::uint64_t lastWrite = 0;

    Machine(const VmProgram &p, const VmMemory &inputs,
            const LatencyModel &lat)
        : program(p), latency(lat), memory(inputs),
          sregs(p.numScalarRegs, 0.0),
          vregs(p.numVectorRegs, std::vector<double>(p.width, 0.0)),
          sready(p.numScalarRegs, 0), vready(p.numVectorRegs, 0)
    {}

    std::vector<double> &
    array(SymbolId sym, std::size_t needed)
    {
        auto &cells = memory[sym];
        if (cells.size() < needed)
            cells.resize(needed, 0.0);
        return cells;
    }

    void
    exec(const VmInst &inst)
    {
        const int w = program.width;
        // --- Timing: operands ready + slot availability.
        std::uint64_t ready = 0;
        auto sr = [&](std::int32_t r) {
            if (r >= 0)
                ready = std::max(ready, sready[r]);
        };
        auto vr = [&](std::int32_t r) {
            if (r >= 0)
                ready = std::max(ready, vready[r]);
        };
        bool scalarOperands = vmOpIsScalarCompute(inst.op) ||
                              inst.op == VmOp::StoreScalar ||
                              inst.op == VmOp::InsertLane ||
                              inst.op == VmOp::Splat;
        if (scalarOperands) {
            sr(inst.a);
            sr(inst.b);
            sr(inst.c);
        } else {
            vr(inst.a);
            vr(inst.b);
            vr(inst.c);
        }
        if (inst.op == VmOp::InsertLane)
            vr(inst.dst); // read-modify-write of the vector register

        // Issue shape: dual-issue machines give load/store/move ops
        // their own slot; single-issue machines funnel everything
        // through the compute cursor.
        std::uint64_t &slot =
            latency.dualIssue && vmOpIsMoveSlot(inst.op) ? moveFree
                                                         : computeFree;
        std::uint64_t issue = std::max(ready, slot);
        std::uint64_t done = issue + latency.latencyOf(inst.op);
        // The scalar FPU is not pipelined: it blocks its slot for the
        // whole operation. Vector and move units accept one op/cycle.
        slot = vmOpIsScalarCompute(inst.op) ? done : issue + 1;
        lastWrite = std::max(lastWrite, done);

        auto writeS = [&](double value) {
            sregs[inst.dst] = value;
            sready[inst.dst] = done;
        };
        auto writeV = [&](std::vector<double> value) {
            vregs[inst.dst] = std::move(value);
            vready[inst.dst] = done;
        };
        auto lanes = [&](std::int32_t r) -> const std::vector<double> & {
            return vregs[r];
        };

        // --- Functional semantics.
        switch (inst.op) {
          case VmOp::LoadScalar: {
            auto &cells = array(inst.arr, inst.imm + 1);
            writeS(cells[inst.imm]);
            break;
          }
          case VmOp::LoadConstS:
            writeS(inst.imms[0]);
            break;
          case VmOp::LoadVec: {
            auto &cells = array(inst.arr, inst.imm + w);
            writeV({cells.begin() + inst.imm,
                    cells.begin() + inst.imm + w});
            break;
          }
          case VmOp::LoadConstV:
            writeV(inst.imms);
            break;
          case VmOp::InsertLane: {
            std::vector<double> value = vregs[inst.dst];
            value[inst.imm] = sregs[inst.a];
            writeV(std::move(value));
            break;
          }
          case VmOp::Splat:
            writeV(std::vector<double>(w, sregs[inst.a]));
            break;
          case VmOp::StoreScalar: {
            auto &cells = array(inst.arr, inst.imm + 1);
            cells[inst.imm] = sregs[inst.a];
            break;
          }
          case VmOp::StoreVec: {
            auto &cells = array(inst.arr, inst.imm + w);
            for (int l = 0; l < w; ++l)
                cells[inst.imm + l] = vregs[inst.a][l];
            break;
          }

          case VmOp::SAdd: writeS(sregs[inst.a] + sregs[inst.b]); break;
          case VmOp::SSub: writeS(sregs[inst.a] - sregs[inst.b]); break;
          case VmOp::SMul: writeS(sregs[inst.a] * sregs[inst.b]); break;
          case VmOp::SDiv: writeS(sregs[inst.a] / sregs[inst.b]); break;
          case VmOp::SNeg: writeS(-sregs[inst.a]); break;
          case VmOp::SSgn: writeS(signOf(sregs[inst.a])); break;
          case VmOp::SSqrt: writeS(std::sqrt(sregs[inst.a])); break;
          case VmOp::SMulSub:
            writeS(sregs[inst.a] - sregs[inst.b] * sregs[inst.c]);
            break;
          case VmOp::SSqrtSgn:
            writeS(std::sqrt(sregs[inst.a]) * signOf(-sregs[inst.b]));
            break;

          case VmOp::VAdd:
          case VmOp::VSub:
          case VmOp::VMul:
          case VmOp::VDiv: {
            std::vector<double> out(w);
            const auto &x = lanes(inst.a);
            const auto &y = lanes(inst.b);
            for (int l = 0; l < w; ++l) {
                switch (inst.op) {
                  case VmOp::VAdd: out[l] = x[l] + y[l]; break;
                  case VmOp::VSub: out[l] = x[l] - y[l]; break;
                  case VmOp::VMul: out[l] = x[l] * y[l]; break;
                  default: out[l] = x[l] / y[l]; break;
                }
            }
            writeV(std::move(out));
            break;
          }
          case VmOp::VNeg:
          case VmOp::VSgn:
          case VmOp::VSqrt: {
            std::vector<double> out(w);
            const auto &x = lanes(inst.a);
            for (int l = 0; l < w; ++l) {
                out[l] = inst.op == VmOp::VNeg    ? -x[l]
                         : inst.op == VmOp::VSgn ? signOf(x[l])
                                                 : std::sqrt(x[l]);
            }
            writeV(std::move(out));
            break;
          }
          case VmOp::VMac:
          case VmOp::VMulSub: {
            std::vector<double> out(w);
            const auto &acc = lanes(inst.a);
            const auto &x = lanes(inst.b);
            const auto &y = lanes(inst.c);
            for (int l = 0; l < w; ++l) {
                double prod = x[l] * y[l];
                out[l] = inst.op == VmOp::VMac ? acc[l] + prod
                                               : acc[l] - prod;
            }
            writeV(std::move(out));
            break;
          }
          case VmOp::VSqrtSgn: {
            std::vector<double> out(w);
            const auto &x = lanes(inst.a);
            const auto &y = lanes(inst.b);
            for (int l = 0; l < w; ++l)
                out[l] = std::sqrt(x[l]) * signOf(-y[l]);
            writeV(std::move(out));
            break;
          }
        }
    }
};

} // namespace

VmRunResult
runProgram(const VmProgram &program, const VmMemory &inputs,
           const LatencyModel &latency)
{
    obs::Span span("vm/run",
                   static_cast<std::int64_t>(program.code.size()));
    ISARIA_ASSERT(program.width >= 1,
                  "VmProgram.width unset: the builder must derive it "
                  "from the machine description");
    Machine machine(program, inputs, latency);
    for (const VmInst &inst : program.code)
        machine.exec(inst);
    VmRunResult out;
    out.memory = std::move(machine.memory);
    out.cycles = machine.lastWrite;
    out.instructions = program.code.size();

    if (obs::TraceSession *trace = obs::TraceSession::active()) {
        // Opcode and issue-slot histograms for the simulated run —
        // aggregated outside the exec loop so tracing never touches
        // the cycle-accounting hot path.
        std::array<std::uint64_t, 64> opCounts{};
        std::uint64_t moveSlot = 0;
        std::uint64_t computeSlot = 0;
        for (const VmInst &inst : program.code) {
            ++opCounts[static_cast<std::size_t>(inst.op)];
            if (vmOpIsMoveSlot(inst.op))
                ++moveSlot;
            else
                ++computeSlot;
        }
        for (std::size_t op = 0; op < opCounts.size(); ++op) {
            if (opCounts[op] == 0)
                continue;
            trace->recordCounter(
                obs::internName(
                    std::string("vm/op/") +
                    vmOpName(static_cast<VmOp>(op))),
                static_cast<std::int64_t>(opCounts[op]));
        }
        trace->recordCounter(obs::internName("vm/slot/move"),
                             static_cast<std::int64_t>(moveSlot));
        trace->recordCounter(obs::internName("vm/slot/compute"),
                             static_cast<std::int64_t>(computeSlot));
        trace->recordCounter(obs::internName("vm/cycles"),
                             static_cast<std::int64_t>(out.cycles));
        trace->recordCounter(
            obs::internName("vm/instructions"),
            static_cast<std::int64_t>(out.instructions));
    }
    return out;
}

} // namespace isaria
