#include "vm/vm_isa.h"

namespace isaria
{

bool
vmOpIsVectorCompute(VmOp op)
{
    switch (op) {
      case VmOp::VAdd: case VmOp::VSub: case VmOp::VMul: case VmOp::VDiv:
      case VmOp::VNeg: case VmOp::VSgn: case VmOp::VSqrt: case VmOp::VMac:
      case VmOp::VMulSub: case VmOp::VSqrtSgn:
        return true;
      default:
        return false;
    }
}

bool
vmOpIsScalarCompute(VmOp op)
{
    switch (op) {
      case VmOp::SAdd: case VmOp::SSub: case VmOp::SMul: case VmOp::SDiv:
      case VmOp::SNeg: case VmOp::SSgn: case VmOp::SSqrt:
      case VmOp::SMulSub: case VmOp::SSqrtSgn:
        return true;
      default:
        return false;
    }
}

bool
vmOpIsMoveSlot(VmOp op)
{
    return !vmOpIsVectorCompute(op) && !vmOpIsScalarCompute(op);
}

const char *
vmOpName(VmOp op)
{
    switch (op) {
      case VmOp::LoadScalar: return "lds";
      case VmOp::LoadConstS: return "ldcs";
      case VmOp::LoadVec: return "ldv";
      case VmOp::LoadConstV: return "ldcv";
      case VmOp::InsertLane: return "ins";
      case VmOp::Splat: return "splat";
      case VmOp::StoreScalar: return "sts";
      case VmOp::StoreVec: return "stv";
      case VmOp::SAdd: return "sadd";
      case VmOp::SSub: return "ssub";
      case VmOp::SMul: return "smul";
      case VmOp::SDiv: return "sdiv";
      case VmOp::SNeg: return "sneg";
      case VmOp::SSgn: return "ssgn";
      case VmOp::SSqrt: return "ssqrt";
      case VmOp::SMulSub: return "smulsub";
      case VmOp::SSqrtSgn: return "ssqrtsgn";
      case VmOp::VAdd: return "vadd";
      case VmOp::VSub: return "vsub";
      case VmOp::VMul: return "vmul";
      case VmOp::VDiv: return "vdiv";
      case VmOp::VNeg: return "vneg";
      case VmOp::VSgn: return "vsgn";
      case VmOp::VSqrt: return "vsqrt";
      case VmOp::VMac: return "vmac";
      case VmOp::VMulSub: return "vmulsub";
      case VmOp::VSqrtSgn: return "vsqrtsgn";
    }
    return "?";
}

std::string
VmProgram::toString() const
{
    std::string out;
    for (const VmInst &inst : code) {
        // Register-class prefixes: f = scalar float, v = vector.
        bool scalarDst = inst.op == VmOp::LoadScalar ||
                         inst.op == VmOp::LoadConstS ||
                         vmOpIsScalarCompute(inst.op);
        bool scalarSrc = vmOpIsScalarCompute(inst.op) ||
                         inst.op == VmOp::StoreScalar ||
                         inst.op == VmOp::InsertLane ||
                         inst.op == VmOp::Splat;
        const char *dstPrefix = scalarDst ? " f" : " v";
        const char *srcPrefix = scalarSrc ? " f" : " v";
        out += vmOpName(inst.op);
        if (inst.dst >= 0)
            out += dstPrefix + std::to_string(inst.dst);
        if (inst.a >= 0)
            out += srcPrefix + std::to_string(inst.a);
        if (inst.b >= 0)
            out += srcPrefix + std::to_string(inst.b);
        if (inst.c >= 0)
            out += srcPrefix + std::to_string(inst.c);
        switch (inst.op) {
          case VmOp::LoadScalar:
          case VmOp::LoadVec:
          case VmOp::StoreScalar:
          case VmOp::StoreVec:
            out += " " + symbolName(inst.arr) + "[" +
                   std::to_string(inst.imm) + "]";
            break;
          case VmOp::InsertLane:
            out += " lane" + std::to_string(inst.imm);
            break;
          default:
            break;
        }
        out += '\n';
    }
    return out;
}

std::size_t
VmProgram::countVectorCompute() const
{
    std::size_t count = 0;
    for (const VmInst &inst : code)
        count += vmOpIsVectorCompute(inst.op);
    return count;
}

std::size_t
VmProgram::countScalarCompute() const
{
    std::size_t count = 0;
    for (const VmInst &inst : code)
        count += vmOpIsScalarCompute(inst.op);
    return count;
}

} // namespace isaria
