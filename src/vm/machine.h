#ifndef ISARIA_VM_MACHINE_H
#define ISARIA_VM_MACHINE_H

/**
 * @file
 * Cycle-level simulator for the virtual DSP.
 *
 * Stands in for the proprietary cycle simulators the paper measures
 * with. The model is in-order with a configurable issue shape
 * (LatencyModel::dualIssue): either a VLIW with one compute slot
 * (scalar or vector) and one load/store/move slot per cycle, or a
 * single-issue pipe where every op shares one slot. Per-opcode
 * latencies come from the machine description; an instruction
 * occupies its slot for one cycle (the non-pipelined scalar FPU
 * aside) and its result is ready `latency` cycles later. Absolute
 * numbers differ from real silicon, but the scalar/vector/
 * data-movement cost ratios that drive every experiment in the paper
 * are preserved.
 */

#include <unordered_map>

#include "vm/vm_isa.h"

namespace isaria
{

/**
 * Per-opcode result latencies and the issue-slot shape, in cycles.
 *
 * The scalar floating-point unit is modeled as *non-pipelined* (it
 * occupies the compute slot for its full latency), matching the slow
 * scalar path of low-power DSPs; the SIMD unit and the load/store
 * unit are fully pipelined. The defaults are the Fusion G3-like
 * numbers; other targets supply their own table via
 * MachineDesc::latency.
 */
struct LatencyModel
{
    /** Issue-slot shape: true = dual-issue VLIW (a compute slot plus
     *  a load/store/move slot per cycle); false = single-issue (all
     *  ops share one slot). */
    bool dualIssue = true;
    int scalarAlu = 8;   ///< Slow scalar float path.
    int scalarDiv = 20;
    int scalarSqrt = 25;
    int scalarSgn = 4;
    int scalarNeg = 4;
    int vectorAlu = 2;   ///< SIMD add/sub/mul/neg/sgn/mac.
    int vectorDiv = 10;
    int vectorSqrt = 12;
    int load = 3;
    int insertLane = 2;
    int loadConst = 1;
    int store = 1;

    int latencyOf(VmOp op) const;
};

/** Named array contents (inputs in, outputs out). */
using VmMemory = std::unordered_map<SymbolId, std::vector<double>>;

/** Result of one simulation. */
struct VmRunResult
{
    VmMemory memory;
    std::uint64_t cycles = 0;
    std::size_t instructions = 0;
};

/**
 * Executes @p program over @p inputs and counts cycles.
 *
 * Reading an array that is not present in @p inputs creates it
 * zero-filled and grown on demand; stores likewise grow arrays. Reads
 * past a provided input's length fault (panic) — the compiler should
 * never emit them.
 */
VmRunResult runProgram(const VmProgram &program, const VmMemory &inputs,
                       const LatencyModel &latency = {});

} // namespace isaria

#endif // ISARIA_VM_MACHINE_H
