#ifndef ISARIA_VM_MACHINE_H
#define ISARIA_VM_MACHINE_H

/**
 * @file
 * Cycle-level simulator for the virtual DSP.
 *
 * Stands in for the proprietary Tensilica cycle simulator the paper
 * measures with. The model is an in-order dual-issue VLIW: one
 * compute slot (scalar or vector) and one load/store/move slot per
 * cycle, with per-opcode latencies and full pipelining — an
 * instruction occupies its slot for one cycle and its result is ready
 * `latency` cycles later. Absolute numbers differ from real silicon,
 * but the scalar/vector/data-movement cost ratios that drive every
 * experiment in the paper are preserved.
 */

#include <unordered_map>

#include "vm/vm_isa.h"

namespace isaria
{

/**
 * Per-opcode result latencies, in cycles.
 *
 * The scalar floating-point unit is modeled as *non-pipelined* (it
 * occupies the compute slot for its full latency), matching the slow
 * scalar path of low-power DSPs; the SIMD unit and the load/store
 * unit are fully pipelined.
 */
struct LatencyModel
{
    int scalarAlu = 8;   ///< Slow scalar float path.
    int scalarDiv = 20;
    int scalarSqrt = 25;
    int scalarSgn = 4;
    int scalarNeg = 4;
    int vectorAlu = 2;   ///< SIMD add/sub/mul/neg/sgn/mac.
    int vectorDiv = 10;
    int vectorSqrt = 12;
    int load = 3;
    int insertLane = 2;
    int loadConst = 1;
    int store = 1;

    int latencyOf(VmOp op) const;
};

/** Named array contents (inputs in, outputs out). */
using VmMemory = std::unordered_map<SymbolId, std::vector<double>>;

/** Result of one simulation. */
struct VmRunResult
{
    VmMemory memory;
    std::uint64_t cycles = 0;
    std::size_t instructions = 0;
};

/**
 * Executes @p program over @p inputs and counts cycles.
 *
 * Reading an array that is not present in @p inputs creates it
 * zero-filled and grown on demand; stores likewise grow arrays. Reads
 * past a provided input's length fault (panic) — the compiler should
 * never emit them.
 */
VmRunResult runProgram(const VmProgram &program, const VmMemory &inputs,
                       const LatencyModel &latency = {});

} // namespace isaria

#endif // ISARIA_VM_MACHINE_H
