#ifndef ISARIA_VM_VM_ISA_H
#define ISARIA_VM_VM_ISA_H

/**
 * @file
 * The virtual DSP instruction set executed by the cycle simulator.
 *
 * This models an embedded DSP with a scalar floating-point path, a
 * W-wide SIMD unit, and explicit data movement between them; the lane
 * width W, latencies, and issue shape all come from the machine
 * description (isa/machine_desc.h). Code is straight-line (kernels
 * are fully unrolled by the front-end, exactly as in the paper) over
 * an unbounded virtual register file; the cycle model charges issue
 * slots and latencies, not register pressure.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/interner.h"

namespace isaria
{

/** Opcodes of the virtual DSP. */
enum class VmOp : std::uint8_t
{
    // Load/store/move slot.
    LoadScalar, ///< f[dst] = mem[arr][imm]
    LoadConstS, ///< f[dst] = imms[0]
    LoadVec,    ///< v[dst] = mem[arr][imm .. imm+W-1]
    LoadConstV, ///< v[dst] = imms[0..W-1]
    InsertLane, ///< v[dst][laneOf(imm)] = f[a]
    Splat,      ///< v[dst] = broadcast f[a] to every lane
    StoreScalar, ///< mem[arr][imm] = f[a]
    StoreVec,   ///< mem[arr][imm ..] = v[a]

    // Scalar compute slot.
    SAdd, SSub, SMul, SDiv, SNeg, SSgn, SSqrt,
    SMulSub,  ///< f[dst] = f[a] - f[b]*f[c]
    SSqrtSgn, ///< f[dst] = sqrt(f[a]) * sign(-f[b])

    // Vector compute slot.
    VAdd, VSub, VMul, VDiv, VNeg, VSgn, VSqrt,
    VMac,     ///< v[dst] = v[a] + v[b]*v[c]
    VMulSub,  ///< v[dst] = v[a] - v[b]*v[c]
    VSqrtSgn, ///< lane-wise sqrt(a)*sign(-b)
};

/** True for vector-register-producing/consuming compute ops. */
bool vmOpIsVectorCompute(VmOp op);
/** True for scalar compute ops. */
bool vmOpIsScalarCompute(VmOp op);
/** True for ops issued on the load/store/move slot. */
bool vmOpIsMoveSlot(VmOp op);

const char *vmOpName(VmOp op);

/** One instruction; unused fields are -1/0. */
struct VmInst
{
    VmOp op;
    std::int32_t dst = -1;
    std::int32_t a = -1;
    std::int32_t b = -1;
    std::int32_t c = -1;
    SymbolId arr = 0;
    std::int32_t imm = 0;
    std::vector<double> imms;
};

/** A straight-line program for the virtual DSP. */
struct VmProgram
{
    std::vector<VmInst> code;
    std::int32_t numScalarRegs = 0;
    std::int32_t numVectorRegs = 0;
    /** Lane width, derived from the machine description by whoever
     *  builds the program. 0 = unset; runProgram() rejects it, so a
     *  builder that forgets fails loudly instead of silently running
     *  at a default width. */
    int width = 0;

    std::string toString() const;

    /** Instruction counts by slot, for reports. */
    std::size_t countVectorCompute() const;
    std::size_t countScalarCompute() const;
};

} // namespace isaria

#endif // ISARIA_VM_VM_ISA_H
