#ifndef ISARIA_INTERP_VALUE_H
#define ISARIA_INTERP_VALUE_H

/**
 * @file
 * Runtime values of the DSL interpreter.
 *
 * A value is a scalar (one lane) or a vector (one lane per element).
 * Undefinedness is per-lane — an invalid Rational — and a structurally
 * broken evaluation (sort mismatch, width mismatch) yields a value
 * whose every lane is invalid.
 */

#include <string>
#include <vector>

#include "support/rational.h"
#include "term/op.h"

namespace isaria
{

/** A scalar or vector runtime value. */
struct Value
{
    Sort sort = Sort::Scalar;
    std::vector<Rational> lanes;

    static Value scalar(Rational r);
    static Value vector(std::vector<Rational> lanes);
    /** Fully undefined scalar. */
    static Value undef();
    /** Fully undefined vector of the given width. */
    static Value undefVector(std::size_t width);

    bool isScalar() const { return sort == Sort::Scalar; }
    bool isVector() const { return sort == Sort::Vector; }
    std::size_t width() const { return lanes.size(); }

    /** True iff every lane is a valid rational. */
    bool fullyDefined() const;
    /** True iff no lane is a valid rational. */
    bool fullyUndefined() const;

    /**
     * Observational agreement: same sort and width, and each lane pair
     * is either equal or both undefined.
     */
    bool agreesWith(const Value &other) const;

    /** Hash compatible with agreesWith-as-equivalence. */
    std::size_t hash() const;

    std::string toString() const;
};

} // namespace isaria

#endif // ISARIA_INTERP_VALUE_H
