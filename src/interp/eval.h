#ifndef ISARIA_INTERP_EVAL_H
#define ISARIA_INTERP_EVAL_H

/**
 * @file
 * The executable ISA specification: an interpreter for the vector DSL.
 *
 * This plays the role of the Rosette interpreter the paper takes as
 * input (Section 3, Fig. 2): it defines the semantics of every scalar
 * and vector instruction, and everything downstream — rule synthesis,
 * soundness checking, differential testing of compiled code — is
 * derived from it.
 */

#include <unordered_map>
#include <vector>

#include "interp/value.h"
#include "term/rec_expr.h"

namespace isaria
{

/** Variable bindings for one evaluation. */
struct Env
{
    /** Free scalar variables (Op::Symbol). */
    std::unordered_map<SymbolId, Rational> scalars;
    /** Arrays addressed by Op::Get. */
    std::unordered_map<SymbolId, std::vector<Rational>> arrays;
    /** Pattern variables (Op::Wildcard), sort-polymorphic. */
    std::unordered_map<std::int32_t, Value> wildcards;
};

/**
 * Evaluates the subtree of @p expr rooted at @p root under @p env.
 *
 * Out-of-domain situations (unknown variable, array out of bounds,
 * sort or width mismatch, division by zero, irrational square root,
 * arithmetic overflow) produce undefined lanes rather than errors, per
 * the option semantics used by rule synthesis.
 */
Value evalTerm(const RecExpr &expr, NodeId root, const Env &env);

/** Evaluates the root of @p expr. */
Value evalTerm(const RecExpr &expr, const Env &env);

/**
 * Evaluates a whole program. A top-level List yields one value per
 * element; any other root yields a single value.
 */
std::vector<Value> evalProgram(const RecExpr &expr, const Env &env);

} // namespace isaria

#endif // ISARIA_INTERP_EVAL_H
