#include "interp/eval.h"

#include "support/panic.h"

namespace isaria
{

namespace
{

/** Lane-wise application of a binary rational operation. */
template <typename Fn>
Value
zipLanes(const Value &a, const Value &b, Fn fn)
{
    if (a.sort != b.sort || a.width() != b.width())
        return Value::undefVector(std::max(a.width(), b.width()));
    Value out;
    out.sort = a.sort;
    out.lanes.reserve(a.width());
    for (std::size_t i = 0; i < a.width(); ++i)
        out.lanes.push_back(fn(a.lanes[i], b.lanes[i]));
    return out;
}

/** Lane-wise application of a unary rational operation. */
template <typename Fn>
Value
mapLanes(const Value &a, Fn fn)
{
    Value out;
    out.sort = a.sort;
    out.lanes.reserve(a.width());
    for (const Rational &lane : a.lanes)
        out.lanes.push_back(fn(lane));
    return out;
}

Rational
sqrtSgnScalar(const Rational &a, const Rational &b)
{
    // sqrt(a) * sign(-b), the custom instruction of Section 5.4.
    return a.sqrt() * (-b).sgn();
}

Value
requireSort(Value v, Sort sort)
{
    if (v.sort != sort) {
        return sort == Sort::Scalar ? Value::undef()
                                    : Value::undefVector(v.width());
    }
    return v;
}

struct Interp
{
    const RecExpr &expr;
    const Env &env;
    std::vector<Value> memo;
    std::vector<bool> done;

    Interp(const RecExpr &e, const Env &en)
        : expr(e), env(en), memo(e.size()), done(e.size(), false)
    {}

    const Value &
    eval(NodeId id)
    {
        if (done[id])
            return memo[id];
        memo[id] = compute(id);
        done[id] = true;
        return memo[id];
    }

    Value
    compute(NodeId id)
    {
        const TermNode &n = expr.node(id);
        switch (n.op) {
          case Op::Const:
            return Value::scalar(Rational(n.payload));
          case Op::Symbol: {
            auto it = env.scalars.find(static_cast<SymbolId>(n.payload));
            if (it == env.scalars.end())
                return Value::undef();
            return Value::scalar(it->second);
          }
          case Op::Get: {
            auto it = env.arrays.find(getArray(n.payload));
            if (it == env.arrays.end())
                return Value::undef();
            std::int32_t index = getIndex(n.payload);
            if (index < 0 ||
                static_cast<std::size_t>(index) >= it->second.size()) {
                return Value::undef();
            }
            return Value::scalar(it->second[index]);
          }
          case Op::Wildcard: {
            auto it = env.wildcards.find(
                static_cast<std::int32_t>(n.payload));
            if (it == env.wildcards.end())
                return Value::undef();
            return it->second;
          }

          case Op::Add:
            return scalarBin(n, [](auto a, auto b) { return a + b; });
          case Op::Sub:
            return scalarBin(n, [](auto a, auto b) { return a - b; });
          case Op::Mul:
            return scalarBin(n, [](auto a, auto b) { return a * b; });
          case Op::Div:
            return scalarBin(n, [](auto a, auto b) { return a / b; });
          case Op::Neg:
            return scalarUn(n, [](auto a) { return -a; });
          case Op::Sgn:
            return scalarUn(n, [](auto a) { return a.sgn(); });
          case Op::Sqrt:
            return scalarUn(n, [](auto a) { return a.sqrt(); });
          case Op::MulSub: {
            // (MulSub acc a b) = acc - a*b.
            Value acc = requireSort(eval(n.children[0]), Sort::Scalar);
            Value a = requireSort(eval(n.children[1]), Sort::Scalar);
            Value b = requireSort(eval(n.children[2]), Sort::Scalar);
            return Value::scalar(acc.lanes[0] - a.lanes[0] * b.lanes[0]);
          }
          case Op::SqrtSgn: {
            Value a = requireSort(eval(n.children[0]), Sort::Scalar);
            Value b = requireSort(eval(n.children[1]), Sort::Scalar);
            return Value::scalar(sqrtSgnScalar(a.lanes[0], b.lanes[0]));
          }

          case Op::Vec: {
            Value out;
            out.sort = Sort::Vector;
            out.lanes.reserve(n.children.size());
            for (NodeId child : n.children) {
                Value lane = requireSort(eval(child), Sort::Scalar);
                out.lanes.push_back(lane.lanes[0]);
            }
            return out;
          }
          case Op::Concat: {
            Value a = eval(n.children[0]);
            Value b = eval(n.children[1]);
            if (!a.isVector() || !b.isVector())
                return Value::undefVector(a.width() + b.width());
            Value out;
            out.sort = Sort::Vector;
            out.lanes = a.lanes;
            out.lanes.insert(out.lanes.end(), b.lanes.begin(),
                             b.lanes.end());
            return out;
          }

          case Op::VecAdd:
            return vectorBin(n, [](auto a, auto b) { return a + b; });
          case Op::VecMinus:
            return vectorBin(n, [](auto a, auto b) { return a - b; });
          case Op::VecMul:
            return vectorBin(n, [](auto a, auto b) { return a * b; });
          case Op::VecDiv:
            return vectorBin(n, [](auto a, auto b) { return a / b; });
          case Op::VecNeg:
            return vectorUn(n, [](auto a) { return -a; });
          case Op::VecSgn:
            return vectorUn(n, [](auto a) { return a.sgn(); });
          case Op::VecSqrt:
            return vectorUn(n, [](auto a) { return a.sqrt(); });
          case Op::VecMAC: {
            // (VecMAC acc a b) = acc + a*b, lane-wise.
            Value prod = zipLanes(vec(n.children[1]), vec(n.children[2]),
                                  [](auto a, auto b) { return a * b; });
            return zipLanes(vec(n.children[0]), prod,
                            [](auto a, auto b) { return a + b; });
          }
          case Op::VecMulSub: {
            Value prod = zipLanes(vec(n.children[1]), vec(n.children[2]),
                                  [](auto a, auto b) { return a * b; });
            return zipLanes(vec(n.children[0]), prod,
                            [](auto a, auto b) { return a - b; });
          }
          case Op::VecSqrtSgn:
            return zipLanes(vec(n.children[0]), vec(n.children[1]),
                            sqrtSgnScalar);

          case Op::List:
            // Lists are evaluated by evalProgram, element-wise.
            return Value::undef();

          default:
            ISARIA_PANIC("unhandled op in interpreter");
        }
    }

    Value
    vec(NodeId id)
    {
        Value v = eval(id);
        if (!v.isVector())
            return Value::undefVector(v.width());
        return v;
    }

    template <typename Fn>
    Value
    scalarBin(const TermNode &n, Fn fn)
    {
        Value a = requireSort(eval(n.children[0]), Sort::Scalar);
        Value b = requireSort(eval(n.children[1]), Sort::Scalar);
        return Value::scalar(fn(a.lanes[0], b.lanes[0]));
    }

    template <typename Fn>
    Value
    scalarUn(const TermNode &n, Fn fn)
    {
        Value a = requireSort(eval(n.children[0]), Sort::Scalar);
        return Value::scalar(fn(a.lanes[0]));
    }

    template <typename Fn>
    Value
    vectorBin(const TermNode &n, Fn fn)
    {
        return zipLanes(vec(n.children[0]), vec(n.children[1]), fn);
    }

    template <typename Fn>
    Value
    vectorUn(const TermNode &n, Fn fn)
    {
        return mapLanes(vec(n.children[0]), fn);
    }
};

} // namespace

Value
evalTerm(const RecExpr &expr, NodeId root, const Env &env)
{
    Interp interp(expr, env);
    return interp.eval(root);
}

Value
evalTerm(const RecExpr &expr, const Env &env)
{
    ISARIA_ASSERT(!expr.empty(), "evaluating empty term");
    return evalTerm(expr, expr.rootId(), env);
}

std::vector<Value>
evalProgram(const RecExpr &expr, const Env &env)
{
    ISARIA_ASSERT(!expr.empty(), "evaluating empty program");
    const TermNode &root = expr.root();
    Interp interp(expr, env);
    std::vector<Value> out;
    if (root.op == Op::List) {
        out.reserve(root.children.size());
        for (NodeId child : root.children)
            out.push_back(interp.eval(child));
    } else {
        out.push_back(interp.eval(expr.rootId()));
    }
    return out;
}

} // namespace isaria
