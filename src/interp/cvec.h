#ifndef ISARIA_INTERP_CVEC_H
#define ISARIA_INTERP_CVEC_H

/**
 * @file
 * Characteristic vectors ("cvecs") for rule synthesis.
 *
 * Following Ruler, the synthesizer fingerprints every enumerated term
 * by its value on a fixed battery of environments. Terms whose
 * fingerprints agree become candidate rewrite rules. Values come from
 * a pool of "nice" rationals (integers, halves, perfect squares) so
 * that sqrt and division are defined often enough to be informative.
 */

#include <cstdint>
#include <vector>

#include "interp/eval.h"

namespace isaria
{

/**
 * Wildcard ids at or above this base are vector-sorted in synthesis
 * environments; ids below it are scalar-sorted. This keeps one Env
 * able to bind both sorts without clashes.
 */
constexpr std::int32_t kVectorWildcardBase = 1000;

/** One value per fingerprint environment. */
using CVec = std::vector<Value>;

/** Pool of sample rationals used to build environments. */
const std::vector<Rational> &nicePool();

/**
 * Builds @p numEnvs environments binding scalar wildcards 0..S-1 and
 * vector wildcards kVectorWildcardBase..+V-1 (each @p width lanes).
 * The first few environments are systematic (zeros, ones, negatives)
 * and the rest pseudo-random from the pool, deterministically seeded.
 */
std::vector<Env> makeWildcardEnvs(int numScalar, int numVector, int width,
                                  int numEnvs, std::uint64_t seed);

/** Evaluates @p expr on every environment. */
CVec fingerprint(const RecExpr &expr, const std::vector<Env> &envs);

/** Position-wise agreement (undefined matches only undefined). */
bool cvecAgree(const CVec &a, const CVec &b);

/** Number of fully defined samples. */
int cvecDefinedCount(const CVec &cvec);

/** Hash compatible with cvecAgree. */
std::size_t cvecHash(const CVec &cvec);

} // namespace isaria

#endif // ISARIA_INTERP_CVEC_H
