#include "interp/cvec.h"

#include "support/hash.h"
#include "support/rng.h"

namespace isaria
{

const std::vector<Rational> &
nicePool()
{
    static const std::vector<Rational> pool = {
        Rational(0),  Rational(1),  Rational(-1), Rational(2),
        Rational(-2), Rational(3),  Rational(-3), Rational(4),
        Rational(9),  Rational(16), Rational(25), Rational(-4),
        Rational::make(1, 2), Rational::make(-1, 2),
        Rational::make(1, 4), Rational::make(9, 4),
        Rational(5),  Rational(7),  Rational(-5), Rational(36),
    };
    return pool;
}

std::vector<Env>
makeWildcardEnvs(int numScalar, int numVector, int width, int numEnvs,
                 std::uint64_t seed)
{
    const auto &pool = nicePool();
    Rng rng(seed);
    std::vector<Env> envs;
    envs.reserve(numEnvs);
    for (int e = 0; e < numEnvs; ++e) {
        Env env;
        auto pick = [&]() -> Rational {
            // The first environments are systematic to catch the
            // common traps (x+x vs x*x at 0/2, sign flips, etc.).
            switch (e) {
              case 0: return Rational(0);
              case 1: return Rational(1);
              case 2: return Rational(-1);
              default:
                return pool[rng.nextBelow(pool.size())];
            }
        };
        for (int s = 0; s < numScalar; ++s)
            env.wildcards[s] = Value::scalar(pick());
        for (int v = 0; v < numVector; ++v) {
            std::vector<Rational> lanes;
            lanes.reserve(width);
            for (int lane = 0; lane < width; ++lane)
                lanes.push_back(pick());
            env.wildcards[kVectorWildcardBase + v] =
                Value::vector(std::move(lanes));
        }
        envs.push_back(std::move(env));
    }
    return envs;
}

CVec
fingerprint(const RecExpr &expr, const std::vector<Env> &envs)
{
    CVec out;
    out.reserve(envs.size());
    for (const Env &env : envs)
        out.push_back(evalTerm(expr, env));
    return out;
}

bool
cvecAgree(const CVec &a, const CVec &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].agreesWith(b[i]))
            return false;
    }
    return true;
}

int
cvecDefinedCount(const CVec &cvec)
{
    int count = 0;
    for (const Value &v : cvec) {
        if (v.fullyDefined())
            ++count;
    }
    return count;
}

std::size_t
cvecHash(const CVec &cvec)
{
    std::size_t h = hashMix(cvec.size());
    for (const Value &v : cvec)
        hashCombine(h, v.hash());
    return h;
}

} // namespace isaria
