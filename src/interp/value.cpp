#include "interp/value.h"

#include "support/hash.h"

namespace isaria
{

Value
Value::scalar(Rational r)
{
    Value v;
    v.sort = Sort::Scalar;
    v.lanes = {r};
    return v;
}

Value
Value::vector(std::vector<Rational> lanes)
{
    Value v;
    v.sort = Sort::Vector;
    v.lanes = std::move(lanes);
    return v;
}

Value
Value::undef()
{
    return scalar(Rational::invalid());
}

Value
Value::undefVector(std::size_t width)
{
    return vector(std::vector<Rational>(width, Rational::invalid()));
}

bool
Value::fullyDefined() const
{
    for (const Rational &lane : lanes) {
        if (!lane.valid())
            return false;
    }
    return !lanes.empty();
}

bool
Value::fullyUndefined() const
{
    for (const Rational &lane : lanes) {
        if (lane.valid())
            return false;
    }
    return true;
}

bool
Value::agreesWith(const Value &other) const
{
    if (sort != other.sort || lanes.size() != other.lanes.size())
        return false;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        bool av = lanes[i].valid();
        bool bv = other.lanes[i].valid();
        if (av != bv)
            return false;
        if (av && lanes[i] != other.lanes[i])
            return false;
    }
    return true;
}

std::size_t
Value::hash() const
{
    std::size_t h = hashMix(static_cast<std::uint64_t>(sort) + 17 +
                            lanes.size() * 131);
    for (const Rational &lane : lanes)
        hashCombine(h, lane.hash());
    return h;
}

std::string
Value::toString() const
{
    if (isScalar())
        return lanes.empty() ? "#undef" : lanes[0].toString();
    std::string out = "[";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (i)
            out += ' ';
        out += lanes[i].toString();
    }
    out += ']';
    return out;
}

} // namespace isaria
