#ifndef ISARIA_EGRAPH_EMATCH_H
#define ISARIA_EGRAPH_EMATCH_H

/**
 * @file
 * E-matching: finding all embeddings of a pattern in an e-graph.
 *
 * Patterns are DSL terms with Op::Wildcard leaves. A match binds each
 * wildcard to an e-class and names the e-class the pattern root
 * matched in.
 *
 * Each pattern is compiled once into a flat instruction sequence (an
 * abstract machine in the style of egg's and de Moura & Bjørner's
 * e-matching VMs): Bind instructions enumerate the e-nodes of a class
 * register that carry the right operator and write the children into
 * fresh registers; Check instructions enforce non-linear wildcards.
 * Execution walks the program with an explicit backtracking stack of
 * (instruction, next-candidate) frames — no per-node heap-allocated
 * continuations. Matches are emitted in the same depth-first order as
 * a naive backtracking matcher, so results are deterministic.
 *
 * searchClass only reads the e-graph (via the frozen find path), so
 * one pattern may be searched from many threads concurrently as long
 * as each thread appends to its own output buffer.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "egraph/egraph.h"
#include "support/cancel.h"

namespace isaria
{

/**
 * Per-slot wildcard bindings with a 16-element inline buffer.
 *
 * Matches are produced by the million on explosive rulesets, and a
 * heap-backed bindings vector was the single largest allocator-call
 * source in the whole saturation loop. Sixteen slots cover every
 * rule a 4-wide ISA synthesizes (4 lanes x a few variables each);
 * wider patterns spill to one heap block.
 */
class BindingVec
{
  public:
    static constexpr std::uint32_t kInlineCapacity = 16;

    BindingVec() = default;
    BindingVec(const BindingVec &other) { copyFrom(other); }
    BindingVec(BindingVec &&other) noexcept { moveFrom(other); }

    BindingVec &
    operator=(const BindingVec &other)
    {
        if (this != &other) {
            release();
            copyFrom(other);
        }
        return *this;
    }

    BindingVec &
    operator=(BindingVec &&other) noexcept
    {
        if (this != &other) {
            release();
            moveFrom(other);
        }
        return *this;
    }

    ~BindingVec() { release(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const EClassId *data() const
    {
        return capacity_ > kInlineCapacity ? heap_ : inline_;
    }
    const EClassId *begin() const { return data(); }
    const EClassId *end() const { return data() + size_; }

    EClassId operator[](std::size_t i) const { return data()[i]; }

    /** Pre-sizes the buffer; the only growth path (no push realloc). */
    void
    reserve(std::size_t capacity)
    {
        if (capacity > capacity_) {
            auto *fresh = new EClassId[capacity];
            std::memcpy(fresh, data(), size_ * sizeof(EClassId));
            // Not release(): that would zero size_ and drop the
            // existing bindings on the floor.
            if (capacity_ > kInlineCapacity)
                delete[] heap_;
            heap_ = fresh;
            capacity_ = static_cast<std::uint32_t>(capacity);
        }
    }

    void
    push_back(EClassId id)
    {
        if (size_ == capacity_)
            reserve(capacity_ * 2);
        mutableData()[size_++] = id;
    }

    bool
    operator==(const BindingVec &other) const
    {
        return size_ == other.size_ &&
               std::memcmp(data(), other.data(),
                           size_ * sizeof(EClassId)) == 0;
    }

  private:
    EClassId *mutableData()
    {
        return capacity_ > kInlineCapacity ? heap_ : inline_;
    }

    void
    copyFrom(const BindingVec &other)
    {
        size_ = other.size_;
        if (other.capacity_ > kInlineCapacity) {
            capacity_ = other.capacity_;
            heap_ = new EClassId[capacity_];
            std::memcpy(heap_, other.heap_, size_ * sizeof(EClassId));
        } else {
            capacity_ = kInlineCapacity;
            std::memcpy(inline_, other.inline_,
                        size_ * sizeof(EClassId));
        }
    }

    void
    moveFrom(BindingVec &other) noexcept
    {
        size_ = other.size_;
        capacity_ = other.capacity_;
        if (other.capacity_ > kInlineCapacity)
            heap_ = other.heap_;
        else
            std::memcpy(inline_, other.inline_,
                        size_ * sizeof(EClassId));
        other.size_ = 0;
        other.capacity_ = kInlineCapacity;
    }

    void
    release()
    {
        if (capacity_ > kInlineCapacity)
            delete[] heap_;
        size_ = 0;
        capacity_ = kInlineCapacity;
    }

    std::uint32_t size_ = 0;
    std::uint32_t capacity_ = kInlineCapacity;
    union
    {
        EClassId inline_[kInlineCapacity];
        EClassId *heap_;
    };
};

/** One embedding of a pattern: root class + per-slot bindings. */
struct PatternMatch
{
    EClassId root;
    /** Binding for wildcard slot i (see CompiledPattern::slotIds). */
    BindingVec bindings;
};

/** One instruction of the compiled pattern machine. */
struct PatternInstr
{
    enum class Kind : std::uint8_t
    {
        /** Enumerate e-nodes of class regs[reg] matching op/payload/
         *  arity; write children to regs[outBase..outBase+arity). */
        Bind,
        /** Succeed iff regs[reg] and regs[other] are the same class. */
        Check,
    };

    Kind kind = Kind::Bind;
    Op op = Op::Const;
    std::uint16_t reg = 0;
    std::uint16_t outBase = 0;
    std::uint16_t arity = 0;
    std::uint16_t other = 0;
    std::int64_t payload = 0;
};

/** A pattern compiled for repeated searching. */
class CompiledPattern
{
  public:
    /** Compiles @p pattern; wildcard ids are assigned dense slots. */
    explicit CompiledPattern(RecExpr pattern);

    const RecExpr &pattern() const { return pattern_; }

    /** Wildcard id for each slot. */
    const std::vector<std::int32_t> &slotIds() const { return slotIds_; }

    /** Slot index of wildcard @p wildcardId (must exist). */
    std::size_t slotOf(std::int32_t wildcardId) const;

    /** The compiled instruction sequence (for tests/inspection). */
    const std::vector<PatternInstr> &program() const { return program_; }

    /**
     * Finds matches rooted in class @p root, appending to @p out.
     * Stops early once @p out reaches @p maxMatches entries. When
     * @p stepBudget is given, each instruction dispatch costs one
     * step; the search stops (and stops emitting) once it hits zero.
     * When @p ctl is given, it is polled every few thousand dispatches
     * so a wall-clock deadline or cancellation interrupts even a
     * single long search (the interrupted call stops emitting, like
     * budget exhaustion — the caller is expected to discard the
     * phase's partial matches). Thread-safe on a frozen (rebuilt,
     * unmodified) e-graph.
     */
    void searchClass(const EGraph &egraph, EClassId root,
                     std::vector<PatternMatch> &out,
                     std::size_t maxMatches,
                     std::size_t *stepBudget = nullptr,
                     const ExecControl *ctl = nullptr) const;

    /**
     * Searches every canonical class, gathering at most
     * @p maxMatchesPerClass embeddings rooted in any one class (so
     * combinatorial patterns cannot starve later classes) and at most
     * @p maxMatches overall.
     */
    std::vector<PatternMatch> search(const EGraph &egraph,
                                     std::size_t maxMatches,
                                     std::size_t maxMatchesPerClass =
                                         SIZE_MAX) const;

  private:
    void compileNode(NodeId pid, std::uint16_t reg);

    RecExpr pattern_;
    std::vector<std::int32_t> slotIds_;
    /** wildcard id -> slot, replacing the old linear scan. */
    std::unordered_map<std::int32_t, std::size_t> slotOfWildcard_;
    std::vector<PatternInstr> program_;
    /** Register holding each slot's binding after a full match. */
    std::vector<std::uint16_t> slotRegs_;
    std::uint16_t numRegs_ = 1;
};

} // namespace isaria

#endif // ISARIA_EGRAPH_EMATCH_H
