#ifndef ISARIA_EGRAPH_EMATCH_H
#define ISARIA_EGRAPH_EMATCH_H

/**
 * @file
 * E-matching: finding all embeddings of a pattern in an e-graph.
 *
 * Patterns are DSL terms with Op::Wildcard leaves. A match binds each
 * wildcard to an e-class and names the e-class the pattern root
 * matched in. The matcher is a straightforward backtracking walk over
 * e-nodes, sufficient for the small, shallow patterns rule synthesis
 * produces.
 */

#include <cstddef>
#include <vector>

#include "egraph/egraph.h"

namespace isaria
{

/** One embedding of a pattern: root class + per-slot bindings. */
struct PatternMatch
{
    EClassId root;
    /** Binding for wildcard slot i (see CompiledPattern::slotIds). */
    std::vector<EClassId> bindings;
};

/** A pattern preprocessed for repeated searching. */
class CompiledPattern
{
  public:
    /** Compiles @p pattern; wildcard ids are assigned dense slots. */
    explicit CompiledPattern(RecExpr pattern);

    const RecExpr &pattern() const { return pattern_; }

    /** Wildcard id for each slot. */
    const std::vector<std::int32_t> &slotIds() const { return slotIds_; }

    /** Slot index of wildcard @p wildcardId (must exist). */
    std::size_t slotOf(std::int32_t wildcardId) const;

    /**
     * Finds matches rooted in class @p root, appending to @p out.
     * Stops early once @p out reaches @p maxMatches entries.
     */
    void searchClass(const EGraph &egraph, EClassId root,
                     std::vector<PatternMatch> &out,
                     std::size_t maxMatches,
                     std::size_t *stepBudget = nullptr) const;

    /**
     * Searches every canonical class, gathering at most
     * @p maxMatchesPerClass embeddings rooted in any one class (so
     * combinatorial patterns cannot starve later classes) and at most
     * @p maxMatches overall.
     */
    std::vector<PatternMatch> search(const EGraph &egraph,
                                     std::size_t maxMatches,
                                     std::size_t maxMatchesPerClass =
                                         SIZE_MAX) const;

  private:
    RecExpr pattern_;
    std::vector<std::int32_t> slotIds_;
};

} // namespace isaria

#endif // ISARIA_EGRAPH_EMATCH_H
