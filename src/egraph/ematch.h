#ifndef ISARIA_EGRAPH_EMATCH_H
#define ISARIA_EGRAPH_EMATCH_H

/**
 * @file
 * E-matching: finding all embeddings of a pattern in an e-graph.
 *
 * Patterns are DSL terms with Op::Wildcard leaves. A match binds each
 * wildcard to an e-class and names the e-class the pattern root
 * matched in.
 *
 * Each pattern is compiled once into a flat instruction sequence (an
 * abstract machine in the style of egg's and de Moura & Bjørner's
 * e-matching VMs): Bind instructions enumerate the e-nodes of a class
 * register that carry the right operator and write the children into
 * fresh registers; Check instructions enforce non-linear wildcards.
 * Execution walks the program with an explicit backtracking stack of
 * (instruction, next-candidate) frames — no per-node heap-allocated
 * continuations. Matches are emitted in the same depth-first order as
 * a naive backtracking matcher, so results are deterministic.
 *
 * searchClass only reads the e-graph (via the frozen find path), so
 * one pattern may be searched from many threads concurrently as long
 * as each thread appends to its own output buffer.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "egraph/egraph.h"
#include "support/cancel.h"

namespace isaria
{

/** One embedding of a pattern: root class + per-slot bindings. */
struct PatternMatch
{
    EClassId root;
    /** Binding for wildcard slot i (see CompiledPattern::slotIds). */
    std::vector<EClassId> bindings;
};

/** One instruction of the compiled pattern machine. */
struct PatternInstr
{
    enum class Kind : std::uint8_t
    {
        /** Enumerate e-nodes of class regs[reg] matching op/payload/
         *  arity; write children to regs[outBase..outBase+arity). */
        Bind,
        /** Succeed iff regs[reg] and regs[other] are the same class. */
        Check,
    };

    Kind kind = Kind::Bind;
    Op op = Op::Const;
    std::uint16_t reg = 0;
    std::uint16_t outBase = 0;
    std::uint16_t arity = 0;
    std::uint16_t other = 0;
    std::int64_t payload = 0;
};

/** A pattern compiled for repeated searching. */
class CompiledPattern
{
  public:
    /** Compiles @p pattern; wildcard ids are assigned dense slots. */
    explicit CompiledPattern(RecExpr pattern);

    const RecExpr &pattern() const { return pattern_; }

    /** Wildcard id for each slot. */
    const std::vector<std::int32_t> &slotIds() const { return slotIds_; }

    /** Slot index of wildcard @p wildcardId (must exist). */
    std::size_t slotOf(std::int32_t wildcardId) const;

    /** The compiled instruction sequence (for tests/inspection). */
    const std::vector<PatternInstr> &program() const { return program_; }

    /**
     * Finds matches rooted in class @p root, appending to @p out.
     * Stops early once @p out reaches @p maxMatches entries. When
     * @p stepBudget is given, each instruction dispatch costs one
     * step; the search stops (and stops emitting) once it hits zero.
     * When @p ctl is given, it is polled every few thousand dispatches
     * so a wall-clock deadline or cancellation interrupts even a
     * single long search (the interrupted call stops emitting, like
     * budget exhaustion — the caller is expected to discard the
     * phase's partial matches). Thread-safe on a frozen (rebuilt,
     * unmodified) e-graph.
     */
    void searchClass(const EGraph &egraph, EClassId root,
                     std::vector<PatternMatch> &out,
                     std::size_t maxMatches,
                     std::size_t *stepBudget = nullptr,
                     const ExecControl *ctl = nullptr) const;

    /**
     * Searches every canonical class, gathering at most
     * @p maxMatchesPerClass embeddings rooted in any one class (so
     * combinatorial patterns cannot starve later classes) and at most
     * @p maxMatches overall.
     */
    std::vector<PatternMatch> search(const EGraph &egraph,
                                     std::size_t maxMatches,
                                     std::size_t maxMatchesPerClass =
                                         SIZE_MAX) const;

  private:
    void compileNode(NodeId pid, std::uint16_t reg);

    RecExpr pattern_;
    std::vector<std::int32_t> slotIds_;
    /** wildcard id -> slot, replacing the old linear scan. */
    std::unordered_map<std::int32_t, std::size_t> slotOfWildcard_;
    std::vector<PatternInstr> program_;
    /** Register holding each slot's binding after a full match. */
    std::vector<std::uint16_t> slotRegs_;
    std::uint16_t numRegs_ = 1;
};

} // namespace isaria

#endif // ISARIA_EGRAPH_EMATCH_H
