#ifndef ISARIA_EGRAPH_REWRITE_H
#define ISARIA_EGRAPH_REWRITE_H

/**
 * @file
 * Rewrite rules compiled for application over an e-graph.
 */

#include <string>
#include <vector>

#include "egraph/ematch.h"
#include "term/pattern.h"

namespace isaria
{

/** A rule with its left side compiled for searching. */
class CompiledRule
{
  public:
    /** Compiles @p rule (which must be well-formed). */
    explicit CompiledRule(Rule rule);

    const Rule &source() const { return rule_; }
    const CompiledPattern &lhs() const { return lhs_; }
    const std::string &name() const { return rule_.name; }

    /**
     * Instantiates the right-hand side under @p match and merges it
     * with the match root. Returns true if the e-graph changed.
     */
    bool apply(EGraph &egraph, const PatternMatch &match) const;

  private:
    Rule rule_;
    CompiledPattern lhs_;
    /** Binding slot (into PatternMatch::bindings) per rhs wildcard. */
    std::vector<std::size_t> rhsSlots_;
};

/** Compiles a batch of rules. */
std::vector<CompiledRule> compileRules(const std::vector<Rule> &rules);

} // namespace isaria

#endif // ISARIA_EGRAPH_REWRITE_H
