#include "egraph/union_find.h"

#include "support/panic.h"

namespace isaria
{

EClassId
UnionFind::makeSet()
{
    auto id = static_cast<EClassId>(parents_.size());
    parents_.push_back(id);
    return id;
}

EClassId
UnionFind::find(EClassId id) const
{
    ISARIA_ASSERT(id < parents_.size(), "union-find id out of range");
    while (parents_[id] != id) {
        parents_[id] = parents_[parents_[id]]; // path halving
        id = parents_[id];
    }
    return id;
}

void
UnionFind::compressAll()
{
    // Parents always point at smaller ids, so one ascending sweep
    // suffices: by the time we visit id, its parent is already rooted.
    for (EClassId id = 0; id < parents_.size(); ++id)
        parents_[id] = parents_[parents_[id]];
}

EClassId
UnionFind::join(EClassId a, EClassId b)
{
    EClassId ra = find(a);
    EClassId rb = find(b);
    if (ra == rb)
        return ra;
    if (ra > rb)
        std::swap(ra, rb);
    parents_[rb] = ra;
    return ra;
}

} // namespace isaria
