#include "egraph/extract.h"

#include <unordered_map>
#include <vector>

#include "support/panic.h"

namespace isaria
{

namespace
{

struct Choice
{
    std::uint64_t cost = kInfiniteCost;
    const ENode *node = nullptr;
};

} // namespace

std::optional<Extracted>
extractBest(const EGraph &egraph, EClassId root, const CostFn &cost,
            const ExecControl *control)
{
    ISARIA_ASSERT(!egraph.dirty(), "extracting from a dirty e-graph");
    std::vector<EClassId> classes = egraph.canonicalClasses();
    std::unordered_map<EClassId, Choice> best;
    best.reserve(classes.size());

    // The fixpoint below is the only unbounded loop left once the
    // saturation phases have stopped, so it polls the caller's
    // deadline/cancellation control at a fixed class-visit stride —
    // frequent enough that even a multi-second extraction reacts
    // within the ~50 ms granularity the in-flight eqsat checks give.
    constexpr std::size_t kPollStride = 256;
    std::size_t visits = 0;
    auto interrupted = [&]() {
        return control && ++visits % kPollStride == 0 &&
               control->interrupted();
    };

    // Bottom-up fixpoint: keep relaxing class costs until stable.
    bool changed = true;
    std::vector<std::uint64_t> childCosts;
    while (changed) {
        changed = false;
        for (EClassId id : classes) {
            if (interrupted())
                return std::nullopt;
            Choice &cur = best[id];
            for (const ENode &node : egraph.eclass(id).nodes) {
                childCosts.clear();
                bool ready = true;
                for (EClassId child : node.children) {
                    auto it = best.find(egraph.find(child));
                    if (it == best.end() ||
                        it->second.cost == kInfiniteCost) {
                        ready = false;
                        break;
                    }
                    childCosts.push_back(it->second.cost);
                }
                if (!ready)
                    continue;
                std::uint64_t c =
                    cost.nodeCost(node.op, node.payload, childCosts);
                if (c < cur.cost) {
                    cur.cost = c;
                    cur.node = &node;
                    changed = true;
                }
            }
        }
    }

    EClassId canonicalRoot = egraph.find(root);
    auto rootIt = best.find(canonicalRoot);
    if (rootIt == best.end() || rootIt->second.cost == kInfiniteCost)
        return std::nullopt;

    // Rebuild the chosen term with DAG sharing: each class contributes
    // one node to the output expression.
    Extracted out;
    out.cost = rootIt->second.cost;
    std::unordered_map<EClassId, NodeId> built;

    // Post-order emission via explicit stack.
    struct Frame
    {
        EClassId cls;
        std::size_t nextChild;
    };
    std::vector<Frame> stack{{canonicalRoot, 0}};
    while (!stack.empty()) {
        Frame &frame = stack.back();
        EClassId cls = frame.cls;
        if (built.count(cls)) {
            stack.pop_back();
            continue;
        }
        const ENode *node = best[cls].node;
        ISARIA_ASSERT(node != nullptr, "extraction chose nothing");
        if (frame.nextChild < node->children.size()) {
            EClassId child = egraph.find(node->children[frame.nextChild]);
            ++frame.nextChild;
            if (!built.count(child))
                stack.push_back({child, 0});
            continue;
        }
        std::vector<NodeId> kids;
        kids.reserve(node->children.size());
        for (EClassId child : node->children)
            kids.push_back(built.at(egraph.find(child)));
        built[cls] = out.expr.add(node->op, std::move(kids), node->payload);
        stack.pop_back();
    }

    return out;
}

} // namespace isaria
