#include "egraph/extract.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/panic.h"

namespace isaria
{

namespace
{

/**
 * Interrupt-poll stride for the cost-propagation engines. The visit
 * counter advances on every evaluation whether or not a control is
 * supplied, so guarded and unguarded runs walk identical strides (the
 * old engine only counted visits inside the short-circuit chain,
 * silently changing the stride semantics when control was null).
 */
constexpr std::size_t kPollStride = 256;

/** Evaluates one e-node's cost under the current per-class bests.
 *  Returns kInfiniteCost while any child is still unreachable. */
std::uint64_t
evalNode(const EGraph &egraph, const ENode &node, const CostFn &cost,
         const std::vector<std::uint64_t> &best,
         std::vector<std::uint64_t> &childCosts)
{
    childCosts.clear();
    for (EClassId child : node.children) {
        std::uint64_t c = best[egraph.find(child)];
        if (c == kInfiniteCost)
            return kInfiniteCost;
        childCosts.push_back(c);
    }
    return cost.nodeCost(node.op, node.payload, childCosts);
}

} // namespace

void
Extractor::buildIndex(const EGraph &egraph)
{
    classes_ = egraph.canonicalClasses();
    // All index storage lives in the arena; a rebuild rewinds it
    // wholesale (the chunks stay resident, so steady-state rebuilds
    // allocate nothing from the heap) and the stale vectors must
    // forget their reclaimed buffers.
    arena_.reset();
    leaves_.resetStorage();
    parentOffset_ = nullptr;
    parentEdges_ = nullptr;
    const std::size_t numIds = egraph.numIds();

    if (kind_ != ExtractorKind::Fixpoint) {
        // The Fixpoint reference engine sweeps classes globally and
        // needs no dependency edges; the worklist engine builds its
        // CSR here: count edges per child class, prefix-sum, fill.
        // One edge per *distinct* canonical child of each node (a node
        // like (+ x x) re-evaluates once, not twice, per improvement).
        parentOffset_ = arena_.allocateArray<std::uint32_t>(numIds + 1);
        std::fill_n(parentOffset_, numIds + 1, 0u);
        auto forEachDistinctChild = [&](const ENode &node, auto &&fn) {
            const std::size_t arity = node.children.size();
            for (std::size_t i = 0; i < arity; ++i) {
                EClassId child = egraph.find(node.children[i]);
                bool seen = false;
                for (std::size_t j = 0; j < i && !seen; ++j)
                    seen = egraph.find(node.children[j]) == child;
                if (!seen)
                    fn(child);
            }
        };
        std::size_t edges = 0;
        for (EClassId id : classes_) {
            for (const ENode &node : egraph.eclass(id).nodes) {
                forEachDistinctChild(node, [&](EClassId child) {
                    ++parentOffset_[child + 1];
                    ++edges;
                });
            }
        }
        for (std::size_t i = 1; i <= numIds; ++i)
            parentOffset_[i] += parentOffset_[i - 1];
        parentEdges_ = arena_.allocateArray<ParentRef>(edges);
        std::vector<std::uint32_t> cursor(parentOffset_,
                                          parentOffset_ + numIds);
        for (EClassId id : classes_) {
            for (const ENode &node : egraph.eclass(id).nodes) {
                forEachDistinctChild(node, [&](EClassId child) {
                    parentEdges_[cursor[child]++] =
                        ParentRef{id, &node};
                });
            }
        }
    }

    for (EClassId id : classes_) {
        for (const ENode &node : egraph.eclass(id).nodes) {
            if (node.children.empty())
                leaves_.push_back(arena_, ParentRef{id, &node});
        }
    }

    cachedGraphId_ = egraph.graphId();
    cachedGeneration_ = egraph.generation();
    indexValid_ = true;
}

bool
Extractor::propagateWorklist(const EGraph &egraph, const CostFn &cost,
                             const ExecControl *control)
{
    best_.assign(egraph.numIds(), kInfiniteCost);
    queued_.assign(egraph.numIds(), 0);
    queue_.clear();

    std::size_t visits = 0;
    auto interrupted = [&]() {
        ++visits;
        return control && visits % kPollStride == 0 &&
               control->interrupted();
    };

    auto relax = [&](EClassId cls, std::uint64_t c) {
        if (c >= best_[cls])
            return;
        best_[cls] = c;
        if (!queued_[cls]) {
            queued_[cls] = 1;
            queue_.push_back(cls);
        }
    };

    std::vector<std::uint64_t> childCosts;
    for (const ParentRef &leaf : leaves_) {
        if (interrupted())
            return false;
        relax(leaf.cls, cost.nodeCost(leaf.node->op, leaf.node->payload,
                                      {}));
    }

    // FIFO drain: a popped class's cost just improved, so re-evaluate
    // exactly the nodes that depend on it. Monotone costs mean every
    // relaxation strictly lowers a class best, so the drain
    // terminates; total work is (dependency edges) x (improvements
    // per class), near-linear in practice.
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        EClassId id = queue_[head];
        queued_[id] = 0;
        const std::uint32_t beginEdge = parentOffset_[id];
        const std::uint32_t endEdge = parentOffset_[id + 1];
        for (std::uint32_t e = beginEdge; e < endEdge; ++e) {
            if (interrupted())
                return false;
            const ParentRef &ref = parentEdges_[e];
            std::uint64_t c =
                evalNode(egraph, *ref.node, cost, best_, childCosts);
            if (c != kInfiniteCost)
                relax(ref.cls, c);
        }
    }
    return true;
}

bool
Extractor::propagateFixpoint(const EGraph &egraph, const CostFn &cost,
                             const ExecControl *control)
{
    best_.assign(egraph.numIds(), kInfiniteCost);

    std::size_t visits = 0;
    auto interrupted = [&]() {
        ++visits;
        return control && visits % kPollStride == 0 &&
               control->interrupted();
    };

    // Bottom-up fixpoint: keep relaxing class costs until stable.
    std::vector<std::uint64_t> childCosts;
    bool changed = true;
    while (changed) {
        changed = false;
        for (EClassId id : classes_) {
            if (interrupted())
                return false;
            for (const ENode &node : egraph.eclass(id).nodes) {
                std::uint64_t c =
                    evalNode(egraph, node, cost, best_, childCosts);
                if (c < best_[id]) {
                    best_[id] = c;
                    changed = true;
                }
            }
        }
    }
    return true;
}

std::optional<Extracted>
Extractor::extract(const EGraph &egraph, EClassId root, const CostFn &cost,
                   const ExecControl *control)
{
    ISARIA_ASSERT(!egraph.dirty(), "extracting from a dirty e-graph");
    if (!indexValid_ || cachedGraphId_ != egraph.graphId() ||
        cachedGeneration_ != egraph.generation()) {
        buildIndex(egraph);
    }

    bool converged = kind_ == ExtractorKind::Worklist
                         ? propagateWorklist(egraph, cost, control)
                         : propagateFixpoint(egraph, cost, control);
    if (!converged)
        return std::nullopt;

    EClassId canonicalRoot = egraph.find(root);
    if (best_[canonicalRoot] == kInfiniteCost)
        return std::nullopt;

    // Canonical node selection, shared by both engines: the chosen
    // representative of a class is the *first* node in class order
    // achieving the converged best cost. Selection is independent of
    // relaxation history, so worklist and fixpoint extract identical
    // terms. Resolved lazily, only for classes the chosen term visits.
    std::vector<std::uint64_t> childCosts;
    std::vector<const ENode *> chosen(egraph.numIds(), nullptr);
    auto chooseNode = [&](EClassId cls) -> const ENode * {
        if (chosen[cls])
            return chosen[cls];
        for (const ENode &node : egraph.eclass(cls).nodes) {
            if (evalNode(egraph, node, cost, best_, childCosts) ==
                best_[cls]) {
                chosen[cls] = &node;
                return &node;
            }
        }
        ISARIA_PANIC("no e-node achieves its class's converged cost");
    };

    // Rebuild the chosen term with DAG sharing: each class contributes
    // one node to the output expression, emitted post-order via an
    // explicit stack.
    Extracted out;
    out.cost = best_[canonicalRoot];
    std::unordered_map<EClassId, NodeId> built;

    struct Frame
    {
        EClassId cls;
        std::size_t nextChild;
    };
    std::vector<Frame> stack{{canonicalRoot, 0}};
    while (!stack.empty()) {
        Frame &frame = stack.back();
        EClassId cls = frame.cls;
        if (built.count(cls)) {
            stack.pop_back();
            continue;
        }
        const ENode *node = chooseNode(cls);
        if (frame.nextChild < node->children.size()) {
            EClassId child = egraph.find(node->children[frame.nextChild]);
            ++frame.nextChild;
            if (!built.count(child))
                stack.push_back({child, 0});
            continue;
        }
        std::vector<NodeId> kids;
        kids.reserve(node->children.size());
        for (EClassId child : node->children)
            kids.push_back(built.at(egraph.find(child)));
        built[cls] = out.expr.add(node->op, std::move(kids), node->payload);
        stack.pop_back();
    }

    return out;
}

std::optional<Extracted>
extractBest(const EGraph &egraph, EClassId root, const CostFn &cost,
            const ExecControl *control)
{
    Extractor extractor(ExtractorKind::Worklist);
    return extractor.extract(egraph, root, cost, control);
}

} // namespace isaria
