#include "egraph/egraph.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "support/fault.h"
#include "support/panic.h"

namespace isaria
{

static_assert(static_cast<unsigned>(Op::NumOps) <= 32,
              "the per-class operator mask is a 32-bit word");

std::uint64_t
EGraph::nextGraphId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t
EGraph::enodeFootprint(const ENode &node)
{
    // One copy lives in its class, one as the hashcons key, and each
    // child's parent list holds another (plus the back-pointer id).
    // Children up to ChildArray::kInlineCapacity live inside the node
    // itself (already covered by sizeof(ENode)); only wider nodes
    // charge a heap spill.
    std::size_t spillBytes =
        node.children.size() > ChildArray::kInlineCapacity
            ? node.children.size() * sizeof(EClassId)
            : 0;
    std::size_t nodeBytes = sizeof(ENode) + spillBytes;
    return 2 * nodeBytes +
           node.children.size() * (nodeBytes + sizeof(EClassId));
}

EClassId
EGraph::add(ENode node)
{
    ENode canon = node.canonical(uf_);
    auto it = memo_.find(canon);
    if (it != memo_.end())
        return uf_.find(it->second);

    // A fresh allocation is the point where memory is actually
    // committed, so it is the e-graph's fault-injection site: a fired
    // fault throws before any mutation, leaving the graph consistent.
    faultPoint(FaultSite::EGraphAlloc);

    bytesUsed_ += enodeFootprint(canon) + sizeof(EClass) +
                  sizeof(EClassId) + sizeof(std::uint32_t);

    ++generation_;
    EClassId id = uf_.makeSet();
    classes_.emplace_back();
    classes_[id].nodes.push_back(canon);
    opMask_.push_back(1u << opBit(canon.op));
    opClasses_[opBit(canon.op)].push_back(id);
    ++liveNodes_;
    ++liveClasses_;
    for (EClassId child : canon.children)
        classes_[child].parents.emplace_back(canon, id);
    memo_.emplace(std::move(canon), id);
    return id;
}

EClassId
EGraph::addExpr(const RecExpr &expr)
{
    ISARIA_ASSERT(!expr.empty(), "adding empty expression");
    return addExpr(expr, expr.rootId());
}

EClassId
EGraph::addExpr(const RecExpr &expr, NodeId root)
{
    // Iterative bottom-up insertion over the whole prefix of the
    // term, then return the class of the requested root.
    std::vector<EClassId> classOf(root + 1);
    for (NodeId id = 0; id <= root; ++id) {
        const TermNode &n = expr.node(id);
        ISARIA_ASSERT(n.op != Op::Wildcard,
                      "wildcards cannot be added to an e-graph");
        ENode node;
        node.op = n.op;
        node.payload = n.payload;
        node.children.reserve(n.children.size());
        for (NodeId child : n.children)
            node.children.push_back(classOf[child]);
        classOf[id] = add(std::move(node));
    }
    return classOf[root];
}

bool
EGraph::merge(EClassId a, EClassId b)
{
    EClassId ra = uf_.find(a);
    EClassId rb = uf_.find(b);
    if (ra == rb)
        return false;

    ++generation_;
    EClassId keep = uf_.join(ra, rb);
    EClassId gone = (keep == ra) ? rb : ra;

    // Move nodes and parents into the surviving class.
    auto &keepClass = classes_[keep];
    auto &goneClass = classes_[gone];
    keepClass.nodes.insert(keepClass.nodes.end(),
                           std::make_move_iterator(goneClass.nodes.begin()),
                           std::make_move_iterator(goneClass.nodes.end()));
    keepClass.parents.insert(
        keepClass.parents.end(),
        std::make_move_iterator(goneClass.parents.begin()),
        std::make_move_iterator(goneClass.parents.end()));
    goneClass.nodes.clear();
    goneClass.nodes.shrink_to_fit();
    goneClass.parents.clear();
    goneClass.parents.shrink_to_fit();

    // The survivor gains the absorbed class's operators; enqueue it in
    // the index only for ops it did not already have, keeping the
    // per-op lists short.
    std::uint32_t gained = opMask_[gone] & ~opMask_[keep];
    opMask_[keep] |= opMask_[gone];
    while (gained) {
        unsigned bit = static_cast<unsigned>(__builtin_ctz(gained));
        gained &= gained - 1;
        opClasses_[bit].push_back(keep);
    }
    --liveClasses_;

    worklist_.push_back(keep);
    return true;
}

void
EGraph::rebuild()
{
    bool merged = !worklist_.empty();
    while (!worklist_.empty()) {
        std::vector<EClassId> todo;
        todo.swap(worklist_);
        std::sort(todo.begin(), todo.end());
        todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
        for (EClassId id : todo)
            repair(uf_.find(id));
    }
    // Freeze-friendly: after full compression findFrozen is one load,
    // so the parallel search phase never path-compresses (writes).
    uf_.compressAll();
    if (!merged)
        return;
    // Final canonicalization sweep. Congruence can make two nodes of a
    // class identical without that class ever reaching the worklist:
    // when their shared *child* classes merge, the parent collision in
    // repair() is a merge of the class with itself — a no-op that
    // enqueues nothing. Sweeping every class once per rebuild
    // canonicalizes all nodes in place and drops such duplicates, so
    // numNodes() counts distinct canonical nodes regardless of the
    // merge history (egg's rebuild_classes does the same).
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            dedupNodesInPlace(classes_[id]);
    }
}

void
EGraph::repair(EClassId id)
{
    // Detach the stale parent list first: merges below may move
    // parent lists around, invalidating references into classes_.
    std::vector<std::pair<ENode, EClassId>> parents;
    parents.swap(classes_[id].parents);

    // Re-canonicalize parents. A collision — two parents becoming the
    // same canonical e-node — means they are congruent: merge them.
    std::unordered_map<ENode, EClassId, ENodeHash> newParents;
    newParents.reserve(parents.size());
    for (auto &[pnode, pclass] : parents) {
        memo_.erase(pnode);
        ENode canon = pnode.canonical(uf_);
        EClassId canonClass = uf_.find(pclass);
        auto it = newParents.find(canon);
        if (it != newParents.end()) {
            merge(canonClass, it->second);
            it->second = uf_.find(it->second);
        } else {
            newParents.emplace(std::move(canon), canonClass);
        }
    }

    // Reinstall into the hashcons; an existing entry for the same
    // canonical node is another congruence to merge, never overwrite.
    for (auto &[node, cid] : newParents) {
        auto [mit, inserted] = memo_.try_emplace(node, cid);
        if (!inserted) {
            merge(mit->second, cid);
            mit->second = uf_.find(mit->second);
        }
    }

    // repair() may run on a class that has since been merged away;
    // route the refreshed parent list to the current representative.
    EClass &target = classes_[uf_.find(id)];
    for (auto &[node, cid] : newParents)
        target.parents.emplace_back(node, uf_.find(cid));

    // Deduplicate this class's own nodes under canonicalization; the
    // rebuild() sweep repeats this for every class once the worklist
    // drains, catching classes whose nodes collided without the class
    // itself ever being enqueued.
    dedupNodesInPlace(classes_[uf_.find(id)]);
}

void
EGraph::dedupNodesInPlace(EClass &self)
{
    // In place: each node's children are rewritten to canonical ids
    // where they sit (no per-node copy), and survivors are compacted
    // to the front in first-occurrence order. The dedup set holds
    // pointers into the (never reallocated) node vector; a pointer is
    // only inserted once its slot is final, so compaction moves never
    // invalidate a set entry.
    if (self.nodes.size() <= 1) {
        if (!self.nodes.empty())
            self.nodes.front().canonicalize(uf_);
        return;
    }
    struct NodePtrHash
    {
        std::size_t
        operator()(const ENode *node) const
        {
            return ENodeHash{}(*node);
        }
    };
    struct NodePtrEq
    {
        bool
        operator()(const ENode *a, const ENode *b) const
        {
            return *a == *b;
        }
    };
    std::unordered_set<const ENode *, NodePtrHash, NodePtrEq> dedup;
    dedup.reserve(self.nodes.size());
    std::size_t keep = 0;
    for (std::size_t i = 0; i < self.nodes.size(); ++i) {
        self.nodes[i].canonicalize(uf_);
        if (dedup.count(&self.nodes[i]))
            continue;
        if (keep != i)
            self.nodes[keep] = std::move(self.nodes[i]);
        dedup.insert(&self.nodes[keep]);
        ++keep;
    }
    // Refund deduplicated nodes at the flat ENode rate; their
    // parent/hashcons share stays charged (it is churn the allocator
    // rarely returns anyway — bytesUsed() is a guard estimate,
    // deliberately on the conservative side).
    std::size_t droppedNodes = self.nodes.size() - keep;
    bytesUsed_ -= std::min(bytesUsed_, droppedNodes * sizeof(ENode));
    liveNodes_ -= droppedNodes;
    self.nodes.resize(keep);
}

std::vector<EClassId>
EGraph::canonicalClasses() const
{
    std::vector<EClassId> out;
    out.reserve(liveClasses_);
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            out.push_back(id);
    }
    return out;
}

OpClassesView
EGraph::classesWithOp(Op op)
{
    ISARIA_ASSERT(!dirty(), "op index queried on a dirty e-graph");
    std::vector<EClassId> &list = opClasses_[opBit(op)];
    // Compact: canonicalize, drop classes merged into ones already
    // listed, and keep the list sorted so search order (and therefore
    // match order) is deterministic.
    for (EClassId &id : list)
        id = uf_.find(id);
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    OpClassesView view;
    view.data_ = list.data();
    view.size_ = list.size();
    view.owner_ = this;
    view.generation_ = generation_;
    return view;
}

std::size_t
EGraph::numNodesSlow() const
{
    std::size_t total = 0;
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            total += classes_[id].nodes.size();
    }
    return total;
}

std::size_t
EGraph::numClassesSlow() const
{
    std::size_t total = 0;
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            ++total;
    }
    return total;
}

} // namespace isaria
