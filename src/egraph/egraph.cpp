#include "egraph/egraph.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/fault.h"
#include "support/panic.h"

namespace isaria
{

static_assert(static_cast<unsigned>(Op::NumOps) <= 32,
              "the per-class operator mask is a 32-bit word");

namespace
{

/**
 * ISARIA_EGRAPH_ARENA=0 (or "off"/"false") routes the per-node
 * allocations back through the global allocator — the A/B baseline
 * the scaling benchmark measures the arena against. Read at each
 * graph's construction (not cached) so a process can flip it between
 * graphs.
 */
bool
arenaEnabledFromEnv()
{
    const char *env = std::getenv("ISARIA_EGRAPH_ARENA");
    if (!env || !*env)
        return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "false") != 0;
}

} // namespace

std::uint64_t
EGraph::nextGraphId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

EGraph::EGraph()
    : mem_(std::make_unique<ArenaPool>()),
      memo_(0, ENodeHash{}, std::equal_to<ENode>{}, MemoAlloc(mem_.get()))
{
    mem_->enabled = arenaEnabledFromEnv();
}

EGraph::EGraph(const EGraph &other)
    : mem_(std::make_unique<ArenaPool>()),
      memo_(0, ENodeHash{}, std::equal_to<ENode>{}, MemoAlloc(mem_.get()))
{
    mem_->enabled = other.mem_->enabled;
    uf_ = other.uf_;
    worklist_ = other.worklist_;
    liveNodes_ = other.liveNodes_;
    liveClasses_ = other.liveClasses_;
    bytesUsed_ = other.bytesUsed_;
    generation_ = other.generation_;
    opMask_ = other.opMask_;
    // graphId_ keeps its fresh default-initialized value: the copy is
    // a distinct graph, and derived caches keyed on (graphId,
    // generation) must not confuse it with the source.

    classes_.reserve(other.classes_.size());
    for (const EClass &src : other.classes_) {
        EClass dst;
        dst.nodes.reserve(src.nodes.size());
        for (const ENode &node : src.nodes)
            dst.nodes.push_back(graphCopy(node));
        dst.parents.reserve(src.parents.size());
        for (const auto &[node, pid] : src.parents)
            dst.parents.emplace_back(graphCopy(node), pid);
        classes_.push_back(std::move(dst));
    }
    // Rebuild (rather than copy) the hashcons so its nodes live in
    // this graph's pool. Copied verbatim — including any stale ids the
    // source's lazy index holds — so dirty graphs copy faithfully.
    for (const auto &[node, id] : other.memo_)
        memo_.emplace(graphCopy(node), id);
    for (std::size_t i = 0; i < opClasses_.size(); ++i) {
        for (EClassId id : other.opClasses_[i])
            opClasses_[i].push_back(mem_->arena, id);
    }
    classEpoch_.assign(other.classes_.size(), 0);
    // The outstanding snapshot (if any) stays with the source; the
    // copy starts with none.
}

std::size_t
EGraph::enodeFootprint(const ENode &node)
{
    // One copy lives in its class, one as the hashcons key, and each
    // child's parent list holds another (plus the back-pointer id).
    // Children up to ChildArray::kInlineCapacity live inside the node
    // itself (already covered by sizeof(ENode)); only wider nodes
    // charge a spill buffer.
    std::size_t nb = nodeBytes(node);
    return 2 * nb + node.children.size() * (nb + sizeof(EClassId));
}

ENode
EGraph::graphCopy(const ENode &node) const
{
    ENode out;
    out.op = node.op;
    out.payload = node.payload;
    if (mem_->enabled &&
        node.children.size() > ChildArray::kInlineCapacity) {
        out.children.assignArena(mem_->arena, node.children.data(),
                                 node.children.size());
    } else {
        out.children = node.children;
    }
    out.hashCache = node.hashCache;
    return out;
}

void
EGraph::touch(EClassId id)
{
    if (!snapActive_ || id >= snapNumIds_ ||
        classEpoch_[id] == snapEpoch_)
        return;
    classEpoch_[id] = snapEpoch_;
    // The journal copy is a plain deep copy (heap-owned children):
    // restore() rewinds the arena, so journal storage must not live
    // in it.
    journal_.emplace_back(id, classes_[id]);
    journalOpMask_.push_back(opMask_[id]);
}

EClassId
EGraph::add(ENode node)
{
    ENode canon = node.canonical(uf_);
    auto it = memo_.find(canon);
    if (it != memo_.end())
        return uf_.find(it->second);

    // A fresh allocation is the point where memory is actually
    // committed, so it is the e-graph's fault-injection site: a fired
    // fault throws before any mutation, leaving the graph consistent.
    faultPoint(FaultSite::EGraphAlloc);

    bytesUsed_ += enodeFootprint(canon) + kPerIdOverhead;

    ++generation_;
    EClassId id = uf_.makeSet();
    classes_.emplace_back();
    classes_[id].nodes.push_back(graphCopy(canon));
    opMask_.push_back(1u << opBit(canon.op));
    opClasses_[opBit(canon.op)].push_back(mem_->arena, id);
    classEpoch_.push_back(0);
    ++liveNodes_;
    ++liveClasses_;
    for (EClassId child : canon.children) {
        touch(child);
        classes_[child].parents.emplace_back(graphCopy(canon), id);
    }
    memo_.emplace(graphCopy(canon), id);
    return id;
}

EClassId
EGraph::addExpr(const RecExpr &expr)
{
    ISARIA_ASSERT(!expr.empty(), "adding empty expression");
    return addExpr(expr, expr.rootId());
}

EClassId
EGraph::addExpr(const RecExpr &expr, NodeId root)
{
    // Iterative bottom-up insertion over the whole prefix of the
    // term, then return the class of the requested root.
    std::vector<EClassId> classOf(root + 1);
    for (NodeId id = 0; id <= root; ++id) {
        const TermNode &n = expr.node(id);
        ISARIA_ASSERT(n.op != Op::Wildcard,
                      "wildcards cannot be added to an e-graph");
        ENode node;
        node.op = n.op;
        node.payload = n.payload;
        node.children.reserve(n.children.size());
        for (NodeId child : n.children)
            node.children.push_back(classOf[child]);
        classOf[id] = add(std::move(node));
    }
    return classOf[root];
}

bool
EGraph::merge(EClassId a, EClassId b)
{
    EClassId ra = uf_.find(a);
    EClassId rb = uf_.find(b);
    if (ra == rb)
        return false;

    touch(ra);
    touch(rb);

    ++generation_;
    EClassId keep = uf_.join(ra, rb);
    EClassId gone = (keep == ra) ? rb : ra;

    // Move nodes and parents into the surviving class.
    auto &keepClass = classes_[keep];
    auto &goneClass = classes_[gone];
    keepClass.nodes.insert(keepClass.nodes.end(),
                           std::make_move_iterator(goneClass.nodes.begin()),
                           std::make_move_iterator(goneClass.nodes.end()));
    keepClass.parents.insert(
        keepClass.parents.end(),
        std::make_move_iterator(goneClass.parents.begin()),
        std::make_move_iterator(goneClass.parents.end()));
    goneClass.nodes.clear();
    goneClass.nodes.shrink_to_fit();
    goneClass.parents.clear();
    goneClass.parents.shrink_to_fit();

    // The survivor gains the absorbed class's operators; enqueue it in
    // the index only for ops it did not already have, keeping the
    // per-op lists short.
    std::uint32_t gained = opMask_[gone] & ~opMask_[keep];
    opMask_[keep] |= opMask_[gone];
    while (gained) {
        unsigned bit = static_cast<unsigned>(__builtin_ctz(gained));
        gained &= gained - 1;
        opClasses_[bit].push_back(mem_->arena, keep);
    }
    --liveClasses_;

    worklist_.push_back(keep);
    return true;
}

void
EGraph::rebuild()
{
    bool merged = !worklist_.empty();
    while (!worklist_.empty()) {
        std::vector<EClassId> todo;
        todo.swap(worklist_);
        std::sort(todo.begin(), todo.end());
        todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
        for (EClassId id : todo)
            repair(uf_.find(id));
    }
    // Freeze-friendly: after full compression findFrozen is one load,
    // so the parallel search phase never path-compresses (writes).
    uf_.compressAll();
    if (!merged)
        return;
    // Final canonicalization sweep. Congruence can make two nodes of a
    // class identical without that class ever reaching the worklist:
    // when their shared *child* classes merge, the parent collision in
    // repair() is a merge of the class with itself — a no-op that
    // enqueues nothing. Sweeping every class once per rebuild
    // canonicalizes all nodes in place and drops such duplicates, so
    // numNodes() counts distinct canonical nodes regardless of the
    // merge history (egg's rebuild_classes does the same).
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            dedupNodesInPlace(id);
    }
}

void
EGraph::repair(EClassId id)
{
    // Detach the stale parent list first: merges below may move
    // parent lists around, invalidating references into classes_.
    touch(id);
    std::vector<std::pair<ENode, EClassId>> parents;
    parents.swap(classes_[id].parents);

    // Re-canonicalize parents. A collision — two parents becoming the
    // same canonical e-node — means they are congruent: merge them.
    // Accounting: each detached parent entry (and each hashcons key
    // actually erased) is refunded here at its exact footprint;
    // surviving canonical entries are re-charged on reinstall, so
    // bytesUsed() tracks bytesUsedSlow() through the churn.
    // Pool-backed like the memo: repair runs once per dirty class per
    // rebuild, and its map nodes recycle through the same size
    // buckets the memo uses instead of hitting the global allocator.
    MemoMap newParents(0, ENodeHash{}, std::equal_to<ENode>{},
                       MemoAlloc(mem_.get()));
    newParents.reserve(parents.size());
    for (auto &[pnode, pclass] : parents) {
        std::size_t nb = nodeBytes(pnode);
        bytesUsed_ -= nb + sizeof(EClassId);
        if (memo_.erase(pnode) != 0)
            bytesUsed_ -= nb;
        ENode canon = pnode.canonical(uf_);
        EClassId canonClass = uf_.find(pclass);
        auto it = newParents.find(canon);
        if (it != newParents.end()) {
            merge(canonClass, it->second);
            it->second = uf_.find(it->second);
        } else {
            newParents.emplace(std::move(canon), canonClass);
        }
    }

    // Reinstall into the hashcons; an existing entry for the same
    // canonical node is another congruence to merge, never overwrite.
    for (auto &[node, cid] : newParents) {
        auto mit = memo_.find(node);
        if (mit != memo_.end()) {
            merge(mit->second, cid);
            mit->second = uf_.find(mit->second);
        } else {
            bytesUsed_ += nodeBytes(node);
            memo_.emplace(graphCopy(node), cid);
        }
    }

    // repair() may run on a class that has since been merged away;
    // route the refreshed parent list to the current representative.
    EClassId tid = uf_.find(id);
    touch(tid);
    EClass &target = classes_[tid];
    for (auto &[node, cid] : newParents) {
        bytesUsed_ += nodeBytes(node) + sizeof(EClassId);
        target.parents.emplace_back(graphCopy(node), uf_.find(cid));
    }

    // Deduplicate this class's own nodes under canonicalization; the
    // rebuild() sweep repeats this for every class once the worklist
    // drains, catching classes whose nodes collided without the class
    // itself ever being enqueued.
    dedupNodesInPlace(uf_.find(id));
}

void
EGraph::dedupNodesInPlace(EClassId id)
{
    // In place: each node's children are rewritten to canonical ids
    // where they sit (no per-node copy), and survivors are compacted
    // to the front in first-occurrence order. The dedup set holds
    // pointers into the (never reallocated) node vector; a pointer is
    // only inserted once its slot is final, so compaction moves never
    // invalidate a set entry.
    EClass &self = classes_[id];
    if (self.nodes.empty())
        return;
    touch(id);
    if (self.nodes.size() == 1) {
        self.nodes.front().canonicalize(uf_);
        return;
    }
    // Small classes (the overwhelming majority during saturation) are
    // deduped by quadratic scan: no hash-set allocation, same
    // first-occurrence order. The cached structural hash makes each
    // comparison cheap (hash check first, full compare on equality).
    if (self.nodes.size() <= 16) {
        ENodeHash hasher;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < self.nodes.size(); ++i) {
            self.nodes[i].canonicalize(uf_);
            bool duplicate = false;
            std::size_t hi = hasher(self.nodes[i]);
            for (std::size_t j = 0; j < keep; ++j) {
                if (hasher(self.nodes[j]) == hi &&
                    self.nodes[j] == self.nodes[i]) {
                    duplicate = true;
                    break;
                }
            }
            if (duplicate) {
                bytesUsed_ -= nodeBytes(self.nodes[i]);
                continue;
            }
            if (keep != i)
                self.nodes[keep] = std::move(self.nodes[i]);
            ++keep;
        }
        liveNodes_ -= self.nodes.size() - keep;
        self.nodes.resize(keep);
        return;
    }
    struct NodePtrHash
    {
        std::size_t
        operator()(const ENode *node) const
        {
            return ENodeHash{}(*node);
        }
    };
    struct NodePtrEq
    {
        bool
        operator()(const ENode *a, const ENode *b) const
        {
            return *a == *b;
        }
    };
    std::unordered_set<const ENode *, NodePtrHash, NodePtrEq> dedup;
    dedup.reserve(self.nodes.size());
    std::size_t keep = 0;
    for (std::size_t i = 0; i < self.nodes.size(); ++i) {
        self.nodes[i].canonicalize(uf_);
        if (dedup.count(&self.nodes[i])) {
            // Refund the dropped duplicate at its full flat footprint
            // (struct plus any spill buffer) — refunding bare
            // sizeof(ENode) would leak the spill bytes into
            // bytesUsed() forever, drifting it away from
            // bytesUsedSlow() on wide-node workloads.
            bytesUsed_ -= nodeBytes(self.nodes[i]);
            continue;
        }
        if (keep != i)
            self.nodes[keep] = std::move(self.nodes[i]);
        dedup.insert(&self.nodes[keep]);
        ++keep;
    }
    liveNodes_ -= self.nodes.size() - keep;
    self.nodes.resize(keep);
}

std::vector<EClassId>
EGraph::canonicalClasses() const
{
    std::vector<EClassId> out;
    out.reserve(liveClasses_);
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            out.push_back(id);
    }
    return out;
}

OpClassesView
EGraph::classesWithOp(Op op)
{
    ISARIA_ASSERT(!dirty(), "op index queried on a dirty e-graph");
    ArenaVector<EClassId> &list = opClasses_[opBit(op)];
    // Compact: canonicalize, drop classes merged into ones already
    // listed, and keep the list sorted so search order (and therefore
    // match order) is deterministic.
    for (EClassId &id : list)
        id = uf_.find(id);
    std::sort(list.begin(), list.end());
    EClassId *last = std::unique(list.begin(), list.end());
    list.truncate(static_cast<std::size_t>(last - list.begin()));
    OpClassesView view;
    view.data_ = list.data();
    view.size_ = list.size();
    view.owner_ = this;
    view.generation_ = generation_;
    return view;
}

std::size_t
EGraph::numNodesSlow() const
{
    std::size_t total = 0;
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            total += classes_[id].nodes.size();
    }
    return total;
}

std::size_t
EGraph::numClassesSlow() const
{
    std::size_t total = 0;
    for (EClassId id = 0; id < uf_.size(); ++id) {
        if (uf_.find(id) == id)
            ++total;
    }
    return total;
}

std::size_t
EGraph::bytesUsedSlow() const
{
    // The ground truth bytesUsed() must track: per-id overhead plus
    // the flat footprint of every node copy actually held — class
    // members, parent back-pointers (with their id), hashcons keys.
    std::size_t total = classes_.size() * kPerIdOverhead;
    for (const EClass &cls : classes_) {
        for (const ENode &node : cls.nodes)
            total += nodeBytes(node);
        for (const auto &[node, pid] : cls.parents) {
            (void)pid;
            total += nodeBytes(node) + sizeof(EClassId);
        }
    }
    for (const auto &[node, id] : memo_) {
        (void)id;
        total += nodeBytes(node);
    }
    return total;
}

void
EGraph::snapshot()
{
    ISARIA_ASSERT(!dirty(),
                  "snapshot of a dirty e-graph (rebuild() first)");
    // A new snapshot replaces any outstanding one (LIFO depth 1).
    snapActive_ = true;
    ++snapEpoch_;
    journal_.clear();
    journalOpMask_.clear();
    snapMark_ = mem_->arena.mark();
    snapUfParents_ = uf_.snapshotParents();
    snapNumIds_ = classes_.size();
    snapLiveNodes_ = liveNodes_;
    snapLiveClasses_ = liveClasses_;
    snapBytesUsed_ = bytesUsed_;
    ++numSnapshots_;
    obs::counter("egraph/arena/snapshots",
                 static_cast<std::int64_t>(numSnapshots_));
    static const obs::CounterHandle snapshots =
        obs::metricCounter("egraph/arena/snapshots");
    obs::metricAdd(snapshots);
}

void
EGraph::restore()
{
    // The injection site fires before any mutation: a failed restore
    // leaves the graph exactly as it was (still usable, snapshot still
    // outstanding).
    faultPoint(FaultSite::SnapshotRestore);
    ISARIA_ASSERT(snapActive_, "restore without an outstanding snapshot");

    // Pending merges past the snapshot are being thrown away wholesale.
    worklist_.clear();

    // Journaled (first-touch) classes get their pre-snapshot contents
    // back; classes created since the snapshot are dropped entirely.
    for (std::size_t i = 0; i < journal_.size(); ++i) {
        auto &[id, cls] = journal_[i];
        classes_[id] = std::move(cls);
        opMask_[id] = journalOpMask_[i];
    }
    journal_.clear();
    journalOpMask_.clear();
    classes_.resize(snapNumIds_);
    opMask_.resize(snapNumIds_);
    classEpoch_.resize(snapNumIds_);
    uf_.restoreParents(std::move(snapUfParents_));

    // The hashcons may hold arena nodes past the mark; reconstruct it
    // empty (clear() would keep a possibly-arena bucket array), let
    // its nodes drain to the pool's free lists, drop the free blocks
    // the rewind is about to invalidate, then rewind.
    memo_ = MemoMap(0, ENodeHash{}, std::equal_to<ENode>{},
                    MemoAlloc(mem_.get()));
    mem_->dropFreeBlocksAtOrAfter(snapMark_);
    mem_->arena.release(snapMark_);

    rebuildDerivedIndexes();

    liveNodes_ = snapLiveNodes_;
    liveClasses_ = snapLiveClasses_;
    bytesUsed_ = snapBytesUsed_;
    // The restored state is structurally the snapshot's, but the
    // generation still advances: derived caches built between snapshot
    // and restore point into storage the rewind just reclaimed, and
    // must not revalidate.
    ++generation_;
    ++numRestores_;
    snapActive_ = false;
    obs::counter("egraph/arena/restores",
                 static_cast<std::int64_t>(numRestores_));
    static const obs::CounterHandle restores =
        obs::metricCounter("egraph/arena/restores");
    obs::metricAdd(restores);
}

void
EGraph::discardSnapshot()
{
    ISARIA_ASSERT(snapActive_, "discard without an outstanding snapshot");
    snapActive_ = false;
    snapUfParents_.clear();
    snapUfParents_.shrink_to_fit();
    journal_.clear();
    journalOpMask_.clear();
}

void
EGraph::rebuildDerivedIndexes()
{
    // The op-index lists' buffers may postdate the mark; forget them
    // all and repopulate from the restored class table. Iterating ids
    // ascending leaves each per-op list sorted and duplicate-free, the
    // same form classesWithOp() compacts to.
    //
    // Buffers the lists held from *before* the mark are abandoned, not
    // recycled: they sit below the frontier, so release() never
    // reclaims them and ArenaVector growth never reuses them. Each
    // snapshot/restore cycle on a non-empty graph therefore retires
    // one generation of op-list buffers into the arena. The compile
    // loop always snapshots the empty graph (pre-mark lists are
    // empty, nothing is abandoned); callers snapshotting a populated
    // graph repeatedly should expect bytesReserved() to creep by the
    // op-index footprint per cycle.
    for (ArenaVector<EClassId> &list : opClasses_)
        list.resetStorage();
    for (EClassId id = 0; id < classes_.size(); ++id) {
        if (uf_.find(id) != id)
            continue;
        std::uint32_t mask = opMask_[id];
        while (mask) {
            unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
            mask &= mask - 1;
            opClasses_[bit].push_back(mem_->arena, id);
        }
        // On a clean graph the hashcons is exactly { canonical member
        // node -> its class }, so rebuilding it from the class table
        // reproduces the snapshot's memo byte-for-byte. (No accounting
        // here: the caller restores bytesUsed() wholesale.)
        for (const ENode &node : classes_[id].nodes)
            memo_.emplace(graphCopy(node), id);
    }
}

EGraphArenaStats
EGraph::arenaStats() const
{
    EGraphArenaStats stats;
    stats.arenaEnabled = mem_->enabled;
    stats.bytesAllocated = mem_->arena.bytesAllocated();
    stats.bytesReserved = mem_->arena.bytesReserved();
    stats.numChunks = mem_->arena.numChunks();
    stats.allocations = mem_->arena.allocations();
    stats.chunkAllocations = mem_->arena.chunkAllocations();
    stats.snapshots = numSnapshots_;
    stats.restores = numRestores_;
    return stats;
}

} // namespace isaria
