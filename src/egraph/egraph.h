#ifndef ISARIA_EGRAPH_EGRAPH_H
#define ISARIA_EGRAPH_EGRAPH_H

/**
 * @file
 * The e-graph: a congruence-closed union of program spaces.
 *
 * This is a from-scratch reimplementation of the data structure behind
 * the egg library (Willsey et al., POPL 2021) that Isaria and
 * Diospyros build on: hash-consed e-nodes grouped into e-classes by a
 * union-find, with congruence restored lazily by rebuild() after a
 * batch of merges.
 *
 * Two bookkeeping structures are maintained incrementally so the
 * saturation loop never rescans the whole graph:
 *  - live node/class counters, updated on add/merge/repair, making
 *    numNodes()/numClasses() O(1) (the runner polls them every few
 *    hundred rule applications);
 *  - an op -> classes index (which canonical classes contain at least
 *    one e-node with a given operator), invalidated lazily: merges
 *    append the surviving class for newly-gained ops and stale ids are
 *    compacted away on access instead of rebuilding the index from
 *    scratch each iteration.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "egraph/enode.h"
#include "term/rec_expr.h"

namespace isaria
{

/** A set of equivalent e-nodes plus back-pointers to their users. */
struct EClass
{
    /** Canonicalized member nodes (deduplicated at rebuild). */
    std::vector<ENode> nodes;
    /** Nodes (in other classes) that have this class as a child. */
    std::vector<std::pair<ENode, EClassId>> parents;
};

/** Hash-consed congruence-closed e-graph. */
class EGraph
{
  public:
    /** Adds (or finds) an e-node; children must be existing classes. */
    EClassId add(ENode node);

    /** Adds a whole term bottom-up; returns the root's class. */
    EClassId addExpr(const RecExpr &expr);

    /** Adds the subtree of @p expr rooted at @p root. */
    EClassId addExpr(const RecExpr &expr, NodeId root);

    /** Canonical id of @p id. */
    EClassId find(EClassId id) const { return uf_.find(id); }

    /**
     * Canonical id of @p id as a pure read (no path compression).
     * This is the only find that may be used while the e-graph is
     * frozen and searched from multiple threads; rebuild() fully
     * compresses the union-find so it is O(1) in that state.
     */
    EClassId findFrozen(EClassId id) const
    {
        return uf_.findNoCompress(id);
    }

    /**
     * Asserts @p a and @p b equal. Returns true if the graph changed
     * (the classes were distinct). Congruence is restored lazily:
     * call rebuild() after a batch of merges.
     */
    bool merge(EClassId a, EClassId b);

    /** Restores congruence and hash-cons invariants. */
    void rebuild();

    /** The e-class with canonical id @p id. */
    const EClass &
    eclass(EClassId id) const
    {
        return classes_[find(id)];
    }

    /** Like eclass(), but thread-safe on a frozen e-graph. */
    const EClass &
    eclassFrozen(EClassId id) const
    {
        return classes_[uf_.findNoCompress(id)];
    }

    /** All canonical class ids (valid only after rebuild). */
    std::vector<EClassId> canonicalClasses() const;

    /**
     * Canonical classes containing at least one e-node with operator
     * @p op, sorted ascending. Maintained incrementally: this call
     * compacts stale (merged-away) ids in place instead of rebuilding
     * the index. Call only on a rebuilt (non-dirty) e-graph; the
     * returned reference is valid until the next add/merge.
     */
    const std::vector<EClassId> &classesWithOp(Op op);

    /** Total e-nodes across canonical classes (O(1), incremental). */
    std::size_t numNodes() const { return liveNodes_; }

    /**
     * Approximate heap footprint of the e-graph in bytes, maintained
     * incrementally: every add() charges its e-node (class member +
     * hashcons key + per-child parent back-pointers + class
     * overhead), and rebuild()'s deduplication refunds dropped nodes.
     * It is an accounting estimate, not a malloc audit — the
     * saturation runner polls it against EqSatLimits::maxBytes to
     * realize the paper's "ran out of memory" condition at byte (not
     * just node-count) granularity.
     */
    std::size_t bytesUsed() const { return bytesUsed_; }

    /** Number of canonical classes (O(1), incremental). */
    std::size_t numClasses() const { return liveClasses_; }

    /** O(all-classes) recount of numNodes(), for cross-checks. */
    std::size_t numNodesSlow() const;

    /** O(all-classes) recount of numClasses(), for cross-checks. */
    std::size_t numClassesSlow() const;

    /** True if the ids are in the same class. */
    bool
    same(EClassId a, EClassId b) const
    {
        return find(a) == find(b);
    }

    /** True when merges since the last rebuild() are pending. */
    bool dirty() const { return !worklist_.empty(); }

  private:
    void repair(EClassId id);

    static unsigned opBit(Op op) { return static_cast<unsigned>(op); }

    UnionFind uf_;
    std::vector<EClass> classes_;
    std::unordered_map<ENode, EClassId, ENodeHash> memo_;
    std::vector<EClassId> worklist_;

    /** Bytes charged for one e-node's presence in the graph. */
    static std::size_t enodeFootprint(const ENode &node);

    /** Incremental counters mirroring the slow scans. */
    std::size_t liveNodes_ = 0;
    std::size_t liveClasses_ = 0;
    std::size_t bytesUsed_ = 0;

    /** Bitmask of operators present in each class (by class id). */
    std::vector<std::uint32_t> opMask_;
    /** Per-op class lists; may hold stale ids until compacted. */
    std::vector<std::vector<EClassId>> opClasses_ =
        std::vector<std::vector<EClassId>>(
            static_cast<std::size_t>(Op::NumOps));
};

} // namespace isaria

#endif // ISARIA_EGRAPH_EGRAPH_H
