#ifndef ISARIA_EGRAPH_EGRAPH_H
#define ISARIA_EGRAPH_EGRAPH_H

/**
 * @file
 * The e-graph: a congruence-closed union of program spaces.
 *
 * This is a from-scratch reimplementation of the data structure behind
 * the egg library (Willsey et al., POPL 2021) that Isaria and
 * Diospyros build on: hash-consed e-nodes grouped into e-classes by a
 * union-find, with congruence restored lazily by rebuild() after a
 * batch of merges.
 *
 * Two bookkeeping structures are maintained incrementally so the
 * saturation loop never rescans the whole graph:
 *  - live node/class counters, updated on add/merge/repair, making
 *    numNodes()/numClasses() O(1) (the runner polls them every few
 *    hundred rule applications);
 *  - an op -> classes index (which canonical classes contain at least
 *    one e-node with a given operator), invalidated lazily: merges
 *    append the surviving class for newly-gained ops and stale ids are
 *    compacted away on access instead of rebuilding the index from
 *    scratch each iteration.
 *
 * Every structural mutation (an e-node actually inserted, two classes
 * actually merged) bumps a generation counter. Consumers that cache
 * views or indexes derived from the graph — the op-index views below,
 * the extraction dependency index (egraph/extract.h) — key their
 * caches on (graphId, generation) and assert freshness on use.
 *
 * **Memory architecture** (DESIGN.md §12). The hot allocations of the
 * saturation loop live in a per-graph Arena (support/arena.h): spill
 * buffers of wide e-nodes (assignArena), the hash-cons table's nodes
 * (PoolAllocator), and the op->classes index lists (ArenaVector).
 * `ISARIA_EGRAPH_ARENA=0` reverts the node-level allocations to the
 * global allocator for A/B measurement. Byte accounting is exact:
 * bytesUsed() is maintained at every mutation site and equals
 * bytesUsedSlow()'s full recount (tests pin this), so the runner's
 * maxBytes guard cannot drift.
 *
 * **Snapshot/restore.** snapshot() captures the arena's high-water
 * mark, the union-find forest, and an epoch number; mutations then
 * journal the first touch of each pre-existing class. restore()
 * rewinds the arena, puts journaled classes and the forest back,
 * truncates everything created since, and rebuilds the derived
 * indexes — returning the graph to a state structurally identical to
 * the snapshot (same classes, nodes, and extraction results; the
 * generation still advances, so stale derived caches cannot
 * revalidate). One snapshot is outstanding at a time; taking a new
 * one replaces the old. The compile loop uses this for speculative
 * phase exploration: try a phase, keep it if the extracted cost
 * improved, roll it back otherwise. Restoring is cheapest when the
 * snapshot was taken on an empty graph (the compile loop's pattern):
 * snapshotting a *populated* graph repeatedly leaks one generation of
 * op-index list buffers into the arena per cycle, because the rebuilt
 * lists cannot reuse buffers that sit below the mark (see
 * rebuildDerivedIndexes()).
 */

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "egraph/enode.h"
#include "support/arena.h"
#include "support/panic.h"
#include "term/rec_expr.h"

namespace isaria
{

/** A set of equivalent e-nodes plus back-pointers to their users. */
struct EClass
{
    /** Canonicalized member nodes (deduplicated at rebuild). */
    std::vector<ENode> nodes;
    /** Nodes (in other classes) that have this class as a child. */
    std::vector<std::pair<ENode, EClassId>> parents;
};

class EGraph;

/**
 * A checked view of one operator's class list (see classesWithOp).
 * The underlying storage is owned by the e-graph and is only valid
 * until the next structural mutation (add that inserts, merge that
 * joins); every accessor asserts that the graph's generation still
 * matches the one the view was taken at, turning a use-after-
 * invalidate from silent garbage into an immediate panic.
 */
class OpClassesView
{
  public:
    OpClassesView() = default;

    const EClassId *begin() const { check(); return data_; }
    const EClassId *end() const { check(); return data_ + size_; }
    std::size_t size() const { check(); return size_; }
    bool empty() const { check(); return size_ == 0; }
    EClassId operator[](std::size_t i) const { check(); return data_[i]; }

    /**
     * An unchecked view over caller-owned storage (used by the runner
     * for wildcard-rooted rules, whose candidate list is a local copy
     * that cannot be invalidated by graph mutations).
     */
    static OpClassesView
    unchecked(const std::vector<EClassId> &ids)
    {
        OpClassesView view;
        view.data_ = ids.data();
        view.size_ = ids.size();
        return view;
    }

  private:
    friend class EGraph;
    void check() const;

    const EClassId *data_ = nullptr;
    std::size_t size_ = 0;
    /** Owning graph; null for unchecked views. */
    const EGraph *owner_ = nullptr;
    std::uint64_t generation_ = 0;
};

/** Allocation and snapshot statistics of one e-graph's arena. */
struct EGraphArenaStats
{
    /** False when ISARIA_EGRAPH_ARENA=0 routed node allocations to
     *  the global allocator (the A/B baseline). */
    bool arenaEnabled = false;
    /** Live bytes at the arena frontier (rewinds with restore). */
    std::uint64_t bytesAllocated = 0;
    /** Chunk capacity resident (never shrinks). */
    std::uint64_t bytesReserved = 0;
    std::size_t numChunks = 0;
    /** Monotonic arena allocation count (bump-pointer hits). */
    std::uint64_t allocations = 0;
    /** Monotonic count of chunks obtained from the heap — the
     *  graph's actual allocator traffic for arena-backed storage. */
    std::uint64_t chunkAllocations = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t restores = 0;
};

/** Hash-consed congruence-closed e-graph. */
class EGraph
{
  public:
    EGraph();

    /**
     * Deep copy. The copy gets a fresh graphId() (the implicit copy
     * would have duplicated it, silently breaking the process-unique
     * contract that derived caches key on), a fresh arena, and no
     * outstanding snapshot; every copied node owns its storage.
     */
    EGraph(const EGraph &other);
    EGraph(EGraph &&) noexcept = default;
    /**
     * Assignment is deliberately absent: the memo table's allocator
     * points into the source graph's arena pool, so a member-wise
     * assignment would free nodes through a dead pool. Construct a
     * fresh graph instead.
     */
    EGraph &operator=(const EGraph &) = delete;
    EGraph &operator=(EGraph &&) = delete;

    /** Adds (or finds) an e-node; children must be existing classes. */
    EClassId add(ENode node);

    /** Adds a whole term bottom-up; returns the root's class. */
    EClassId addExpr(const RecExpr &expr);

    /** Adds the subtree of @p expr rooted at @p root. */
    EClassId addExpr(const RecExpr &expr, NodeId root);

    /** Canonical id of @p id. */
    EClassId find(EClassId id) const { return uf_.find(id); }

    /**
     * Canonical id of @p id as a pure read (no path compression).
     * This is the only find that may be used while the e-graph is
     * frozen and searched from multiple threads; rebuild() fully
     * compresses the union-find so it is O(1) in that state.
     */
    EClassId findFrozen(EClassId id) const
    {
        return uf_.findNoCompress(id);
    }

    /**
     * Asserts @p a and @p b equal. Returns true if the graph changed
     * (the classes were distinct). Congruence is restored lazily:
     * call rebuild() after a batch of merges.
     */
    bool merge(EClassId a, EClassId b);

    /** Restores congruence and hash-cons invariants. */
    void rebuild();

    /** The e-class with canonical id @p id. */
    const EClass &
    eclass(EClassId id) const
    {
        return classes_[find(id)];
    }

    /** Like eclass(), but thread-safe on a frozen e-graph. */
    const EClass &
    eclassFrozen(EClassId id) const
    {
        return classes_[uf_.findNoCompress(id)];
    }

    /** All canonical class ids (valid only after rebuild). */
    std::vector<EClassId> canonicalClasses() const;

    /**
     * Canonical classes containing at least one e-node with operator
     * @p op, sorted ascending. Maintained incrementally: this call
     * compacts stale (merged-away) ids in place instead of rebuilding
     * the index. Call only on a rebuilt (non-dirty) e-graph. The view
     * is valid until the next structural add/merge — and, unlike the
     * bare reference this used to return, it asserts on any use after
     * that point (the generation check in OpClassesView).
     */
    OpClassesView classesWithOp(Op op);

    /**
     * Monotonic count of structural mutations: bumped by every add()
     * that inserts a new e-node, every merge() that joins two distinct
     * classes (congruence repairs inside rebuild() go through merge(),
     * so they bump it too), and every restore() — the restored state
     * is structurally the snapshot's, but caches built in between must
     * not revalidate. Derived caches — op-index views, the extraction
     * dependency index — are valid exactly while this stays unchanged.
     */
    std::uint64_t generation() const { return generation_; }

    /**
     * Process-unique id of this EGraph instance. Two graphs never
     * share an id, even when one is constructed at the address a
     * destroyed one occupied — (graphId, generation) is therefore a
     * sound cache key for derived indexes that may outlive the graph
     * they were built from.
     */
    std::uint64_t graphId() const { return graphId_; }

    /** Ids ever allocated (canonical or merged away): the exclusive
     *  upper bound of every EClassId, for dense per-class arrays. */
    std::size_t numIds() const { return classes_.size(); }

    /** Total e-nodes across canonical classes (O(1), incremental). */
    std::size_t numNodes() const { return liveNodes_; }

    /**
     * Accounted footprint of the e-graph in bytes, maintained exactly
     * at every mutation site: add() charges its e-node (class member
     * + hashcons key + per-child parent back-pointers + class
     * overhead), repair() refunds detached parents and erased
     * hashcons keys and charges reinstalls, and deduplication refunds
     * dropped nodes at their full footprint. bytesUsedSlow() recounts
     * the same quantity from scratch; the two always agree (tests pin
     * it). The saturation runner polls this against
     * EqSatLimits::maxBytes to realize the paper's "ran out of
     * memory" condition at byte (not just node-count) granularity.
     */
    std::size_t bytesUsed() const { return bytesUsed_; }

    /** Full recount of bytesUsed() from the live structures. */
    std::size_t bytesUsedSlow() const;

    /** Number of canonical classes (O(1), incremental). */
    std::size_t numClasses() const { return liveClasses_; }

    /** O(all-classes) recount of numNodes(), for cross-checks. */
    std::size_t numNodesSlow() const;

    /** O(all-classes) recount of numClasses(), for cross-checks. */
    std::size_t numClassesSlow() const;

    /** True if the ids are in the same class. */
    bool
    same(EClassId a, EClassId b) const
    {
        return find(a) == find(b);
    }

    /** True when merges since the last rebuild() are pending. */
    bool dirty() const { return !worklist_.empty(); }

    // -----------------------------------------------------------------
    // Snapshot / restore (speculative phase exploration).

    /**
     * Captures the current state: arena high-water mark, union-find
     * forest, live counters. The graph must be clean (rebuilt).
     * Subsequent mutations journal the first touch of each
     * pre-existing class; restore() undoes everything since. At most
     * one snapshot is outstanding — taking another replaces it.
     */
    void snapshot();

    /**
     * Rolls the graph back to the outstanding snapshot: journaled
     * classes and the union-find forest are restored, classes created
     * since are dropped, the arena rewinds to its mark, and the
     * hash-cons and op-index are rebuilt from the restored classes.
     * The result is structurally identical to the snapshot state
     * (same classes, nodes, counters, and extraction results).
     * Consumes the snapshot. Fault-injection site
     * "egraph-snapshot-restore" fires before any mutation, so a
     * failed restore leaves the graph exactly as it was.
     */
    void restore();

    /** Drops the outstanding snapshot, keeping the current state. */
    void discardSnapshot();

    /** True while a snapshot is outstanding. */
    bool snapshotActive() const { return snapActive_; }

    /** Allocation/snapshot counters (obs: egraph/arena/...). */
    EGraphArenaStats arenaStats() const;

  private:
    using MemoAlloc = PoolAllocator<std::pair<const ENode, EClassId>>;
    using MemoMap = std::unordered_map<ENode, EClassId, ENodeHash,
                                       std::equal_to<ENode>, MemoAlloc>;

    void repair(EClassId id);
    void dedupNodesInPlace(EClassId id);

    /** A copy of @p node for storage inside this graph: spill
     *  children land in the arena (heap when the arena is off). */
    ENode graphCopy(const ENode &node) const;

    /** Journals @p id's class on its first mutation after snapshot(). */
    void touch(EClassId id);

    /** Rebuilds memo_ and opClasses_ from the (clean) class table. */
    void rebuildDerivedIndexes();

    static unsigned opBit(Op op) { return static_cast<unsigned>(op); }

    /** Flat bytes of one e-node copy (struct + spill buffer). */
    static std::size_t
    nodeBytes(const ENode &node)
    {
        std::size_t spill =
            node.children.size() > ChildArray::kInlineCapacity
                ? node.children.size() * sizeof(EClassId)
                : 0;
        return sizeof(ENode) + spill;
    }

    /** Bytes charged for one e-node's presence in the graph. */
    static std::size_t enodeFootprint(const ENode &node);

    /** Per-class-id overhead charged once at id creation. */
    static constexpr std::size_t kPerIdOverhead =
        sizeof(EClass) + sizeof(EClassId) + sizeof(std::uint32_t);

    /** Arena + free lists, heap-pinned so the memo allocator's pool
     *  pointer survives moves of the EGraph itself. Declared first:
     *  members holding arena memory must be destroyed before it. */
    std::unique_ptr<ArenaPool> mem_;

    UnionFind uf_;
    std::vector<EClass> classes_;
    MemoMap memo_;
    std::vector<EClassId> worklist_;

    /** Incremental counters mirroring the slow scans. */
    std::size_t liveNodes_ = 0;
    std::size_t liveClasses_ = 0;
    std::size_t bytesUsed_ = 0;

    /** See generation() / graphId(). */
    std::uint64_t generation_ = 0;
    std::uint64_t graphId_ = nextGraphId();
    static std::uint64_t nextGraphId();

    /** Bitmask of operators present in each class (by class id). */
    std::vector<std::uint32_t> opMask_;
    /** Per-op class lists (arena-backed); may hold stale ids until
     *  compacted on access. */
    std::vector<ArenaVector<EClassId>> opClasses_ =
        std::vector<ArenaVector<EClassId>>(
            static_cast<std::size_t>(Op::NumOps));

    // Snapshot state. classEpoch_[id] records the snapshot epoch that
    // last journaled class id, so each class is copied at most once
    // per snapshot (first-touch journaling).
    bool snapActive_ = false;
    std::uint64_t snapEpoch_ = 0;
    Arena::Mark snapMark_;
    std::vector<EClassId> snapUfParents_;
    std::size_t snapNumIds_ = 0;
    std::size_t snapLiveNodes_ = 0;
    std::size_t snapLiveClasses_ = 0;
    std::size_t snapBytesUsed_ = 0;
    std::vector<std::pair<EClassId, EClass>> journal_;
    std::vector<std::uint32_t> journalOpMask_;
    std::vector<std::uint64_t> classEpoch_;
    std::uint64_t numSnapshots_ = 0;
    std::uint64_t numRestores_ = 0;
};

inline void
OpClassesView::check() const
{
    ISARIA_ASSERT(!owner_ || owner_->generation() == generation_,
                  "op-index view used after invalidation (the e-graph "
                  "mutated since classesWithOp)");
}

} // namespace isaria

#endif // ISARIA_EGRAPH_EGRAPH_H
