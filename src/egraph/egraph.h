#ifndef ISARIA_EGRAPH_EGRAPH_H
#define ISARIA_EGRAPH_EGRAPH_H

/**
 * @file
 * The e-graph: a congruence-closed union of program spaces.
 *
 * This is a from-scratch reimplementation of the data structure behind
 * the egg library (Willsey et al., POPL 2021) that Isaria and
 * Diospyros build on: hash-consed e-nodes grouped into e-classes by a
 * union-find, with congruence restored lazily by rebuild() after a
 * batch of merges.
 */

#include <unordered_map>
#include <vector>

#include "egraph/enode.h"
#include "term/rec_expr.h"

namespace isaria
{

/** A set of equivalent e-nodes plus back-pointers to their users. */
struct EClass
{
    /** Canonicalized member nodes (deduplicated at rebuild). */
    std::vector<ENode> nodes;
    /** Nodes (in other classes) that have this class as a child. */
    std::vector<std::pair<ENode, EClassId>> parents;
};

/** Hash-consed congruence-closed e-graph. */
class EGraph
{
  public:
    /** Adds (or finds) an e-node; children must be existing classes. */
    EClassId add(ENode node);

    /** Adds a whole term bottom-up; returns the root's class. */
    EClassId addExpr(const RecExpr &expr);

    /** Adds the subtree of @p expr rooted at @p root. */
    EClassId addExpr(const RecExpr &expr, NodeId root);

    /** Canonical id of @p id. */
    EClassId find(EClassId id) const { return uf_.find(id); }

    /**
     * Asserts @p a and @p b equal. Returns true if the graph changed
     * (the classes were distinct). Congruence is restored lazily:
     * call rebuild() after a batch of merges.
     */
    bool merge(EClassId a, EClassId b);

    /** Restores congruence and hash-cons invariants. */
    void rebuild();

    /** The e-class with canonical id @p id. */
    const EClass &
    eclass(EClassId id) const
    {
        return classes_[find(id)];
    }

    /** All canonical class ids (valid only after rebuild). */
    std::vector<EClassId> canonicalClasses() const;

    /** Total e-nodes across canonical classes. */
    std::size_t numNodes() const;

    /** Number of canonical classes. */
    std::size_t numClasses() const;

    /** True if the ids are in the same class. */
    bool
    same(EClassId a, EClassId b) const
    {
        return find(a) == find(b);
    }

    /** True when merges since the last rebuild() are pending. */
    bool dirty() const { return !worklist_.empty(); }

  private:
    void repair(EClassId id);

    UnionFind uf_;
    std::vector<EClass> classes_;
    std::unordered_map<ENode, EClassId, ENodeHash> memo_;
    std::vector<EClassId> worklist_;
};

} // namespace isaria

#endif // ISARIA_EGRAPH_EGRAPH_H
