#include "egraph/runner.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/fault.h"
#include "support/thread_pool.h"

namespace isaria
{

namespace
{

/**
 * Candidate classes per search task. Fixed (rather than derived from
 * the thread count) so the task decomposition — and with it the
 * slicing of each rule's step budget — is identical no matter how
 * many workers execute it.
 */
constexpr std::size_t kShardSize = 256;

/** One (rule, candidate-range) unit of search work. */
struct SearchShard
{
    std::size_t rule;
    std::size_t begin;
    std::size_t end;
    /** This shard's slice of the rule's step budget. */
    std::size_t steps;
};

/** Backoff state of one rule (see EqSatScheduler::Backoff). */
struct RuleBackoff
{
    /** First iteration index the rule may search again. */
    std::size_t bannedUntil = 0;
    /** Prior bans; budget and ban length double per offense. */
    unsigned offenses = 0;
};

/** @p value << @p shift, saturating instead of overflowing. */
std::size_t
saturatingShift(std::size_t value, unsigned shift)
{
    if (shift >= 48 || value > (SIZE_MAX >> shift))
        return SIZE_MAX;
    return value << shift;
}

/** Always-on registry sites of the saturation loop (see
 *  obs/metrics.h; registered once per process). */
struct EqSatMetrics
{
    obs::HistogramHandle iterNs = obs::metricHistogram("eqsat/iter_ns");
    obs::HistogramHandle searchNs =
        obs::metricHistogram("eqsat/search_ns");
    obs::HistogramHandle applyNs =
        obs::metricHistogram("eqsat/apply_ns");
    obs::HistogramHandle runNs = obs::metricHistogram("eqsat/run_ns");
    obs::CounterHandle runs = obs::metricCounter("eqsat/runs");
    obs::CounterHandle iters = obs::metricCounter("eqsat/iters");
    obs::CounterHandle schedBans =
        obs::metricCounter("eqsat/sched/bans");
    obs::CounterHandle schedSkipped =
        obs::metricCounter("eqsat/sched/skipped");
    obs::CounterHandle faults = obs::metricCounter("eqsat/faults");
    obs::CounterHandle stepBudgetExhausted =
        obs::metricCounter("eqsat/step_budget_exhausted");
    obs::GaugeHandle peakNodes = obs::metricGauge("egraph/peak_nodes");
    obs::GaugeHandle bytesUsed = obs::metricGauge("egraph/bytes_used");
    obs::GaugeHandle arenaHighWater =
        obs::metricGauge("egraph/arena/high_water_bytes");
    obs::GaugeHandle arenaChunks =
        obs::metricGauge("egraph/arena/chunks");
    obs::GaugeHandle arenaOccupancy =
        obs::metricGauge("egraph/arena/occupancy_pct");
    /** One counter per StopReason ("eqsat/stop/<name>"). */
    std::array<obs::CounterHandle, kAllStopReasons.size()> stops;

    EqSatMetrics()
    {
        for (std::size_t i = 0; i < kAllStopReasons.size(); ++i) {
            std::string name = std::string("eqsat/stop/") +
                               stopReasonName(kAllStopReasons[i]);
            stops[i] = obs::metricCounter(name.c_str());
        }
    }
};

const EqSatMetrics &
eqSatMetrics()
{
    static EqSatMetrics metrics;
    return metrics;
}

/** The stop counter for @p reason. */
obs::CounterHandle
stopCounter(StopReason reason)
{
    for (std::size_t i = 0; i < kAllStopReasons.size(); ++i)
        if (kAllStopReasons[i] == reason)
            return eqSatMetrics().stops[i];
    return eqSatMetrics().stops[0];
}

} // namespace

const char *
eqSatSchedulerName(EqSatScheduler scheduler)
{
    switch (scheduler) {
      case EqSatScheduler::Simple: return "simple";
      case EqSatScheduler::Backoff: return "backoff";
    }
    return "?";
}

std::optional<EqSatScheduler>
eqSatSchedulerFromName(const char *name)
{
    for (EqSatScheduler s :
         {EqSatScheduler::Simple, EqSatScheduler::Backoff}) {
        if (std::strcmp(eqSatSchedulerName(s), name) == 0)
            return s;
    }
    return std::nullopt;
}

int
resolveEqSatThreads(int requested)
{
    if (requested >= 1)
        return requested;
    return static_cast<int>(ThreadPool::defaultThreads());
}

const char *
stopReasonName(StopReason reason)
{
    // Audited against kAllStopReasons: every enumerator has a unique
    // human-readable name, and the wall-clock stop ("time-limit") is
    // distinct from the iteration/step-budget stop ("iter-limit") so
    // stats output can tell a slow rule set from a deep one.
    switch (reason) {
      case StopReason::Saturated: return "saturated";
      case StopReason::NodeLimit: return "node-limit";
      case StopReason::IterLimit: return "iter-limit";
      case StopReason::TimeLimit: return "time-limit";
      case StopReason::MemLimit: return "mem-limit";
      case StopReason::Cancelled: return "cancelled";
    }
    return "?";
}

std::optional<StopReason>
stopReasonFromName(const char *name)
{
    for (StopReason reason : kAllStopReasons) {
        if (std::strcmp(stopReasonName(reason), name) == 0)
            return reason;
    }
    return std::nullopt;
}

std::string
EqSatReport::toString() const
{
    std::string sched;
    if (schedBans > 0) {
        sched = " (sched: " + std::to_string(schedBans) + " bans, " +
                std::to_string(schedSkippedSearches) +
                " searches skipped, " +
                std::to_string(schedThrottledMatches) +
                " matches throttled)";
    }
    return std::string(stopReasonName(stop)) + " after " +
           std::to_string(iterations) + " iters, " +
           std::to_string(nodes) + " nodes, " + std::to_string(classes) +
           " classes" +
           (stepBudgetExhausted ? " (step budget exhausted)" : "") +
           (faultInjected ? " (fault injected)" : "") + sched;
}

EqSatReport
runEqSat(EGraph &egraph, const std::vector<CompiledRule> &rules,
         const EqSatLimits &limits)
{
    Stopwatch watch;
    Deadline deadline(limits.timeoutSeconds);
    EqSatReport report;
    // An armed fault plan forces the sequential path (the same
    // fallback rule synthesis uses): fault ordinals are consumed per
    // shard, and with workers racing, which shard a "fire on the Nth
    // probe" ordinal lands on — and therefore which iteration's
    // matches and scheduler ban ordinals survive — would depend on
    // the schedule. Sequential search keeps injected-fault runs (and
    // the backoff scheduler's ban bookkeeping) byte-identical at any
    // requested thread count.
    report.threads = faultPlanActive()
                         ? 1
                         : resolveEqSatThreads(limits.numThreads);
    ThreadPool pool(static_cast<unsigned>(report.threads));
    report.ruleApplied.assign(rules.size(), 0);
    report.ruleBannedIters.assign(rules.size(), 0);
    std::vector<RuleBackoff> backoff(
        limits.scheduler == EqSatScheduler::Backoff ? rules.size() : 0);

    // Tracing setup. Everything here is observation only — a traced
    // run produces byte-identical results to an untraced one — and
    // with tracing disabled the cost is one null check per site.
    obs::TraceSession *trace = obs::TraceSession::active();
    obs::Span runSpan("eqsat/run",
                      static_cast<std::int64_t>(rules.size()));
    std::uint32_t shardSpanName = 0;
    std::vector<std::uint32_t> ruleMatchName, ruleStepName,
        ruleApplyName;
    if (trace) {
        shardSpanName = obs::internName("eqsat/shard");
        ruleMatchName.reserve(rules.size());
        ruleStepName.reserve(rules.size());
        ruleApplyName.reserve(rules.size());
        for (const CompiledRule &rule : rules) {
            ruleMatchName.push_back(
                obs::internName("rule/" + rule.name() + "/matches"));
            ruleStepName.push_back(
                obs::internName("rule/" + rule.name() + "/steps"));
            ruleApplyName.push_back(
                obs::internName("rule/" + rule.name() + "/applied"));
        }
    }

    ExecControl ctl(&deadline, limits.cancel);

    // Any fault injected inside the loop (e-graph allocation, shard
    // search, rebuild) abandons the current iteration: the catch at
    // the bottom restores the graph's invariants and reports a
    // Cancelled stop, so the caller can still extract best-so-far.
    try {

    egraph.rebuild();

    for (int iter = 0; iter < limits.maxIters; ++iter) {
        if (ctl.cancelled()) {
            report.stop = StopReason::Cancelled;
            break;
        }
        if (deadline.expired()) {
            report.stop = StopReason::TimeLimit;
            break;
        }
        if (egraph.numNodes() >= limits.maxNodes) {
            report.stop = StopReason::NodeLimit;
            break;
        }
        if (limits.maxBytes &&
            egraph.bytesUsed() >= limits.maxBytes) {
            report.stop = StopReason::MemLimit;
            break;
        }
        obs::Span iterSpan("eqsat/iter", iter);
        obs::ScopedHistogramTimer iterTimer(eqSatMetrics().iterNs);

        // Search phase: gather matches for every rule against the
        // frozen e-graph, so application order cannot bias results.
        // The e-graph's incrementally-maintained op index gives each
        // rule only the classes containing its root operator
        // (wildcard-rooted rules still visit everything). Rules the
        // backoff scheduler has banned are skipped outright — that
        // skip, not the post-search throttle, is the scheduler's
        // perf win — and the ban state is itself deterministic, so
        // the shard decomposition stays thread-count independent.
        Stopwatch searchWatch;
        std::vector<EClassId> allClasses = egraph.canonicalClasses();
        std::vector<OpClassesView> candidates(rules.size());
        std::vector<std::uint8_t> banned(rules.size(), 0);
        bool anySchedActivity = false;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (!backoff.empty() &&
                static_cast<std::size_t>(iter) < backoff[r].bannedUntil) {
                banned[r] = 1;
                anySchedActivity = true;
                ++report.schedSkippedSearches;
                ++report.ruleBannedIters[r];
                continue;
            }
            Op rootOp = rules[r].lhs().pattern().root().op;
            candidates[r] = rootOp == Op::Wildcard
                                ? OpClassesView::unchecked(allClasses)
                                : egraph.classesWithOp(rootOp);
        }

        // Cut each rule's candidate list into fixed-size shards and
        // slice its step budget across them (front shards take the
        // remainder), so every shard is self-contained and the result
        // is independent of scheduling.
        std::vector<SearchShard> shards;
        for (std::size_t r = 0; r < rules.size(); ++r) {
            if (banned[r])
                continue;
            std::size_t n = candidates[r].size();
            if (n == 0)
                continue;
            std::size_t numShards = (n + kShardSize - 1) / kShardSize;
            std::size_t base = limits.maxSearchStepsPerRule / numShards;
            std::size_t extra = limits.maxSearchStepsPerRule % numShards;
            for (std::size_t s = 0; s < numShards; ++s) {
                shards.push_back(
                    SearchShard{r, s * kShardSize,
                                std::min(n, (s + 1) * kShardSize),
                                base + (s < extra ? 1 : 0)});
            }
        }

        std::vector<std::vector<PatternMatch>> shardMatches(
            shards.size());
        // Step budget consumed per shard, recorded only when tracing
        // (summed into the per-rule step counters after the merge).
        std::vector<std::size_t> shardSteps(trace ? shards.size() : 0);
        obs::Span searchSpan("eqsat/search",
                             static_cast<std::int64_t>(shards.size()));
        // Deadline, cancellation, or a shard fault: all three abandon
        // the phase's matches, so the e-graph after the stop is the
        // last completed iteration's — deterministic for any thread
        // count (the wall clock being the one nondeterministic
        // trigger, as before).
        std::atomic<bool> interrupted{false};
        std::atomic<bool> faulted{false};
        // An OR across shards: deterministic for any schedule.
        std::atomic<bool> stepsExhausted{false};
        pool.parallelFor(shards.size(), [&](std::size_t t) {
            if (interrupted.load(std::memory_order_relaxed))
                return;
            // The shard is the unit of search work, so it is the
            // search phase's fault-injection site. Thread-pool tasks
            // must not throw: a fired fault flags the run instead.
            if (faultShouldFire(FaultSite::ShardSearch)) {
                faulted.store(true, std::memory_order_relaxed);
                interrupted.store(true, std::memory_order_relaxed);
                return;
            }
            const SearchShard &shard = shards[t];
            // Worker threads emit straight into their own lock-free
            // rings; the span records which rule this shard served.
            obs::Span shardSpan(shardSpanName, trace,
                                static_cast<std::int64_t>(shard.rule));
            const CompiledPattern &lhs = rules[shard.rule].lhs();
            const OpClassesView &classes = candidates[shard.rule];
            std::vector<PatternMatch> &out = shardMatches[t];
            std::size_t steps = shard.steps;
            std::size_t scanned = 0;
            for (std::size_t i = shard.begin; i < shard.end; ++i) {
                if (out.size() >= limits.maxMatchesPerRule ||
                    steps == 0) {
                    break;
                }
                std::size_t remaining =
                    limits.maxMatchesPerRule - out.size();
                std::size_t cap =
                    out.size() +
                    std::min(limits.maxMatchesPerClass, remaining);
                // ctl is polled inside searchClass too (every ~2k
                // VM steps), so even one enormous class cannot
                // overshoot the wall-clock budget unboundedly.
                lhs.searchClass(egraph, classes[i], out, cap, &steps,
                                &ctl);
                if ((++scanned & 15) == 0 && ctl.interrupted()) {
                    interrupted.store(true, std::memory_order_relaxed);
                    break;
                }
            }
            if (steps == 0)
                stepsExhausted.store(true, std::memory_order_relaxed);
            if (trace)
                shardSteps[t] = shard.steps - steps;
        });
        double searchSeconds = searchWatch.elapsedSeconds();
        report.searchSeconds += searchSeconds;
        obs::metricRecord(eqSatMetrics().searchNs,
                          static_cast<std::uint64_t>(searchSeconds *
                                                     1e9));
        report.stepBudgetExhausted |=
            stepsExhausted.load(std::memory_order_relaxed);
        searchSpan.close();
        if (faulted.load(std::memory_order_relaxed)) {
            report.faultInjected = true;
            report.stop = StopReason::Cancelled;
            break;
        }
        if (interrupted.load(std::memory_order_relaxed) ||
            ctl.interrupted()) {
            report.stop = ctl.cancelled() ? StopReason::Cancelled
                                          : StopReason::TimeLimit;
            break;
        }

        // Deterministic merge: rule-major, shard order, truncated at
        // the per-rule cap — byte-identical for any thread count.
        std::vector<std::vector<PatternMatch>> allMatches(rules.size());
        for (std::size_t t = 0; t < shards.size(); ++t) {
            std::vector<PatternMatch> &dst = allMatches[shards[t].rule];
            for (PatternMatch &m : shardMatches[t]) {
                if (dst.size() >= limits.maxMatchesPerRule)
                    break;
                dst.push_back(std::move(m));
            }
        }

        // Backoff throttle, applied to the merged (already
        // thread-count-independent) match lists: a rule whose match
        // volume exceeds its doubling budget is banned for a doubling
        // number of iterations and contributes nothing this round.
        if (!backoff.empty()) {
            std::size_t bansBefore = report.schedBans;
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (banned[r])
                    continue;
                std::size_t budget = saturatingShift(
                    limits.schedMatchLimit, backoff[r].offenses);
                if (allMatches[r].size() <= budget)
                    continue;
                backoff[r].bannedUntil =
                    static_cast<std::size_t>(iter) + 1 +
                    saturatingShift(limits.schedBanLength,
                                    backoff[r].offenses);
                ++backoff[r].offenses;
                ++report.schedBans;
                report.schedThrottledMatches += allMatches[r].size();
                allMatches[r].clear();
                anySchedActivity = true;
            }
            if (report.schedBans > bansBefore) {
                obs::counter("eqsat/sched/banned",
                             static_cast<std::int64_t>(report.schedBans));
            }
            if (report.schedSkippedSearches > 0) {
                obs::counter("eqsat/sched/skipped",
                             static_cast<std::int64_t>(
                                 report.schedSkippedSearches));
            }
        }
        if (trace) {
            std::vector<std::size_t> ruleSteps(rules.size());
            for (std::size_t t = 0; t < shards.size(); ++t)
                ruleSteps[shards[t].rule] += shardSteps[t];
            for (std::size_t r = 0; r < rules.size(); ++r) {
                trace->recordCounter(
                    ruleMatchName[r],
                    static_cast<std::int64_t>(allMatches[r].size()));
                trace->recordCounter(
                    ruleStepName[r],
                    static_cast<std::int64_t>(ruleSteps[r]));
            }
        }

        // Apply phase: round-robin across rules so that when the node
        // budget cuts application short, every rule got a fair share
        // rather than only the rules that happened to come first.
        Stopwatch applyWatch;
        obs::Span applySpan("eqsat/apply");
        std::vector<std::size_t> ruleApplied(rules.size());
        bool changed = false;
        std::size_t nodesBefore = egraph.numNodes();
        bool pending = true;
        std::size_t applied = 0;
        for (std::size_t index = 0; pending; ++index) {
            pending = false;
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (index >= allMatches[r].size())
                    continue;
                pending = true;
                changed |= rules[r].apply(egraph, allMatches[r][index]);
                ++ruleApplied[r];
                // Poll all stop sources every 256 applications so a
                // long apply phase cannot overshoot its budgets; a
                // partial apply is kept (it is sound — merges only
                // add equalities) and rebuilt below.
                if ((++applied & 255) == 0 &&
                    (ctl.interrupted() ||
                     egraph.numNodes() >= limits.maxNodes ||
                     (limits.maxBytes &&
                      egraph.bytesUsed() >= limits.maxBytes))) {
                    pending = false;
                    break;
                }
            }
            if (egraph.numNodes() >= limits.maxNodes)
                break;
        }
        applySpan.setValue(static_cast<std::int64_t>(applied));
        applySpan.close();
        {
            obs::Span rebuildSpan("eqsat/rebuild");
            // The rebuild fault site fires *before* the real rebuild
            // runs; the recovery path below then restores congruence,
            // so a "failed rebuild" still leaves a consistent graph.
            faultPoint(FaultSite::Rebuild);
            egraph.rebuild();
        }
        double applySeconds = applyWatch.elapsedSeconds();
        report.applySeconds += applySeconds;
        obs::metricRecord(eqSatMetrics().applyNs,
                          static_cast<std::uint64_t>(applySeconds *
                                                     1e9));
        report.iterations = iter + 1;
        changed |= egraph.numNodes() != nodesBefore;
        for (std::size_t r = 0; r < rules.size(); ++r)
            report.ruleApplied[r] += ruleApplied[r];
        if (trace) {
            for (std::size_t r = 0; r < rules.size(); ++r) {
                trace->recordCounter(
                    ruleApplyName[r],
                    static_cast<std::int64_t>(ruleApplied[r]));
            }
            // The e-graph growth curve, one sample per iteration.
            trace->recordCounter(
                obs::internName("egraph/nodes"),
                static_cast<std::int64_t>(egraph.numNodes()));
            trace->recordCounter(
                obs::internName("egraph/classes"),
                static_cast<std::int64_t>(egraph.numClasses()));
            // And the memory curve beneath it: accounted bytes plus
            // the arena's chunk footprint (how much of bytesUsed is
            // bump-allocated rather than heap churn).
            EGraphArenaStats arena = egraph.arenaStats();
            trace->recordCounter(
                obs::internName("egraph/arena/bytes"),
                static_cast<std::int64_t>(arena.bytesAllocated));
            trace->recordCounter(
                obs::internName("egraph/arena/chunks"),
                static_cast<std::int64_t>(arena.numChunks));
        }

        // Always-on registry sampling, one probe per iteration: the
        // memory-telemetry gauges (bytesUsed, arena high water / pool
        // occupancy) and the high-water node count. The sampling
        // point is itself a fault-injection site ("egraph-metrics"):
        // a telemetry-path failure must degrade the run like any
        // other mid-iteration fault, not abort the compile — the
        // catch below absorbs it.
        {
            faultPoint(FaultSite::EGraphMetrics);
            const EqSatMetrics &em = eqSatMetrics();
            obs::metricMax(em.peakNodes, static_cast<std::int64_t>(
                                             egraph.numNodes()));
            obs::metricSet(em.bytesUsed, static_cast<std::int64_t>(
                                             egraph.bytesUsed()));
            EGraphArenaStats arena = egraph.arenaStats();
            obs::metricMax(em.arenaHighWater,
                           static_cast<std::int64_t>(
                               arena.bytesReserved));
            obs::metricMax(em.arenaChunks, static_cast<std::int64_t>(
                                               arena.numChunks));
            if (arena.bytesReserved) {
                obs::metricSet(em.arenaOccupancy,
                               static_cast<std::int64_t>(
                                   arena.bytesAllocated * 100 /
                                   arena.bytesReserved));
            }
        }

        if (!changed) {
            // An unchanged iteration is only saturation if the
            // scheduler held nothing back. Otherwise lift every ban
            // and run one more full iteration: if *that* changes
            // nothing, the graph is genuinely saturated (egg's
            // can_stop semantics).
            if (anySchedActivity) {
                for (RuleBackoff &b : backoff)
                    b.bannedUntil = 0;
                report.stop = StopReason::IterLimit;
                continue;
            }
            report.stop = StopReason::Saturated;
            break;
        }
        report.stop = StopReason::IterLimit;
    }

    } catch (const FaultInjected &) {
        // Injected failure mid-iteration (allocation or rebuild).
        // Restore congruence/hashcons invariants — this recovery
        // rebuild has no fault site, so it always runs for real —
        // and report a cancellation-class stop; the caller extracts
        // best-so-far from the repaired graph.
        report.faultInjected = true;
        report.stop = StopReason::Cancelled;
        obs::instant("eqsat/fault-recovered");
        egraph.rebuild();
    }

    report.nodes = egraph.numNodes();
    report.classes = egraph.numClasses();
    report.bytes = egraph.bytesUsed();
    report.seconds = watch.elapsedSeconds();

    // End-of-run registry totals (always on; see obs/metrics.h).
    const EqSatMetrics &em = eqSatMetrics();
    obs::metricAdd(em.runs);
    obs::metricAdd(em.iters,
                   static_cast<std::uint64_t>(report.iterations));
    obs::metricAdd(stopCounter(report.stop));
    obs::metricRecord(em.runNs, static_cast<std::uint64_t>(
                                    report.seconds * 1e9));
    if (report.schedBans)
        obs::metricAdd(em.schedBans, report.schedBans);
    if (report.schedSkippedSearches)
        obs::metricAdd(em.schedSkipped, report.schedSkippedSearches);
    if (report.faultInjected)
        obs::metricAdd(em.faults);
    if (report.stepBudgetExhausted)
        obs::metricAdd(em.stepBudgetExhausted);
    return report;
}

} // namespace isaria
