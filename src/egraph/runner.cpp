#include "egraph/runner.h"

namespace isaria
{

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Saturated: return "saturated";
      case StopReason::NodeLimit: return "node-limit";
      case StopReason::IterLimit: return "iter-limit";
      case StopReason::TimeLimit: return "time-limit";
    }
    return "?";
}

std::string
EqSatReport::toString() const
{
    return std::string(stopReasonName(stop)) + " after " +
           std::to_string(iterations) + " iters, " +
           std::to_string(nodes) + " nodes, " + std::to_string(classes) +
           " classes";
}

EqSatReport
runEqSat(EGraph &egraph, const std::vector<CompiledRule> &rules,
         const EqSatLimits &limits)
{
    Stopwatch watch;
    Deadline deadline(limits.timeoutSeconds);
    EqSatReport report;

    egraph.rebuild();

    for (int iter = 0; iter < limits.maxIters; ++iter) {
        if (deadline.expired()) {
            report.stop = StopReason::TimeLimit;
            break;
        }
        if (egraph.numNodes() >= limits.maxNodes) {
            report.stop = StopReason::NodeLimit;
            break;
        }

        // Search phase: gather matches for every rule against the
        // frozen e-graph, so application order cannot bias results.
        // An op -> classes index lets each rule visit only classes
        // that contain its root operator (wildcard-rooted rules still
        // visit everything).
        std::vector<EClassId> classes = egraph.canonicalClasses();
        std::vector<std::uint32_t> opMask(classes.size(), 0);
        std::vector<std::vector<EClassId>> byOp(
            static_cast<std::size_t>(Op::NumOps));
        for (std::size_t c = 0; c < classes.size(); ++c) {
            for (const ENode &node : egraph.eclass(classes[c]).nodes)
                opMask[c] |= 1u << static_cast<unsigned>(node.op);
        }
        for (std::size_t c = 0; c < classes.size(); ++c) {
            std::uint32_t mask = opMask[c];
            while (mask) {
                unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
                mask &= mask - 1;
                byOp[bit].push_back(classes[c]);
            }
        }

        std::vector<std::vector<PatternMatch>> allMatches(rules.size());
        bool timedOut = false;
        for (std::size_t r = 0; r < rules.size() && !timedOut; ++r) {
            Op rootOp = rules[r].lhs().pattern().root().op;
            const std::vector<EClassId> &candidates =
                rootOp == Op::Wildcard
                    ? classes
                    : byOp[static_cast<unsigned>(rootOp)];
            auto &matches = allMatches[r];
            std::size_t scanned = 0;
            std::size_t steps = limits.maxSearchStepsPerRule;
            for (EClassId id : candidates) {
                if (matches.size() >= limits.maxMatchesPerRule ||
                    steps == 0) {
                    break;
                }
                std::size_t cap = std::min(
                    limits.maxMatchesPerRule,
                    matches.size() + limits.maxMatchesPerClass);
                rules[r].lhs().searchClass(egraph, id, matches, cap,
                                           &steps);
                if ((++scanned & 63) == 0 && deadline.expired()) {
                    timedOut = true;
                    break;
                }
            }
            if (deadline.expired())
                timedOut = true;
        }
        if (timedOut) {
            report.stop = StopReason::TimeLimit;
            break;
        }

        // Apply phase: round-robin across rules so that when the node
        // budget cuts application short, every rule got a fair share
        // rather than only the rules that happened to come first.
        bool changed = false;
        std::size_t nodesBefore = egraph.numNodes();
        bool pending = true;
        std::size_t applied = 0;
        for (std::size_t index = 0; pending; ++index) {
            pending = false;
            for (std::size_t r = 0; r < rules.size(); ++r) {
                if (index >= allMatches[r].size())
                    continue;
                pending = true;
                changed |= rules[r].apply(egraph, allMatches[r][index]);
                if ((++applied & 1023) == 0 &&
                    (deadline.expired() ||
                     egraph.numNodes() >= limits.maxNodes)) {
                    pending = false;
                    break;
                }
            }
            if (egraph.numNodes() >= limits.maxNodes)
                break;
        }
        egraph.rebuild();
        report.iterations = iter + 1;
        changed |= egraph.numNodes() != nodesBefore;

        if (!changed) {
            report.stop = StopReason::Saturated;
            break;
        }
        report.stop = StopReason::IterLimit;
    }

    report.nodes = egraph.numNodes();
    report.classes = egraph.numClasses();
    report.seconds = watch.elapsedSeconds();
    return report;
}

} // namespace isaria
