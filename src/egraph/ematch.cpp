#include "egraph/ematch.h"

#include <algorithm>

#include "support/panic.h"

namespace isaria
{

namespace
{

/** Backtracking frame: a Bind to resume and where to resume it. */
struct Frame
{
    std::uint32_t pc;
    std::uint32_t nextNode;
};

} // namespace

CompiledPattern::CompiledPattern(RecExpr pattern)
    : pattern_(std::move(pattern)), slotIds_(pattern_.wildcardIds())
{
    slotOfWildcard_.reserve(slotIds_.size());
    for (std::size_t slot = 0; slot < slotIds_.size(); ++slot)
        slotOfWildcard_.emplace(slotIds_[slot], slot);
    constexpr std::uint16_t kNoReg = 0xffff;
    slotRegs_.assign(slotIds_.size(), kNoReg);
    compileNode(pattern_.rootId(), 0);
    for (std::uint16_t reg : slotRegs_)
        ISARIA_ASSERT(reg != kNoReg, "wildcard slot never compiled");
}

void
CompiledPattern::compileNode(NodeId pid, std::uint16_t reg)
{
    const TermNode &node = pattern_.node(pid);
    if (node.op == Op::Wildcard) {
        std::size_t slot = slotOf(static_cast<std::int32_t>(node.payload));
        if (slotRegs_[slot] == 0xffff) {
            // First occurrence: the class already in the register *is*
            // the binding; no instruction needed.
            slotRegs_[slot] = reg;
        } else {
            PatternInstr check;
            check.kind = PatternInstr::Kind::Check;
            check.reg = reg;
            check.other = slotRegs_[slot];
            program_.push_back(check);
        }
        return;
    }

    PatternInstr bind;
    bind.kind = PatternInstr::Kind::Bind;
    bind.op = node.op;
    bind.payload = node.payload;
    bind.reg = reg;
    bind.arity = static_cast<std::uint16_t>(node.children.size());
    bind.outBase = numRegs_;
    ISARIA_ASSERT(numRegs_ + node.children.size() < 0xffff,
                  "pattern too large for the e-match register file");
    numRegs_ = static_cast<std::uint16_t>(numRegs_ + node.children.size());
    program_.push_back(bind);

    for (std::size_t i = 0; i < node.children.size(); ++i)
        compileNode(node.children[i],
                    static_cast<std::uint16_t>(bind.outBase + i));
}

std::size_t
CompiledPattern::slotOf(std::int32_t wildcardId) const
{
    auto it = slotOfWildcard_.find(wildcardId);
    ISARIA_ASSERT(it != slotOfWildcard_.end(), "unknown wildcard id");
    return it->second;
}

void
CompiledPattern::searchClass(const EGraph &egraph, EClassId root,
                             std::vector<PatternMatch> &out,
                             std::size_t maxMatches,
                             std::size_t *stepBudget,
                             const ExecControl *ctl) const
{
    if (out.size() >= maxMatches)
        return;
    if (stepBudget && *stepBudget == 0)
        return;

    // Interrupt-poll stride: cheap enough to be noise, fine enough
    // that one searchClass call overshoots a deadline by at most a
    // few microseconds (the timeout-granularity contract).
    constexpr std::uint32_t kPollStride = 2048;
    std::uint32_t pollCountdown = kPollStride;

    // Per-thread scratch: register file + backtracking stack, reused
    // across calls so the hot loop never allocates.
    thread_local std::vector<EClassId> regs;
    thread_local std::vector<Frame> stack;
    regs.assign(numRegs_, 0);
    stack.clear();

    const EClassId canonRoot = egraph.findFrozen(root);
    regs[0] = canonRoot;

    auto charge = [&]() -> bool {
        if (!stepBudget)
            return true;
        if (*stepBudget == 0)
            return false;
        --*stepBudget;
        return true;
    };

    std::uint32_t pc = 0;
    std::uint32_t resumeAt = 0; // candidate index for the Bind at pc
    const auto programSize = static_cast<std::uint32_t>(program_.size());

    for (;;) {
        if (pc == programSize) {
            // Every instruction succeeded: emit the match (budget
            // exhaustion suppresses emission, matching the legacy
            // matcher's contract).
            if (stepBudget && *stepBudget == 0)
                return;
            PatternMatch &match = out.emplace_back();
            match.root = canonRoot;
            match.bindings.reserve(slotRegs_.size());
            for (std::uint16_t reg : slotRegs_)
                match.bindings.push_back(egraph.findFrozen(regs[reg]));
            if (out.size() >= maxMatches)
                return;
            if (stack.empty())
                return;
            pc = stack.back().pc;
            resumeAt = stack.back().nextNode;
            stack.pop_back();
            continue;
        }

        const PatternInstr &ins = program_[pc];
        bool advanced = false;
        if (!charge())
            return;
        if (ctl && --pollCountdown == 0) {
            if (ctl->interrupted())
                return;
            pollCountdown = kPollStride;
        }

        if (ins.kind == PatternInstr::Kind::Check) {
            advanced = egraph.findFrozen(regs[ins.reg]) ==
                       egraph.findFrozen(regs[ins.other]);
        } else {
            const EClass &cls = egraph.eclassFrozen(regs[ins.reg]);
            const auto numNodes =
                static_cast<std::uint32_t>(cls.nodes.size());
            for (std::uint32_t i = resumeAt; i < numNodes; ++i) {
                const ENode &enode = cls.nodes[i];
                if (enode.op != ins.op || enode.payload != ins.payload ||
                    enode.children.size() != ins.arity) {
                    continue;
                }
                stack.push_back(Frame{pc, i + 1});
                for (std::uint16_t c = 0; c < ins.arity; ++c)
                    regs[ins.outBase + c] = enode.children[c];
                advanced = true;
                break;
            }
        }

        if (advanced) {
            ++pc;
            resumeAt = 0;
            continue;
        }
        if (stack.empty())
            return;
        pc = stack.back().pc;
        resumeAt = stack.back().nextNode;
        stack.pop_back();
    }
}

std::vector<PatternMatch>
CompiledPattern::search(const EGraph &egraph, std::size_t maxMatches,
                        std::size_t maxMatchesPerClass) const
{
    std::vector<PatternMatch> out;
    for (EClassId id : egraph.canonicalClasses()) {
        if (out.size() >= maxMatches)
            break;
        // Clamp the per-class allowance against the remaining global
        // budget (overflow-safely: the old arithmetic let a large
        // per-class cap widen to the global max).
        std::size_t remaining = maxMatches - out.size();
        std::size_t cap =
            out.size() + std::min(maxMatchesPerClass, remaining);
        searchClass(egraph, id, out, cap);
    }
    return out;
}

} // namespace isaria
