#include "egraph/ematch.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "support/panic.h"

namespace isaria
{

namespace
{

constexpr EClassId kUnbound = std::numeric_limits<EClassId>::max();

/** Recursive backtracking matcher. */
class Matcher
{
  public:
    Matcher(const EGraph &egraph, const RecExpr &pattern,
            const std::vector<std::int32_t> &slotIds,
            std::vector<PatternMatch> &out, std::size_t maxMatches,
            std::size_t *stepBudget)
        : egraph_(egraph), pattern_(pattern), slotIds_(slotIds),
          out_(out), maxMatches_(maxMatches), stepBudget_(stepBudget),
          bindings_(slotIds.size(), kUnbound)
    {}

    void
    matchRoot(EClassId root)
    {
        root_ = egraph_.find(root);
        matchNode(pattern_.rootId(), root_, [this] { emit(); });
    }

  private:
    std::size_t
    slotOf(std::int32_t wildcardId) const
    {
        for (std::size_t i = 0; i < slotIds_.size(); ++i) {
            if (slotIds_[i] == wildcardId)
                return i;
        }
        ISARIA_PANIC("wildcard id has no slot");
    }

    bool
    full() const
    {
        if (stepBudget_ && *stepBudget_ == 0)
            return true;
        return out_.size() >= maxMatches_;
    }

    /** Charges one unit of search work; false when exhausted. */
    bool
    step()
    {
        if (!stepBudget_)
            return true;
        if (*stepBudget_ == 0)
            return false;
        --*stepBudget_;
        return true;
    }

    void
    emit()
    {
        if (full())
            return;
        out_.push_back(PatternMatch{root_, bindings_});
    }

    /**
     * Matches pattern node @p pid against e-class @p cls, invoking
     * @p k for every consistent extension of the bindings. The
     * continuation is type-erased: the recursion depth follows the
     * pattern's runtime shape, which templates cannot.
     */
    using Cont = std::function<void()>;

    void
    matchNode(NodeId pid, EClassId cls, const Cont &k)
    {
        if (full() || !step())
            return;
        const TermNode &pnode = pattern_.node(pid);
        cls = egraph_.find(cls);

        if (pnode.op == Op::Wildcard) {
            std::size_t slot =
                slotOf(static_cast<std::int32_t>(pnode.payload));
            if (bindings_[slot] != kUnbound) {
                if (egraph_.find(bindings_[slot]) == cls)
                    k();
                return;
            }
            bindings_[slot] = cls;
            k();
            bindings_[slot] = kUnbound;
            return;
        }

        for (const ENode &enode : egraph_.eclass(cls).nodes) {
            if (full())
                return;
            if (enode.op != pnode.op || enode.payload != pnode.payload ||
                enode.children.size() != pnode.children.size()) {
                continue;
            }
            matchChildren(pnode, enode, 0, k);
        }
    }

    void
    matchChildren(const TermNode &pnode, const ENode &enode,
                  std::size_t index, const Cont &k)
    {
        if (index == pnode.children.size()) {
            k();
            return;
        }
        matchNode(pnode.children[index], enode.children[index],
                  [&, this] { matchChildren(pnode, enode, index + 1, k); });
    }

    const EGraph &egraph_;
    const RecExpr &pattern_;
    const std::vector<std::int32_t> &slotIds_;
    std::vector<PatternMatch> &out_;
    std::size_t maxMatches_;
    std::size_t *stepBudget_;
    std::vector<EClassId> bindings_;
    EClassId root_ = 0;
};

} // namespace

CompiledPattern::CompiledPattern(RecExpr pattern)
    : pattern_(std::move(pattern)), slotIds_(pattern_.wildcardIds())
{}

std::size_t
CompiledPattern::slotOf(std::int32_t wildcardId) const
{
    auto it = std::find(slotIds_.begin(), slotIds_.end(), wildcardId);
    ISARIA_ASSERT(it != slotIds_.end(), "unknown wildcard id");
    return static_cast<std::size_t>(it - slotIds_.begin());
}

void
CompiledPattern::searchClass(const EGraph &egraph, EClassId root,
                             std::vector<PatternMatch> &out,
                             std::size_t maxMatches,
                             std::size_t *stepBudget) const
{
    Matcher matcher(egraph, pattern_, slotIds_, out, maxMatches,
                    stepBudget);
    matcher.matchRoot(root);
}

std::vector<PatternMatch>
CompiledPattern::search(const EGraph &egraph, std::size_t maxMatches,
                        std::size_t maxMatchesPerClass) const
{
    std::vector<PatternMatch> out;
    for (EClassId id : egraph.canonicalClasses()) {
        if (out.size() >= maxMatches)
            break;
        std::size_t cap =
            (maxMatchesPerClass >= maxMatches - out.size())
                ? maxMatches
                : out.size() + maxMatchesPerClass;
        searchClass(egraph, id, out, cap);
    }
    return out;
}

} // namespace isaria
