#ifndef ISARIA_EGRAPH_EXTRACT_H
#define ISARIA_EGRAPH_EXTRACT_H

/**
 * @file
 * Extraction: selecting the minimum-cost program from an e-graph.
 *
 * Works with any cost function of the form
 * cost(node) = f(op, payload, best costs of children), which covers
 * the strictly monotonic cost models Definition 2 requires.
 *
 * Two engines compute the per-class best costs:
 *
 *  - **Worklist** (the default): a parent-indexed dependency engine.
 *    A child -> (class, node) index is built once per (graph,
 *    generation); leaf nodes seed a FIFO worklist, and a class is
 *    re-evaluated only when one of its children's best cost improves.
 *    Amortized near-linear in the number of dependency edges, where
 *    the old global fixpoint was O(rounds x classes x nodes).
 *  - **Fixpoint** (the reference): the original repeated global sweep,
 *    kept behind ExtractorKind::Fixpoint so tests can pin that the two
 *    engines agree on every graph.
 *
 * Both engines converge on the same unique cost fixpoint, then run the
 * same canonical selection pass (per class: the first node in class
 * order achieving the converged best cost), so they produce identical
 * terms — not just identical costs — regardless of relaxation order.
 *
 * The Extractor object owns the dependency index and reuses it across
 * extract() calls while the e-graph's (graphId, generation) key is
 * unchanged — the Fig. 3 loop extracts after every round, and rounds
 * that saturate without structural change (or repeated extractions
 * from a frozen graph) skip the index rebuild entirely.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "egraph/egraph.h"
#include "support/arena.h"
#include "support/cancel.h"

namespace isaria
{

/** Sentinel for "no finite-cost term known yet". */
constexpr std::uint64_t kInfiniteCost = UINT64_MAX;

/** Saturating addition on extraction costs. */
inline std::uint64_t
satAddCost(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t out;
    if (__builtin_add_overflow(a, b, &out))
        return kInfiniteCost;
    return out;
}

/** Cost-model interface for extraction (Definition 1). */
class CostFn
{
  public:
    virtual ~CostFn() = default;

    /**
     * Cost of an e-node given its children's best costs. Must return
     * a value strictly greater than every child cost for extraction
     * on cyclic e-graphs to terminate with meaningful results.
     */
    virtual std::uint64_t
    nodeCost(Op op, std::int64_t payload,
             std::span<const std::uint64_t> childCosts) const = 0;
};

/** A term selected from the e-graph plus its cost. */
struct Extracted
{
    RecExpr expr;
    std::uint64_t cost = kInfiniteCost;
};

/** Which cost-propagation engine an Extractor runs. */
enum class ExtractorKind
{
    /** Parent-indexed worklist engine (the default). */
    Worklist,
    /** The original global-sweep fixpoint, kept as the reference
     *  implementation for differential testing. */
    Fixpoint,
};

/**
 * A reusable extraction engine. extract() computes the minimum-cost
 * term of the root's class; the worklist engine's dependency index is
 * cached inside the object and rebuilt only when the target e-graph's
 * (graphId, generation) changes, so repeated extractions from an
 * unchanged graph — and Fig. 3 rounds that saturate without change —
 * pay for the index once.
 */
class Extractor
{
  public:
    explicit Extractor(ExtractorKind kind = ExtractorKind::Worklist)
        : kind_(kind)
    {}

    ExtractorKind kind() const { return kind_; }

    /**
     * Extracts the minimum-cost term of @p root's class. Returns
     * nullopt if the class contains no finite-cost term (e.g. every
     * node sits on a cycle) — or, when @p control is supplied, if its
     * deadline or cancellation token fired mid-extraction. The cost
     * propagation polls @p control every few hundred evaluations, so
     * extraction on a huge e-graph honors the same --mem-mb/timeout
     * guards as the saturation phases.
     */
    std::optional<Extracted> extract(const EGraph &egraph, EClassId root,
                                     const CostFn &cost,
                                     const ExecControl *control = nullptr);

  private:
    /** One (user class, user node) edge of the dependency index. */
    struct ParentRef
    {
        EClassId cls;
        const ENode *node;
    };

    void buildIndex(const EGraph &egraph);
    bool propagateWorklist(const EGraph &egraph, const CostFn &cost,
                           const ExecControl *control);
    bool propagateFixpoint(const EGraph &egraph, const CostFn &cost,
                           const ExecControl *control);

    ExtractorKind kind_;

    /** Cache key of the dependency index below. */
    std::uint64_t cachedGraphId_ = 0;
    std::uint64_t cachedGeneration_ = 0;
    bool indexValid_ = false;

    /** Canonical classes of the indexed graph. */
    std::vector<EClassId> classes_;
    /**
     * Backing store of the dependency index. Rebuilding for a new
     * (graph, generation) resets the arena and carves the exact-sized
     * CSR arrays out of it in two bumps — the repeated
     * resize/shrink churn the old std::vector storage paid per Fig. 3
     * round collapses into reuse of the same chunks.
     */
    Arena arena_;
    /** CSR dependency index (arena-backed, numIds+1 offsets): edges
     *  for child class c live at
     *  parentEdges_[parentOffset_[c] .. parentOffset_[c + 1]). */
    std::uint32_t *parentOffset_ = nullptr;
    ParentRef *parentEdges_ = nullptr;
    /** (class, leaf node) seeds: nodes with no children. */
    ArenaVector<ParentRef> leaves_;

    /** Dense per-class best costs, indexed by canonical id. */
    std::vector<std::uint64_t> best_;
    /** Worklist membership flags (dense, by canonical id). */
    std::vector<std::uint8_t> queued_;
    std::vector<EClassId> queue_;
};

/**
 * One-shot convenience wrapper: a fresh worklist Extractor. Prefer a
 * long-lived Extractor when extracting repeatedly (the Fig. 3 loop
 * does), so the dependency index can be reused.
 */
std::optional<Extracted> extractBest(const EGraph &egraph, EClassId root,
                                     const CostFn &cost,
                                     const ExecControl *control = nullptr);

} // namespace isaria

#endif // ISARIA_EGRAPH_EXTRACT_H
