#ifndef ISARIA_EGRAPH_EXTRACT_H
#define ISARIA_EGRAPH_EXTRACT_H

/**
 * @file
 * Extraction: selecting the minimum-cost program from an e-graph.
 *
 * Works with any cost function of the form
 * cost(node) = f(op, payload, best costs of children), which covers
 * the strictly monotonic cost models Definition 2 requires. The
 * extractor runs a bottom-up fixpoint over classes, then rebuilds the
 * best term with DAG sharing.
 */

#include <cstdint>
#include <optional>
#include <span>

#include "egraph/egraph.h"
#include "support/cancel.h"

namespace isaria
{

/** Sentinel for "no finite-cost term known yet". */
constexpr std::uint64_t kInfiniteCost = UINT64_MAX;

/** Saturating addition on extraction costs. */
inline std::uint64_t
satAddCost(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t out;
    if (__builtin_add_overflow(a, b, &out))
        return kInfiniteCost;
    return out;
}

/** Cost-model interface for extraction (Definition 1). */
class CostFn
{
  public:
    virtual ~CostFn() = default;

    /**
     * Cost of an e-node given its children's best costs. Must return
     * a value strictly greater than every child cost for extraction
     * on cyclic e-graphs to terminate with meaningful results.
     */
    virtual std::uint64_t
    nodeCost(Op op, std::int64_t payload,
             std::span<const std::uint64_t> childCosts) const = 0;
};

/** A term selected from the e-graph plus its cost. */
struct Extracted
{
    RecExpr expr;
    std::uint64_t cost = kInfiniteCost;
};

/**
 * Extracts the minimum-cost term of @p root's class. Returns nullopt
 * if the class contains no finite-cost term (e.g. every node sits on
 * a cycle) — or, when @p control is supplied, if its deadline or
 * cancellation token fired mid-extraction. The bottom-up fixpoint
 * polls @p control every few hundred class visits, so extraction on a
 * huge e-graph honors the same --mem-mb/timeout guards as the
 * saturation phases instead of running unbounded after them.
 */
std::optional<Extracted> extractBest(const EGraph &egraph, EClassId root,
                                     const CostFn &cost,
                                     const ExecControl *control = nullptr);

} // namespace isaria

#endif // ISARIA_EGRAPH_EXTRACT_H
