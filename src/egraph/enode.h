#ifndef ISARIA_EGRAPH_ENODE_H
#define ISARIA_EGRAPH_ENODE_H

/**
 * @file
 * E-nodes: operator applications whose children are e-class ids.
 *
 * Two layout decisions keep the saturation hot loops cache-friendly:
 *
 *  - Children live in a small-buffer array (ChildArray): DSP operators
 *    are at most 4-ary (Mac/Vec chunks), so the common case stores the
 *    child ids inline in the e-node itself — no heap allocation per
 *    node, no pointer chase per e-matching Bind dispatch. Wider nodes
 *    (program roots listing many chunks) spill to the heap.
 *  - The structural hash is cached inside the node (computed lazily by
 *    ENodeHash, reset by any child mutation). Hashcons probes, memo
 *    rehashes, and the congruence-repair maps all stop rehashing child
 *    lists they already hashed.
 */

#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <vector>

#include "egraph/union_find.h"
#include "support/arena.h"
#include "support/hash.h"
#include "term/op.h"

namespace isaria
{

/**
 * A vector-like container of e-class ids with a 4-element inline
 * buffer. Only the operations the e-graph needs are provided; growth
 * beyond the inline capacity moves to a heap allocation (and stays
 * there).
 *
 * A spill buffer can alternatively live in an Arena (assignArena):
 * the top bit of the capacity word marks arena ownership, and such a
 * buffer is never freed by this class — the arena reclaims it
 * wholesale on release. The e-graph uses this for every node copy it
 * stores (class members, hash-cons keys, parent back-pointers), so
 * wide nodes stop costing one heap block per copy.
 */
class ChildArray
{
  public:
    static constexpr std::uint32_t kInlineCapacity = 4;
    /** Capacity-word flag: the spill buffer is arena-owned. */
    static constexpr std::uint32_t kArenaBit = 0x8000'0000u;

    ChildArray() = default;

    ChildArray(std::initializer_list<EClassId> ids)
    {
        reserve(static_cast<std::uint32_t>(ids.size()));
        for (EClassId id : ids)
            push_back(id);
    }

    ChildArray(const ChildArray &other) { copyFrom(other); }

    ChildArray(ChildArray &&other) noexcept { moveFrom(other); }

    ChildArray &
    operator=(const ChildArray &other)
    {
        if (this != &other) {
            release();
            copyFrom(other);
        }
        return *this;
    }

    ChildArray &
    operator=(ChildArray &&other) noexcept
    {
        if (this != &other) {
            release();
            moveFrom(other);
        }
        return *this;
    }

    ~ChildArray() { release(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** True when the children spilled out of the inline buffer. */
    bool spilled() const { return cap() > kInlineCapacity; }

    /** True when the spill buffer is owned by an Arena. */
    bool arenaOwned() const { return (capacity_ & kArenaBit) != 0; }

    const EClassId *data() const
    {
        return spilled() ? heap_ : inline_;
    }
    EClassId *data() { return spilled() ? heap_ : inline_; }

    const EClassId *begin() const { return data(); }
    const EClassId *end() const { return data() + size_; }
    EClassId *begin() { return data(); }
    EClassId *end() { return data() + size_; }

    EClassId operator[](std::size_t i) const { return data()[i]; }
    EClassId &operator[](std::size_t i) { return data()[i]; }

    void
    reserve(std::size_t capacity)
    {
        if (capacity > cap())
            grow(static_cast<std::uint32_t>(capacity));
    }

    void
    push_back(EClassId id)
    {
        if (size_ == cap())
            grow(cap() * 2);
        data()[size_++] = id;
    }

    /**
     * Replaces the contents with @p count ids from @p src, placing any
     * spill buffer in @p arena (marked arena-owned: this array will
     * never free it — the arena's release/destruction reclaims it).
     */
    void
    assignArena(Arena &arena, const EClassId *src, std::size_t count)
    {
        release();
        size_ = static_cast<std::uint32_t>(count);
        if (count <= kInlineCapacity) {
            capacity_ = kInlineCapacity;
            std::memcpy(inline_, src, count * sizeof(EClassId));
            return;
        }
        heap_ = arena.allocateArray<EClassId>(count);
        std::memcpy(heap_, src, count * sizeof(EClassId));
        capacity_ = size_ | kArenaBit;
    }

    void
    clear()
    {
        size_ = 0;
    }

    bool
    operator==(const ChildArray &other) const
    {
        return size_ == other.size_ &&
               std::memcmp(data(), other.data(),
                           size_ * sizeof(EClassId)) == 0;
    }

  private:
    /** Element capacity with the ownership flag masked off. */
    std::uint32_t cap() const { return capacity_ & ~kArenaBit; }

    void
    copyFrom(const ChildArray &other)
    {
        // Copies always own their storage: an arena-owned source
        // yields an ordinary heap spill (callers that want the copy
        // in an arena use assignArena instead).
        size_ = other.size_;
        if (other.spilled()) {
            capacity_ = other.cap();
            heap_ = new EClassId[capacity_];
            std::memcpy(heap_, other.heap_, size_ * sizeof(EClassId));
        } else {
            capacity_ = kInlineCapacity;
            std::memcpy(inline_, other.inline_,
                        size_ * sizeof(EClassId));
        }
    }

    void
    moveFrom(ChildArray &other) noexcept
    {
        size_ = other.size_;
        capacity_ = other.capacity_; // ownership flag travels along
        if (other.spilled())
            heap_ = other.heap_;
        else
            std::memcpy(inline_, other.inline_,
                        size_ * sizeof(EClassId));
        other.size_ = 0;
        other.capacity_ = kInlineCapacity;
    }

    void
    release()
    {
        if (spilled() && !arenaOwned())
            delete[] heap_;
        size_ = 0;
        capacity_ = kInlineCapacity;
    }

    void
    grow(std::uint32_t newCapacity)
    {
        if (newCapacity < size_ + 1)
            newCapacity = size_ + 1;
        auto *fresh = new EClassId[newCapacity];
        std::memcpy(fresh, data(), size_ * sizeof(EClassId));
        if (spilled() && !arenaOwned())
            delete[] heap_;
        // Growth always lands on the heap, even from an arena-owned
        // buffer (which stays behind in its arena).
        heap_ = fresh;
        capacity_ = newCapacity;
    }

    std::uint32_t size_ = 0;
    std::uint32_t capacity_ = kInlineCapacity;
    union
    {
        EClassId inline_[kInlineCapacity];
        EClassId *heap_;
    };
};

/** An operator applied to e-classes. */
struct ENode
{
    Op op = Op::Const;
    std::int64_t payload = 0;
    ChildArray children;
    /**
     * Lazily-cached structural hash (0 = not yet computed; see
     * ENodeHash). Code that mutates `children` after the node may have
     * been hashed must call invalidateHash() — inside this module the
     * only post-hash mutation site is canonicalize().
     */
    mutable std::uint64_t hashCache = 0;

    bool
    operator==(const ENode &other) const
    {
        return op == other.op && payload == other.payload &&
               children == other.children;
    }

    void invalidateHash() const { hashCache = 0; }

    /** Replaces every child by its canonical id, in place. */
    void
    canonicalize(const UnionFind &uf)
    {
        for (EClassId &child : children)
            child = uf.find(child);
        invalidateHash();
    }

    /** Returns a copy with every child replaced by its canonical id. */
    ENode
    canonical(const UnionFind &uf) const
    {
        ENode out;
        out.op = op;
        out.payload = payload;
        out.children = children;
        out.canonicalize(uf);
        return out;
    }
};

struct ENodeHash
{
    std::size_t
    operator()(const ENode &node) const
    {
        if (node.hashCache != 0)
            return static_cast<std::size_t>(node.hashCache);
        std::size_t h = hashMix(static_cast<std::uint64_t>(node.op) *
                                    0x100000001ull +
                                static_cast<std::uint64_t>(node.payload));
        for (EClassId child : node.children)
            hashCombine(h, hashMix(child));
        // Reserve 0 as the "unset" sentinel so a recompute is the
        // worst that can happen to an unlucky hash.
        if (h == 0)
            h = 1;
        node.hashCache = h;
        return h;
    }
};

} // namespace isaria

#endif // ISARIA_EGRAPH_ENODE_H
