#ifndef ISARIA_EGRAPH_ENODE_H
#define ISARIA_EGRAPH_ENODE_H

/**
 * @file
 * E-nodes: operator applications whose children are e-class ids.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "egraph/union_find.h"
#include "support/hash.h"
#include "term/op.h"

namespace isaria
{

/** An operator applied to e-classes. */
struct ENode
{
    Op op = Op::Const;
    std::int64_t payload = 0;
    std::vector<EClassId> children;

    bool operator==(const ENode &other) const = default;

    /** Returns a copy with every child replaced by its canonical id. */
    ENode
    canonical(const UnionFind &uf) const
    {
        ENode out{op, payload, children};
        for (EClassId &child : out.children)
            child = uf.find(child);
        return out;
    }
};

struct ENodeHash
{
    std::size_t
    operator()(const ENode &node) const
    {
        std::size_t h = hashMix(static_cast<std::uint64_t>(node.op) *
                                    0x100000001ull +
                                static_cast<std::uint64_t>(node.payload));
        for (EClassId child : node.children)
            hashCombine(h, hashMix(child));
        return h;
    }
};

} // namespace isaria

#endif // ISARIA_EGRAPH_ENODE_H
