#ifndef ISARIA_EGRAPH_UNION_FIND_H
#define ISARIA_EGRAPH_UNION_FIND_H

/**
 * @file
 * Disjoint-set forest over dense e-class ids.
 */

#include <cstdint>
#include <vector>

namespace isaria
{

/** Dense id of an e-class. */
using EClassId = std::uint32_t;

/**
 * Union-find with path halving. Union is by smaller canonical id, so
 * the canonical representative of a set is stable and predictable
 * (useful for deterministic extraction and tests).
 */
class UnionFind
{
  public:
    /** Creates a fresh singleton set and returns its id. */
    EClassId makeSet();

    /** Canonical representative of @p id. */
    EClassId find(EClassId id) const;

    /**
     * Canonical representative of @p id without path compression: a
     * pure read, safe to call concurrently from the parallel search
     * phase while the forest is frozen. O(1) after compressAll(),
     * correct (just slower) at any other time.
     */
    EClassId
    findNoCompress(EClassId id) const
    {
        while (parents_[id] != id)
            id = parents_[id];
        return id;
    }

    /**
     * Points every element directly at its root, so subsequent
     * findNoCompress calls are a single load. Called after rebuild,
     * before the e-graph is frozen for concurrent searching.
     */
    void compressAll();

    /**
     * Unions the sets of @p a and @p b; returns the canonical id of
     * the merged set. No-op (returning the shared root) when already
     * joined.
     */
    EClassId join(EClassId a, EClassId b);

    std::size_t size() const { return parents_.size(); }

    /**
     * A verbatim copy of the parent array, for EGraph::snapshot().
     * Journaling individual writes would be unsound here: path
     * compression rewrites arbitrary entries during reads, so the
     * only faithful record of the pre-snapshot forest is the whole
     * array.
     */
    std::vector<EClassId> snapshotParents() const { return parents_; }

    /** Restores a forest captured by snapshotParents(). */
    void
    restoreParents(std::vector<EClassId> parents)
    {
        parents_ = std::move(parents);
    }

  private:
    // find() is logically const; the mutable parent vector allows
    // path compression during reads.
    mutable std::vector<EClassId> parents_;
};

} // namespace isaria

#endif // ISARIA_EGRAPH_UNION_FIND_H
