#include "egraph/rewrite.h"

#include "support/panic.h"

namespace isaria
{

CompiledRule::CompiledRule(Rule rule)
    : rule_(std::move(rule)), lhs_(rule_.lhs)
{
    ISARIA_ASSERT(rule_.wellFormed(), "compiling ill-formed rule");
    // Precompute, for every rhs node, the lhs binding slot of its
    // wildcard (indexed by position in the rhs node array).
    rhsSlots_.resize(rule_.rhs.size(), 0);
    for (NodeId id = 0; id < static_cast<NodeId>(rule_.rhs.size()); ++id) {
        const TermNode &n = rule_.rhs.node(id);
        if (n.op == Op::Wildcard) {
            rhsSlots_[id] =
                lhs_.slotOf(static_cast<std::int32_t>(n.payload));
        }
    }
}

bool
CompiledRule::apply(EGraph &egraph, const PatternMatch &match) const
{
    const RecExpr &rhs = rule_.rhs;
    // Applied once per match; small right-hand sides (all of them, in
    // practice) stay off the heap.
    EClassId inlineBuf[24];
    std::vector<EClassId> heapBuf;
    EClassId *classOf = inlineBuf;
    if (rhs.size() > std::size(inlineBuf)) {
        heapBuf.resize(rhs.size());
        classOf = heapBuf.data();
    }
    for (NodeId id = 0; id < static_cast<NodeId>(rhs.size()); ++id) {
        const TermNode &n = rhs.node(id);
        if (n.op == Op::Wildcard) {
            classOf[id] = match.bindings[rhsSlots_[id]];
            continue;
        }
        ENode enode;
        enode.op = n.op;
        enode.payload = n.payload;
        enode.children.reserve(n.children.size());
        for (NodeId child : n.children) {
            // classOf is written in id order without initialization;
            // soundness needs RecExpr's children-before-parents id
            // ordering, so pin it rather than read garbage.
            ISARIA_ASSERT(child < id,
                          "rhs nodes not topologically ordered");
            enode.children.push_back(classOf[child]);
        }
        classOf[id] = egraph.add(std::move(enode));
    }
    return egraph.merge(match.root, classOf[rhs.rootId()]);
}

std::vector<CompiledRule>
compileRules(const std::vector<Rule> &rules)
{
    std::vector<CompiledRule> out;
    out.reserve(rules.size());
    for (const Rule &rule : rules)
        out.emplace_back(rule);
    return out;
}

} // namespace isaria
