#ifndef ISARIA_EGRAPH_RUNNER_H
#define ISARIA_EGRAPH_RUNNER_H

/**
 * @file
 * The equality-saturation loop (the EqSat procedure of Fig. 3).
 *
 * Each iteration searches every rule against the current e-graph,
 * applies all matches, and rebuilds. The loop stops on saturation (no
 * change), or on a node, iteration, or wall-clock budget — the budgets
 * are how Isaria's compile-time scheduler and the paper's "ran out of
 * memory" ablations are realized deterministically.
 */

#include <string>
#include <vector>

#include "egraph/rewrite.h"
#include "support/timer.h"

namespace isaria
{

/** Budgets for one equality-saturation run. */
struct EqSatLimits
{
    /** Stop when the e-graph holds this many e-nodes ("memory"). */
    std::size_t maxNodes = 1'000'000;
    /** Maximum saturation iterations. */
    int maxIters = 30;
    /** Wall-clock budget in seconds (<= 0 for unlimited). */
    double timeoutSeconds = 0;
    /** Cap on matches gathered per rule per iteration. */
    std::size_t maxMatchesPerRule = 200'000;
    /** Cap on matches rooted in any single e-class per rule, so
     *  combinatorial patterns cannot starve later classes. */
    std::size_t maxMatchesPerClass = 256;
    /** Backtracking-step budget per rule per iteration; bounds
     *  pathological e-matching independent of match counts. */
    std::size_t maxSearchStepsPerRule = 1'000'000;
};

/** Why a saturation run stopped. */
enum class StopReason
{
    Saturated,
    NodeLimit,
    IterLimit,
    TimeLimit,
};

/** Outcome summary of one saturation run. */
struct EqSatReport
{
    StopReason stop = StopReason::Saturated;
    int iterations = 0;
    std::size_t nodes = 0;
    std::size_t classes = 0;
    double seconds = 0;

    std::string toString() const;
};

/** Human-readable stop reason. */
const char *stopReasonName(StopReason reason);

/** Runs equality saturation with @p rules over @p egraph. */
EqSatReport runEqSat(EGraph &egraph, const std::vector<CompiledRule> &rules,
                     const EqSatLimits &limits);

} // namespace isaria

#endif // ISARIA_EGRAPH_RUNNER_H
