#ifndef ISARIA_EGRAPH_RUNNER_H
#define ISARIA_EGRAPH_RUNNER_H

/**
 * @file
 * The equality-saturation loop (the EqSat procedure of Fig. 3).
 *
 * Each iteration searches every rule against the current e-graph,
 * applies all matches, and rebuilds. The loop stops on saturation (no
 * change), or on a node, iteration, or wall-clock budget — the budgets
 * are how Isaria's compile-time scheduler and the paper's "ran out of
 * memory" ablations are realized deterministically.
 *
 * The search phase is read-only over the frozen e-graph, so it fans
 * out over a work-stealing thread pool: every rule's candidate class
 * list (from the e-graph's incremental op index) is cut into
 * fixed-size shards, each (rule, shard) task searches into a private
 * match buffer with a pre-sliced share of the rule's step budget, and
 * buffers are concatenated in rule-then-shard order afterwards. The
 * task decomposition depends only on the e-graph and the limits —
 * never on the thread count — so any thread count produces bit-
 * identical matches (and therefore identical e-graphs) to the
 * sequential engine; threads only change wall-clock time. The single
 * nondeterministic exit is the wall-clock timeout, exactly as in the
 * sequential engine.
 */

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "egraph/rewrite.h"
#include "support/cancel.h"
#include "support/timer.h"

namespace isaria
{

/**
 * Rule-application scheduling policy for the saturation loop.
 *
 * Simple applies every rule every iteration (the original behavior).
 * Backoff is egg's BackoffScheduler: each rule gets a per-iteration
 * match budget; a rule that exceeds it is banned for a number of
 * iterations, and both the budget and the ban length double on each
 * repeat offense. Explosive rules (associativity/commutativity) stop
 * starving the cheap directed rules, which is what keeps production
 * saturation engines tractable. Ban decisions are computed from the
 * deterministically merged per-rule match counts, after the parallel
 * shard search — so scheduling is byte-identical at any thread count.
 */
enum class EqSatScheduler
{
    Simple,
    Backoff,
};

/** Scheduler name ("simple"/"backoff"). */
const char *eqSatSchedulerName(EqSatScheduler scheduler);

/** Inverse of eqSatSchedulerName; nullopt for unknown names. */
std::optional<EqSatScheduler> eqSatSchedulerFromName(const char *name);

/** Budgets for one equality-saturation run. */
struct EqSatLimits
{
    /** Stop when the e-graph holds this many e-nodes ("memory"). */
    std::size_t maxNodes = 1'000'000;
    /**
     * Stop when the e-graph's accounted heap footprint reaches this
     * many bytes (EGraph::bytesUsed; 0 = unlimited). The byte-level
     * companion to maxNodes: wide terms make node counts a poor
     * memory proxy, and this ceiling is what keeps one pathological
     * kernel from taking the process down.
     */
    std::size_t maxBytes = 0;
    /** Maximum saturation iterations. */
    int maxIters = 30;
    /** Wall-clock budget in seconds (<= 0 for unlimited). */
    double timeoutSeconds = 0;
    /** Cap on matches gathered per rule per iteration. */
    std::size_t maxMatchesPerRule = 200'000;
    /** Cap on matches rooted in any single e-class per rule, so
     *  combinatorial patterns cannot starve later classes. */
    std::size_t maxMatchesPerClass = 256;
    /** Backtracking-step budget per rule per iteration; bounds
     *  pathological e-matching independent of match counts. */
    std::size_t maxSearchStepsPerRule = 1'000'000;
    /**
     * Worker threads for the search phase. 0 = auto: the
     * ISARIA_EQSAT_THREADS environment variable if set, otherwise
     * hardware concurrency. 1 = sequential (no threads spawned).
     * Results are identical for every value; see the file comment.
     */
    int numThreads = 0;
    /**
     * Optional caller-owned cancellation token. The runner and its
     * search shards poll it (together with the wall-clock deadline)
     * every few thousand e-matching steps, so cancellation interrupts
     * in-flight work instead of being observed only between
     * iterations. A cancelled run stops with StopReason::Cancelled on
     * the last completed iteration's e-graph — still a valid graph to
     * extract a best-so-far program from.
     */
    const CancellationToken *cancel = nullptr;
    /** Rule-application scheduling policy (--eqsat-scheduler). */
    EqSatScheduler scheduler = EqSatScheduler::Simple;
    /**
     * Backoff only: per-iteration match budget of a rule before it is
     * banned (--eqsat-match-limit). Doubles per repeat offense.
     */
    std::size_t schedMatchLimit = 1'000;
    /**
     * Backoff only: iterations a first ban lasts
     * (--eqsat-ban-length). Doubles per repeat offense.
     */
    std::size_t schedBanLength = 5;
};

/** Thread count actually used for @p requested (see EqSatLimits). */
int resolveEqSatThreads(int requested);

/** Why a saturation run stopped. */
enum class StopReason
{
    Saturated,
    NodeLimit,
    IterLimit,
    TimeLimit,
    /** The byte ceiling (EqSatLimits::maxBytes) was reached. */
    MemLimit,
    /** The caller's CancellationToken fired, or an injected fault
     *  forced the run to abandon its current iteration. */
    Cancelled,
};

/** Every StopReason, for exhaustive iteration in stats and tests.
 *  Keep in sync with the enum (pinned by ObsTest.StopReasonNames). */
inline constexpr std::array<StopReason, 6> kAllStopReasons = {
    StopReason::Saturated,
    StopReason::NodeLimit,
    StopReason::IterLimit,
    StopReason::TimeLimit,
    StopReason::MemLimit,
    StopReason::Cancelled,
};

/** Outcome summary of one saturation run. */
struct EqSatReport
{
    StopReason stop = StopReason::Saturated;
    int iterations = 0;
    std::size_t nodes = 0;
    std::size_t classes = 0;
    /** Accounted e-graph footprint at the stop (EGraph::bytesUsed). */
    std::size_t bytes = 0;
    double seconds = 0;
    /** Wall-clock seconds inside the (parallel) search phase. */
    double searchSeconds = 0;
    /** Wall-clock seconds inside apply + rebuild. */
    double applySeconds = 0;
    /** Search threads used. */
    int threads = 1;
    /**
     * True when some search shard exhausted its per-rule step budget
     * (maxSearchStepsPerRule). Distinguishes a genuinely complete
     * "saturated" / "iter-limit" stop from one whose search was
     * silently truncated — and keeps truncation separate from
     * TimeLimit, which is about the wall clock.
     */
    bool stepBudgetExhausted = false;
    /**
     * An armed fault fired during this run (shard search, rebuild, or
     * e-graph allocation). The run still returns a consistent e-graph
     * — the interrupted iteration's work is abandoned — and stops
     * with StopReason::Cancelled.
     */
    bool faultInjected = false;
    /**
     * Backoff-scheduler activity (all zero under the simple
     * scheduler): ban events, rule-iterations whose search was
     * skipped while banned, and matches discarded at ban time. Fully
     * deterministic — identical at any thread count.
     */
    std::size_t schedBans = 0;
    std::size_t schedSkippedSearches = 0;
    std::size_t schedThrottledMatches = 0;
    /**
     * Per-rule totals over the whole run, indexed like the rule
     * vector passed to runEqSat: matches applied and iterations
     * banned. What benchmarks read to see which rules the scheduler
     * throttled (and that thread counts changed nothing).
     */
    std::vector<std::size_t> ruleApplied;
    std::vector<std::size_t> ruleBannedIters;

    std::string toString() const;
};

/** Human-readable stop reason. */
const char *stopReasonName(StopReason reason);

/** Inverse of stopReasonName (round-trips every enumerator). */
std::optional<StopReason> stopReasonFromName(const char *name);

/** Runs equality saturation with @p rules over @p egraph. */
EqSatReport runEqSat(EGraph &egraph, const std::vector<CompiledRule> &rules,
                     const EqSatLimits &limits);

} // namespace isaria

#endif // ISARIA_EGRAPH_RUNNER_H
