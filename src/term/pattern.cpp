#include "term/pattern.h"

#include <algorithm>

#include "support/hash.h"
#include "support/panic.h"
#include "term/sexpr.h"

namespace isaria
{

namespace
{

/** Rebuilds @p src applying @p fn to each wildcard id. */
template <typename Fn>
RecExpr
mapWildcards(const RecExpr &src, Fn fn)
{
    RecExpr out;
    std::vector<NodeId> remap(src.size());
    for (NodeId id = 0; id < static_cast<NodeId>(src.size()); ++id) {
        const TermNode &n = src.node(id);
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children)
            kids.push_back(remap[child]);
        std::int64_t payload = n.payload;
        if (n.op == Op::Wildcard)
            payload = fn(static_cast<std::int32_t>(n.payload));
        remap[id] = out.add(n.op, std::move(kids), payload);
    }
    return out;
}

} // namespace

RecExpr
alphaCanonicalize(const RecExpr &pattern)
{
    std::map<std::int32_t, std::int32_t> renaming;
    for (std::int32_t wid : pattern.wildcardIds()) {
        auto fresh = static_cast<std::int32_t>(renaming.size());
        renaming.emplace(wid, fresh);
    }
    return renameWildcards(pattern, renaming);
}

RecExpr
renameWildcards(const RecExpr &pattern,
                const std::map<std::int32_t, std::int32_t> &renaming)
{
    return mapWildcards(pattern, [&](std::int32_t wid) {
        auto it = renaming.find(wid);
        ISARIA_ASSERT(it != renaming.end(), "wildcard missing in renaming");
        return it->second;
    });
}

RecExpr
instantiate(const RecExpr &pattern,
            const std::map<std::int32_t, RecExpr> &subst)
{
    RecExpr out;
    std::vector<NodeId> remap(pattern.size());
    for (NodeId id = 0; id < static_cast<NodeId>(pattern.size()); ++id) {
        const TermNode &n = pattern.node(id);
        if (n.op == Op::Wildcard) {
            auto it = subst.find(static_cast<std::int32_t>(n.payload));
            ISARIA_ASSERT(it != subst.end(), "unbound wildcard");
            remap[id] = out.addSubtree(it->second, it->second.rootId());
            continue;
        }
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children)
            kids.push_back(remap[child]);
        remap[id] = out.add(n.op, std::move(kids), n.payload);
    }
    return out;
}

std::string
Rule::toString() const
{
    Rule c = canonical();
    return printSexpr(c.lhs) + " ~> " + printSexpr(c.rhs);
}

Rule
Rule::canonical() const
{
    std::map<std::int32_t, std::int32_t> renaming;
    for (std::int32_t wid : lhs.wildcardIds()) {
        auto fresh = static_cast<std::int32_t>(renaming.size());
        renaming.emplace(wid, fresh);
    }
    for (std::int32_t wid : rhs.wildcardIds()) {
        if (!renaming.count(wid)) {
            auto fresh = static_cast<std::int32_t>(renaming.size());
            renaming.emplace(wid, fresh);
        }
    }
    Rule out;
    out.lhs = renameWildcards(lhs, renaming);
    out.rhs = renameWildcards(rhs, renaming);
    out.name = name;
    out.verifiedExactly = verifiedExactly;
    return out;
}

bool
Rule::wellFormed() const
{
    auto lhsIds = lhs.wildcardIds();
    for (std::int32_t wid : rhs.wildcardIds()) {
        if (std::find(lhsIds.begin(), lhsIds.end(), wid) == lhsIds.end())
            return false;
    }
    return true;
}

bool
Rule::sameAs(const Rule &other) const
{
    Rule a = canonical();
    Rule b = other.canonical();
    return a.lhs.equalTree(b.lhs) && a.rhs.equalTree(b.rhs);
}

std::size_t
Rule::hash() const
{
    Rule c = canonical();
    std::size_t h = c.lhs.treeHash();
    hashCombine(h, c.rhs.treeHash());
    return h;
}

Rule
parseRule(std::string_view text)
{
    auto sep = text.find("~>");
    if (sep == std::string_view::npos)
        ISARIA_FATAL("rule missing '~>'");
    // A single wildcard-name table across both sides keeps shared
    // names bound to shared ids.
    std::map<std::string, std::int32_t> names;
    Rule rule;
    rule.lhs = parseSexpr(text.substr(0, sep), names);
    rule.rhs = parseSexpr(text.substr(sep + 2), names);
    if (!rule.wellFormed())
        ISARIA_FATAL("rhs wildcard not bound by lhs");
    return rule;
}

} // namespace isaria
