#include "term/sexpr.h"

#include <cctype>
#include <charconv>
#include <map>
#include <vector>

#include "support/panic.h"

namespace isaria
{

namespace
{

void
printNode(const RecExpr &expr, NodeId id, std::string &out)
{
    const TermNode &n = expr.node(id);
    switch (n.op) {
      case Op::Const:
        out += std::to_string(n.payload);
        return;
      case Op::Symbol:
        out += symbolName(static_cast<SymbolId>(n.payload));
        return;
      case Op::Get:
        out += "(Get ";
        out += symbolName(getArray(n.payload));
        out += ' ';
        out += std::to_string(getIndex(n.payload));
        out += ')';
        return;
      case Op::Wildcard:
        out += "?w";
        out += std::to_string(n.payload);
        return;
      default:
        break;
    }
    out += '(';
    out += opInfo(n.op).name;
    for (NodeId child : n.children) {
        out += ' ';
        printNode(expr, child, out);
    }
    out += ')';
}

/** Recursive-descent s-expression parser. */
class Parser
{
  public:
    Parser(std::string_view text, RecExpr &out,
           std::map<std::string, std::int32_t> &wildcards)
        : text_(text), pos_(0), out_(out), wildcards_(wildcards)
    {}

    NodeId
    parseExpr()
    {
        skipSpace();
        if (pos_ >= text_.size())
            ISARIA_FATAL("unexpected end of input");
        if (text_[pos_] == '(')
            return parseForm();
        return parseAtom();
    }

    void
    expectEnd()
    {
        skipSpace();
        if (pos_ != text_.size())
            ISARIA_FATAL("trailing characters after s-expression");
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    std::string_view
    nextToken()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '(' &&
               text_[pos_] != ')' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ <= start)
            ISARIA_FATAL("expected atom");
        return text_.substr(start, pos_ - start);
    }

    NodeId
    parseForm()
    {
        ++pos_; // consume '('
        std::string_view head = nextToken();
        if (head == "Get") {
            std::string_view arr = nextToken();
            std::string_view idx = nextToken();
            closeParen();
            std::int32_t index = 0;
            auto res = std::from_chars(idx.data(), idx.data() + idx.size(),
                                       index);
            if (res.ec != std::errc())
                ISARIA_FATAL("bad Get index");
            return out_.addGet(internSymbol(arr), index);
        }
        Op op = opFromName(head);
        if (op == Op::NumOps)
            ISARIA_FATAL("unknown operator in s-expression");
        std::vector<NodeId> children;
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size())
                ISARIA_FATAL("unterminated form");
            if (text_[pos_] == ')') {
                ++pos_;
                break;
            }
            children.push_back(parseExpr());
        }
        int arity = opInfo(op).arity;
        if (arity >= 0 &&
            children.size() != static_cast<std::size_t>(arity)) {
            ISARIA_FATAL("wrong arity in s-expression");
        }
        return out_.add(op, std::move(children));
    }

    NodeId
    parseAtom()
    {
        std::string_view tok = nextToken();
        if (tok[0] == '?') {
            std::string name(tok.substr(1));
            auto it = wildcards_.find(name);
            if (it == wildcards_.end()) {
                auto id = static_cast<std::int32_t>(wildcards_.size());
                it = wildcards_.emplace(name, id).first;
            }
            return out_.addWildcard(it->second);
        }
        bool numeric = (tok[0] == '-' && tok.size() > 1) ||
                       std::isdigit(static_cast<unsigned char>(tok[0]));
        if (numeric) {
            std::int64_t value = 0;
            auto res = std::from_chars(tok.data(), tok.data() + tok.size(),
                                       value);
            if (res.ec != std::errc() ||
                res.ptr != tok.data() + tok.size()) {
                ISARIA_FATAL("bad integer literal");
            }
            return out_.addConst(value);
        }
        return out_.addSymbol(internSymbol(tok));
    }

    void
    closeParen()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ')')
            ISARIA_FATAL("expected ')'");
        ++pos_;
    }

    std::string_view text_;
    std::size_t pos_;
    RecExpr &out_;
    std::map<std::string, std::int32_t> &wildcards_;
};

} // namespace

std::string
printSexpr(const RecExpr &expr, NodeId root)
{
    std::string out;
    printNode(expr, root, out);
    return out;
}

std::string
printSexpr(const RecExpr &expr)
{
    if (expr.empty())
        return "()";
    return printSexpr(expr, expr.rootId());
}

RecExpr
parseSexpr(std::string_view text)
{
    std::map<std::string, std::int32_t> wildcards;
    return parseSexpr(text, wildcards);
}

RecExpr
parseSexpr(std::string_view text,
           std::map<std::string, std::int32_t> &wildcardNames)
{
    RecExpr expr;
    Parser parser(text, expr, wildcardNames);
    parser.parseExpr();
    parser.expectEnd();
    return expr;
}

} // namespace isaria
