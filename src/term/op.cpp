#include "term/op.h"

#include <array>

#include "support/panic.h"

namespace isaria
{

namespace
{

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::NumOps);

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    /* Const      */ {"$const", 0, Sort::Scalar, Sort::Any},
    /* Symbol     */ {"$symbol", 0, Sort::Scalar, Sort::Any},
    /* Get        */ {"Get", 0, Sort::Scalar, Sort::Any},
    /* Wildcard   */ {"$wildcard", 0, Sort::Any, Sort::Any},
    /* Add        */ {"+", 2, Sort::Scalar, Sort::Scalar},
    /* Sub        */ {"-", 2, Sort::Scalar, Sort::Scalar},
    /* Mul        */ {"*", 2, Sort::Scalar, Sort::Scalar},
    /* Div        */ {"/", 2, Sort::Scalar, Sort::Scalar},
    /* Neg        */ {"neg", 1, Sort::Scalar, Sort::Scalar},
    /* Sgn        */ {"sgn", 1, Sort::Scalar, Sort::Scalar},
    /* Sqrt       */ {"sqrt", 1, Sort::Scalar, Sort::Scalar},
    /* MulSub     */ {"mulsub", 3, Sort::Scalar, Sort::Scalar},
    /* SqrtSgn    */ {"sqrtsgn", 2, Sort::Scalar, Sort::Scalar},
    /* Vec        */ {"Vec", -1, Sort::Vector, Sort::Scalar},
    /* Concat     */ {"Concat", 2, Sort::Vector, Sort::Vector},
    /* VecAdd     */ {"VecAdd", 2, Sort::Vector, Sort::Vector},
    /* VecMinus   */ {"VecMinus", 2, Sort::Vector, Sort::Vector},
    /* VecMul     */ {"VecMul", 2, Sort::Vector, Sort::Vector},
    /* VecDiv     */ {"VecDiv", 2, Sort::Vector, Sort::Vector},
    /* VecNeg     */ {"VecNeg", 1, Sort::Vector, Sort::Vector},
    /* VecSgn     */ {"VecSgn", 1, Sort::Vector, Sort::Vector},
    /* VecSqrt    */ {"VecSqrt", 1, Sort::Vector, Sort::Vector},
    /* VecMAC     */ {"VecMAC", 3, Sort::Vector, Sort::Vector},
    /* VecMulSub  */ {"VecMulSub", 3, Sort::Vector, Sort::Vector},
    /* VecSqrtSgn */ {"VecSqrtSgn", 2, Sort::Vector, Sort::Vector},
    /* List       */ {"List", -1, Sort::List, Sort::Vector},
}};

} // namespace

const OpInfo &
opInfo(Op op)
{
    auto idx = static_cast<std::size_t>(op);
    ISARIA_ASSERT(idx < kNumOps, "bad op");
    return kOpTable[idx];
}

Op
opFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumOps; ++i) {
        if (kOpTable[i].name == name)
            return static_cast<Op>(i);
    }
    return Op::NumOps;
}

bool
isLaneWiseVectorOp(Op op)
{
    switch (op) {
      case Op::VecAdd:
      case Op::VecMinus:
      case Op::VecMul:
      case Op::VecDiv:
      case Op::VecNeg:
      case Op::VecSgn:
      case Op::VecSqrt:
      case Op::VecMAC:
      case Op::VecMulSub:
      case Op::VecSqrtSgn:
        return true;
      default:
        return false;
    }
}

bool
isScalarArithOp(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Neg:
      case Op::Sgn:
      case Op::Sqrt:
      case Op::MulSub:
      case Op::SqrtSgn:
        return true;
      default:
        return false;
    }
}

Op
scalarCounterpart(Op vectorOp)
{
    switch (vectorOp) {
      case Op::VecAdd: return Op::Add;
      case Op::VecMinus: return Op::Sub;
      case Op::VecMul: return Op::Mul;
      case Op::VecDiv: return Op::Div;
      case Op::VecNeg: return Op::Neg;
      case Op::VecSgn: return Op::Sgn;
      case Op::VecSqrt: return Op::Sqrt;
      case Op::VecMulSub: return Op::MulSub;
      case Op::VecSqrtSgn: return Op::SqrtSgn;
      default:
        return Op::NumOps;
    }
}

Op
vectorCounterpart(Op scalarOp)
{
    switch (scalarOp) {
      case Op::Add: return Op::VecAdd;
      case Op::Sub: return Op::VecMinus;
      case Op::Mul: return Op::VecMul;
      case Op::Div: return Op::VecDiv;
      case Op::Neg: return Op::VecNeg;
      case Op::Sgn: return Op::VecSgn;
      case Op::Sqrt: return Op::VecSqrt;
      case Op::MulSub: return Op::VecMulSub;
      case Op::SqrtSgn: return Op::VecSqrtSgn;
      default:
        return Op::NumOps;
    }
}

} // namespace isaria
