#ifndef ISARIA_TERM_REC_EXPR_H
#define ISARIA_TERM_REC_EXPR_H

/**
 * @file
 * Flat tree representation of DSL terms.
 *
 * A RecExpr stores a term as a vector of nodes in topological order
 * (children strictly before parents), mirroring egg's RecExpr. Nodes
 * refer to children by index, so sharing is possible but equality and
 * hashing are defined on the unfolded tree.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/interner.h"
#include "term/op.h"

namespace isaria
{

/** Index of a node within a RecExpr. */
using NodeId = std::int32_t;

/** One operator application inside a RecExpr. */
struct TermNode
{
    Op op = Op::Const;
    /**
     * Leaf payload: Const value, SymbolId, packed (SymbolId, index)
     * for Get, or wildcard id. Zero for interior nodes.
     */
    std::int64_t payload = 0;
    /** Children, in order, as indices into the owning RecExpr. */
    std::vector<NodeId> children;

    bool operator==(const TermNode &other) const = default;
};

/** Packs an array access into a Get payload. */
std::int64_t packGet(SymbolId array, std::int32_t index);
/** Array symbol of a Get payload. */
SymbolId getArray(std::int64_t payload);
/** Element index of a Get payload. */
std::int32_t getIndex(std::int64_t payload);

/**
 * A term of the vector DSL as a flat, topologically ordered node list.
 *
 * The last node is the root. The builder methods append nodes and
 * return their ids, so terms are constructed bottom-up.
 */
class RecExpr
{
  public:
    RecExpr() = default;

    /** Appends a node; children must already be present. */
    NodeId add(Op op, std::vector<NodeId> children, std::int64_t payload = 0);

    NodeId addConst(std::int64_t value);
    NodeId addSymbol(SymbolId sym);
    NodeId addSymbol(std::string_view name);
    NodeId addGet(SymbolId array, std::int32_t index);
    NodeId addWildcard(std::int32_t wildcardId);

    /** Copies the subtree of @p other rooted at @p root into this. */
    NodeId addSubtree(const RecExpr &other, NodeId root);

    bool empty() const { return nodes_.empty(); }
    std::size_t size() const { return nodes_.size(); }
    const TermNode &node(NodeId id) const { return nodes_[id]; }
    NodeId rootId() const { return static_cast<NodeId>(nodes_.size()) - 1; }
    const TermNode &root() const { return nodes_.back(); }

    /** Extracts the subtree rooted at @p root as a fresh RecExpr. */
    RecExpr subExpr(NodeId root) const;

    /** Number of nodes in the unfolded tree below @p root (inclusive). */
    std::size_t treeSize(NodeId root) const;
    std::size_t treeSize() const { return treeSize(rootId()); }

    /** Tree equality from the roots (insensitive to node layout). */
    bool equalTree(const RecExpr &other) const;

    /** Hash of the unfolded tree (compatible with equalTree). */
    std::size_t treeHash() const;

    /**
     * Result sorts of every node. Wildcards take the sort demanded by
     * their parent (Sort::Any at the root or under List-free contexts
     * where unconstrained). Panics on ill-sorted terms.
     */
    std::vector<Sort> inferSorts() const;

    /** All distinct wildcard ids, in first-occurrence (preorder) order. */
    std::vector<std::int32_t> wildcardIds() const;

    /** True if any node is a lane-wise vector op, Vec, or Concat. */
    bool containsVectorOp() const;

  private:
    std::vector<TermNode> nodes_;
};

} // namespace isaria

#endif // ISARIA_TERM_REC_EXPR_H
