#include "term/rec_expr.h"

#include <algorithm>

#include "support/hash.h"
#include "support/panic.h"

namespace isaria
{

std::int64_t
packGet(SymbolId array, std::int32_t index)
{
    return (static_cast<std::int64_t>(array) << 32) |
           static_cast<std::uint32_t>(index);
}

SymbolId
getArray(std::int64_t payload)
{
    return static_cast<SymbolId>(payload >> 32);
}

std::int32_t
getIndex(std::int64_t payload)
{
    return static_cast<std::int32_t>(payload & 0xffffffff);
}

NodeId
RecExpr::add(Op op, std::vector<NodeId> children, std::int64_t payload)
{
    auto id = static_cast<NodeId>(nodes_.size());
    for (NodeId child : children)
        ISARIA_ASSERT(child >= 0 && child < id, "child out of order");
    nodes_.push_back(TermNode{op, payload, std::move(children)});
    return id;
}

NodeId
RecExpr::addConst(std::int64_t value)
{
    return add(Op::Const, {}, value);
}

NodeId
RecExpr::addSymbol(SymbolId sym)
{
    return add(Op::Symbol, {}, static_cast<std::int64_t>(sym));
}

NodeId
RecExpr::addSymbol(std::string_view name)
{
    return addSymbol(internSymbol(name));
}

NodeId
RecExpr::addGet(SymbolId array, std::int32_t index)
{
    return add(Op::Get, {}, packGet(array, index));
}

NodeId
RecExpr::addWildcard(std::int32_t wildcardId)
{
    return add(Op::Wildcard, {}, wildcardId);
}

NodeId
RecExpr::addSubtree(const RecExpr &other, NodeId root)
{
    const TermNode &n = other.node(root);
    std::vector<NodeId> kids;
    kids.reserve(n.children.size());
    for (NodeId child : n.children)
        kids.push_back(addSubtree(other, child));
    return add(n.op, std::move(kids), n.payload);
}

RecExpr
RecExpr::subExpr(NodeId root) const
{
    RecExpr out;
    out.addSubtree(*this, root);
    return out;
}

std::size_t
RecExpr::treeSize(NodeId root) const
{
    const TermNode &n = node(root);
    std::size_t total = 1;
    for (NodeId child : n.children)
        total += treeSize(child);
    return total;
}

namespace
{

bool
equalTreeAt(const RecExpr &a, NodeId ia, const RecExpr &b, NodeId ib)
{
    const TermNode &na = a.node(ia);
    const TermNode &nb = b.node(ib);
    if (na.op != nb.op || na.payload != nb.payload ||
        na.children.size() != nb.children.size()) {
        return false;
    }
    for (std::size_t i = 0; i < na.children.size(); ++i) {
        if (!equalTreeAt(a, na.children[i], b, nb.children[i]))
            return false;
    }
    return true;
}

std::size_t
treeHashAt(const RecExpr &e, NodeId id)
{
    const TermNode &n = e.node(id);
    std::size_t h = hashMix(static_cast<std::uint64_t>(n.op) * 0x10001 +
                            static_cast<std::uint64_t>(n.payload));
    for (NodeId child : n.children)
        hashCombine(h, treeHashAt(e, child));
    return h;
}

} // namespace

bool
RecExpr::equalTree(const RecExpr &other) const
{
    if (empty() || other.empty())
        return empty() && other.empty();
    return equalTreeAt(*this, rootId(), other, other.rootId());
}

std::size_t
RecExpr::treeHash() const
{
    if (empty())
        return 0;
    return treeHashAt(*this, rootId());
}

std::vector<Sort>
RecExpr::inferSorts() const
{
    std::vector<Sort> sorts(nodes_.size(), Sort::Any);
    // Nodes are topological, so walk parents from the top down and
    // push sort requirements into children; intrinsic sorts win.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const TermNode &n = nodes_[i];
        Sort intrinsic = opInfo(n.op).resultSort;
        if (intrinsic != Sort::Any)
            sorts[i] = intrinsic;
    }
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        const TermNode &n = nodes_[i];
        Sort need = opInfo(n.op).childSort;
        if (need == Sort::Any)
            continue;
        for (NodeId child : n.children) {
            Sort have = sorts[child];
            if (have == Sort::Any) {
                sorts[child] = need;
            } else {
                ISARIA_ASSERT(have == need, "ill-sorted term");
            }
        }
    }
    return sorts;
}

std::vector<std::int32_t>
RecExpr::wildcardIds() const
{
    std::vector<std::int32_t> ids;
    // Preorder from the root gives first-occurrence order.
    std::vector<NodeId> stack;
    if (!empty())
        stack.push_back(rootId());
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        const TermNode &n = node(id);
        if (n.op == Op::Wildcard) {
            auto wid = static_cast<std::int32_t>(n.payload);
            if (std::find(ids.begin(), ids.end(), wid) == ids.end())
                ids.push_back(wid);
        }
        for (std::size_t i = n.children.size(); i-- > 0;)
            stack.push_back(n.children[i]);
    }
    return ids;
}

bool
RecExpr::containsVectorOp() const
{
    for (const TermNode &n : nodes_) {
        if (isLaneWiseVectorOp(n.op) || n.op == Op::Vec ||
            n.op == Op::Concat) {
            return true;
        }
    }
    return false;
}

} // namespace isaria
