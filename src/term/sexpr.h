#ifndef ISARIA_TERM_SEXPR_H
#define ISARIA_TERM_SEXPR_H

/**
 * @file
 * S-expression printer and parser for DSL terms.
 *
 * The surface syntax matches the paper's examples:
 *
 *   (VecAdd (Vec (Get x 0) (Get x 1)) (Vec ?a 0))
 *
 * Atoms starting with `?` parse as wildcards, integer atoms as
 * constants, and other identifiers as symbols. `(Get a 3)` is the
 * array-access special form.
 */

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "term/rec_expr.h"

namespace isaria
{

/** Renders the subtree of @p expr rooted at @p root. */
std::string printSexpr(const RecExpr &expr, NodeId root);

/** Renders the whole term. */
std::string printSexpr(const RecExpr &expr);

/**
 * Parses an s-expression into a term.
 *
 * Wildcard atoms `?name` are numbered by first occurrence (`?a` in
 * `(+ ?a ?b)` gets id 0, `?b` id 1). Throws FatalError (via
 * ISARIA_FATAL) on syntax errors; boundary code that handles
 * untrusted input — RuleSet::parse, rules-file loading — catches it
 * and converts it into a line-numbered Result diagnostic.
 */
RecExpr parseSexpr(std::string_view text);

/**
 * Parses with an explicit wildcard-name table, so several related
 * patterns (e.g. the two sides of a rule) can share wildcard ids.
 */
RecExpr parseSexpr(std::string_view text,
                   std::map<std::string, std::int32_t> &wildcardNames);

} // namespace isaria

#endif // ISARIA_TERM_SEXPR_H
