#ifndef ISARIA_TERM_OP_H
#define ISARIA_TERM_OP_H

/**
 * @file
 * Operators of the Diospyros vector DSL (Fig. 1 of the paper), plus the
 * custom ISA extensions explored in Section 5.4.
 *
 * The DSL has two sorts: scalars and vectors. `Vec` builds a vector
 * value out of scalar lanes and abstracts all data movement; lane-wise
 * vector instructions mirror the scalar operators. The `List` operator
 * groups the (possibly many) output vectors of a kernel.
 */

#include <cstdint>
#include <string_view>

namespace isaria
{

/** Sort (type) of a DSL term. */
enum class Sort : std::uint8_t
{
    Scalar,
    Vector,
    List,
    /** Wildcards adapt to the sort their context requires. */
    Any,
};

/** Every operator of the term language. */
enum class Op : std::uint8_t
{
    // Leaves.
    Const,    ///< Integer literal; payload holds the value.
    Symbol,   ///< Free scalar variable; payload holds a SymbolId.
    Get,      ///< Array element `(Get a i)`; payload packs (SymbolId, i).
    Wildcard, ///< Pattern variable `?x`; payload holds the wildcard id.

    // Scalar arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Sgn,
    Sqrt,

    // Custom scalar instructions (ISA extensions, Section 5.4).
    MulSub,  ///< `(MulSub acc a b)` = acc - a*b.
    SqrtSgn, ///< `(SqrtSgn a b)` = sqrt(a) * sgn(-b).

    // Vector constructors.
    Vec,    ///< Vector literal from scalar lanes (abstracts movement).
    Concat, ///< Concatenation of two vectors.

    // Lane-wise vector instructions.
    VecAdd,
    VecMinus,
    VecMul,
    VecDiv,
    VecNeg,
    VecSgn,
    VecSqrt,
    VecMAC,     ///< `(VecMAC acc a b)` = acc + a*b per lane.
    VecMulSub,  ///< `(VecMulSub acc a b)` = acc - a*b per lane (custom).
    VecSqrtSgn, ///< Lane-wise `(SqrtSgn a b)` (custom).

    // Program structure.
    List, ///< Top-level list of output expressions.

    NumOps, ///< Sentinel: number of operators.
};

/** Static metadata describing one operator. */
struct OpInfo
{
    /** S-expression atom used by the printer and parser. */
    std::string_view name;
    /** Number of children, or -1 for variadic (Vec, List). */
    int arity;
    /** Sort of the operator's result. */
    Sort resultSort;
    /** Sort required of every child. */
    Sort childSort;
};

/** Returns the metadata for @p op. */
const OpInfo &opInfo(Op op);

/** Looks up an operator by its s-expression name; NumOps if unknown. */
Op opFromName(std::string_view name);

/** True for the lane-wise vector instruction forms (not Vec/Concat). */
bool isLaneWiseVectorOp(Op op);

/** True for scalar arithmetic operators (not leaves). */
bool isScalarArithOp(Op op);

/**
 * The scalar operator computing one lane of a lane-wise vector op
 * (e.g. VecAdd -> Add). Returns Op::NumOps when there is none.
 */
Op scalarCounterpart(Op vectorOp);

/** Inverse of scalarCounterpart (e.g. Add -> VecAdd). */
Op vectorCounterpart(Op scalarOp);

} // namespace isaria

#endif // ISARIA_TERM_OP_H
