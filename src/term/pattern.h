#ifndef ISARIA_TERM_PATTERN_H
#define ISARIA_TERM_PATTERN_H

/**
 * @file
 * Pattern utilities: wildcard renaming, substitution, and rewrite
 * rules as pattern pairs.
 *
 * A pattern is simply a RecExpr whose leaves may include Op::Wildcard
 * nodes. A rewrite rule `lhs ~> rhs` is a pair of patterns where every
 * wildcard of the right-hand side must occur in the left-hand side.
 */

#include <cstdint>
#include <map>
#include <string>

#include "term/rec_expr.h"

namespace isaria
{

/**
 * Renumbers wildcards by first occurrence in preorder, so structurally
 * identical patterns compare equal regardless of original naming.
 */
RecExpr alphaCanonicalize(const RecExpr &pattern);

/** Applies an explicit wildcard-id renaming to a pattern. */
RecExpr renameWildcards(const RecExpr &pattern,
                        const std::map<std::int32_t, std::int32_t> &renaming);

/**
 * Replaces each wildcard with the supplied term. Every wildcard id in
 * @p pattern must be present in @p subst.
 */
RecExpr instantiate(const RecExpr &pattern,
                    const std::map<std::int32_t, RecExpr> &subst);

/**
 * A rewrite rule between two patterns.
 *
 * `verifiedExactly` records whether the soundness oracle proved the
 * rule by normalization (true) or only validated it by exhaustive
 * exact-rational sampling (false); see src/verify/.
 */
struct Rule
{
    RecExpr lhs;
    RecExpr rhs;
    std::string name;
    bool verifiedExactly = false;

    /** `lhs ~> rhs` rendered with canonical wildcard names. */
    std::string toString() const;

    /**
     * Jointly alpha-canonicalizes both sides (wildcards numbered by
     * first occurrence in lhs, then rhs), for deduplication.
     */
    Rule canonical() const;

    /** True when every rhs wildcard also occurs in the lhs. */
    bool wellFormed() const;

    /** Structural equality of the canonical forms. */
    bool sameAs(const Rule &other) const;

    /** Hash compatible with sameAs. */
    std::size_t hash() const;
};

/** Parses "lhs ~> rhs" (used by tests and rule files). */
Rule parseRule(std::string_view text);

} // namespace isaria

#endif // ISARIA_TERM_PATTERN_H
