#ifndef ISARIA_OBS_EXPORT_H
#define ISARIA_OBS_EXPORT_H

/**
 * @file
 * Trace exporters and the end-of-run aggregated stats report.
 *
 * Two on-disk formats:
 *
 * - **JSONL** — one self-describing JSON object per line, led by a
 *   `meta` line carrying the schema version. Greppable, streamable,
 *   and validated in CI against tools/trace_schema.json.
 * - **Chrome trace_event** — a JSON object that loads directly in
 *   chrome://tracing or https://ui.perfetto.dev: spans are complete
 *   ("ph":"X") events with microsecond timestamps, counters are
 *   "ph":"C" series, threads map to trace rows.
 *
 * The aggregated StatsReport is what `--stats` prints: per-span-name
 * wall time and call counts plus per-counter summaries — the same
 * numbers every perf PR should quote instead of bespoke printfs.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace isaria::obs
{

/** Version stamped into every exported artifact's meta record.
 *  v2: the JSONL export appends one "hist" histogram-summary record
 *  per populated registry histogram (and the meta line counts them
 *  in "hists"), and the stats JSON block carries a "metrics"
 *  sub-object — see obs/metrics.h and tools/trace_schema.json. */
inline constexpr int kTraceSchemaVersion = 2;

/** Escapes @p text for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** Writes the session's events as JSON-lines to @p out. */
void exportJsonl(const TraceSession &session, std::ostream &out);

/** Writes the session's events in Chrome trace_event format. */
void exportChromeTrace(const TraceSession &session, std::ostream &out);

/** Aggregate of all events sharing one name. */
struct StatsEntry
{
    std::string name;
    EventKind kind = EventKind::Instant;
    std::uint64_t count = 0;
    /** Spans: total wall time inside the span. */
    std::uint64_t totalNs = 0;
    /** Counters: last observed / min / max / sum of samples. */
    std::int64_t last = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t sum = 0;
};

/** The end-of-run report behind `--stats`. */
struct StatsReport
{
    /** Span aggregates, widest total time first. */
    std::vector<StatsEntry> spans;
    /** Counter aggregates, by name. */
    std::vector<StatsEntry> counters;
    std::uint64_t droppedEvents = 0;
    std::size_t threads = 0;

    /** Human-readable table. */
    std::string toString() const;
    /** The shared `obs` JSON block embedded in BENCH_*.json files. */
    std::string toJson() const;
};

/** Aggregates the session's retained events. */
StatsReport aggregateStats(const TraceSession &session);

} // namespace isaria::obs

#endif // ISARIA_OBS_EXPORT_H
