#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/metrics.h"

namespace isaria::obs
{

namespace
{

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Span: return "span";
      case EventKind::Counter: return "counter";
      case EventKind::Instant: return "instant";
    }
    return "?";
}

/** Formats @p ns as fractional microseconds (chrome's unit). */
std::string
microseconds(std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
exportJsonl(const TraceSession &session, std::ostream &out)
{
    std::vector<TaggedEvent> events = session.drain();
    // The always-on registry's populated histograms ride along as
    // schema-v2 "hist" summary records, so one trace file carries
    // both the event stream and the latency distributions.
    MetricsSnapshot metrics = snapshotMetrics();
    std::size_t hists = 0;
    for (const MetricValue &m : metrics.metrics)
        if (m.kind == MetricKind::Histogram && m.histogram.count > 0)
            ++hists;
    out << "{\"type\":\"meta\",\"schema\":" << kTraceSchemaVersion
        << ",\"tool\":\"isaria-obs\",\"threads\":"
        << session.threadCount()
        << ",\"dropped\":" << session.droppedEvents()
        << ",\"events\":" << events.size() << ",\"hists\":" << hists
        << "}\n";
    for (const TaggedEvent &tagged : events) {
        const Event &e = tagged.event;
        out << "{\"type\":\"" << kindName(e.kind) << "\",\"name\":\""
            << jsonEscape(nameOf(e.name)) << "\",\"tid\":" << tagged.tid
            << ",\"ts_ns\":" << e.startNs;
        if (e.kind == EventKind::Span)
            out << ",\"dur_ns\":" << e.durNs;
        out << ",\"value\":" << e.value << "}\n";
    }
    for (const MetricValue &m : metrics.metrics) {
        if (m.kind != MetricKind::Histogram || m.histogram.count == 0)
            continue;
        const HistogramSummary &h = m.histogram;
        out << "{\"type\":\"hist\",\"name\":\"" << jsonEscape(m.name)
            << "\",\"unit\":\"" << jsonEscape(m.unit)
            << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
            << ",\"min\":" << h.min << ",\"max\":" << h.max
            << ",\"p50\":" << h.quantile(0.50)
            << ",\"p90\":" << h.quantile(0.90)
            << ",\"p95\":" << h.quantile(0.95)
            << ",\"p99\":" << h.quantile(0.99) << "}\n";
    }
}

void
exportChromeTrace(const TraceSession &session, std::ostream &out)
{
    std::vector<TaggedEvent> events = session.drain();
    out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":"
           "\"isaria-obs\",\"schema\":"
        << kTraceSchemaVersion
        << ",\"dropped\":" << session.droppedEvents()
        << "},\"traceEvents\":[\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"isaria\"}}";
    for (const TaggedEvent &tagged : events) {
        const Event &e = tagged.event;
        out << ",\n";
        std::string name = jsonEscape(nameOf(e.name));
        switch (e.kind) {
          case EventKind::Span:
            out << "{\"name\":\"" << name
                << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tagged.tid
                << ",\"ts\":" << microseconds(e.startNs)
                << ",\"dur\":" << microseconds(e.durNs)
                << ",\"args\":{\"value\":" << e.value << "}}";
            break;
          case EventKind::Counter:
            // Counters are per-process series; pinning tid keeps one
            // row per counter name.
            out << "{\"name\":\"" << name
                << "\",\"ph\":\"C\",\"pid\":1,\"ts\":"
                << microseconds(e.startNs) << ",\"args\":{\"value\":"
                << e.value << "}}";
            break;
          case EventKind::Instant:
            out << "{\"name\":\"" << name
                << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
                << tagged.tid << ",\"ts\":" << microseconds(e.startNs)
                << ",\"args\":{\"value\":" << e.value << "}}";
            break;
        }
    }
    out << "\n]}\n";
}

StatsReport
aggregateStats(const TraceSession &session)
{
    StatsReport report;
    report.droppedEvents = session.droppedEvents();
    report.threads = session.threadCount();

    // Aggregate by (kind, name); std::map keeps the output ordering
    // deterministic and readable.
    std::map<std::string, StatsEntry> spans;
    std::map<std::string, StatsEntry> counters;
    for (const TaggedEvent &tagged : session.drain()) {
        const Event &e = tagged.event;
        auto &bucket =
            e.kind == EventKind::Span ? spans : counters;
        const std::string &name = nameOf(e.name);
        auto [it, fresh] = bucket.try_emplace(name);
        StatsEntry &entry = it->second;
        if (fresh) {
            entry.name = name;
            entry.kind = e.kind;
            entry.min = e.value;
            entry.max = e.value;
        }
        ++entry.count;
        entry.totalNs += e.durNs;
        entry.last = e.value;
        entry.min = std::min(entry.min, e.value);
        entry.max = std::max(entry.max, e.value);
        entry.sum += e.value;
    }
    for (auto &[name, entry] : spans)
        report.spans.push_back(std::move(entry));
    std::stable_sort(report.spans.begin(), report.spans.end(),
                     [](const StatsEntry &a, const StatsEntry &b) {
                         return a.totalNs > b.totalNs;
                     });
    for (auto &[name, entry] : counters)
        report.counters.push_back(std::move(entry));
    return report;
}

std::string
StatsReport::toString() const
{
    std::string out = "== obs stats ==\n";
    char line[256];
    std::snprintf(line, sizeof line,
                  "threads: %zu   dropped events: %" PRIu64 "\n",
                  threads, droppedEvents);
    out += line;
    if (!spans.empty()) {
        out += "-- spans (total wall time) --\n";
        for (const StatsEntry &s : spans) {
            std::snprintf(line, sizeof line,
                          "  %-28s %10.3f ms  x%" PRIu64 "\n",
                          s.name.c_str(),
                          static_cast<double>(s.totalNs) / 1e6, s.count);
            out += line;
        }
    }
    if (!counters.empty()) {
        out += "-- counters (last / min / max / samples) --\n";
        for (const StatsEntry &c : counters) {
            std::snprintf(line, sizeof line,
                          "  %-28s %12" PRId64 " %12" PRId64
                          " %12" PRId64 "  x%" PRIu64 "\n",
                          c.name.c_str(), c.last, c.min, c.max,
                          c.count);
            out += line;
        }
    }
    return out;
}

std::string
StatsReport::toJson() const
{
    std::string out = "{\"schema\":";
    out += std::to_string(kTraceSchemaVersion);
    out += ",\"threads\":" + std::to_string(threads);
    out += ",\"dropped\":" + std::to_string(droppedEvents);
    out += ",\"spans\":{";
    bool first = true;
    for (const StatsEntry &s : spans) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + jsonEscape(s.name) + "\":{\"total_ns\":" +
               std::to_string(s.totalNs) +
               ",\"count\":" + std::to_string(s.count) + "}";
    }
    out += "},\"counters\":{";
    first = true;
    for (const StatsEntry &c : counters) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + jsonEscape(c.name) + "\":{\"last\":" +
               std::to_string(c.last) + ",\"min\":" +
               std::to_string(c.min) + ",\"max\":" +
               std::to_string(c.max) + ",\"count\":" +
               std::to_string(c.count) + "}";
    }
    // The always-on registry rides along in every obs block, so bench
    // sidecars carry the latency quantiles even for untraced runs.
    out += "},\"metrics\":" + metricsJson(snapshotMetrics());
    out += "}";
    return out;
}

} // namespace isaria::obs
