#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/export.h"

namespace isaria::obs
{

namespace
{

// ---------------------------------------------------------------------
// The registry.
//
// Shape: a global definition table (name → kind + dense per-kind slot)
// plus one Shard per recording thread. Counter and histogram slots
// live in the shards (single-writer, merged on read); gauges are
// registry-global (a "set" is last-writer-wins — per-thread copies
// would have no meaningful merge).
//
// Single-writer slots let the hot path use relaxed load+store instead
// of RMW atomics; the only cross-thread traffic is the snapshot
// reader's relaxed loads, which tolerate torn *ordering* (never torn
// values — every slot is a naturally aligned 64-bit atomic).

struct HistogramShard
{
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
};

struct Shard
{
    /** Deques: slots must not move when another metric registers
     *  (atomics are neither movable nor copyable). */
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<HistogramShard> histograms;
};

struct MetricDef
{
    std::string name;
    std::string unit;
    MetricKind kind = MetricKind::Counter;
    /** Dense index within the metric's kind. */
    std::uint32_t slot = 0;
};

class Registry
{
  public:
    Registry()
    {
        if (const char *env = std::getenv("ISARIA_METRICS");
            env && std::strcmp(env, "0") == 0) {
            enabled_.store(false, std::memory_order_relaxed);
        }
    }

    std::uint32_t
    define(const char *name, MetricKind kind, const char *unit)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = ids_.find(name);
        if (it != ids_.end()) {
            const MetricDef &def = defs_[it->second];
            // A name reused with a different kind would corrupt the
            // slot spaces; fall back to the first registration.
            return def.kind == kind ? def.slot : 0;
        }
        MetricDef def;
        def.name = name;
        def.unit = unit ? unit : "";
        def.kind = kind;
        switch (kind) {
          case MetricKind::Counter: def.slot = numCounters_++; break;
          case MetricKind::Gauge:
            def.slot = static_cast<std::uint32_t>(gauges_.size());
            gauges_.emplace_back(0);
            gaugeSet_.emplace_back(false);
            break;
          case MetricKind::Histogram: def.slot = numHistograms_++; break;
        }
        ids_.emplace(def.name, defs_.size());
        defs_.push_back(std::move(def));
        return defs_.back().slot;
    }

    bool
    enabledFast() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** This thread's shard (registers it on first use). */
    Shard &shard();

    void
    counterAdd(std::uint32_t slot, std::uint64_t delta)
    {
        std::atomic<std::uint64_t> &cell = counterCell(shard(), slot);
        cell.store(cell.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
    }

    void
    histogramRecord(std::uint32_t slot, std::uint64_t value)
    {
        HistogramShard &h = histogramCell(shard(), slot);
        std::uint32_t bucket = histogramBucket(value);
        std::atomic<std::uint64_t> &cell = h.buckets[bucket];
        cell.store(cell.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
        h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
        h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
                    std::memory_order_relaxed);
        if (value < h.min.load(std::memory_order_relaxed))
            h.min.store(value, std::memory_order_relaxed);
        if (value > h.max.load(std::memory_order_relaxed))
            h.max.store(value, std::memory_order_relaxed);
    }

    void
    gaugeSet(std::uint32_t slot, std::int64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (slot < gauges_.size()) {
            gauges_[slot] = value;
            gaugeSet_[slot] = true;
        }
    }

    void
    gaugeMax(std::uint32_t slot, std::int64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (slot < gauges_.size() &&
            (!gaugeSet_[slot] || value > gauges_[slot])) {
            gauges_[slot] = value;
            gaugeSet_[slot] = true;
        }
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &shard : shards_) {
            for (auto &cell : shard->counters)
                cell.store(0, std::memory_order_relaxed);
            for (HistogramShard &h : shard->histograms) {
                for (auto &bucket : h.buckets)
                    bucket.store(0, std::memory_order_relaxed);
                h.count.store(0, std::memory_order_relaxed);
                h.sum.store(0, std::memory_order_relaxed);
                h.min.store(~std::uint64_t{0},
                            std::memory_order_relaxed);
                h.max.store(0, std::memory_order_relaxed);
            }
        }
        std::fill(gauges_.begin(), gauges_.end(), 0);
        std::fill(gaugeSet_.begin(), gaugeSet_.end(), false);
    }

    MetricsSnapshot snapshot() const;

  private:
    static std::atomic<std::uint64_t> &
    counterCell(Shard &shard, std::uint32_t slot)
    {
        // Lazy per-shard growth: a slot registered after this shard
        // was created appends under the registry mutex. Deque slots
        // never move, so readers holding the mutex stay valid and the
        // owning thread's cached references stay valid too.
        if (slot >= shard.counters.size())
            return growCounterCells(shard, slot);
        return shard.counters[slot];
    }

    static HistogramShard &
    histogramCell(Shard &shard, std::uint32_t slot)
    {
        if (slot >= shard.histograms.size())
            return growHistogramCells(shard, slot);
        return shard.histograms[slot];
    }

    static std::atomic<std::uint64_t> &growCounterCells(Shard &shard,
                                                        std::uint32_t slot);
    static HistogramShard &growHistogramCells(Shard &shard,
                                              std::uint32_t slot);

    std::atomic<bool> enabled_{true};

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::size_t> ids_;
    std::deque<MetricDef> defs_;
    std::uint32_t numCounters_ = 0;
    std::uint32_t numHistograms_ = 0;
    std::vector<std::int64_t> gauges_;
    /** Distinguishes "never set" from "set to 0" for gaugeMax. */
    std::deque<bool> gaugeSet_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

Registry &
registry()
{
    static Registry *instance = new Registry; // never destroyed:
    // instrumentation sites may record during static teardown.
    return *instance;
}

thread_local Shard *tlShard = nullptr;

Shard &
Registry::shard()
{
    if (tlShard)
        return *tlShard;
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    tlShard = shards_.back().get();
    return *tlShard;
}

std::atomic<std::uint64_t> &
Registry::growCounterCells(Shard &shard, std::uint32_t slot)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex_);
    while (shard.counters.size() <= slot)
        shard.counters.emplace_back(0);
    return shard.counters[slot];
}

HistogramShard &
Registry::growHistogramCells(Shard &shard, std::uint32_t slot)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex_);
    while (shard.histograms.size() <= slot)
        shard.histograms.emplace_back();
    return shard.histograms[slot];
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.metrics.reserve(defs_.size());
    for (const MetricDef &def : defs_) {
        MetricValue value;
        value.name = def.name;
        value.unit = def.unit;
        value.kind = def.kind;
        switch (def.kind) {
          case MetricKind::Counter: {
            std::uint64_t total = 0;
            for (const auto &shard : shards_)
                if (def.slot < shard->counters.size())
                    total += shard->counters[def.slot].load(
                        std::memory_order_relaxed);
            value.counter = total;
            break;
          }
          case MetricKind::Gauge:
            value.gauge = def.slot < gauges_.size() ? gauges_[def.slot]
                                                    : 0;
            break;
          case MetricKind::Histogram: {
            HistogramSummary &sum = value.histogram;
            std::vector<std::uint64_t> merged(kHistogramBuckets, 0);
            for (const auto &shard : shards_) {
                if (def.slot >= shard->histograms.size())
                    continue;
                const HistogramShard &h = shard->histograms[def.slot];
                std::uint64_t count =
                    h.count.load(std::memory_order_relaxed);
                if (count == 0)
                    continue;
                sum.count += count;
                sum.sum += h.sum.load(std::memory_order_relaxed);
                std::uint64_t lo =
                    h.min.load(std::memory_order_relaxed);
                std::uint64_t hi =
                    h.max.load(std::memory_order_relaxed);
                if (sum.count == count || lo < sum.min)
                    sum.min = lo;
                if (hi > sum.max)
                    sum.max = hi;
                for (std::uint32_t b = 0; b < kHistogramBuckets; ++b)
                    merged[b] += h.buckets[b].load(
                        std::memory_order_relaxed);
            }
            for (std::uint32_t b = 0; b < kHistogramBuckets; ++b)
                if (merged[b])
                    sum.buckets.emplace_back(b, merged[b]);
            break;
          }
        }
        out.metrics.push_back(std::move(value));
    }
    std::sort(out.metrics.begin(), out.metrics.end(),
              [](const MetricValue &a, const MetricValue &b) {
                  return a.name < b.name;
              });
    return out;
}

/** isaria_<name> with '/', '-', and anything non-alphanumeric → '_'
 *  (the OpenMetrics name charset). */
std::string
openMetricsName(const std::string &name)
{
    std::string out = "isaria_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

CounterHandle
metricCounter(const char *name)
{
    return {registry().define(name, MetricKind::Counter, "")};
}

GaugeHandle
metricGauge(const char *name)
{
    return {registry().define(name, MetricKind::Gauge, "")};
}

HistogramHandle
metricHistogram(const char *name, const char *unit)
{
    return {registry().define(name, MetricKind::Histogram, unit)};
}

void
metricAdd(CounterHandle handle, std::uint64_t delta)
{
    Registry &reg = registry();
    if (!reg.enabledFast())
        return;
    reg.counterAdd(handle.slot, delta);
}

void
metricSet(GaugeHandle handle, std::int64_t value)
{
    Registry &reg = registry();
    if (!reg.enabledFast())
        return;
    reg.gaugeSet(handle.slot, value);
}

void
metricMax(GaugeHandle handle, std::int64_t value)
{
    Registry &reg = registry();
    if (!reg.enabledFast())
        return;
    reg.gaugeMax(handle.slot, value);
}

void
metricRecord(HistogramHandle handle, std::uint64_t value)
{
    Registry &reg = registry();
    if (!reg.enabledFast())
        return;
    reg.histogramRecord(handle.slot, value);
}

ScopedHistogramTimer::ScopedHistogramTimer(HistogramHandle handle)
    : handle_(handle)
{
    if (!registry().enabledFast())
        return;
    armed_ = true;
    start_ = std::chrono::steady_clock::now();
}

ScopedHistogramTimer::~ScopedHistogramTimer()
{
    if (!armed_)
        return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    metricRecord(handle_, static_cast<std::uint64_t>(ns));
}

void
setMetricsEnabled(bool enabled)
{
    registry().setEnabled(enabled);
}

bool
metricsEnabled()
{
    return registry().enabledFast();
}

void
resetMetrics()
{
    registry().reset();
}

// ---------------------------------------------------------------------
// Snapshots.

std::uint64_t
HistogramSummary::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Rank of the q-th observation (1-based, nearest-rank).
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (const auto &[bucket, n] : buckets) {
        seen += n;
        if (seen >= rank) {
            std::uint64_t lo = histogramBucketLow(bucket);
            std::uint64_t hi = histogramBucketHigh(bucket);
            std::uint64_t mid = lo + (hi - lo) / 2;
            // The true order statistic is inside [min, max] even when
            // its bucket straddles them.
            return std::clamp(mid, min, max);
        }
    }
    return max;
}

const MetricValue *
MetricsSnapshot::find(std::string_view name) const &
{
    for (const MetricValue &value : metrics)
        if (value.name == name)
            return &value;
    return nullptr;
}

MetricsSnapshot
snapshotMetrics()
{
    return registry().snapshot();
}

void
exportOpenMetrics(const MetricsSnapshot &snapshot, std::ostream &out)
{
    for (const MetricValue &m : snapshot.metrics) {
        std::string name = openMetricsName(m.name);
        switch (m.kind) {
          case MetricKind::Counter:
            out << "# TYPE " << name << " counter\n";
            out << name << "_total " << m.counter << "\n";
            break;
          case MetricKind::Gauge:
            out << "# TYPE " << name << " gauge\n";
            out << name << " " << m.gauge << "\n";
            break;
          case MetricKind::Histogram: {
            out << "# TYPE " << name << " histogram\n";
            if (!m.unit.empty())
                out << "# UNIT " << name << " " << m.unit << "\n";
            std::uint64_t cumulative = 0;
            for (const auto &[bucket, n] : m.histogram.buckets) {
                cumulative += n;
                out << name << "_bucket{le=\""
                    << histogramBucketHigh(bucket) << "\"} "
                    << cumulative << "\n";
            }
            out << name << "_bucket{le=\"+Inf\"} " << m.histogram.count
                << "\n";
            out << name << "_sum " << m.histogram.sum << "\n";
            out << name << "_count " << m.histogram.count << "\n";
            break;
          }
        }
    }
    out << "# EOF\n";
}

std::string
metricsJson(const MetricsSnapshot &snapshot)
{
    std::string counters = "{";
    std::string gauges = "{";
    std::string histograms = "{";
    bool firstC = true, firstG = true, firstH = true;
    for (const MetricValue &m : snapshot.metrics) {
        switch (m.kind) {
          case MetricKind::Counter:
            if (!firstC)
                counters += ',';
            firstC = false;
            counters += "\"" + jsonEscape(m.name) +
                        "\":" + std::to_string(m.counter);
            break;
          case MetricKind::Gauge:
            if (!firstG)
                gauges += ',';
            firstG = false;
            gauges += "\"" + jsonEscape(m.name) +
                      "\":" + std::to_string(m.gauge);
            break;
          case MetricKind::Histogram: {
            if (m.histogram.count == 0)
                break;
            if (!firstH)
                histograms += ',';
            firstH = false;
            const HistogramSummary &h = m.histogram;
            histograms += "\"" + jsonEscape(m.name) + "\":{";
            histograms += "\"count\":" + std::to_string(h.count);
            histograms += ",\"sum\":" + std::to_string(h.sum);
            histograms += ",\"min\":" + std::to_string(h.min);
            histograms += ",\"max\":" + std::to_string(h.max);
            histograms += ",\"p50\":" + std::to_string(h.quantile(0.50));
            histograms += ",\"p90\":" + std::to_string(h.quantile(0.90));
            histograms += ",\"p95\":" + std::to_string(h.quantile(0.95));
            histograms += ",\"p99\":" + std::to_string(h.quantile(0.99));
            histograms += "}";
            break;
          }
        }
    }
    return "{\"counters\":" + counters + "},\"gauges\":" + gauges +
           "},\"histograms\":" + histograms + "}}";
}

std::string
metricsToString(const MetricsSnapshot &snapshot)
{
    std::string out = "== metrics ==\n";
    char line[256];
    bool headerC = false, headerG = false, headerH = false;
    for (const MetricValue &m : snapshot.metrics) {
        switch (m.kind) {
          case MetricKind::Counter:
            if (m.counter == 0)
                break;
            if (!headerC) {
                out += "-- counters --\n";
                headerC = true;
            }
            std::snprintf(line, sizeof line, "  %-32s %14" PRIu64 "\n",
                          m.name.c_str(), m.counter);
            out += line;
            break;
          case MetricKind::Gauge:
            if (!headerG) {
                out += "-- gauges --\n";
                headerG = true;
            }
            std::snprintf(line, sizeof line, "  %-32s %14" PRId64 "\n",
                          m.name.c_str(), m.gauge);
            out += line;
            break;
          case MetricKind::Histogram: {
            if (m.histogram.count == 0)
                break;
            if (!headerH) {
                out += "-- histograms (count / p50 / p95 / p99 / "
                       "max) --\n";
                headerH = true;
            }
            const HistogramSummary &h = m.histogram;
            std::snprintf(line, sizeof line,
                          "  %-32s x%-8" PRIu64 " %12" PRIu64
                          " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                          "\n",
                          m.name.c_str(), h.count, h.quantile(0.50),
                          h.quantile(0.95), h.quantile(0.99), h.max);
            out += line;
            break;
          }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Periodic snapshot writer.

struct MetricsSnapshotWriter::Impl
{
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::thread worker;
};

MetricsSnapshotWriter::MetricsSnapshotWriter(std::string path,
                                             double intervalSeconds)
    : path_(std::move(path)),
      intervalSeconds_(intervalSeconds),
      impl_(new Impl)
{
    if (intervalSeconds_ > 0)
        impl_->worker = std::thread([this] { run(); });
}

MetricsSnapshotWriter::~MetricsSnapshotWriter()
{
    stop();
    delete impl_;
}

void
MetricsSnapshotWriter::run()
{
    auto interval = std::chrono::duration<double>(intervalSeconds_);
    std::unique_lock<std::mutex> lock(impl_->mutex);
    while (!impl_->stopping) {
        if (impl_->cv.wait_for(lock, interval,
                               [&] { return impl_->stopping; }))
            break;
        lock.unlock();
        writeNow();
        lock.lock();
    }
}

bool
MetricsSnapshotWriter::writeNow()
{
    // Tempfile + rename: scrapers reading `path_` never see a torn
    // page. The tempname is pid-free — only this writer owns it.
    std::string temp = path_ + ".tmp";
    {
        std::ofstream out(temp);
        if (!out) {
            std::fprintf(stderr,
                         "[obs] cannot open metrics file: %s\n",
                         temp.c_str());
            return false;
        }
        exportOpenMetrics(snapshotMetrics(), out);
        if (!out.good())
            return false;
    }
    if (std::rename(temp.c_str(), path_.c_str()) != 0) {
        std::fprintf(stderr, "[obs] cannot publish metrics file: %s\n",
                     path_.c_str());
        return false;
    }
    return true;
}

void
MetricsSnapshotWriter::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    if (impl_->worker.joinable())
        impl_->worker.join();
    writeNow();
}

} // namespace isaria::obs
