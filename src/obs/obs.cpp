#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <unordered_map>

#include "obs/export.h"
#include "obs/metrics.h"

namespace isaria::obs
{

// ---------------------------------------------------------------------
// Name interning. Process-wide and append-only: ids stay valid across
// sessions, so instrumentation sites can cache them per run.

namespace
{

struct NameTable
{
    std::mutex mutex;
    std::unordered_map<std::string, std::uint32_t> ids;
    /** Deque: nameOf() hands out references that must stay valid. */
    std::deque<std::string> names;
};

NameTable &
nameTable()
{
    static NameTable table;
    return table;
}

} // namespace

std::uint32_t
internName(const std::string &name)
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    auto it = table.ids.find(name);
    if (it != table.ids.end())
        return it->second;
    auto id = static_cast<std::uint32_t>(table.names.size());
    table.names.push_back(name);
    table.ids.emplace(table.names.back(), id);
    return id;
}

const std::string &
nameOf(std::uint32_t id)
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    static const std::string unknown = "?";
    return id < table.names.size() ? table.names[id] : unknown;
}

// ---------------------------------------------------------------------
// TraceSession.

std::atomic<TraceSession *> TraceSession::activeSession_{nullptr};

namespace
{

/** Session identities, so thread-local ring caches never go stale. */
std::atomic<std::uint64_t> nextSessionId{1};

struct ThreadRingRef
{
    std::uint64_t sessionId = 0;
    EventRing *ring = nullptr;
};

thread_local ThreadRingRef tlRing;

} // namespace

TraceSession::TraceSession(std::size_t ringCapacity)
    : epoch_(std::chrono::steady_clock::now()),
      ringCapacity_(ringCapacity),
      sessionId_(nextSessionId.fetch_add(1, std::memory_order_relaxed))
{}

TraceSession::~TraceSession()
{
    deactivate();
}

void
TraceSession::activate()
{
    activeSession_.store(this, std::memory_order_release);
}

void
TraceSession::deactivate()
{
    TraceSession *expected = this;
    activeSession_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel);
}

EventRing &
TraceSession::ring()
{
    if (tlRing.sessionId == sessionId_)
        return *tlRing.ring;
    return registerThread();
}

EventRing &
TraceSession::registerThread()
{
    std::lock_guard<std::mutex> lock(registerMutex_);
    rings_.push_back(std::make_unique<EventRing>(ringCapacity_));
    tlRing = {sessionId_, rings_.back().get()};
    return *tlRing.ring;
}

std::vector<TaggedEvent>
TraceSession::drain() const
{
    std::vector<TaggedEvent> out;
    {
        std::lock_guard<std::mutex> lock(registerMutex_);
        std::vector<Event> events;
        for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
            events.clear();
            rings_[tid]->snapshot(events);
            for (const Event &event : events)
                out.push_back({event, static_cast<std::uint32_t>(tid)});
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TaggedEvent &a, const TaggedEvent &b) {
                         return a.event.startNs < b.event.startNs;
                     });
    return out;
}

std::uint64_t
TraceSession::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(registerMutex_);
    std::uint64_t dropped = 0;
    for (const auto &ring : rings_)
        dropped += ring->dropped();
    return dropped;
}

std::size_t
TraceSession::threadCount() const
{
    std::lock_guard<std::mutex> lock(registerMutex_);
    return rings_.size();
}

// ---------------------------------------------------------------------
// The opt-in surface.

namespace
{

TraceFormat
parseFormat(const std::string &text)
{
    if (text == "chrome" || text == "chrometrace" || text == "perfetto")
        return TraceFormat::Chrome;
    return TraceFormat::Jsonl;
}

} // namespace

ObsOptions
ObsOptions::fromEnv()
{
    ObsOptions options;
    if (const char *path = std::getenv("ISARIA_TRACE");
        path && *path) {
        options.tracePath = path;
    }
    if (const char *format = std::getenv("ISARIA_TRACE_FORMAT");
        format && *format) {
        options.format = parseFormat(format);
    }
    if (const char *stats = std::getenv("ISARIA_STATS");
        stats && *stats && std::strcmp(stats, "0") != 0) {
        options.stats = true;
    }
    if (const char *path = std::getenv("ISARIA_METRICS_FILE");
        path && *path) {
        options.metricsPath = path;
    }
    if (const char *interval = std::getenv("ISARIA_METRICS_INTERVAL");
        interval && *interval) {
        options.metricsIntervalSeconds = std::atof(interval);
    }
    if (const char *path = std::getenv("ISARIA_REPORT");
        path && *path) {
        options.reportPath = path;
    }
    return options;
}

ObsOptions
ObsOptions::parse(int &argc, char **argv)
{
    ObsOptions options = fromEnv();
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            options.tracePath = arg.substr(8);
        } else if (arg == "--trace" && i + 1 < argc) {
            options.tracePath = argv[++i];
        } else if (arg.rfind("--trace-format=", 0) == 0) {
            options.format = parseFormat(arg.substr(15));
        } else if (arg == "--trace-format" && i + 1 < argc) {
            options.format = parseFormat(argv[++i]);
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            options.metricsPath = arg.substr(10);
        } else if (arg == "--metrics" && i + 1 < argc) {
            options.metricsPath = argv[++i];
        } else if (arg.rfind("--metrics-interval=", 0) == 0) {
            options.metricsIntervalSeconds =
                std::atof(arg.c_str() + 19);
        } else if (arg == "--metrics-interval" && i + 1 < argc) {
            options.metricsIntervalSeconds = std::atof(argv[++i]);
        } else if (arg.rfind("--report=", 0) == 0) {
            options.reportPath = arg.substr(9);
        } else if (arg == "--report" && i + 1 < argc) {
            options.reportPath = argv[++i];
        } else {
            argv[kept++] = argv[i];
        }
    }
    // Null out only the vacated tail: argv may be exactly argc entries
    // (no trailing null slot), so never touch argv[argc] itself.
    for (int i = kept; i < argc; ++i)
        argv[i] = nullptr;
    argc = kept;
    return options;
}

ScopedTrace::ScopedTrace(ObsOptions options) : options_(std::move(options))
{
    // Bare --stats no longer activates a session: its report comes
    // from the bounded always-on metrics registry, so long runs don't
    // retain (and wrap) every event in memory. Only an actual trace
    // file — or a harness that wants the aggregated span block —
    // needs event retention.
    if (options_.wantsSession())
        session_.activate();
    if (!options_.metricsPath.empty()) {
        metricsWriter_ = std::make_unique<MetricsSnapshotWriter>(
            options_.metricsPath, options_.metricsIntervalSeconds);
    }
}

ScopedTrace::~ScopedTrace()
{
    finish();
}

bool
ScopedTrace::finish()
{
    if (finished_)
        return true;
    finished_ = true;
    session_.deactivate();

    bool ok = true;
    if (metricsWriter_) {
        metricsWriter_->stop(); // joins + writes the final page
        std::fprintf(stderr, "[obs] metrics written: %s\n",
                     metricsWriter_->path().c_str());
    }
    if (!options_.tracePath.empty()) {
        std::ofstream out(options_.tracePath);
        if (!out) {
            std::fprintf(stderr, "[obs] cannot open trace file: %s\n",
                         options_.tracePath.c_str());
            ok = false;
        } else {
            if (options_.format == TraceFormat::Chrome)
                exportChromeTrace(session_, out);
            else
                exportJsonl(session_, out);
            std::fprintf(stderr, "[obs] trace written: %s (%s)\n",
                         options_.tracePath.c_str(),
                         options_.format == TraceFormat::Chrome
                             ? "chrome"
                             : "jsonl");
        }
    }
    if (options_.stats) {
        // Registry metrics always; trace-derived span tables only
        // when a session actually retained events.
        std::fputs(metricsToString(snapshotMetrics()).c_str(), stderr);
        if (options_.wantsSession()) {
            StatsReport report = aggregateStats(session_);
            std::fputs(report.toString().c_str(), stderr);
        }
    }
    return ok;
}

} // namespace isaria::obs
