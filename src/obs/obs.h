#ifndef ISARIA_OBS_OBS_H
#define ISARIA_OBS_OBS_H

/**
 * @file
 * Pipeline-wide tracing and metrics: sessions, scoped spans, counters.
 *
 * Every stage of the pipeline — rule synthesis, phase assignment, the
 * Fig. 3 compile loop, equality saturation (including its parallel
 * search shards), lowering, and the cycle simulator — emits spans and
 * counters through this layer. The compile loop and synthesis are
 * budget-driven (node caps, step budgets, per-EqSat timeouts); this
 * substrate is the single place where those budgets become visible
 * as per-phase wall time and counter curves instead of ad-hoc
 * printouts.
 *
 * Design constraints, in priority order:
 *
 * 1. **Disabled tracing costs one branch per event site.** There is a
 *    single global "active session" pointer; every emission helper
 *    loads it (relaxed) and returns when null. No name interning, no
 *    clock read, no allocation happens on the disabled path
 *    (`bench/micro_egraph`'s BM_ObsSpanDisabled pins this).
 * 2. **Recording never perturbs results.** Instrumentation only
 *    observes; traced and untraced runs produce byte-identical
 *    extractions (tests/obs_test.cpp pins this at 1 and 4 threads).
 * 3. **Thread-safe and contention-free.** Each emitting thread owns a
 *    single-producer event ring (obs/ring_buffer.h); the thread-pool
 *    workers of the parallel e-matching engine record without any
 *    shared mutable state on the hot path.
 *
 * Usage:
 *
 *   TraceSession session;
 *   session.activate();
 *   { Span s("eqsat/iter", iter); ... }     // RAII span
 *   counter("egraph/nodes", eg.numNodes()); // sampled counter
 *   session.deactivate();
 *   exportChromeTrace(session, out);        // obs/export.h
 *
 * Binaries opt in through one surface: `--trace=<file>`,
 * `--trace-format={jsonl,chrome}`, `--stats`, or the environment
 * variables ISARIA_TRACE / ISARIA_TRACE_FORMAT / ISARIA_STATS
 * (ObsOptions + ScopedTrace below).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/ring_buffer.h"

namespace isaria::obs
{

/**
 * Interns @p name into the process-wide trace-name table and returns
 * its id. Interning takes a lock; call it once per site or per run
 * (Span and counter() intern lazily, only when a session is active).
 */
std::uint32_t internName(const std::string &name);

/** The string for an interned id (stable for the process lifetime). */
const std::string &nameOf(std::uint32_t id);

/** An event with its emitting thread attached (drain output). */
struct TaggedEvent
{
    Event event;
    /** Session-local thread index (0 = first registered thread). */
    std::uint32_t tid = 0;
};

/**
 * One recording session: a clock epoch plus per-thread event rings.
 *
 * At most one session is active in the process at a time; emission
 * helpers find it through the global active pointer. Sessions may be
 * created, activated, and drained repeatedly; thread registrations
 * are keyed by a session epoch, so a thread outliving one session
 * re-registers cleanly with the next.
 */
class TraceSession
{
  public:
    /** @p ringCapacity events are retained per emitting thread. */
    explicit TraceSession(std::size_t ringCapacity = 1u << 16);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Installs this session as the process-wide recording target. */
    void activate();
    /** Uninstalls (idempotent; automatic on destruction). */
    void deactivate();

    /** The active session, or nullptr — the one-branch fast path. */
    static TraceSession *
    active()
    {
        return activeSession_.load(std::memory_order_acquire);
    }

    /** Nanoseconds since this session's construction. */
    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Records a closed span (called by Span's destructor). */
    void
    recordSpan(std::uint32_t name, std::uint64_t startNs,
               std::uint64_t durNs, std::int64_t value)
    {
        ring().push({name, EventKind::Span, startNs, durNs, value});
    }

    /** Records a counter sample (value observed now). */
    void
    recordCounter(std::uint32_t name, std::int64_t value)
    {
        ring().push({name, EventKind::Counter, nowNs(), 0, value});
    }

    /** Records an instant marker. */
    void
    recordInstant(std::uint32_t name, std::int64_t value = 0)
    {
        ring().push({name, EventKind::Instant, nowNs(), 0, value});
    }

    /**
     * All retained events, tagged with their thread index and sorted
     * by start time. Call only when no emitting thread is mid-record
     * (between parallel phases / after deactivate) — see
     * EventRing::snapshot.
     */
    std::vector<TaggedEvent> drain() const;

    /** Events lost to ring wraparound, summed over threads. */
    std::uint64_t droppedEvents() const;

    /** Threads that have recorded into this session. */
    std::size_t threadCount() const;

  private:
    /** This thread's ring, registering it on first use. */
    EventRing &ring();
    EventRing &registerThread();

    static std::atomic<TraceSession *> activeSession_;

    std::chrono::steady_clock::time_point epoch_;
    std::size_t ringCapacity_;
    /** Distinguishes sessions for thread-local re-registration. */
    std::uint64_t sessionId_;

    mutable std::mutex registerMutex_;
    std::vector<std::unique_ptr<EventRing>> rings_;
};

/**
 * RAII scoped span. Costs one branch when tracing is disabled; when
 * enabled, interns its name lazily and records one Span event at
 * scope exit.
 */
class Span
{
  public:
    explicit Span(const char *name, std::int64_t value = 0)
        : session_(TraceSession::active())
    {
        if (!session_)
            return;
        name_ = internName(name);
        value_ = value;
        startNs_ = session_->nowNs();
    }

    /** Span with a pre-interned name (for per-rule dynamic names). */
    Span(std::uint32_t nameId, TraceSession *session,
         std::int64_t value = 0)
        : session_(session)
    {
        if (!session_)
            return;
        name_ = nameId;
        value_ = value;
        startNs_ = session_->nowNs();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Updates the span's argument before it closes. */
    void
    setValue(std::int64_t value)
    {
        value_ = value;
    }

    /** Closes the span now instead of at scope exit (idempotent). */
    void
    close()
    {
        if (session_) {
            session_->recordSpan(name_, startNs_,
                                 session_->nowNs() - startNs_, value_);
            session_ = nullptr;
        }
    }

    ~Span() { close(); }

  private:
    TraceSession *session_;
    std::uint32_t name_ = 0;
    std::uint64_t startNs_ = 0;
    std::int64_t value_ = 0;
};

/** Records a counter sample on the active session, if any. */
inline void
counter(const char *name, std::int64_t value)
{
    if (TraceSession *session = TraceSession::active())
        session->recordCounter(internName(name), value);
}

/** Counter with a pre-interned name (hot loops, dynamic names). */
inline void
counterId(std::uint32_t nameId, std::int64_t value)
{
    if (TraceSession *session = TraceSession::active())
        session->recordCounter(nameId, value);
}

/** Records an instant marker on the active session, if any. */
inline void
instant(const char *name, std::int64_t value = 0)
{
    if (TraceSession *session = TraceSession::active())
        session->recordInstant(internName(name), value);
}

/** True when a session is recording (for gating setup-only work). */
inline bool
enabled()
{
    return TraceSession::active() != nullptr;
}

// ---------------------------------------------------------------------
// The opt-in surface shared by every binary.

enum class TraceFormat
{
    Jsonl,
    Chrome,
};

/**
 * Parsed --trace/--trace-format/--stats/--metrics/--report +
 * environment options.
 */
struct ObsOptions
{
    /** Trace output path; empty = no trace file. */
    std::string tracePath;
    TraceFormat format = TraceFormat::Jsonl;
    /**
     * Print the stats report to stderr at teardown. The report always
     * carries the always-on metrics registry (counters + histogram
     * quantiles — bounded memory, works on arbitrarily long runs);
     * trace-derived span tables are included only when a session was
     * actually recording (a trace file or alwaysRecord), since those
     * require retaining every event in the rings.
     */
    bool stats = false;
    /**
     * Record trace events even when no trace file was requested.
     * Used by the bench harnesses so their JSON sidecars always
     * carry an aggregated "obs" block.
     */
    bool alwaysRecord = false;
    /** OpenMetrics text-page path (--metrics=FILE / ISARIA_METRICS_FILE);
     *  written at teardown, and periodically when an interval is set.
     *  Empty = no page. */
    std::string metricsPath;
    /** Seconds between periodic OpenMetrics rewrites
     *  (--metrics-interval / ISARIA_METRICS_INTERVAL; 0 = final
     *  write only). */
    double metricsIntervalSeconds = 0;
    /**
     * CompileReport output path (--report=FILE / ISARIA_REPORT).
     * ObsOptions only carries it — the binary owning the
     * CompileStats writes the artifact (see compiler/report.h).
     */
    std::string reportPath;

    /** ISARIA_TRACE / ISARIA_TRACE_FORMAT / ISARIA_STATS /
     *  ISARIA_METRICS_FILE / ISARIA_METRICS_INTERVAL / ISARIA_REPORT. */
    static ObsOptions fromEnv();

    /**
     * Starts from fromEnv(), consumes the recognized flags from
     * argv (compacting it and updating argc), and returns the
     * result. Unrecognized arguments are left for the caller.
     */
    static ObsOptions parse(int &argc, char **argv);

    /** True when any recording (trace file or stats) is requested. */
    bool
    enabled() const
    {
        return !tracePath.empty() || stats;
    }

    /** True when event *retention* is needed: a trace file (or
     *  alwaysRecord) — but not bare --stats, which aggregates from
     *  the bounded metrics registry instead. */
    bool
    wantsSession() const
    {
        return !tracePath.empty() || alwaysRecord;
    }
};

/**
 * The one-liner for main(): owns a TraceSession, activates it when
 * @p options request event retention, starts the periodic OpenMetrics
 * writer when a metrics page was requested, and on destruction
 * deactivates, writes the trace file and metrics page, and prints the
 * stats report.
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(ObsOptions options);
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    /** The session (recording only if options enabled it). */
    TraceSession &session() { return session_; }
    const ObsOptions &options() const { return options_; }

    /**
     * Writes the trace file / metrics page and prints stats now
     * (idempotent; otherwise runs at destruction). Returns false if
     * an artifact could not be written.
     */
    bool finish();

  private:
    ObsOptions options_;
    TraceSession session_;
    /** Periodic OpenMetrics republisher (see obs/metrics.h); null
     *  unless options_.metricsPath is set. */
    std::unique_ptr<class MetricsSnapshotWriter> metricsWriter_;
    bool finished_ = false;
};

} // namespace isaria::obs

#endif // ISARIA_OBS_OBS_H
