#ifndef ISARIA_OBS_RING_BUFFER_H
#define ISARIA_OBS_RING_BUFFER_H

/**
 * @file
 * Single-producer event ring buffer for the tracing substrate.
 *
 * Each thread that emits trace events owns exactly one ring: the
 * owning thread writes, and the exporter reads after the parallel
 * phase has joined (parallelFor's completion is a happens-before
 * edge, and the head index is published with release/acquire), so
 * recording is wait-free and contention-free — the same discipline as
 * the work-stealing pool's packed atomic ranges in
 * src/support/thread_pool.h.
 *
 * A full ring overwrites its oldest events rather than blocking the
 * producer: tracing must never stall the traced computation. The
 * overwritten count is reported so exporters can flag truncation.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace isaria::obs
{

/** What one recorded event is. */
enum class EventKind : std::uint8_t
{
    /** A closed scoped region: [startNs, startNs + durNs). */
    Span,
    /** A named sample: value observed at startNs. */
    Counter,
    /** A point-in-time marker. */
    Instant,
};

/** One trace event; the thread id lives on the owning ring. */
struct Event
{
    /** Interned name id (see obs.h). */
    std::uint32_t name = 0;
    EventKind kind = EventKind::Instant;
    /** Nanoseconds since session start. */
    std::uint64_t startNs = 0;
    /** Span duration in nanoseconds (0 for counters/instants). */
    std::uint64_t durNs = 0;
    /** Counter sample or span argument (rule index, iteration, ...). */
    std::int64_t value = 0;
};

class EventRing
{
  public:
    /** Capacity is rounded up to a power of two (min 8). */
    explicit EventRing(std::size_t capacity)
    {
        std::size_t cap = 8;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
    }

    EventRing(const EventRing &) = delete;
    EventRing &operator=(const EventRing &) = delete;

    std::size_t capacity() const { return slots_.size(); }

    /** Records @p event; single producer (the owning thread) only. */
    void
    push(const Event &event)
    {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        slots_[head & (slots_.size() - 1)] = event;
        head_.store(head + 1, std::memory_order_release);
    }

    /** Total events ever pushed (not capped at capacity). */
    std::uint64_t
    totalPushed() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events lost to wraparound so far. */
    std::uint64_t
    dropped() const
    {
        std::uint64_t total = totalPushed();
        return total > slots_.size() ? total - slots_.size() : 0;
    }

    /**
     * Appends the retained events, oldest first, to @p out. Safe to
     * call from another thread once the producer has quiesced (e.g.
     * after a thread-pool join); concurrent pushes may tear the
     * oldest retained slots, so exporters drain only at phase
     * boundaries.
     */
    void
    snapshot(std::vector<Event> &out) const
    {
        std::uint64_t head = totalPushed();
        std::uint64_t begin =
            head > slots_.size() ? head - slots_.size() : 0;
        out.reserve(out.size() + static_cast<std::size_t>(head - begin));
        for (std::uint64_t i = begin; i < head; ++i)
            out.push_back(slots_[i & (slots_.size() - 1)]);
    }

  private:
    std::vector<Event> slots_;
    std::atomic<std::uint64_t> head_{0};
};

} // namespace isaria::obs

#endif // ISARIA_OBS_RING_BUFFER_H
