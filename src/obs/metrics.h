#ifndef ISARIA_OBS_METRICS_H
#define ISARIA_OBS_METRICS_H

/**
 * @file
 * Always-on process metrics: counters, gauges, latency histograms.
 *
 * The tracing substrate (obs/obs.h) is session-scoped — spans vanish
 * when no TraceSession is active, and aggregating them requires
 * retaining every event in memory. This tier is the complement a
 * long-running compile service needs: a process-global
 * MetricsRegistry of monotonic counters, last-value/max gauges, and
 * log-bucketed latency histograms that is *always recording*, holds a
 * fixed, bounded footprint regardless of run length, and can be
 * snapshotted at any point into an OpenMetrics text page or a JSON
 * block.
 *
 * Design constraints, in priority order:
 *
 * 1. **The hot path is one branch plus a handful of relaxed atomic
 *    ops.** Each recording thread owns a private shard; a counter add
 *    is one relaxed load+store on a slot only that thread writes, a
 *    histogram record is a bit-scan plus three such bumps
 *    (bench/micro_egraph's BM_HistogramRecord pins ≤ ~10 ns/site and
 *    BM_MetricsDisabled pins the kill-switch branch). No lock, no
 *    allocation, no clock read happens on the steady-state path; a
 *    thread's first touch of the registry registers its shard under a
 *    mutex, once.
 * 2. **Bounded memory.** Histograms use a fixed HdrHistogram-style
 *    log-linear bucket layout (histogramBucket below): values < 32
 *    are exact, larger values land in one of 16 sub-buckets per
 *    power of two, for kHistogramBuckets total — the whole dynamic
 *    range of uint64 in ~8 KiB per histogram per thread, with
 *    quantile estimates within 1/32 relative error
 *    (tests/metrics_test.cpp pins the bound adversarially).
 * 3. **Reads never stop writers.** snapshotMetrics() merges the
 *    per-thread shards under the registration mutex while recording
 *    threads keep writing; each shard slot is single-writer, so
 *    relaxed reads observe a consistent-enough monotonic value (a
 *    snapshot is a point-in-time *approximation*, exact once the
 *    writers are quiescent — which is when exports happen).
 * 4. **Recording never perturbs results.** Like tracing, metrics only
 *    observe: metrics-on and metrics-off runs produce byte-identical
 *    extractions (tests/metrics_test.cpp pins this at 1 and 4
 *    threads).
 *
 * Usage at an instrumentation site (handles are cheap POD ids; the
 * function-local static makes registration once-per-process):
 *
 *   static const obs::HistogramHandle h =
 *       obs::metricHistogram("compile/wall_ns");
 *   obs::metricRecord(h, elapsedNs);
 *
 * Export surfaces:
 *
 *   MetricsSnapshot snap = obs::snapshotMetrics();
 *   obs::exportOpenMetrics(snap, out);     // Prometheus text page
 *   obs::metricsJson(snap);                // bench/report JSON block
 *   obs::MetricsSnapshotWriter w(path, 5); // periodic page rewrites
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace isaria::obs
{

// ---------------------------------------------------------------------
// Histogram bucket layout (HdrHistogram-style log-linear).

/** Sub-buckets per octave in the logarithmic region (16 → the bucket
 *  width is 1/16 of the bucket's lower bound, so a midpoint estimate
 *  is within 1/32 of the true value). */
inline constexpr std::uint32_t kHistogramSubBuckets = 16;

/** Values below this are counted exactly, one bucket per value. */
inline constexpr std::uint64_t kHistogramExactLimit = 32;

/** First octave of the logarithmic region: values in [32, 64). */
inline constexpr std::uint32_t kHistogramFirstOctave = 5;

/** Total fixed buckets: 32 exact + 16 per octave for octaves 5..63.
 *  Covers the full uint64 range in ~8 KiB of uint64 counts. */
inline constexpr std::uint32_t kHistogramBuckets =
    static_cast<std::uint32_t>(kHistogramExactLimit) +
    (64 - kHistogramFirstOctave) * kHistogramSubBuckets;

/** The bucket index recording @p value (branch-free after one test;
 *  the hot-path cost BM_HistogramRecord pins). */
inline std::uint32_t
histogramBucket(std::uint64_t value)
{
    if (value < kHistogramExactLimit)
        return static_cast<std::uint32_t>(value);
    // Octave = index of the most-significant set bit (≥ 5 here);
    // the next 4 bits below it select one of 16 sub-buckets.
    auto octave = static_cast<std::uint32_t>(
        63 - __builtin_clzll(value));
    auto sub = static_cast<std::uint32_t>(
        (value >> (octave - 4)) - kHistogramSubBuckets);
    return kHistogramExactLimit +
           (octave - kHistogramFirstOctave) * kHistogramSubBuckets +
           sub;
}

/** Smallest value mapping to @p bucket. */
inline std::uint64_t
histogramBucketLow(std::uint32_t bucket)
{
    if (bucket < kHistogramExactLimit)
        return bucket;
    std::uint32_t r = bucket - kHistogramExactLimit;
    std::uint32_t octave = kHistogramFirstOctave + r / kHistogramSubBuckets;
    std::uint64_t sub = r % kHistogramSubBuckets;
    return (kHistogramSubBuckets + sub) << (octave - 4);
}

/** Largest value mapping to @p bucket (inclusive). */
inline std::uint64_t
histogramBucketHigh(std::uint32_t bucket)
{
    if (bucket + 1 >= kHistogramBuckets)
        return ~std::uint64_t{0};
    return histogramBucketLow(bucket + 1) - 1;
}

// ---------------------------------------------------------------------
// Handles. POD ids into the global registry; register once per site
// via a function-local static, then record through them lock-free.

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** Human-readable kind name ("counter" / "gauge" / "histogram"). */
const char *metricKindName(MetricKind kind);

struct CounterHandle
{
    std::uint32_t slot = 0;
};

struct GaugeHandle
{
    std::uint32_t slot = 0;
};

struct HistogramHandle
{
    std::uint32_t slot = 0;
};

/**
 * Registers (or finds) the monotonic counter @p name and returns its
 * handle. Registration takes a lock; do it once per site. Names use
 * the same slash-path convention as trace spans ("compile/degraded").
 */
CounterHandle metricCounter(const char *name);

/** Registers (or finds) the gauge @p name (last-value or max). */
GaugeHandle metricGauge(const char *name);

/** Registers (or finds) the latency histogram @p name. @p unit is a
 *  display hint stamped into exports ("ns", "bytes"; may be empty). */
HistogramHandle metricHistogram(const char *name, const char *unit = "ns");

/** Adds @p delta to a counter (no-op when metrics are disabled). */
void metricAdd(CounterHandle handle, std::uint64_t delta = 1);

/** Sets a gauge to @p value (last-writer-wins across threads). */
void metricSet(GaugeHandle handle, std::int64_t value);

/** Raises a gauge to @p value if larger (high-water marks). */
void metricMax(GaugeHandle handle, std::int64_t value);

/** Records one @p value observation into a histogram. */
void metricRecord(HistogramHandle handle, std::uint64_t value);

/**
 * RAII latency sample: records the scope's wall time (ns) into a
 * histogram at scope exit. Skips the clock read entirely when the
 * kill switch is off, so a disabled scope costs one branch.
 */
class ScopedHistogramTimer
{
  public:
    explicit ScopedHistogramTimer(HistogramHandle handle);
    ~ScopedHistogramTimer();

    ScopedHistogramTimer(const ScopedHistogramTimer &) = delete;
    ScopedHistogramTimer &operator=(const ScopedHistogramTimer &) = delete;

  private:
    HistogramHandle handle_;
    bool armed_ = false;
    std::chrono::steady_clock::time_point start_;
};

/**
 * The process-wide kill switch (also ISARIA_METRICS=0 at startup).
 * Metrics default to ON — this exists for overhead A/B measurement
 * and the metrics-on ≡ metrics-off determinism tests, not as the
 * normal operating mode.
 */
void setMetricsEnabled(bool enabled);

/** Current state of the kill switch. */
bool metricsEnabled();

/**
 * Zeroes every counter, gauge, and histogram while keeping all
 * registrations (handles stay valid). For tests and per-compile
 * deltas; takes the registration lock.
 */
void resetMetrics();

// ---------------------------------------------------------------------
// Snapshots and exporters.

/** Merged view of one histogram across all thread shards. */
struct HistogramSummary
{
    std::uint64_t count = 0;
    /** Sum of recorded values (exact, not bucket-estimated). */
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** Non-empty buckets only, ascending (bucket index, count). */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    /**
     * The estimated value at quantile @p q in [0, 1]: the midpoint of
     * the bucket holding the q-th observation, clamped to [min, max].
     * Within 1/32 relative error of the true order statistic.
     */
    std::uint64_t quantile(double q) const;
};

/** One metric's merged value at snapshot time. */
struct MetricValue
{
    std::string name;
    /** Display-unit hint for histograms ("" otherwise). */
    std::string unit;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    HistogramSummary histogram;
};

/** A point-in-time merge of every registered metric. */
struct MetricsSnapshot
{
    /** Sorted by name (deterministic export order). */
    std::vector<MetricValue> metrics;

    /** The metric named @p name, or nullptr. Deleted on rvalues: the
     *  pointer would dangle once the temporary snapshot dies — bind
     *  the snapshot to a local first. */
    const MetricValue *find(std::string_view name) const &;
    const MetricValue *find(std::string_view name) const && = delete;
};

/** Merges all thread shards of the global registry. */
MetricsSnapshot snapshotMetrics();

/**
 * Writes @p snapshot as an OpenMetrics / Prometheus text page:
 * counters as `isaria_<name>_total`, gauges as `isaria_<name>`,
 * histograms as cumulative `_bucket{le="..."}` series plus `_sum` /
 * `_count`, terminated by `# EOF`. Metric names are sanitized
 * ('/', '-' → '_').
 */
void exportOpenMetrics(const MetricsSnapshot &snapshot, std::ostream &out);

/**
 * @p snapshot as a JSON object: {"counters":{name:value},
 * "gauges":{name:value}, "histograms":{name:{count,sum,min,max,
 * p50,p90,p95,p99}}} — the "metrics" block of bench sidecars and
 * CompileReports. Histograms with zero observations are omitted.
 */
std::string metricsJson(const MetricsSnapshot &snapshot);

/** Human-readable table (what `--stats` prints for the registry). */
std::string metricsToString(const MetricsSnapshot &snapshot);

/**
 * Periodically rewrites an OpenMetrics page for long-running
 * processes: every @p intervalSeconds the global registry is
 * snapshotted and atomically republished at @p path (tempfile +
 * rename, so scrapers never see a torn page). @p intervalSeconds <= 0
 * disables the background thread; stop() — or destruction — always
 * writes one final page.
 */
class MetricsSnapshotWriter
{
  public:
    MetricsSnapshotWriter(std::string path, double intervalSeconds);
    ~MetricsSnapshotWriter();

    MetricsSnapshotWriter(const MetricsSnapshotWriter &) = delete;
    MetricsSnapshotWriter &operator=(const MetricsSnapshotWriter &) = delete;

    /** Snapshots and republishes the page now. False on I/O failure. */
    bool writeNow();

    /** Joins the background thread after a final write (idempotent). */
    void stop();

    const std::string &path() const { return path_; }

  private:
    void run();

    std::string path_;
    double intervalSeconds_ = 0;
    bool stopped_ = false;
    /** Background-thread plumbing lives in the impl (pimpl keeps
     *  <thread>/<condition_variable> out of this header). */
    struct Impl;
    Impl *impl_ = nullptr;
};

} // namespace isaria::obs

#endif // ISARIA_OBS_METRICS_H
