#ifndef ISARIA_CACHE_RULE_CACHE_H
#define ISARIA_CACHE_RULE_CACHE_H

/**
 * @file
 * Persistent, content-addressed cache for the offline pipeline.
 *
 * Rule synthesis is the expensive half of Fig. 2 — seconds to minutes
 * of enumeration, verification, and derivability pruning — yet its
 * output is a pure function of (ISA spec, cost-model parameters,
 * synthesis configuration, code version). The cache keys an entry on a
 * fingerprint of exactly those inputs and stores the synthesized rule
 * sets plus their phase assignments, so a re-run with an unchanged
 * configuration costs one file read instead of a synthesis run.
 *
 * Robustness rules:
 *  - Writes are atomic: the entry is written to a temporary file in
 *    the cache directory and renamed into place, so a crashed or
 *    concurrent writer can never leave a half-written entry under the
 *    final name.
 *  - Loads are corruption-tolerant: a truncated, garbled, or
 *    stale-fingerprint file is a *miss with a diagnostic*, never an
 *    abort — the pipeline falls back to synthesizing from scratch.
 *  - The fingerprint deliberately excludes thread counts: synthesis is
 *    byte-identical at any thread count (see SynthConfig::numThreads),
 *    so a cache entry written by a parallel run serves a sequential
 *    one and vice versa.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa_spec.h"
#include "phase/phase.h"
#include "support/result.h"
#include "synth/synthesize.h"

namespace isaria
{

/** Bump whenever the on-disk format *or* any synthesis semantics
 *  change — a stale schema silently serving old rules is the one
 *  corruption the parser cannot detect by itself. */
constexpr std::uint64_t kRuleCacheSchemaVersion = 1;

/**
 * Fingerprint of everything the synthesized rule set depends on:
 * schema version, ISA configuration, enumeration grammar and budgets,
 * verifier battery, shrink/generalization knobs, and the cost-model
 * parameters (they steer shortcut retention and phase thresholds).
 * Thread counts are excluded by design (see file comment).
 */
std::uint64_t synthFingerprint(const IsaSpec &isa,
                               const SynthConfig &config);

/** One cache entry: the rule sets plus per-rule phase assignments. */
struct CachedSynth
{
    /** Rules over the single-lane reduction (pre-generalization). */
    RuleSet oneWideRules;
    /** Rules generalized to the ISA width — the compiler's rule set. */
    RuleSet rules;
    /** Phase of rules[i] under the fingerprinted cost parameters. */
    std::vector<Phase> phases;
};

/** Outcome of a cache probe. */
struct CacheProbe
{
    /** The entry, when the probe hit. */
    std::optional<CachedSynth> entry;
    /** Why an existing file was rejected (stale fingerprint,
     *  truncation, parse failure); empty on a hit or a clean miss. */
    std::string diagnostic;

    bool hit() const { return entry.has_value(); }
};

/**
 * A directory of cache entries, one file per (ISA, fingerprint).
 * Copyable and stateless beyond the directory path.
 */
class RuleCache
{
  public:
    /** An empty @p dir disables the cache (probes miss, stores drop). */
    explicit RuleCache(std::string dir = "");

    /**
     * Cache rooted at $ISARIA_CACHE, disabled when the variable is
     * unset or empty. CLI flags should override this default.
     */
    static RuleCache fromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Full path of the entry file for @p isa / @p fingerprint. */
    std::string entryPath(const IsaSpec &isa,
                          std::uint64_t fingerprint) const;

    /**
     * Probes the cache. Missing file = clean miss; unreadable, stale,
     * or corrupt file = miss with a diagnostic. Never throws, never
     * aborts on bad cache contents.
     */
    CacheProbe load(const IsaSpec &isa, std::uint64_t fingerprint) const;

    /**
     * Writes @p entry atomically (temp file + rename). Returns the
     * final path, or an Error when the directory cannot be created or
     * the write fails. A disabled cache reports an Error too — callers
     * gate on enabled().
     */
    Result<std::string> store(const IsaSpec &isa,
                              std::uint64_t fingerprint,
                              const CachedSynth &entry) const;

  private:
    std::string dir_;
};

/**
 * Serializes @p entry in the on-disk format (exposed for tests).
 * The format is line-oriented text with the fingerprint in the header
 * and an explicit end marker, so truncation is always detectable.
 */
std::string encodeCacheEntry(std::uint64_t fingerprint,
                             const CachedSynth &entry);

/** Parses @p text, requiring @p fingerprint to match the header. */
Result<CachedSynth> decodeCacheEntry(const std::string &text,
                                     std::uint64_t fingerprint);

/**
 * Cache-aware synthesis: probes @p cache, returning a report with
 * SynthReport::fromCache set on a hit (no enumeration or verification
 * runs — the warm path emits no synth/enumerate span); on a miss it
 * runs synthesizeRules and stores the result (with phase assignments
 * under config.costParams). With a disabled cache this is exactly
 * synthesizeRules.
 */
SynthReport synthesizeRulesCached(const IsaSpec &isa,
                                  const SynthConfig &config,
                                  const RuleCache &cache);

} // namespace isaria

#endif // ISARIA_CACHE_RULE_CACHE_H
