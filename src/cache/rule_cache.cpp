#include "cache/rule_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/hash.h"

namespace isaria
{

namespace
{

constexpr const char *kMagic = "isaria-rule-cache";
constexpr const char *kEndMarker = "[end]";

/** Folds one scalar into the fingerprint. */
void
mix(std::size_t &seed, std::uint64_t value)
{
    hashCombine(seed, static_cast<std::size_t>(value));
}

void
mix(std::size_t &seed, std::int64_t value)
{
    mix(seed, static_cast<std::uint64_t>(value));
}

void
mix(std::size_t &seed, int value)
{
    mix(seed, static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
}

void
mix(std::size_t &seed, bool value)
{
    mix(seed, static_cast<std::uint64_t>(value ? 1 : 0));
}

/** Doubles are fingerprinted by bit pattern: any change in a budget
 *  is a different configuration, and no rounding ambiguity exists. */
void
mix(std::size_t &seed, double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    mix(seed, bits);
}

std::string
hex(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::optional<Phase>
parsePhase(const std::string &name)
{
    if (name == phaseName(Phase::Expansion))
        return Phase::Expansion;
    if (name == phaseName(Phase::Compilation))
        return Phase::Compilation;
    if (name == phaseName(Phase::Optimization))
        return Phase::Optimization;
    return std::nullopt;
}

/** Folds a full cost table into the fingerprint. */
void
mixCostParams(std::size_t &seed, const CostParams &cp)
{
    mix(seed, cp.leaf);
    mix(seed, cp.scalarAlu);
    mix(seed, cp.scalarDiv);
    mix(seed, cp.scalarSqrt);
    mix(seed, cp.scalarMulSub);
    mix(seed, cp.scalarSqrtSgn);
    mix(seed, cp.vecAlu);
    mix(seed, cp.vecDiv);
    mix(seed, cp.vecSqrt);
    mix(seed, cp.vecMac);
    mix(seed, cp.vecSqrtSgn);
    mix(seed, cp.laneMove);
    mix(seed, cp.vecBase);
    mix(seed, cp.concat);
    mix(seed, cp.listBase);
    mix(seed, cp.alpha);
    mix(seed, cp.beta);
}

std::uint64_t
synthFingerprintImpl(const IsaSpec &isa, const SynthConfig &config)
{
    std::size_t seed = 0x15A21AC4C8Eull;
    mix(seed, kRuleCacheSchemaVersion);

    // The *entire* machine description, not just width plus the two
    // custom-op flags: two same-width machines differing in family,
    // op set, cost table, latency table, or issue shape must never
    // share a cache entry.
    const MachineDesc &m = isa.machine();
    mix(seed, m.family.size());
    for (char c : m.family)
        mix(seed, static_cast<std::uint64_t>(
                      static_cast<unsigned char>(c)));
    mix(seed, m.vectorWidth);
    mix(seed, isa.scalarOps().size());
    for (Op op : isa.scalarOps())
        mix(seed, static_cast<std::uint64_t>(op));
    mix(seed, isa.vectorOps().size());
    for (Op op : isa.vectorOps())
        mix(seed, static_cast<std::uint64_t>(op));
    mixCostParams(seed, m.cost);
    const LatencyModel &lat = m.latency;
    mix(seed, lat.dualIssue);
    mix(seed, lat.scalarAlu);
    mix(seed, lat.scalarDiv);
    mix(seed, lat.scalarSqrt);
    mix(seed, lat.scalarSgn);
    mix(seed, lat.scalarNeg);
    mix(seed, lat.vectorAlu);
    mix(seed, lat.vectorDiv);
    mix(seed, lat.vectorSqrt);
    mix(seed, lat.load);
    mix(seed, lat.insertLane);
    mix(seed, lat.loadConst);
    mix(seed, lat.store);

    const EnumConfig &ec = config.enumConfig;
    mix(seed, ec.numScalarVars);
    mix(seed, ec.numVectorVars);
    mix(seed, ec.constants.size());
    for (std::int64_t c : ec.constants)
        mix(seed, c);
    mix(seed, ec.maxDepth);
    mix(seed, ec.maxReps);
    mix(seed, ec.maxScalarCandidates);
    mix(seed, ec.maxVectorCandidates);
    mix(seed, ec.maxLiftCandidates);
    mix(seed, ec.numEnvs);
    mix(seed, ec.seed);

    const VerifyOptions &vo = config.verify;
    mix(seed, vo.samples);
    mix(seed, vo.minDefined);
    mix(seed, vo.defaultWidth);
    mix(seed, vo.seed);

    mix(seed, config.timeoutSeconds);
    mix(seed, config.enumFraction);
    mix(seed, config.maxRules);
    mix(seed, config.batchSize);
    mix(seed, config.keepShortcutCandidates);

    const EqSatLimits &dl = config.derivLimits;
    mix(seed, dl.maxNodes);
    mix(seed, dl.maxBytes);
    mix(seed, dl.maxIters);
    mix(seed, dl.timeoutSeconds);
    mix(seed, dl.maxMatchesPerRule);
    mix(seed, dl.maxMatchesPerClass);
    mix(seed, dl.maxSearchStepsPerRule);
    // derivLimits.numThreads and config.numThreads are *not* mixed:
    // results are byte-identical at any thread count.

    mixCostParams(seed, config.costParams);

    return static_cast<std::uint64_t>(seed);
}

} // namespace

std::uint64_t
synthFingerprint(const IsaSpec &isa, const SynthConfig &config)
{
    // Fingerprint the configuration synthesis would actually run
    // under: machine-derived fields (the verifier's sampling width)
    // are forced from the spec first, exactly as synthesizeRules
    // does, so the cache key can never describe a run that differs
    // from the one that produced the entry.
    return synthFingerprintImpl(isa, effectiveSynthConfig(isa, config));
}

std::string
encodeCacheEntry(std::uint64_t fingerprint, const CachedSynth &entry)
{
    std::string out;
    out += kMagic;
    out += ' ';
    out += std::to_string(kRuleCacheSchemaVersion);
    out += '\n';
    out += "fingerprint ";
    out += hex(fingerprint);
    out += '\n';
    out += "[onewide]\n";
    out += entry.oneWideRules.toString();
    out += "[rules]\n";
    out += entry.rules.toString();
    out += "[phases]\n";
    for (std::size_t i = 0; i < entry.phases.size(); ++i) {
        out += entry.rules[i].name;
        out += ' ';
        out += phaseName(entry.phases[i]);
        out += '\n';
    }
    out += kEndMarker;
    out += '\n';
    return out;
}

Result<CachedSynth>
decodeCacheEntry(const std::string &text, std::uint64_t fingerprint)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    auto next = [&](std::string &out) {
        if (!std::getline(in, out))
            return false;
        ++lineNo;
        return true;
    };

    if (!next(line) ||
        line != std::string(kMagic) + " " +
                    std::to_string(kRuleCacheSchemaVersion)) {
        return Error{"not a rule-cache file (or stale schema version)",
                     lineNo};
    }
    if (!next(line) || line.rfind("fingerprint ", 0) != 0)
        return Error{"missing fingerprint header", lineNo};
    if (line.substr(12) != hex(fingerprint)) {
        return Error{"stale entry: fingerprint " + line.substr(12) +
                         " does not match expected " + hex(fingerprint),
                     lineNo};
    }
    if (!next(line) || line != "[onewide]")
        return Error{"missing [onewide] section", lineNo};

    // Collect each section's lines, then let RuleSet::parse do the
    // real validation (it rejects garbage with line diagnostics).
    std::string oneWideText;
    while (next(line) && line != "[rules]")
        oneWideText += line + '\n';
    if (line != "[rules]")
        return Error{"truncated before [rules] section", lineNo};
    std::string rulesText;
    while (next(line) && line != "[phases]")
        rulesText += line + '\n';
    if (line != "[phases]")
        return Error{"truncated before [phases] section", lineNo};

    CachedSynth entry;
    Result<RuleSet> oneWide = RuleSet::parse(oneWideText);
    if (!oneWide)
        return Error{"[onewide] section: " + oneWide.error().toString(),
                     0};
    entry.oneWideRules = oneWide.take();
    Result<RuleSet> rules = RuleSet::parse(rulesText);
    if (!rules)
        return Error{"[rules] section: " + rules.error().toString(), 0};
    entry.rules = rules.take();

    bool sawEnd = false;
    while (next(line)) {
        if (line == kEndMarker) {
            sawEnd = true;
            break;
        }
        std::size_t space = line.rfind(' ');
        if (space == std::string::npos)
            return Error{"malformed phase line: " + line, lineNo};
        std::string name = line.substr(0, space);
        std::optional<Phase> phase = parsePhase(line.substr(space + 1));
        if (!phase)
            return Error{"unknown phase in: " + line, lineNo};
        std::size_t index = entry.phases.size();
        if (index >= entry.rules.size() ||
            entry.rules[index].name != name) {
            return Error{"phase line out of step with [rules]: " + line,
                         lineNo};
        }
        entry.phases.push_back(*phase);
    }
    if (!sawEnd)
        return Error{"truncated: no end marker", lineNo};
    if (entry.phases.size() != entry.rules.size()) {
        return Error{"phase count " + std::to_string(entry.phases.size()) +
                         " does not cover " +
                         std::to_string(entry.rules.size()) + " rules",
                     lineNo};
    }
    return entry;
}

RuleCache::RuleCache(std::string dir) : dir_(std::move(dir)) {}

RuleCache
RuleCache::fromEnv()
{
    const char *dir = std::getenv("ISARIA_CACHE");
    return RuleCache(dir ? dir : "");
}

std::string
RuleCache::entryPath(const IsaSpec &isa, std::uint64_t fingerprint) const
{
    return dir_ + "/" + isa.name() + "-" + hex(fingerprint) +
           ".rulecache";
}

CacheProbe
RuleCache::load(const IsaSpec &isa, std::uint64_t fingerprint) const
{
    CacheProbe probe;
    if (!enabled())
        return probe;
    std::string path = entryPath(isa, fingerprint);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return probe; // clean miss: no entry yet
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<CachedSynth> decoded = decodeCacheEntry(buf.str(), fingerprint);
    if (!decoded) {
        // Corrupt or stale: a miss with a diagnostic, never an abort.
        probe.diagnostic = path + ": " + decoded.error().toString();
        obs::counter("synth/cache/corrupt", 1);
        static const obs::CounterHandle corruptMetric =
            obs::metricCounter("synth/cache/corrupt");
        obs::metricAdd(corruptMetric);
        return probe;
    }
    probe.entry = decoded.take();
    return probe;
}

Result<std::string>
RuleCache::store(const IsaSpec &isa, std::uint64_t fingerprint,
                 const CachedSynth &entry) const
{
    if (!enabled())
        return Error{"rule cache disabled (no directory configured)"};
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return Error{"cannot create cache directory " + dir_ + ": " +
                     ec.message()};
    std::string path = entryPath(isa, fingerprint);
    // Atomic publish: write under a temporary name, rename into place.
    // rename(2) is atomic within a filesystem, so readers only ever
    // see absent or complete entries, even across crashed writers.
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return Error{"cannot write cache entry " + tmp};
        out << encodeCacheEntry(fingerprint, entry);
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return Error{"short write to cache entry " + tmp};
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Error{"cannot publish cache entry " + path};
    }
    obs::counter("synth/cache/store", 1);
    static const obs::CounterHandle storeMetric =
        obs::metricCounter("synth/cache/store");
    obs::metricAdd(storeMetric);
    return path;
}

SynthReport
synthesizeRulesCached(const IsaSpec &isa, const SynthConfig &config,
                      const RuleCache &cache)
{
    if (!cache.enabled())
        return synthesizeRules(isa, config);

    std::uint64_t fp = synthFingerprint(isa, config);
    CacheProbe probe = cache.load(isa, fp);
    if (probe.hit()) {
        obs::counter("synth/cache/hit", 1);
        static const obs::CounterHandle hitMetric =
            obs::metricCounter("synth/cache/hit");
        obs::metricAdd(hitMetric);
        SynthReport report;
        report.fromCache = true;
        report.oneWideRules = std::move(probe.entry->oneWideRules);
        report.rules = std::move(probe.entry->rules);
        return report;
    }
    obs::counter("synth/cache/miss", 1);
    static const obs::CounterHandle missMetric =
        obs::metricCounter("synth/cache/miss");
    obs::metricAdd(missMetric);

    SynthReport report = synthesizeRules(isa, config);
    // A deadline-cut run is a partial rule set; caching it would pin
    // the truncation forever. Only complete runs are published.
    if (!report.hitDeadline) {
        CachedSynth entry;
        entry.oneWideRules = report.oneWideRules;
        entry.rules = report.rules;
        PhasedRules phased =
            assignPhases(report.rules, DspCostModel(config.costParams));
        entry.phases.reserve(phased.all.size());
        for (const PhasedRule &pr : phased.all)
            entry.phases.push_back(pr.phase);
        cache.store(isa, fp, entry); // best-effort: a failed store
                                     // costs nothing but the warm path
    }
    return report;
}

} // namespace isaria
