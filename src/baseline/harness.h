#ifndef ISARIA_BASELINE_HARNESS_H
#define ISARIA_BASELINE_HARNESS_H

/**
 * @file
 * End-to-end experiment harness: one kernel, all comparators.
 *
 * Mirrors the paper's methodology (Section 5): every comparator
 * produces virtual-DSP code for the same kernel, the cycle simulator
 * measures it, outputs are differentially checked against reference
 * evaluation, and speedups are normalized to the unvectorized scalar
 * baseline.
 */

#include <optional>
#include <string>

#include "compiler/compiler.h"
#include "frontend/kernels.h"
#include "isa/machine_desc.h"
#include "lower/lower.h"
#include "vm/machine.h"

namespace isaria
{

/** Identifies a benchmark kernel instance. */
struct KernelSpec
{
    enum class Family
    {
        Conv2D,
        MatMul,
        QProd,
        QrD,
    };

    Family family;
    int p0 = 0, p1 = 0, p2 = 0, p3 = 0;

    static KernelSpec conv2d(int rows, int cols, int krows, int kcols);
    static KernelSpec matmul(int n, int m, int k);
    static KernelSpec qprod();
    static KernelSpec qrd(int n);

    /** Short label in the paper's style, e.g. "2DConv 8x8 3x3". */
    std::string label() const;

    Kernel build() const;

    /** The Nature library routine, if this shape is supported. */
    std::optional<VmProgram> natureProgram(int width) const;
};

/** The Figure 4 benchmark ladder (scaled; see DESIGN.md §2). */
std::vector<KernelSpec> defaultSuite();

/** Outcome of running one comparator on one kernel. */
struct RunOutcome
{
    bool supported = true;
    bool correct = false;
    std::uint64_t cycles = 0;
    double maxError = 0;
    std::size_t instructions = 0;
    CompileStats compileStats;
    /** The compiled program would not lower; the harness re-lowered
     *  the original scalar program instead (last ladder rung). */
    bool loweredScalarFallback = false;
};

/** Drives one kernel through lifting, compilation, and simulation.
 *  Lane width, latency table, and issue shape all come from one
 *  machine description, so the baselines and the generated compiler
 *  can never silently run at different widths in a comparison. */
class KernelHarness
{
  public:
    explicit KernelHarness(const KernelSpec &spec,
                           const MachineDesc &machine =
                               MachineDesc::fromEnv(),
                           std::uint64_t seed = 0xBE11A);

    const KernelSpec &spec() const { return spec_; }
    const Kernel &kernel() const { return kernel_; }
    /** The lifted scalar program (List of raw Vec chunks). */
    const RecExpr &scalarProgram() const { return program_; }
    const MachineDesc &machine() const { return machine_; }
    int width() const { return machine_.vectorWidth; }

    /** Unvectorized baseline (the Figure 4 denominator). */
    RunOutcome runScalarBaseline() const;
    /** Greedy SLP auto-vectorizer (the clang-autovec comparator). */
    RunOutcome runSlp() const;
    /** Hand-written library kernel, if the shape is supported. */
    RunOutcome runNature() const;
    /** Any rewrite-based compiler (Isaria or Diospyros). */
    RunOutcome runCompiler(const IsariaCompiler &compiler) const;
    /** Checks and times an externally produced program. */
    RunOutcome runProgramChecked(const VmProgram &program) const;

  private:
    KernelSpec spec_;
    MachineDesc machine_;
    Kernel kernel_;
    RecExpr program_;
    VmMemory inputs_;
    std::vector<double> reference_;
};

} // namespace isaria

#endif // ISARIA_BASELINE_HARNESS_H
