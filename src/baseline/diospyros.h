#ifndef ISARIA_BASELINE_DIOSPYROS_H
#define ISARIA_BASELINE_DIOSPYROS_H

/**
 * @file
 * The Diospyros comparator: a hand-written rewrite system.
 *
 * Reproduces the architecture of the Diospyros compiler the paper
 * compares against (and builds on): a small, expert-curated rule set
 * (28 rules in the original) applied in a single equality saturation
 * with iteration limits, rather than Isaria's synthesized rules with
 * phase scheduling and pruning.
 */

#include "compiler/compiler.h"

namespace isaria
{

/** The hand-written Diospyros-style rule set (width-4 Fusion G3). */
RuleSet diospyrosHandRules();

/** Builds the Diospyros comparator compiler. */
IsariaCompiler makeDiospyrosCompiler(const CompilerConfig &config = {});

} // namespace isaria

#endif // ISARIA_BASELINE_DIOSPYROS_H
