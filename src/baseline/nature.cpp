#include "baseline/nature.h"

#include "lower/lower.h"
#include "support/panic.h"

namespace isaria
{

namespace
{

/** Small emitter with fresh-register bookkeeping. */
class Emitter
{
  public:
    explicit Emitter(int width) { prog_.width = width; }

    int width() const { return prog_.width; }

    std::int32_t
    lds(SymbolId arr, int idx)
    {
        std::int32_t dst = freshS();
        code({VmOp::LoadScalar, dst, -1, -1, -1, arr, idx, {}});
        return dst;
    }

    std::int32_t
    ldcs(double value)
    {
        std::int32_t dst = freshS();
        code({VmOp::LoadConstS, dst, -1, -1, -1, 0, 0, {value}});
        return dst;
    }

    std::int32_t
    ldv(SymbolId arr, int idx)
    {
        std::int32_t dst = freshV();
        code({VmOp::LoadVec, dst, -1, -1, -1, arr, idx, {}});
        return dst;
    }

    std::int32_t
    ldcv(std::vector<double> lanes)
    {
        std::int32_t dst = freshV();
        code({VmOp::LoadConstV, dst, -1, -1, -1, 0, 0, std::move(lanes)});
        return dst;
    }

    std::int32_t
    splat(std::int32_t s)
    {
        std::int32_t dst = freshV();
        code({VmOp::Splat, dst, s, -1, -1, 0, 0, {}});
        return dst;
    }

    /** Builds a vector from scalar registers lane by lane. */
    std::int32_t
    gather(const std::vector<std::int32_t> &scalars)
    {
        std::int32_t dst = ldcv(std::vector<double>(width(), 0.0));
        for (std::size_t l = 0; l < scalars.size(); ++l) {
            code({VmOp::InsertLane, dst, scalars[l], -1, -1, 0,
                  static_cast<std::int32_t>(l), {}});
        }
        return dst;
    }

    std::int32_t
    sop(VmOp op, std::int32_t a, std::int32_t b = -1, std::int32_t c = -1)
    {
        std::int32_t dst = freshS();
        code({op, dst, a, b, c, 0, 0, {}});
        return dst;
    }

    std::int32_t
    vop(VmOp op, std::int32_t a, std::int32_t b = -1, std::int32_t c = -1)
    {
        std::int32_t dst = freshV();
        code({op, dst, a, b, c, 0, 0, {}});
        return dst;
    }

    void
    sts(std::int32_t s, SymbolId arr, int idx)
    {
        code({VmOp::StoreScalar, -1, s, -1, -1, arr, idx, {}});
    }

    void
    stv(std::int32_t v, SymbolId arr, int idx)
    {
        code({VmOp::StoreVec, -1, v, -1, -1, arr, idx, {}});
    }

    VmProgram
    finish()
    {
        prog_.numScalarRegs = nextS_;
        prog_.numVectorRegs = nextV_;
        return std::move(prog_);
    }

  private:
    void
    code(VmInst inst)
    {
        prog_.code.push_back(std::move(inst));
    }

    std::int32_t freshS() { return nextS_++; }
    std::int32_t freshV() { return nextV_++; }

    VmProgram prog_;
    std::int32_t nextS_ = 0;
    std::int32_t nextV_ = 0;
};

} // namespace

std::optional<VmProgram>
natureMatMul(int n, int m, int k, int width)
{
    if (k % width != 0)
        return std::nullopt; // irregular shape: the library omits it
    Emitter e(width);
    SymbolId A = internSymbol("A");
    SymbolId B = internSymbol("B");
    SymbolId out = outputArraySymbol();

    for (int i = 0; i < n; ++i) {
        for (int jb = 0; jb < k; jb += width) {
            std::int32_t acc = e.ldcv(std::vector<double>(width, 0.0));
            for (int l = 0; l < m; ++l) {
                std::int32_t va = e.splat(e.lds(A, i * m + l));
                std::int32_t vb = e.ldv(B, l * k + jb);
                acc = e.vop(VmOp::VMac, acc, va, vb);
            }
            e.stv(acc, out, i * k + jb);
        }
    }
    return e.finish();
}

std::optional<VmProgram>
nature2DConv(int rows, int cols, int krows, int kcols, int width)
{
    if (rows < 8 || cols < 8)
        return std::nullopt; // library omits small irregular shapes
    int orows = rows + krows - 1;
    int ocols = cols + kcols - 1;
    Emitter e(width);
    SymbolId I = internSymbol("I");
    SymbolId F = internSymbol("F");
    SymbolId P = internSymbol("natPadded");
    SymbolId out = outputArraySymbol();

    // Stage 1: copy the input into a zero-padded working buffer (the
    // standard library trick that removes all boundary conditions).
    // Simulator arrays are zero-initialized, so only the interior is
    // copied, with vector copies and a scalar tail.
    int pcols = cols + 2 * (kcols - 1);
    int rowBase = krows - 1, colBase = kcols - 1;
    for (int r = 0; r < rows; ++r) {
        int src = r * cols;
        int dst = (r + rowBase) * pcols + colBase;
        int c = 0;
        for (; c + width <= cols; c += width)
            e.stv(e.ldv(I, src + c), P, dst + c);
        for (; c < cols; ++c)
            e.sts(e.lds(I, src + c), P, dst + c);
    }

    // Preload the (small) filter as broadcast registers.
    std::vector<std::int32_t> fsplat(krows * kcols);
    for (int t = 0; t < krows * kcols; ++t)
        fsplat[t] = e.splat(e.lds(F, t));

    // Stage 2: every output block is interior in the padded buffer:
    // O[r][c] = sum_{i,j} F[i][j] * P[r + (krows-1-i)][c + (kcols-1-j)].
    auto emitBlock = [&](int r, int c) {
        std::int32_t acc = e.ldcv(std::vector<double>(width, 0.0));
        for (int i = 0; i < krows; ++i) {
            for (int j = 0; j < kcols; ++j) {
                int pr = r + (krows - 1 - i);
                int pc = c + (kcols - 1 - j);
                std::int32_t rowv = e.ldv(P, pr * pcols + pc);
                acc = e.vop(VmOp::VMac, acc, fsplat[i * kcols + j], rowv);
            }
        }
        e.stv(acc, out, r * ocols + c);
    };

    for (int r = 0; r < orows; ++r) {
        for (int c = 0; c < ocols; c += width) {
            // The final block overlaps its predecessor rather than
            // spilling past the row (ocols >= 8 > width here).
            emitBlock(r, std::min(c, ocols - width));
        }
    }
    return e.finish();
}

std::optional<VmProgram>
natureQProd(int width)
{
    if (width != 4)
        return std::nullopt;
    Emitter e(width);
    SymbolId P = internSymbol("P");
    SymbolId Q = internSymbol("Q");
    SymbolId out = outputArraySymbol();

    // r = p0*[ q0  q1  q2  q3]
    //   + p1*[-q1  q0 -q3  q2]
    //   + p2*[-q2  q3  q0 -q1]
    //   + p3*[-q3 -q2  q1  q0]
    std::vector<std::int32_t> q(4), nq(4);
    for (int i = 0; i < 4; ++i)
        q[i] = e.lds(Q, i);
    for (int i = 0; i < 4; ++i)
        nq[i] = e.sop(VmOp::SNeg, q[i]);

    std::int32_t qv = e.ldv(Q, 0);
    std::int32_t s1 = e.gather({nq[1], q[0], nq[3], q[2]});
    std::int32_t s2 = e.gather({nq[2], q[3], q[0], nq[1]});
    std::int32_t s3 = e.gather({nq[3], nq[2], q[1], q[0]});

    std::int32_t acc = e.vop(VmOp::VMul, e.splat(e.lds(P, 0)), qv);
    acc = e.vop(VmOp::VMac, acc, e.splat(e.lds(P, 1)), s1);
    acc = e.vop(VmOp::VMac, acc, e.splat(e.lds(P, 2)), s2);
    acc = e.vop(VmOp::VMac, acc, e.splat(e.lds(P, 3)), s3);
    e.stv(acc, out, 0);
    return e.finish();
}

std::optional<VmProgram>
natureQrD(int n, int width)
{
    if (n != width)
        return std::nullopt; // the library ships the width-matched size
    Emitter e(width);
    SymbolId A = internSymbol("A");
    SymbolId out = outputArraySymbol();

    // Row-major working copies in registers: R rows and Q rows as
    // vectors, scalar mirrors of R's current column for the norms.
    std::vector<std::int32_t> rrow(n), qrow(n);
    for (int i = 0; i < n; ++i)
        rrow[i] = e.ldv(A, i * n);
    for (int i = 0; i < n; ++i) {
        std::vector<double> unit(width, 0.0);
        unit[i] = 1.0;
        qrow[i] = e.ldcv(unit);
    }

    // Scalar column extraction helper: lane j of a row vector is not
    // directly addressable, so rows are staged through scratch memory
    // (what a register-pressure-aware library would spill anyway).
    SymbolId scratch = internSymbol("natScratch");
    auto laneOf = [&](std::int32_t rowReg, int rowIdx, int lane) {
        e.stv(rowReg, scratch, rowIdx * n);
        return e.lds(scratch, rowIdx * n + lane);
    };

    for (int k = 0; k < n - 1; ++k) {
        // Scalar part: norm of column k below the diagonal, alpha,
        // the Householder vector v, and beta = 2 / (v.v).
        std::vector<std::int32_t> col(n, -1);
        for (int i = k; i < n; ++i)
            col[i] = laneOf(rrow[i], i, k);
        std::int32_t normSq = e.sop(VmOp::SMul, col[k], col[k]);
        for (int i = k + 1; i < n; ++i) {
            normSq = e.sop(VmOp::SAdd, normSq,
                           e.sop(VmOp::SMul, col[i], col[i]));
        }
        std::int32_t alpha =
            e.sop(VmOp::SMul, e.sop(VmOp::SNeg, e.sop(VmOp::SSgn, col[k])),
                  e.sop(VmOp::SSqrt, normSq));
        std::vector<std::int32_t> v(n, -1);
        v[k] = e.sop(VmOp::SSub, col[k], alpha);
        for (int i = k + 1; i < n; ++i)
            v[i] = col[i];
        std::int32_t vnorm = e.sop(VmOp::SMul, v[k], v[k]);
        for (int i = k + 1; i < n; ++i) {
            vnorm = e.sop(VmOp::SAdd, vnorm,
                          e.sop(VmOp::SMul, v[i], v[i]));
        }
        std::int32_t beta = e.sop(VmOp::SDiv, e.ldcs(2.0), vnorm);

        // Vector part: srow = sum_i v[i] * R[i][:], then each row
        // R[i][:] -= (beta * v[i]) * srow.
        std::int32_t srow = e.vop(VmOp::VMul, e.splat(v[k]), rrow[k]);
        for (int i = k + 1; i < n; ++i)
            srow = e.vop(VmOp::VMac, srow, e.splat(v[i]), rrow[i]);
        for (int i = k; i < n; ++i) {
            std::int32_t coef = e.splat(e.sop(VmOp::SMul, beta, v[i]));
            rrow[i] = e.vop(VmOp::VSub, rrow[i],
                            e.vop(VmOp::VMul, coef, srow));
        }

        // Q rows: w[i] = Q[i][:] . v (scalar dots via scratch), then
        // Q[i][:] -= beta * w[i] * v[:].
        std::int32_t vvec = e.gather(v);
        for (int i = 0; i < n; ++i) {
            std::int32_t dot = -1;
            for (int j = k; j < n; ++j) {
                std::int32_t qij = laneOf(qrow[i], n + i, j);
                std::int32_t prod = e.sop(VmOp::SMul, qij, v[j]);
                dot = dot < 0 ? prod : e.sop(VmOp::SAdd, dot, prod);
            }
            std::int32_t coef = e.splat(e.sop(VmOp::SMul, beta, dot));
            // Zero the below-k lanes of v so columns < k stay intact.
            std::int32_t vmask = vvec;
            if (k > 0) {
                std::vector<std::int32_t> masked(v);
                for (int j = 0; j < k; ++j)
                    masked[j] = e.ldcs(0.0);
                vmask = e.gather(masked);
            }
            qrow[i] = e.vop(VmOp::VSub, qrow[i],
                            e.vop(VmOp::VMul, coef, vmask));
        }
    }

    // Emit Q then R to the output layout (Q rows, then R rows).
    for (int i = 0; i < n; ++i)
        e.stv(qrow[i], out, i * n);
    for (int i = 0; i < n; ++i)
        e.stv(rrow[i], out, n * n + i * n);
    return e.finish();
}

} // namespace isaria
