#include "baseline/diospyros.h"

namespace isaria
{

RuleSet
diospyrosHandRules()
{
    // The curated rule list mirrors the shape of Diospyros's 28
    // hand-written rules: scalar algebra to expose packings, per-op
    // vectorization of full lanes, "or-zero" variants for ragged last
    // lanes, and MAC fusion as a vector-level optimization.
    static const char *kRules[] = {
        // Scalar exploration.
        "(+ ?a ?b) ~> (+ ?b ?a)",
        "(* ?a ?b) ~> (* ?b ?a)",
        "(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))",
        "(+ ?a (+ ?b ?c)) ~> (+ (+ ?a ?b) ?c)",
        "(* (* ?a ?b) ?c) ~> (* ?a (* ?b ?c))",
        "(* ?a (* ?b ?c)) ~> (* (* ?a ?b) ?c)",
        "(- ?a ?b) ~> (+ ?a (neg ?b))",
        "(+ ?a (neg ?b)) ~> (- ?a ?b)",
        "(neg (neg ?a)) ~> ?a",
        "(* ?a (+ ?b ?c)) ~> (+ (* ?a ?b) (* ?a ?c))",
        "(+ (* ?a ?b) (* ?a ?c)) ~> (* ?a (+ ?b ?c))",

        // Vectorization of homogeneous lanes.
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        "(Vec (- ?a0 ?b0) (- ?a1 ?b1) (- ?a2 ?b2) (- ?a3 ?b3)) ~> "
        "(VecMinus (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3)) ~> "
        "(VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        "(Vec (/ ?a0 ?b0) (/ ?a1 ?b1) (/ ?a2 ?b2) (/ ?a3 ?b3)) ~> "
        "(VecDiv (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        "(Vec (neg ?a0) (neg ?a1) (neg ?a2) (neg ?a3)) ~> "
        "(VecNeg (Vec ?a0 ?a1 ?a2 ?a3))",
        "(Vec (sgn ?a0) (sgn ?a1) (sgn ?a2) (sgn ?a3)) ~> "
        "(VecSgn (Vec ?a0 ?a1 ?a2 ?a3))",
        "(Vec (sqrt ?a0) (sqrt ?a1) (sqrt ?a2) (sqrt ?a3)) ~> "
        "(VecSqrt (Vec ?a0 ?a1 ?a2 ?a3))",

        // Ragged ("or zero") last-lane variants.
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) ?d) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?d) (Vec ?b0 ?b1 ?b2 0))",
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) ?c ?d) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?c ?d) (Vec ?b0 ?b1 0 0))",
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) ?d) ~> "
        "(VecMul (Vec ?a0 ?a1 ?a2 ?d) (Vec ?b0 ?b1 ?b2 1))",
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) ?c ?d) ~> "
        "(VecMul (Vec ?a0 ?a1 ?c ?d) (Vec ?b0 ?b1 1 1))",

        // Vector-level optimization.
        "(VecAdd ?a ?b) ~> (VecAdd ?b ?a)",
        "(VecMul ?a ?b) ~> (VecMul ?b ?a)",
        "(VecAdd ?a (VecMul ?b ?c)) ~> (VecMAC ?a ?b ?c)",
        "(VecMAC ?a ?b ?c) ~> (VecMAC ?a ?c ?b)",
        "(VecMinus (Vec 0 0 0 0) ?a) ~> (VecNeg ?a)",
        "(VecAdd ?a (Vec 0 0 0 0)) ~> ?a",
        "(VecMAC (Vec 0 0 0 0) ?a ?b) ~> (VecMul ?a ?b)",
    };

    RuleSet out;
    int index = 0;
    for (const char *text : kRules) {
        Rule rule = parseRule(text);
        rule.name = "dios-" + std::to_string(index++);
        rule.verifiedExactly = true; // hand-audited
        out.add(std::move(rule));
    }
    return out;
}

IsariaCompiler
makeDiospyrosCompiler(const CompilerConfig &config)
{
    CompilerConfig cfg = config;
    // Diospyros runs one saturation over its whole (curated) rule
    // set with iteration limits and no pruning loop.
    cfg.phasing = false;
    cfg.pruning = false;
    PhasedRules phased = assignPhases(diospyrosHandRules(), cfg.costModel);
    return IsariaCompiler(std::move(phased), cfg);
}

} // namespace isaria
