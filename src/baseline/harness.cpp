#include "baseline/harness.h"

#include <cmath>

#include "baseline/nature.h"
#include "baseline/slp.h"
#include "support/panic.h"
#include "support/rng.h"
#include "vm/reference.h"

namespace isaria
{

KernelSpec
KernelSpec::conv2d(int rows, int cols, int krows, int kcols)
{
    return KernelSpec{Family::Conv2D, rows, cols, krows, kcols};
}

KernelSpec
KernelSpec::matmul(int n, int m, int k)
{
    return KernelSpec{Family::MatMul, n, m, k, 0};
}

KernelSpec
KernelSpec::qprod()
{
    return KernelSpec{Family::QProd, 0, 0, 0, 0};
}

KernelSpec
KernelSpec::qrd(int n)
{
    return KernelSpec{Family::QrD, n, 0, 0, 0};
}

std::string
KernelSpec::label() const
{
    switch (family) {
      case Family::Conv2D:
        return "2DConv " + std::to_string(p0) + "x" + std::to_string(p1) +
               " " + std::to_string(p2) + "x" + std::to_string(p3);
      case Family::MatMul:
        return "MatMul " + std::to_string(p0) + "x" + std::to_string(p1) +
               "x" + std::to_string(p2);
      case Family::QProd:
        return "QProd";
      case Family::QrD:
        return "QrD " + std::to_string(p0) + "x" + std::to_string(p0);
    }
    return "?";
}

Kernel
KernelSpec::build() const
{
    switch (family) {
      case Family::Conv2D: return make2DConv(p0, p1, p2, p3);
      case Family::MatMul: return makeMatMul(p0, p1, p2);
      case Family::QProd: return makeQProd();
      case Family::QrD: return makeQrD(p0);
    }
    ISARIA_PANIC("bad kernel family");
}

std::optional<VmProgram>
KernelSpec::natureProgram(int width) const
{
    switch (family) {
      case Family::Conv2D: return nature2DConv(p0, p1, p2, p3, width);
      case Family::MatMul: return natureMatMul(p0, p1, p2, width);
      case Family::QProd: return natureQProd(width);
      case Family::QrD: return natureQrD(p0, width);
    }
    return std::nullopt;
}

std::vector<KernelSpec>
defaultSuite()
{
    // The paper's ladders, scaled to laptop budgets (DESIGN.md §2):
    // 2D convolutions over increasing input and filter sizes, square
    // matrix multiplies, the quaternion product, and QR.
    return {
        KernelSpec::conv2d(3, 3, 2, 2),
        KernelSpec::conv2d(3, 3, 3, 3),
        KernelSpec::conv2d(4, 4, 2, 2),
        KernelSpec::conv2d(4, 4, 3, 3),
        KernelSpec::conv2d(8, 8, 2, 2),
        KernelSpec::conv2d(8, 8, 3, 3),
        KernelSpec::conv2d(10, 10, 2, 2),
        KernelSpec::conv2d(10, 10, 3, 3),
        KernelSpec::matmul(2, 2, 2),
        KernelSpec::matmul(3, 3, 3),
        KernelSpec::matmul(4, 4, 4),
        KernelSpec::matmul(6, 6, 6),
        KernelSpec::matmul(8, 8, 8),
        KernelSpec::qprod(),
        KernelSpec::qrd(3),
        KernelSpec::qrd(4),
    };
}

KernelHarness::KernelHarness(const KernelSpec &spec,
                             const MachineDesc &machine,
                             std::uint64_t seed)
    : spec_(spec), machine_(machine), kernel_(spec.build()),
      program_(liftKernel(kernel_, machine.vectorWidth))
{
    // Deterministic pseudo-random inputs in [-2, -0.25] U [0.25, 2]:
    // bounded away from zero so QR's pivots are well conditioned.
    Rng rng(seed);
    for (const auto &[name, size] : kernel_.inputs) {
        std::vector<double> cells(size);
        for (double &cell : cells) {
            double mag =
                0.25 + 1.75 * (rng.nextBelow(10'000) / 10'000.0);
            cell = rng.nextBelow(2) ? mag : -mag;
        }
        inputs_[internSymbol(name)] = std::move(cells);
    }
    reference_ = evalProgramDoubles(program_, inputs_);
}

RunOutcome
KernelHarness::runProgramChecked(const VmProgram &program) const
{
    // Every program this harness measures must have been built for
    // this machine — a width drift between a comparator and the spec
    // is a miscompile, not a measurement.
    ISARIA_ASSERT(program.width == machine_.vectorWidth,
                  "program width disagrees with the machine description");
    VmRunResult run = runProgram(program, inputs_, machine_.latency);
    RunOutcome out;
    out.cycles = run.cycles;
    out.instructions = run.instructions;

    int total = kernel_.totalOutputs();
    const auto &produced = run.memory.at(outputArraySymbol());
    double worst = 0;
    bool ok = static_cast<int>(produced.size()) >= total;
    for (int i = 0; ok && i < total; ++i) {
        double want = reference_[i];
        double got = produced[i];
        if (std::isnan(want) || std::isnan(got)) {
            ok = !std::isnan(want) == !std::isnan(got);
            continue;
        }
        double scale = std::max(1.0, std::fabs(want));
        worst = std::max(worst, std::fabs(want - got) / scale);
    }
    out.maxError = worst;
    out.correct = ok && worst < 1e-6;
    return out;
}

RunOutcome
KernelHarness::runScalarBaseline() const
{
    LowerOptions options;
    options.width = machine_.vectorWidth;
    options.scalarOnly = true;
    options.totalOutputs = kernel_.totalOutputs();
    return runProgramChecked(lowerProgram(program_, options));
}

RunOutcome
KernelHarness::runSlp() const
{
    RecExpr packed = slpVectorize(program_);
    LowerOptions options;
    options.width = machine_.vectorWidth;
    options.scalarizeRawChunks = true;
    options.totalOutputs = kernel_.totalOutputs();
    return runProgramChecked(lowerProgram(packed, options));
}

RunOutcome
KernelHarness::runNature() const
{
    auto program = spec_.natureProgram(machine_.vectorWidth);
    if (!program) {
        RunOutcome out;
        out.supported = false;
        return out;
    }
    return runProgramChecked(*program);
}

RunOutcome
KernelHarness::runCompiler(const IsariaCompiler &compiler) const
{
    CompileStats stats;
    RecExpr compiled = compiler.compile(program_, &stats);
    LowerOptions options;
    options.width = machine_.vectorWidth;
    options.totalOutputs = kernel_.totalOutputs();
    options.scalarizeRawChunks = true;
    Result<VmProgram> lowered = tryLowerProgram(compiled, options);
    bool scalarFallback = false;
    if (!lowered.ok()) {
        // A degraded compile can emit a partially rewritten term the
        // back-end cannot lower; fall back to the scalar input, which
        // always lowers.
        LowerOptions scalar = options;
        scalar.scalarOnly = true;
        lowered = tryLowerProgram(program_, scalar);
        scalarFallback = true;
    }
    RunOutcome out = runProgramChecked(lowered.take());
    out.compileStats = stats;
    out.loweredScalarFallback = scalarFallback;
    return out;
}

} // namespace isaria
