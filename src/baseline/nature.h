#ifndef ISARIA_BASELINE_NATURE_H
#define ISARIA_BASELINE_NATURE_H

/**
 * @file
 * Hand-written vectorized library kernels ("Nature").
 *
 * Stands in for the Nature kernel library shipped with the Tensilica
 * SDK: expert-written vector code for the regular shapes a library
 * would support, and deliberately *absent* for small irregular shapes
 * (the paper notes Nature omits those). Each generator returns
 * nullopt when the shape is unsupported, which the Figure 4 harness
 * reports as a missing bar, as in the paper.
 */

#include <optional>

#include "vm/vm_isa.h"

namespace isaria
{

/** C = A(n x m) * B(m x k); supported when k is a multiple of the
 *  vector width. */
std::optional<VmProgram> natureMatMul(int n, int m, int k, int width = 4);

/** Full 2D convolution; supported for inputs at least 8x8 (interior
 *  blocks vectorized, borders scalar). */
std::optional<VmProgram> nature2DConv(int rows, int cols, int krows,
                                      int kcols, int width = 4);

/** Hamilton quaternion product (always supported). */
std::optional<VmProgram> natureQProd(int width = 4);

/** Householder QR; supported for n equal to the vector width. */
std::optional<VmProgram> natureQrD(int n, int width = 4);

} // namespace isaria

#endif // ISARIA_BASELINE_NATURE_H
