#include "baseline/slp.h"

#include <optional>

#include "support/panic.h"

namespace isaria
{

namespace
{

class SlpPacker
{
  public:
    SlpPacker(const RecExpr &src, RecExpr &out) : src_(src), out_(out) {}

    /**
     * Packs the group of scalar lanes into one vector value in the
     * output expression, or fails (nullopt) when the lanes are not
     * isomorphic.
     */
    std::optional<NodeId>
    pack(const std::vector<NodeId> &lanes)
    {
        // Leaves pack unconditionally: a Vec literal of leaves is a
        // load, a constant, or at worst a gather.
        bool allLeaves = true;
        for (NodeId lane : lanes) {
            const TermNode &n = src_.node(lane);
            allLeaves &= n.op == Op::Const || n.op == Op::Get ||
                         n.op == Op::Symbol;
        }
        if (allLeaves) {
            std::vector<NodeId> kids;
            kids.reserve(lanes.size());
            for (NodeId lane : lanes)
                kids.push_back(copyLeaf(lane));
            return out_.add(Op::Vec, std::move(kids));
        }

        // Interior nodes must be isomorphic: same operator across
        // every lane.
        Op op = src_.node(lanes[0]).op;
        if (!isScalarArithOp(op))
            return std::nullopt;
        for (NodeId lane : lanes) {
            if (src_.node(lane).op != op)
                return std::nullopt;
        }
        Op vop = vectorCounterpart(op);
        if (vop == Op::NumOps)
            return std::nullopt;

        std::size_t arity = src_.node(lanes[0]).children.size();
        std::vector<NodeId> packedArgs;
        for (std::size_t argIndex = 0; argIndex < arity; ++argIndex) {
            std::vector<NodeId> group;
            group.reserve(lanes.size());
            for (NodeId lane : lanes)
                group.push_back(src_.node(lane).children[argIndex]);
            auto packed = pack(group);
            if (!packed)
                return std::nullopt;
            packedArgs.push_back(*packed);
        }
        return out_.add(vop, std::move(packedArgs));
    }

    NodeId
    copySubtree(NodeId id)
    {
        return out_.addSubtree(src_, id);
    }

  private:
    NodeId
    copyLeaf(NodeId id)
    {
        const TermNode &n = src_.node(id);
        return out_.add(n.op, {}, n.payload);
    }

    const RecExpr &src_;
    RecExpr &out_;
};

} // namespace

RecExpr
slpVectorize(const RecExpr &scalarProgram)
{
    const TermNode &root = scalarProgram.root();
    ISARIA_ASSERT(root.op == Op::List, "SLP expects a List program");

    RecExpr out;
    SlpPacker packer(scalarProgram, out);
    std::vector<NodeId> chunks;
    for (NodeId chunk : root.children) {
        const TermNode &n = scalarProgram.node(chunk);
        ISARIA_ASSERT(n.op == Op::Vec, "SLP expects raw Vec chunks");
        auto packed = packer.pack(n.children);
        chunks.push_back(packed ? *packed : packer.copySubtree(chunk));
    }
    out.add(Op::List, std::move(chunks));
    return out;
}

} // namespace isaria
