#ifndef ISARIA_BASELINE_SLP_H
#define ISARIA_BASELINE_SLP_H

/**
 * @file
 * A greedy superword-level-parallelism auto-vectorizer.
 *
 * Stands in for the xt-clang auto-vectorizer comparator: on the
 * unrolled kernel it packs isomorphic lane expressions into vector
 * operations (Larsen & Amarasinghe's SLP, the strategy production
 * compilers use on straight-line code). Regular kernels (matrix
 * multiply, quaternion product) pack fully; irregular lanes — borders
 * of a convolution, the mixed expressions of QR — fail isomorphism
 * and stay scalar, reproducing the comparator's signature behaviour
 * in Figure 4.
 */

#include "term/rec_expr.h"

namespace isaria
{

/**
 * Packs each top-level Vec chunk of the scalar program into vector
 * ops where the lanes are isomorphic; chunks that do not pack stay
 * raw Vec literals (lower with scalarizeRawChunks).
 */
RecExpr slpVectorize(const RecExpr &scalarProgram);

} // namespace isaria

#endif // ISARIA_BASELINE_SLP_H
