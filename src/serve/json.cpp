#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace isaria::serve
{

namespace
{

/** Cursor over the input with line tracking and error plumbing. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<JsonValue>
    parseDocument()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return takeError();
        skipWhitespace();
        if (pos_ != text_.size())
            return errorHere("trailing characters after the JSON value");
        return value;
    }

  private:
    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kJsonMaxDepth)
            return fail("value nested deeper than " +
                        std::to_string(kJsonMaxDepth) + " levels");
        skipWhitespace();
        out.line = line_;
        if (pos_ >= text_.size())
            return fail("unexpected end of input (truncated frame?)");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
          case 't': return parseKeyword("true", out, true);
          case 'f': return parseKeyword("false", out, false);
          case 'n':
            if (!consumeWord("null"))
                return fail("bad keyword (expected null)");
            out.kind = JsonValue::Kind::Null;
            return true;
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail(std::string("unexpected character '") + c + "'");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                return fail("expected a quoted object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (peek() != ':')
                return fail("expected ':' after object key \"" + key +
                            "\"");
            ++pos_;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.fields.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items.push_back(std::move(value));
            skipWhitespace();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string (truncated frame?)");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\n')
                return fail("raw newline inside a string literal");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape sequence");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs
                // are beyond what compile requests need; reject them
                // explicitly rather than emit broken bytes).
                if (code >= 0xD800 && code <= 0xDFFF)
                    return fail("surrogate \\u escapes are not "
                                "supported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail(std::string("unknown escape '\\") + esc +
                            "'");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        bool integral = true;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("malformed number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            integral = false;
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed number (digits must follow '.')");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        std::string literal(text_.substr(start, pos_ - start));
        out.kind = JsonValue::Kind::Number;
        out.integral = integral;
        out.number = std::strtod(literal.c_str(), nullptr);
        return true;
    }

    bool
    parseKeyword(const char *word, JsonValue &out, bool value)
    {
        if (!consumeWord(word))
            return fail(std::string("bad keyword (expected ") + word +
                        ")");
        out.kind = JsonValue::Kind::Bool;
        out.boolean = value;
        return true;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
            } else if (c != ' ' && c != '\t' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    fail(std::string message)
    {
        if (error_.message.empty()) {
            error_.message = std::move(message);
            error_.line = line_;
        }
        return false;
    }

    Result<JsonValue>
    errorHere(std::string message)
    {
        fail(std::move(message));
        return takeError();
    }

    Result<JsonValue> takeError() { return error_; }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Error error_;
};

} // namespace

Result<JsonValue>
parseJson(std::string_view text)
{
    Parser parser(text);
    return parser.parseDocument();
}

std::string
jsonEscapeString(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace isaria::serve
