#include "serve/admission.h"

namespace isaria::serve
{

const char *
admissionVerdictName(AdmissionVerdict verdict)
{
    switch (verdict) {
      case AdmissionVerdict::Admit: return "admit";
      case AdmissionVerdict::Degrade: return "degrade";
      case AdmissionVerdict::Reject: return "reject";
    }
    return "?";
}

AdmissionVerdict
AdmissionController::admit(std::size_t payloadBytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_)
        return AdmissionVerdict::Reject;
    if (depth_ >= limits_.hardDepth ||
        bytes_ + payloadBytes > limits_.maxBytes)
        return AdmissionVerdict::Reject;
    ++depth_;
    bytes_ += payloadBytes;
    // The verdict is decided on the post-admission depth: with a soft
    // limit of S, the S+1-th concurrent request is the first degraded
    // one.
    return depth_ > limits_.softDepth ? AdmissionVerdict::Degrade
                                      : AdmissionVerdict::Admit;
}

void
AdmissionController::release(std::size_t payloadBytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (depth_ > 0)
        --depth_;
    bytes_ = bytes_ >= payloadBytes ? bytes_ - payloadBytes : 0;
}

void
AdmissionController::beginDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
}

bool
AdmissionController::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

std::size_t
AdmissionController::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
}

std::size_t
AdmissionController::chargedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

} // namespace isaria::serve
