#include "serve/service.h"

#include <algorithm>
#include <cmath>

#include "compiler/report.h"
#include "isa/machine_desc.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "support/timer.h"
#include "term/sexpr.h"

namespace isaria::serve
{

namespace
{

std::uint64_t
toNanos(double seconds)
{
    if (seconds <= 0)
        return 0;
    return static_cast<std::uint64_t>(seconds * 1e9);
}

long
toMillis(double seconds)
{
    return std::lround(std::max(0.0, seconds) * 1000.0);
}

} // namespace

CompileService::CompileService(const IsariaCompiler &compiler,
                               ServeConfig config)
    : compiler_(compiler), config_(std::move(config)),
      admission_(config_.admission)
{
    targets_.emplace_back(MachineDesc::fromEnv().name(), &compiler_);
}

void
CompileService::addTarget(const std::string &name,
                          const IsariaCompiler &compiler)
{
    for (auto &[existing, slot] : targets_) {
        if (existing == name) {
            slot = &compiler;
            return;
        }
    }
    targets_.emplace_back(name, &compiler);
}

const IsariaCompiler *
CompileService::compilerFor(const std::string &target) const
{
    if (target.empty())
        return targets_.front().second;
    for (const auto &[name, compiler] : targets_) {
        if (name == target)
            return compiler;
    }
    return nullptr;
}

Intake
CompileService::intake(std::string_view body)
{
    static const obs::CounterHandle cRequests =
        obs::metricCounter("serve/requests");
    static const obs::CounterHandle cErrors =
        obs::metricCounter("serve/errors");
    static const obs::CounterHandle cAdmitted =
        obs::metricCounter("serve/admitted");
    static const obs::CounterHandle cDegraded =
        obs::metricCounter("serve/admitted_degraded");
    static const obs::CounterHandle cRejectedOverload =
        obs::metricCounter("serve/rejected_overload");
    static const obs::CounterHandle cRejectedDraining =
        obs::metricCounter("serve/rejected_draining");
    obs::metricAdd(cRequests);

    Intake out;
    if (body.size() > config_.maxBodyBytes) {
        obs::metricAdd(cErrors);
        out.response = makeErrorResponse(
            Error{"payload of " + std::to_string(body.size()) +
                      " bytes exceeds the " +
                      std::to_string(config_.maxBodyBytes) +
                      "-byte limit",
                  1},
            413);
        return out;
    }

    Result<CompileRequest> parsed = parseCompileRequest(body);
    if (!parsed.ok()) {
        obs::metricAdd(cErrors);
        out.response = makeErrorResponse(parsed.error());
        return out;
    }

    AdmissionVerdict verdict = admission_.admit(body.size());
    if (verdict == AdmissionVerdict::Reject) {
        bool draining = admission_.draining();
        obs::metricAdd(draining ? cRejectedDraining : cRejectedOverload);
        std::string reason = draining ? "draining"
                             : admission_.depth() >=
                                     admission_.limits().hardDepth
                                 ? "queue-full"
                                 : "bytes-full";
        out.response = makeOverloadedResponse(reason, admission_.depth(),
                                              config_.retryAfterSeconds);
        return out;
    }

    obs::metricAdd(verdict == AdmissionVerdict::Degrade ? cDegraded
                                                        : cAdmitted);
    out.admitted = true;
    out.request = std::move(parsed.value());
    out.verdict = verdict;
    return out;
}

CompilerConfig
CompileService::effectiveConfig(const CompileRequest &request,
                               AdmissionVerdict verdict,
                               const CancellationToken *cancel) const
{
    // Base config comes from the compiler serving the request's
    // target (falling back to the default compiler for requests built
    // outside intake(), e.g. the config tests).
    const IsariaCompiler *serving = compilerFor(request.target);
    CompilerConfig cfg =
        serving ? serving->config() : compiler_.config();
    cfg.withMemLimitBytes(request.memBytes ? request.memBytes
                                           : config_.defaultMemBytes);
    cfg.withEqSatThreads(request.eqsatThreads
                             ? request.eqsatThreads
                             : config_.defaultEqsatThreads);
    if (request.scheduler)
        cfg.withScheduler(*request.scheduler);
    if (request.maxLoopIterations > 0)
        cfg.maxLoopIterations = request.maxLoopIterations;

    // The request deadline arrives twice: the token (tripped by the
    // server's monitor thread) is the hard edge, and clamping each
    // saturation's wall budget to the whole-request deadline keeps a
    // single phase from eating the entire allowance up front.
    double deadline = request.deadlineSeconds > 0
                          ? request.deadlineSeconds
                          : config_.defaultDeadlineSeconds;
    if (deadline > 0) {
        for (EqSatLimits *limits : {&cfg.expansionLimits,
                                    &cfg.compilationLimits,
                                    &cfg.optLimits}) {
            if (limits->timeoutSeconds <= 0 ||
                limits->timeoutSeconds > deadline)
                limits->timeoutSeconds = deadline;
        }
    }

    if (verdict == AdmissionVerdict::Degrade)
        cfg = cfg.scaledForPressure(config_.admission.degradeScale);
    cfg.withCancellation(cancel);
    return cfg;
}

ServeResponse
CompileService::compileAdmitted(const CompileRequest &request,
                                AdmissionVerdict verdict,
                                const CancellationToken *cancel,
                                double queueSeconds)
{
    static const obs::HistogramHandle hCompile =
        obs::metricHistogram("serve/compile_ns");
    static const obs::HistogramHandle hQueue =
        obs::metricHistogram("serve/queue_ns");
    static const obs::CounterHandle cClean =
        obs::metricCounter("serve/compiled_clean");
    static const obs::CounterHandle cDegradedResult =
        obs::metricCounter("serve/compiled_degraded");
    obs::metricRecord(hQueue, toNanos(queueSeconds));

    const IsariaCompiler *serving = compilerFor(request.target);
    if (!serving) {
        // intake() validated the name against the machine registry,
        // but this daemon may simply not have a compiler loaded for
        // it. Charge nothing extra; answer with a typed error.
        static const obs::CounterHandle cErrors =
            obs::metricCounter("serve/errors");
        obs::metricAdd(cErrors);
        return makeErrorResponse(
            Error{"target \"" + request.target +
                      "\" is not served by this daemon",
                  1});
    }

    CompilerConfig cfg = effectiveConfig(request, verdict, cancel);
    // Only full-budget compiles may seed the shared memo: a result cut
    // by soft pressure must not pin a worse program for future
    // requests (the clean-run check inside compile() then filters any
    // degraded outcome on the full-budget path too).
    bool memoWrite = verdict == AdmissionVerdict::Admit;

    Stopwatch watch;
    CompileStats stats;
    RecExpr compiled =
        serving->compile(request.program, cfg, &stats, memoWrite);
    double compileSeconds = watch.elapsedSeconds();
    obs::metricRecord(hCompile, toNanos(compileSeconds));

    bool degraded = verdict == AdmissionVerdict::Degrade ||
                    stats.degradation != DegradeLevel::None;
    obs::metricAdd(degraded ? cDegradedResult : cClean);

    CompileReport report =
        makeCompileReport(request.label, stats, request.target);
    ServeResponse response;
    response.type = degraded ? ResponseType::DegradedReport
                             : ResponseType::Report;
    response.status = 200;
    response.body = std::string("{\"type\":\"") +
                    responseTypeName(response.type) + "\",\"verdict\":\"" +
                    admissionVerdictName(verdict) + "\",\"degrade_level\":\"" +
                    degradeLevelName(stats.degradation) + "\",\"queue_ms\":" +
                    std::to_string(toMillis(queueSeconds)) +
                    ",\"compile_ms\":" +
                    std::to_string(toMillis(compileSeconds)) +
                    ",\"report\":" + report.toJson();
    if (request.emitProgram)
        response.body += std::string(",\"program\":\"") +
                         jsonEscapeString(printSexpr(compiled)) + "\"";
    response.body += "}";
    return response;
}

void
CompileService::finish(std::size_t payloadBytes)
{
    admission_.release(payloadBytes);
}

ServeResponse
CompileService::handle(std::string_view body,
                       const CancellationToken *cancel)
{
    Intake in = intake(body);
    if (!in.admitted)
        return in.response;
    ServeResponse response =
        compileAdmitted(in.request, in.verdict, cancel,
                        /*queueSeconds=*/0.0);
    finish(body.size());
    return response;
}

} // namespace isaria::serve
