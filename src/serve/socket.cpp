#include "serve/socket.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace isaria::serve
{

namespace
{

/** Fills @p addr for @p path; false when the path does not fit. */
bool
unixAddress(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof addr.sun_path)
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** read(2) with EINTR retry; -1 error, 0 EOF, else bytes. */
ssize_t
readRetry(int fd, char *buf, std::size_t len)
{
    while (true) {
        ssize_t n = ::read(fd, buf, len);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

} // namespace

UniqueFd
listenUnix(const std::string &path, int backlog, std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr)) {
        if (error)
            *error = "socket path too long: " + path;
        return {};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return {};
    }
    // A stale socket file from a crashed predecessor blocks bind;
    // this server instance owns the path, so clear it.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (error)
            *error = "bind " + path + ": " + std::strerror(errno);
        return {};
    }
    if (::listen(fd.get(), backlog) != 0) {
        if (error)
            *error = "listen " + path + ": " + std::strerror(errno);
        return {};
    }
    return fd;
}

UniqueFd
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr)) {
        if (error)
            *error = "socket path too long: " + path;
        return {};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return {};
    }
    while (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr) != 0) {
        if (errno == EINTR)
            continue;
        if (error)
            *error = "connect " + path + ": " + std::strerror(errno);
        return {};
    }
    return fd;
}

bool
waitReadable(int fd, int timeoutMs)
{
    pollfd pfd{fd, POLLIN, 0};
    while (true) {
        int got = ::poll(&pfd, 1, timeoutMs);
        if (got > 0)
            return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
        if (got == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

bool
peerDisconnected(int fd)
{
    pollfd pfd{fd, POLLIN, 0};
    int got = ::poll(&pfd, 1, 0);
    if (got <= 0)
        return false;
    if (pfd.revents & (POLLHUP | POLLERR))
        return true;
    if (pfd.revents & POLLIN) {
        // Readable while the protocol expects no client bytes means
        // either EOF or a pipelined/garbage burst; only a zero-byte
        // peek — orderly shutdown — counts as gone.
        char probe;
        ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        return n == 0;
    }
    return false;
}

FrameStatus
readHttpRequest(int fd, HttpRequest &request, std::size_t maxBodyBytes,
                int idleTimeoutMs)
{
    request = HttpRequest{};
    std::string header;
    std::size_t headerEnd = std::string::npos;
    char buf[4096];
    std::string spill; // bytes past the header (start of the body)

    // Accumulate until the blank line.
    while (headerEnd == std::string::npos) {
        if (!waitReadable(fd, idleTimeoutMs))
            return FrameStatus::TimedOut;
        ssize_t n = readRetry(fd, buf, sizeof buf);
        if (n < 0)
            return FrameStatus::Truncated;
        if (n == 0)
            return header.empty() ? FrameStatus::Closed
                                  : FrameStatus::Truncated;
        header.append(buf, static_cast<std::size_t>(n));
        headerEnd = header.find("\r\n\r\n");
        std::size_t sepLen = 4;
        if (headerEnd == std::string::npos) {
            headerEnd = header.find("\n\n");
            sepLen = 2;
        }
        if (headerEnd != std::string::npos) {
            spill = header.substr(headerEnd + sepLen);
            header.resize(headerEnd);
        } else if (header.size() > kMaxHeaderBytes) {
            request.error = "request header exceeds " +
                            std::to_string(kMaxHeaderBytes) + " bytes";
            return FrameStatus::Malformed;
        }
    }

    // Request line: METHOD SP TARGET SP VERSION.
    std::size_t lineEnd = header.find('\n');
    std::string line = header.substr(
        0, lineEnd == std::string::npos ? header.size() : lineEnd);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        request.error = "malformed request line";
        return FrameStatus::Malformed;
    }
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);

    // Headers: only Content-Length matters to this subset.
    std::size_t contentLength = 0;
    bool haveLength = false;
    std::size_t pos = lineEnd == std::string::npos ? header.size()
                                                   : lineEnd + 1;
    while (pos < header.size()) {
        std::size_t end = header.find('\n', pos);
        if (end == std::string::npos)
            end = header.size();
        std::string h = header.substr(pos, end - pos);
        if (!h.empty() && h.back() == '\r')
            h.pop_back();
        pos = end + 1;
        std::size_t colon = h.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = h.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        if (name != "content-length")
            continue;
        std::size_t value = 0;
        bool any = false, bad = false;
        for (std::size_t i = colon + 1; i < h.size(); ++i) {
            char c = h[i];
            if (c == ' ' || c == '\t')
                continue;
            if (c < '0' || c > '9') {
                bad = true;
                break;
            }
            // Cheap overflow guard: no real body needs > 2^53 bytes.
            if (value > (std::size_t{1} << 53)) {
                bad = true;
                break;
            }
            value = value * 10 + static_cast<std::size_t>(c - '0');
            any = true;
        }
        if (bad || !any) {
            request.error = "malformed Content-Length";
            return FrameStatus::Malformed;
        }
        contentLength = value;
        haveLength = true;
    }

    if (request.method == "POST" && !haveLength) {
        request.error = "POST requires Content-Length";
        return FrameStatus::Malformed;
    }
    if (contentLength > maxBodyBytes) {
        request.error = "payload of " + std::to_string(contentLength) +
                        " bytes exceeds the " +
                        std::to_string(maxBodyBytes) + "-byte limit";
        return FrameStatus::TooLarge;
    }

    request.body = std::move(spill);
    if (request.body.size() > contentLength)
        request.body.resize(contentLength); // ignore pipelined extra
    while (request.body.size() < contentLength) {
        if (!waitReadable(fd, idleTimeoutMs))
            return FrameStatus::TimedOut;
        ssize_t n = readRetry(fd, buf, sizeof buf);
        if (n <= 0)
            return FrameStatus::Truncated;
        std::size_t want = contentLength - request.body.size();
        request.body.append(buf, std::min(static_cast<std::size_t>(n),
                                          want));
    }
    return FrameStatus::Ok;
}

bool
writeHttpResponse(int fd, int status, const std::string &body,
                  const char *contentType)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       httpStatusText(status) + "\r\n" +
                       "Content-Type: " + contentType + "\r\n" +
                       "Content-Length: " + std::to_string(body.size()) +
                       "\r\n\r\n";
    std::string frame = head + body;
    std::size_t sent = 0;
    while (sent < frame.size()) {
        ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readHttpResponse(int fd, HttpResponse &response, int timeoutMs)
{
    response = HttpResponse{};
    // Read the response header, then exactly Content-Length body bytes.
    std::string header;
    std::string spill;
    std::size_t headerEnd = std::string::npos;
    char buf[4096];
    while (headerEnd == std::string::npos) {
        if (!waitReadable(fd, timeoutMs)) {
            response.error = "timed out waiting for the response";
            return false;
        }
        ssize_t n = readRetry(fd, buf, sizeof buf);
        if (n <= 0) {
            response.error = "connection closed mid-response";
            return false;
        }
        header.append(buf, static_cast<std::size_t>(n));
        headerEnd = header.find("\r\n\r\n");
        if (headerEnd != std::string::npos) {
            spill = header.substr(headerEnd + 4);
            header.resize(headerEnd);
        } else if (header.size() > kMaxHeaderBytes) {
            response.error = "oversized response header";
            return false;
        }
    }
    // Status line: HTTP/1.1 NNN Reason.
    std::size_t sp = header.find(' ');
    if (sp == std::string::npos) {
        response.error = "malformed status line";
        return false;
    }
    response.status = std::atoi(header.c_str() + sp + 1);
    std::size_t contentLength = 0;
    std::size_t pos = header.find("\ncontent-length:");
    if (pos == std::string::npos) {
        // Case-insensitive fallback scan.
        std::string lowered = header;
        for (char &c : lowered)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        pos = lowered.find("\ncontent-length:");
    }
    if (pos != std::string::npos)
        contentLength = static_cast<std::size_t>(
            std::atoll(header.c_str() + pos + 16));
    response.body = std::move(spill);
    if (response.body.size() > contentLength)
        response.body.resize(contentLength);
    while (response.body.size() < contentLength) {
        if (!waitReadable(fd, timeoutMs)) {
            response.error = "timed out reading the response body";
            return false;
        }
        ssize_t n = readRetry(fd, buf, sizeof buf);
        if (n <= 0) {
            response.error = "connection closed mid-body";
            return false;
        }
        std::size_t want = contentLength - response.body.size();
        response.body.append(buf, std::min(static_cast<std::size_t>(n),
                                           want));
    }
    return true;
}

bool
httpRoundTrip(int fd, const std::string &method,
              const std::string &target, const std::string &body,
              HttpResponse &response, int timeoutMs)
{
    response = HttpResponse{};
    std::string frame = method + " " + target + " HTTP/1.1\r\n" +
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < frame.size()) {
        ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            response.error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return readHttpResponse(fd, response, timeoutMs);
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 503: return "Service Unavailable";
      default: return "Status";
    }
}

} // namespace isaria::serve
