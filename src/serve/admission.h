#ifndef ISARIA_SERVE_ADMISSION_H
#define ISARIA_SERVE_ADMISSION_H

/**
 * @file
 * Admission control for the compile daemon: bounded queue, explicit
 * overload policy, and a soft-pressure degrade band.
 *
 * The controller tracks two resources — queued+running request count
 * and queued+running request payload bytes — and classifies each
 * arrival into one of three verdicts:
 *
 *   depth <= soft limit                 -> Admit (full budgets)
 *   soft  <  depth <= hard limit        -> Degrade (shrunk budgets:
 *                                          CompilerConfig::
 *                                          scaledForPressure)
 *   depth >  hard limit or bytes > cap  -> Reject (typed `overloaded`
 *                                          response, never queued)
 *
 * Rejecting at a hard edge keeps tail latency bounded (a queue that
 * only ever grows converts overload into timeouts for *everyone*),
 * while the degrade band sheds load gradually first — requests still
 * succeed, just with smaller eqsat budgets. Both thresholds are
 * static configuration; verdict counts are exported through the
 * metrics registry by the server.
 *
 * Thread-safe: admit/release are a mutex'd counter update, far off
 * any hot path (once per request, not per e-node).
 */

#include <cstddef>
#include <mutex>
#include <string>

namespace isaria::serve
{

/** Static admission thresholds. */
struct AdmissionLimits
{
    /** Requests admitted at full budgets while depth < softDepth. */
    std::size_t softDepth = 8;
    /** Hard ceiling on queued+running requests; beyond it arrivals
     *  are rejected with `overloaded`. */
    std::size_t hardDepth = 16;
    /** Ceiling on summed payload bytes of queued+running requests. */
    std::size_t maxBytes = 8u << 20;
    /** Budget scale applied in the degrade band (see
     *  CompilerConfig::scaledForPressure). */
    double degradeScale = 0.5;
};

/** What to do with one arriving request. */
enum class AdmissionVerdict
{
    Admit,
    Degrade,
    Reject,
};

/** Wire/metrics name ("admit" / "degrade" / "reject"). */
const char *admissionVerdictName(AdmissionVerdict verdict);

/** Bounded-queue accounting (see file comment). */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionLimits limits = {})
        : limits_(limits)
    {}

    /**
     * Classifies an arrival of @p payloadBytes. Admit/Degrade charge
     * the request against the queue (pair with release()); Reject
     * charges nothing. When draining, everything is rejected.
     */
    AdmissionVerdict admit(std::size_t payloadBytes);

    /** Returns one admitted request's charge (on completion, however
     *  it resolved). */
    void release(std::size_t payloadBytes);

    /** Stops admitting anything (the drain path). */
    void beginDrain();
    bool draining() const;

    /** Queued+running requests currently charged. */
    std::size_t depth() const;
    /** Payload bytes currently charged. */
    std::size_t chargedBytes() const;

    const AdmissionLimits &limits() const { return limits_; }

  private:
    AdmissionLimits limits_;
    mutable std::mutex mutex_;
    std::size_t depth_ = 0;
    std::size_t bytes_ = 0;
    bool draining_ = false;
};

} // namespace isaria::serve

#endif // ISARIA_SERVE_ADMISSION_H
