#include "serve/request.h"

#include <cmath>

#include "serve/json.h"
#include "term/sexpr.h"

namespace isaria::serve
{

namespace
{

/** Error at the line @p value started on. */
Error
errorAt(const JsonValue &value, std::string message)
{
    return Error{std::move(message), value.line};
}

/** Reads a non-negative integral field, bounded by @p max. */
Result<std::int64_t>
integerField(const JsonValue &value, const char *name, std::int64_t max)
{
    if (!value.isNumber() || !value.integral)
        return errorAt(value, std::string("\"") + name +
                                  "\" must be an integer");
    if (value.number < 0 || value.number > static_cast<double>(max))
        return errorAt(value, std::string("\"") + name +
                                  "\" out of range [0, " +
                                  std::to_string(max) + "]");
    return static_cast<std::int64_t>(value.number);
}

Result<KernelSpec>
parseKernelSpec(const JsonValue &kernel)
{
    if (!kernel.isObject())
        return errorAt(kernel, "\"kernel\" must be an object");
    const JsonValue *family = kernel.find("family");
    if (!family || !family->isString())
        return errorAt(kernel,
                       "\"kernel\" needs a string \"family\" member");
    std::vector<int> params;
    if (const JsonValue *p = kernel.find("params")) {
        if (!p->isArray())
            return errorAt(*p, "\"params\" must be an array of integers");
        for (const JsonValue &item : p->items) {
            auto got = integerField(item, "params", kMaxKernelParam);
            if (!got.ok())
                return got.error();
            if (got.value() < 1)
                return errorAt(item, "kernel parameters must be >= 1");
            params.push_back(static_cast<int>(got.value()));
        }
    }
    for (const auto &[key, value] : kernel.fields) {
        if (key != "family" && key != "params")
            return errorAt(value, "unknown \"kernel\" member \"" + key +
                                      "\"");
    }

    auto arity = [&](std::size_t want) -> std::optional<Error> {
        if (params.size() != want)
            return errorAt(kernel,
                           "family \"" + family->text + "\" takes " +
                               std::to_string(want) + " params, got " +
                               std::to_string(params.size()));
        return std::nullopt;
    };
    const std::string &name = family->text;
    if (name == "conv2d") {
        if (auto err = arity(4))
            return *err;
        return KernelSpec::conv2d(params[0], params[1], params[2],
                                  params[3]);
    }
    if (name == "matmul") {
        if (auto err = arity(3))
            return *err;
        return KernelSpec::matmul(params[0], params[1], params[2]);
    }
    if (name == "qprod") {
        if (auto err = arity(0))
            return *err;
        return KernelSpec::qprod();
    }
    if (name == "qrd") {
        if (auto err = arity(1))
            return *err;
        return KernelSpec::qrd(params[0]);
    }
    return errorAt(*family, "unknown kernel family \"" + name +
                                "\" (want conv2d, matmul, qprod, or "
                                "qrd)");
}

} // namespace

Result<CompileRequest>
parseCompileRequest(std::string_view body)
{
    Result<JsonValue> parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &root = parsed.value();
    if (!root.isObject())
        return errorAt(root, "request body must be a JSON object");

    CompileRequest request;
    const JsonValue *kernel = nullptr;
    const JsonValue *sexpr = nullptr;
    std::optional<MachineDesc> machine;

    for (const auto &[key, value] : root.fields) {
        if (key == "kernel") {
            kernel = &value;
        } else if (key == "sexpr") {
            if (!value.isString())
                return errorAt(value, "\"sexpr\" must be a string");
            sexpr = &value;
        } else if (key == "label") {
            if (!value.isString())
                return errorAt(value, "\"label\" must be a string");
            request.label = value.text;
        } else if (key == "deadline_ms") {
            auto got = integerField(value, "deadline_ms", 3'600'000);
            if (!got.ok())
                return got.error();
            request.deadlineSeconds =
                static_cast<double>(got.value()) / 1000.0;
        } else if (key == "mem_mb") {
            auto got = integerField(value, "mem_mb", 16'384);
            if (!got.ok())
                return got.error();
            request.memBytes =
                static_cast<std::size_t>(got.value()) * 1024 * 1024;
        } else if (key == "eqsat_threads") {
            auto got = integerField(value, "eqsat_threads", 64);
            if (!got.ok())
                return got.error();
            request.eqsatThreads = static_cast<int>(got.value());
        } else if (key == "scheduler") {
            if (!value.isString())
                return errorAt(value, "\"scheduler\" must be a string");
            auto parsedSched =
                eqSatSchedulerFromName(value.text.c_str());
            if (!parsedSched)
                return errorAt(value, "unknown scheduler \"" +
                                          value.text +
                                          "\" (want simple or backoff)");
            request.scheduler = *parsedSched;
        } else if (key == "max_loop_iterations") {
            auto got = integerField(value, "max_loop_iterations", 64);
            if (!got.ok())
                return got.error();
            request.maxLoopIterations = static_cast<int>(got.value());
        } else if (key == "emit_program") {
            if (!value.isBool())
                return errorAt(value,
                               "\"emit_program\" must be a boolean");
            request.emitProgram = value.boolean;
        } else if (key == "target") {
            if (!value.isString())
                return errorAt(value, "\"target\" must be a string");
            std::optional<MachineDesc> found =
                machineByName(value.text);
            if (!found)
                return errorAt(value, "unknown target \"" + value.text +
                                          "\" (known: " +
                                          knownMachineNames() + ")");
            machine = std::move(found);
        } else {
            return errorAt(value, "unknown request key \"" + key + "\"");
        }
    }

    if ((kernel == nullptr) == (sexpr == nullptr))
        return errorAt(root, "request needs exactly one of \"kernel\" "
                             "or \"sexpr\"");

    // Resolve the machine before lifting: the kernel is lifted at the
    // *target's* lane width, not a baked-in one.
    if (!machine)
        machine = MachineDesc::fromEnv();
    request.target = machine->name();

    if (kernel) {
        Result<KernelSpec> spec = parseKernelSpec(*kernel);
        if (!spec.ok())
            return spec.error();
        KernelHarness harness(spec.value(), *machine);
        request.program = harness.scalarProgram();
        if (request.label.empty())
            request.label = spec.value().label();
    } else {
        if (sexpr->text.empty())
            return errorAt(*sexpr, "\"sexpr\" must not be empty");
        // parseSexpr reports syntax errors by throwing FatalError;
        // convert to a diagnostic anchored at the "sexpr" line of the
        // request body, exactly like rules-file loading does per line.
        try {
            request.program = parseSexpr(sexpr->text);
        } catch (const FatalError &e) {
            return errorAt(*sexpr,
                           std::string("bad \"sexpr\": ") + e.what());
        }
        if (request.label.empty())
            request.label = "sexpr";
    }
    return request;
}

const char *
responseTypeName(ResponseType type)
{
    switch (type) {
      case ResponseType::Report: return "report";
      case ResponseType::DegradedReport: return "degraded-report";
      case ResponseType::Error: return "error";
      case ResponseType::Overloaded: return "overloaded";
    }
    return "?";
}

ServeResponse
makeErrorResponse(const Error &error, int status)
{
    ServeResponse response;
    response.type = ResponseType::Error;
    response.status = status;
    response.body = std::string("{\"type\":\"error\",\"error\":{") +
                    "\"message\":\"" + jsonEscapeString(error.message) +
                    "\",\"line\":" + std::to_string(error.line) + "}}";
    return response;
}

ServeResponse
makeOverloadedResponse(const std::string &reason, std::size_t queueDepth,
                       double retryAfterSeconds)
{
    ServeResponse response;
    response.type = ResponseType::Overloaded;
    response.status = 503;
    long retryMs = std::lround(retryAfterSeconds * 1000.0);
    response.body = std::string("{\"type\":\"overloaded\",\"reason\":\"") +
                    jsonEscapeString(reason) +
                    "\",\"queue_depth\":" + std::to_string(queueDepth) +
                    ",\"retry_after_ms\":" + std::to_string(retryMs) +
                    "}";
    return response;
}

} // namespace isaria::serve
