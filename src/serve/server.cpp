#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "serve/socket.h"
#include "support/timer.h"

namespace isaria::serve
{

namespace
{

/** One admitted request in flight: the worker's input, the monitor's
 *  cancellation surface, and the connection thread's wait handle. */
struct RequestState
{
    RequestState(CompileRequest req, AdmissionVerdict v, int clientFd,
                 double deadlineSeconds)
        : request(std::move(req)), verdict(v), fd(clientFd),
          deadline(deadlineSeconds)
    {}

    CompileRequest request;
    AdmissionVerdict verdict;
    /** The client socket, probed by the monitor for hangup while the
     *  connection thread is parked on `cv`. */
    int fd;
    Deadline deadline;
    CancellationToken token;
    std::atomic<bool> deadlineHit{false};
    std::atomic<bool> disconnectHit{false};
    Stopwatch queued;

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    ServeResponse response;
};

} // namespace

struct ServeServer::Impl
{
    Impl(const IsariaCompiler &compiler, ServeConfig cfg)
        : service(compiler, std::move(cfg))
    {}

    CompileService service;
    UniqueFd listener;

    std::atomic<bool> draining{false};
    std::atomic<bool> joined{false};
    /** Workers exit only once this is set — which stopAndJoin() does
     *  strictly after every connection thread has been joined, so a
     *  request admitted in the instant before the drain flag flipped
     *  still finds a live worker for its queued job. */
    std::atomic<bool> workersStop{false};
    /** Set by the monitor once the drain deadline passes. */
    std::atomic<bool> drainExpired{false};
    std::mutex drainMutex;
    /** Valid while draining; guarded by drainMutex. */
    std::unique_ptr<Deadline> drainDeadline;

    // Compile job queue (bounded upstream by admission control).
    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<std::shared_ptr<RequestState>> queue;

    // Every admitted, unresponded request (monitor scan set).
    mutable std::mutex activeMutex;
    std::vector<std::shared_ptr<RequestState>> active;

    std::thread acceptThread;
    std::vector<std::thread> workers;
    std::thread monitorThread;
    std::mutex connMutex;
    std::vector<std::thread> connections;
    std::condition_variable connCv;
    std::size_t liveConnections = 0;

    // -----------------------------------------------------------------

    void
    registerActive(const std::shared_ptr<RequestState> &state)
    {
        std::lock_guard<std::mutex> lock(activeMutex);
        active.push_back(state);
        static const obs::GaugeHandle gActive =
            obs::metricGauge("serve/active_requests");
        obs::metricSet(gActive,
                       static_cast<std::int64_t>(active.size()));
    }

    void
    unregisterActive(const std::shared_ptr<RequestState> &state)
    {
        std::lock_guard<std::mutex> lock(activeMutex);
        for (auto it = active.begin(); it != active.end(); ++it) {
            if (it->get() == state.get()) {
                active.erase(it);
                break;
            }
        }
        static const obs::GaugeHandle gActive =
            obs::metricGauge("serve/active_requests");
        obs::metricSet(gActive,
                       static_cast<std::int64_t>(active.size()));
    }

    void
    enqueue(const std::shared_ptr<RequestState> &state)
    {
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            queue.push_back(state);
            static const obs::GaugeHandle gDepth =
                obs::metricGauge("serve/queue_depth");
            static const obs::GaugeHandle gPeak =
                obs::metricGauge("serve/queue_depth_peak");
            obs::metricSet(gDepth,
                           static_cast<std::int64_t>(queue.size()));
            obs::metricMax(gPeak,
                           static_cast<std::int64_t>(queue.size()));
        }
        queueCv.notify_one();
    }

    void
    workerLoop()
    {
        while (true) {
            std::shared_ptr<RequestState> job;
            {
                std::unique_lock<std::mutex> lock(queueMutex);
                queueCv.wait(lock, [&] {
                    return !queue.empty() || workersStop.load();
                });
                if (queue.empty())
                    return; // stopping and nothing left
                job = std::move(queue.front());
                queue.pop_front();
                static const obs::GaugeHandle gDepth =
                    obs::metricGauge("serve/queue_depth");
                obs::metricSet(gDepth,
                               static_cast<std::int64_t>(queue.size()));
            }
            ServeResponse response = service.compileAdmitted(
                job->request, job->verdict, &job->token,
                job->queued.elapsedSeconds());
            {
                std::lock_guard<std::mutex> lock(job->m);
                job->response = std::move(response);
                job->done = true;
            }
            job->cv.notify_all();
        }
    }

    void
    monitorLoop()
    {
        static const obs::CounterHandle cDeadline =
            obs::metricCounter("serve/deadline_cancelled");
        static const obs::CounterHandle cDisconnect =
            obs::metricCounter("serve/disconnect_cancelled");
        while (!joined.load()) {
            {
                std::vector<std::shared_ptr<RequestState>> scan;
                {
                    std::lock_guard<std::mutex> lock(activeMutex);
                    scan = active;
                }
                bool drainCut = false;
                if (draining.load() && !drainExpired.load()) {
                    std::lock_guard<std::mutex> lock(drainMutex);
                    if (drainDeadline && drainDeadline->expired()) {
                        drainExpired.store(true);
                        drainCut = true;
                    }
                }
                for (const auto &state : scan) {
                    if (state->token.cancelled())
                        continue;
                    if (drainCut || drainExpired.load()) {
                        state->token.cancel();
                        continue;
                    }
                    if (state->deadline.expired()) {
                        state->deadlineHit.store(true);
                        state->token.cancel();
                        obs::metricAdd(cDeadline);
                        continue;
                    }
                    if (peerDisconnected(state->fd)) {
                        state->disconnectHit.store(true);
                        state->token.cancel();
                        obs::metricAdd(cDisconnect);
                    }
                }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }

    // -----------------------------------------------------------------

    void
    serveMetrics(int fd)
    {
        std::ostringstream page;
        obs::exportOpenMetrics(obs::snapshotMetrics(), page);
        writeHttpResponse(fd, 200, page.str(),
                          "text/plain; charset=utf-8");
    }

    void
    serveHealth(int fd)
    {
        std::string body = std::string("{\"status\":\"") +
                           (draining.load() ? "draining" : "ok") +
                           "\"}";
        writeHttpResponse(fd, 200, body);
    }

    /** Handles one POST /compile body on a connection thread. */
    void
    serveCompile(int fd, std::string &&body)
    {
        static const obs::HistogramHandle hRequest =
            obs::metricHistogram("serve/request_ns");
        Stopwatch watch;
        std::size_t payloadBytes = body.size();
        Intake in = service.intake(body);
        if (!in.admitted) {
            writeHttpResponse(fd, in.response.status, in.response.body);
            return;
        }

        double deadline = in.request.deadlineSeconds > 0
                              ? in.request.deadlineSeconds
                              : service.config().defaultDeadlineSeconds;
        auto state = std::make_shared<RequestState>(
            std::move(in.request), in.verdict, fd, deadline);
        registerActive(state);
        enqueue(state);
        {
            std::unique_lock<std::mutex> lock(state->m);
            state->cv.wait(lock, [&] { return state->done; });
        }
        unregisterActive(state);
        service.finish(payloadBytes);
        obs::metricRecord(
            hRequest,
            static_cast<std::uint64_t>(watch.elapsedSeconds() * 1e9));
        // A hung-up client gets no write (EPIPE is harmless anyway,
        // SIGPIPE being ignored process-wide), but the compile already
        // stopped early: its token fired on the disconnect.
        if (!state->disconnectHit.load())
            writeHttpResponse(fd, state->response.status,
                              state->response.body);
    }

    void
    connectionLoop(UniqueFd fd)
    {
        static const obs::CounterHandle cConnections =
            obs::metricCounter("serve/connections");
        obs::metricAdd(cConnections);
        Stopwatch idle;
        while (true) {
            // Poll in short slices so a drain closes idle connections
            // promptly instead of waiting out the full idle timeout.
            if (!waitReadable(fd.get(), 100)) {
                if (draining.load())
                    break;
                if (idle.elapsedSeconds() * 1000.0 >
                    service.config().idleTimeoutMs)
                    break;
                continue;
            }
            HttpRequest request;
            FrameStatus status = readHttpRequest(
                fd.get(), request, service.config().maxBodyBytes,
                service.config().idleTimeoutMs);
            if (status == FrameStatus::Closed ||
                status == FrameStatus::Truncated ||
                status == FrameStatus::TimedOut)
                break;
            if (status == FrameStatus::Malformed ||
                status == FrameStatus::TooLarge) {
                static const obs::CounterHandle cFrameErrors =
                    obs::metricCounter("serve/frame_errors");
                obs::metricAdd(cFrameErrors);
                ServeResponse response = makeErrorResponse(
                    Error{request.error, 1},
                    status == FrameStatus::TooLarge ? 413 : 400);
                writeHttpResponse(fd.get(), response.status,
                                  response.body);
                break; // framing is broken; don't trust the stream
            }
            if (request.method == "GET" &&
                request.target == "/metrics") {
                serveMetrics(fd.get());
            } else if (request.method == "GET" &&
                       request.target == "/healthz") {
                serveHealth(fd.get());
            } else if (request.method == "POST" &&
                       request.target == "/compile") {
                serveCompile(fd.get(), std::move(request.body));
            } else {
                ServeResponse response = makeErrorResponse(
                    Error{"no such endpoint: " + request.method + " " +
                              request.target,
                          1},
                    404);
                writeHttpResponse(fd.get(), response.status,
                                  response.body);
            }
            idle.reset();
        }
        std::lock_guard<std::mutex> lock(connMutex);
        --liveConnections;
        connCv.notify_all();
    }

    void
    acceptLoop()
    {
        while (!draining.load()) {
            if (!waitReadable(listener.get(), 100))
                continue;
            int client = ::accept(listener.get(), nullptr, nullptr);
            if (client < 0)
                continue;
            std::lock_guard<std::mutex> lock(connMutex);
            ++liveConnections;
            connections.emplace_back(
                [this, fd = UniqueFd(client)]() mutable {
                    connectionLoop(std::move(fd));
                });
        }
    }
};

ServeServer::ServeServer(const IsariaCompiler &compiler, ServeConfig config)
    : impl_(std::make_unique<Impl>(compiler, std::move(config)))
{}

ServeServer::~ServeServer()
{
    stopAndJoin();
}

bool
ServeServer::start(std::string *error)
{
    impl_->listener = listenUnix(impl_->service.config().socketPath,
                                 /*backlog=*/64, error);
    if (!impl_->listener)
        return false;
    int workers = std::max(1, impl_->service.config().workers);
    for (int i = 0; i < workers; ++i)
        impl_->workers.emplace_back([this] { impl_->workerLoop(); });
    impl_->monitorThread = std::thread([this] { impl_->monitorLoop(); });
    impl_->acceptThread = std::thread([this] { impl_->acceptLoop(); });
    return true;
}

void
ServeServer::requestStop()
{
    bool expected = false;
    if (!impl_->draining.compare_exchange_strong(expected, true))
        return;
    impl_->service.admission().beginDrain();
    {
        std::lock_guard<std::mutex> lock(impl_->drainMutex);
        impl_->drainDeadline = std::make_unique<Deadline>(
            impl_->service.config().drainDeadlineSeconds);
    }
    static const obs::CounterHandle cDrains =
        obs::metricCounter("serve/drains");
    obs::metricAdd(cDrains);
    impl_->queueCv.notify_all();
}

void
ServeServer::stopAndJoin()
{
    if (impl_->joined.load())
        return;
    requestStop();
    if (impl_->acceptThread.joinable())
        impl_->acceptThread.join();
    {
        // Connection threads notice the drain within one 100 ms poll
        // slice; in-flight requests finish first (their compiles are
        // cut by the monitor once the drain deadline passes).
        std::unique_lock<std::mutex> lock(impl_->connMutex);
        impl_->connCv.wait(lock,
                           [&] { return impl_->liveConnections == 0; });
        for (std::thread &t : impl_->connections)
            if (t.joinable())
                t.join();
        impl_->connections.clear();
    }
    impl_->workersStop.store(true);
    impl_->queueCv.notify_all();
    for (std::thread &t : impl_->workers)
        if (t.joinable())
            t.join();
    impl_->workers.clear();
    impl_->joined.store(true);
    if (impl_->monitorThread.joinable())
        impl_->monitorThread.join();
    impl_->listener.reset();
    ::unlink(impl_->service.config().socketPath.c_str());
    if (!impl_->service.config().finalMetricsPath.empty()) {
        obs::MetricsSnapshotWriter writer(
            impl_->service.config().finalMetricsPath,
            /*intervalSeconds=*/0);
        writer.writeNow();
    }
}

std::size_t
ServeServer::activeRequests() const
{
    std::lock_guard<std::mutex> lock(impl_->activeMutex);
    return impl_->active.size();
}

void
ServeServer::addTarget(const std::string &name,
                       const IsariaCompiler &compiler)
{
    impl_->service.addTarget(name, compiler);
}

CompileService &
ServeServer::service()
{
    return impl_->service;
}

const ServeConfig &
ServeServer::config() const
{
    return impl_->service.config();
}

} // namespace isaria::serve
