#ifndef ISARIA_SERVE_REQUEST_H
#define ISARIA_SERVE_REQUEST_H

/**
 * @file
 * Typed compile requests and responses for the serve tier.
 *
 * A request is one JSON object naming a kernel — either a benchmark
 * family with parameters or a raw kernel s-expression — plus optional
 * per-request knobs (deadline, memory ceiling, eqsat threads,
 * scheduler). Parsing is strict: a malformed body, an unknown key, an
 * out-of-range parameter, or a bad sexpr all become line-numbered
 * Error diagnostics (the same Result discipline as RuleSet::parse),
 * so the server can answer with a typed `error` response and move on
 * with zero state mutated.
 *
 * Every response the daemon ever writes is one of four types —
 * `report`, `degraded-report`, `error`, `overloaded` — which is what
 * the chaos suite asserts: under fault injection and overload, each
 * request still gets exactly one typed response.
 *
 * Request JSON:
 *
 *   {
 *     "kernel": {"family": "conv2d", "params": [4, 4, 3, 3]},
 *     // ...or instead of "kernel":
 *     "sexpr": "(List (Vec (Get a 0) ...))", "label": "custom",
 *     "deadline_ms": 2000,        // wall budget; 0/absent = server default
 *     "mem_mb": 64,               // e-graph byte ceiling per saturation
 *     "eqsat_threads": 1,         // search threads inside this request
 *     "scheduler": "backoff",    // rule scheduling policy
 *     "max_loop_iterations": 6,   // Fig. 3 improve-loop cap
 *     "emit_program": true,       // include the compiled sexpr
 *     "target": "rvv8"            // machine description (canonical
 *                                 // name or alias; absent = server
 *                                 // default target)
 *   }
 */

#include <cstdint>
#include <optional>
#include <string>

#include "baseline/harness.h"
#include "support/result.h"
#include "term/rec_expr.h"

namespace isaria::serve
{

/** Largest kernel dimension a request may ask for; bounds the cost
 *  of lifting and the size of the seeded e-graph (a 16x16 conv is
 *  already far beyond the paper's evaluation sizes). */
inline constexpr int kMaxKernelParam = 16;

/** One parsed, validated compile request. */
struct CompileRequest
{
    /** Display label ("conv2d 4x4 3x3" or the client's "label"). */
    std::string label;
    /** The lifted scalar program to vectorize. */
    RecExpr program;
    /** Wall-clock deadline in seconds (0 = server default). */
    double deadlineSeconds = 0;
    /** Per-saturation byte ceiling (0 = server default). */
    std::size_t memBytes = 0;
    /** EqSat search threads (0 = server default). */
    int eqsatThreads = 0;
    /** Scheduler override (absent = server default). */
    std::optional<EqSatScheduler> scheduler;
    /** Fig. 3 loop cap override (0 = server default). */
    int maxLoopIterations = 0;
    /** Echo the compiled program sexpr in the response. */
    bool emitProgram = false;
    /** Canonical name of the requested machine (always resolved —
     *  parsing canonicalizes aliases and defaults to the session
     *  machine). Kernel lifting happens at this target's width. */
    std::string target;
};

/**
 * Parses and validates @p body. Errors carry the 1-based line within
 * the request body. Pure: no server state is touched on any path.
 */
Result<CompileRequest> parseCompileRequest(std::string_view body);

/** The four response types every request resolves to. */
enum class ResponseType
{
    /** Clean compile: full-budget result, no degradation. */
    Report,
    /** The compile degraded (soft-pressure budgets, deadline cut,
     *  absorbed fault, client disconnect) but still emitted a
     *  program and its report. */
    DegradedReport,
    /** The request itself was unusable (framing, JSON, validation). */
    Error,
    /** Admission control refused the request (hard overload or
     *  draining); retry later. */
    Overloaded,
};

/** Wire name of @p type ("report", "degraded-report", ...). */
const char *responseTypeName(ResponseType type);

/** One response about to be framed onto the socket. */
struct ServeResponse
{
    ResponseType type = ResponseType::Error;
    /** HTTP status the framing layer sends (200/400/413/503). */
    int status = 500;
    /** The JSON body ({"type": ..., ...}). */
    std::string body;
};

/** Builds the typed `error` response for @p error (status 400, or
 *  @p status when given, e.g. 413 for an oversized payload). */
ServeResponse makeErrorResponse(const Error &error, int status = 400);

/** Builds the typed `overloaded` response. @p reason is the wire
 *  string ("queue-full", "bytes-full", "draining"). */
ServeResponse makeOverloadedResponse(const std::string &reason,
                                     std::size_t queueDepth,
                                     double retryAfterSeconds);

} // namespace isaria::serve

#endif // ISARIA_SERVE_REQUEST_H
