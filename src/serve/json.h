#ifndef ISARIA_SERVE_JSON_H
#define ISARIA_SERVE_JSON_H

/**
 * @file
 * A small JSON reader for untrusted request bodies.
 *
 * The serve protocol frames compile requests as JSON, and request
 * isolation demands that *any* byte sequence a client sends comes
 * back as a line-numbered Result diagnostic — in the same style as
 * RuleSet::parse — never as an exception escaping the connection
 * handler. So this parser is exception-free by construction: strict
 * recursive descent (RFC 8259 subset: no comments, no trailing
 * commas), every error carries the 1-based line of the offending
 * byte, and depth/size are bounded so a hostile payload ("[[[[[..."
 * a megabyte deep) cannot blow the stack.
 *
 * Numbers are held as double plus an integer flag; the request layer
 * re-checks ranges per field. Object keys keep insertion order (the
 * request parser reports *unknown* keys, so ordering matters for
 * stable diagnostics).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/result.h"

namespace isaria::serve
{

/** Nesting depth beyond which parsing fails (stack safety). */
inline constexpr int kJsonMaxDepth = 64;

/** One parsed JSON value (a small tagged tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    /** The number literal had no '.', 'e', or 'E' (safe as integer). */
    bool integral = false;
    std::string text;
    std::vector<JsonValue> items;
    /** Key -> value, in document order. */
    std::vector<std::pair<std::string, JsonValue>> fields;
    /** 1-based line where this value started (diagnostics). */
    int line = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** The member named @p key, or nullptr. */
    const JsonValue *
    find(std::string_view key) const
    {
        for (const auto &[name, value] : fields)
            if (name == key)
                return &value;
        return nullptr;
    }
};

/** Parses @p text as one JSON document (trailing garbage is an
 *  error). Diagnostics carry the 1-based input line. */
Result<JsonValue> parseJson(std::string_view text);

/** Escapes @p text for embedding inside a JSON string literal. */
std::string jsonEscapeString(std::string_view text);

} // namespace isaria::serve

#endif // ISARIA_SERVE_JSON_H
