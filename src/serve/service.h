#ifndef ISARIA_SERVE_SERVICE_H
#define ISARIA_SERVE_SERVICE_H

/**
 * @file
 * The socket-free core of the compile daemon.
 *
 * CompileService owns everything about a request's lifecycle except
 * the wire: parsing and validation, the admission verdict, deriving
 * the per-request CompilerConfig from the server defaults and the
 * request's knobs, running the shared compiler, and building the
 * typed response envelope. ServeServer (server.h) is a thin transport
 * around it — which is what makes the malformed-request and chaos
 * suites table-driven: they drive the exact production request path
 * through handle() with no sockets or threads in the way.
 *
 * The lifecycle is split into three calls so the server can run the
 * cheap half on a connection thread and the expensive half on a
 * compile worker:
 *
 *   intake()          parse + admission verdict (holds the queue
 *                     charge on Admit/Degrade)
 *   compileAdmitted() the compile itself, under the per-request
 *                     config and cancellation token
 *   finish()          returns the queue charge
 *
 * handle() composes all three for synchronous callers (tests, the
 * smoke tool).
 */

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "compiler/compiler.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "support/cancel.h"

namespace isaria::serve
{

/** Daemon-wide configuration (socket, pools, defaults, drain). */
struct ServeConfig
{
    /** Filesystem path of the unix-domain listening socket. */
    std::string socketPath = "isaria.sock";
    /** Compile worker threads draining the admission queue. */
    int workers = 2;
    /** Admission thresholds (soft degrade band, hard reject edge). */
    AdmissionLimits admission;
    /** Wall-clock deadline applied when a request names none. */
    double defaultDeadlineSeconds = 30.0;
    /** Per-saturation e-graph byte ceiling when a request names none
     *  (EqSatLimits::maxBytes; the per-request memory account). */
    std::size_t defaultMemBytes = 64u << 20;
    /** EqSat search threads per request when a request names none.
     *  Kept at 1: request-level parallelism comes from the worker
     *  pool, and every extra search thread multiplies across workers. */
    int defaultEqsatThreads = 1;
    /** Hard cap on a request body (admission charges payload bytes). */
    std::size_t maxBodyBytes = 1u << 20;
    /** Per-read idle timeout on a connection (ms). */
    int idleTimeoutMs = 10'000;
    /** After SIGTERM/SIGINT: in-flight compiles get this long before
     *  their tokens are tripped and they finish best-so-far. */
    double drainDeadlineSeconds = 5.0;
    /** Suggested client backoff stamped into `overloaded` responses. */
    double retryAfterSeconds = 0.25;
    /** Final OpenMetrics page written on shutdown ("" = skip). */
    std::string finalMetricsPath;
};

/** Result of the parse + admission half of one request. */
struct Intake
{
    /** False: `response` is final (error or overloaded), nothing is
     *  charged. True: `request`/`verdict` are live and the admission
     *  charge is held — the caller owes exactly one finish(). */
    bool admitted = false;
    CompileRequest request;
    AdmissionVerdict verdict = AdmissionVerdict::Reject;
    ServeResponse response;
};

/** See the file comment. Thread-safe: any number of threads may run
 *  intake/compileAdmitted/finish concurrently against one service. */
class CompileService
{
  public:
    /** @p compiler is shared across every request (warm rule cache
     *  and compile memo); it must outlive the service. It serves the
     *  session default target (MachineDesc::fromEnv). */
    CompileService(const IsariaCompiler &compiler, ServeConfig config);

    /**
     * Registers a compiler for one more target (canonical
     * MachineDesc name). Call before serving traffic — the registry
     * is read lock-free by the worker threads. @p compiler must
     * outlive the service. Re-registering a name replaces it.
     */
    void addTarget(const std::string &name,
                   const IsariaCompiler &compiler);

    /** The compiler serving @p target ("" = the default target);
     *  nullptr when no compiler is registered for it. */
    const IsariaCompiler *compilerFor(const std::string &target) const;

    /**
     * Parses @p body and takes the admission verdict, charging
     * body.size() payload bytes. Records the request/reject/error
     * metrics. Pure with respect to compiler state on every failure
     * path.
     */
    Intake intake(std::string_view body);

    /**
     * Compiles an admitted request. @p cancel (may be null) is the
     * per-request token — deadline expiry, client disconnect, and
     * drain all arrive through it. @p queueSeconds is how long the
     * request waited between intake and this call (stamped into the
     * response and the serve/queue_ns histogram). Never throws; an
     * escaped compile failure is already absorbed by the compiler's
     * scalar-fallback rung.
     */
    ServeResponse compileAdmitted(const CompileRequest &request,
                                  AdmissionVerdict verdict,
                                  const CancellationToken *cancel,
                                  double queueSeconds);

    /** Returns the admission charge of one admitted intake(). */
    void finish(std::size_t payloadBytes);

    /** intake + compileAdmitted + finish, synchronously. */
    ServeResponse handle(std::string_view body,
                         const CancellationToken *cancel = nullptr);

    /**
     * The per-request CompilerConfig: server defaults overlaid with
     * the request's knobs, soft-pressure-scaled when @p verdict is
     * Degrade, cancellation threaded. Exposed for the config tests.
     */
    CompilerConfig effectiveConfig(const CompileRequest &request,
                                   AdmissionVerdict verdict,
                                   const CancellationToken *cancel) const;

    AdmissionController &admission() { return admission_; }
    const ServeConfig &config() const { return config_; }
    const IsariaCompiler &compiler() const { return compiler_; }

  private:
    const IsariaCompiler &compiler_;
    ServeConfig config_;
    AdmissionController admission_;
    /** target name -> compiler; small, linear-scanned, written only
     *  before traffic starts. The default target is entry 0. */
    std::vector<std::pair<std::string, const IsariaCompiler *>>
        targets_;
};

} // namespace isaria::serve

#endif // ISARIA_SERVE_SERVICE_H
