#ifndef ISARIA_SERVE_SOCKET_H
#define ISARIA_SERVE_SOCKET_H

/**
 * @file
 * Unix-domain sockets and minimal HTTP/1.1 framing for the daemon.
 *
 * The wire protocol is a deliberately small HTTP subset — enough that
 * `curl --unix-socket` works against the daemon while keeping the
 * parser small enough to reason about under hostile input:
 *
 *   POST /compile  Content-Length-framed JSON body -> typed response
 *   GET  /metrics  -> the OpenMetrics page of the registry
 *   GET  /healthz  -> {"status": "ok" | "draining"}
 *
 * Framing failures are classified, not thrown: a truncated header or
 * body, an oversized payload, or a bare disconnect each map to a
 * distinct FrameStatus the connection loop turns into a typed error
 * response (or a silent close for a half-request hangup). All reads
 * carry a poll() timeout so a stalled client cannot pin a connection
 * thread forever.
 */

#include <cstddef>
#include <string>

#include "support/fd.h"

namespace isaria::serve
{

/** Bound, listening unix-domain socket at @p path (unlinks a stale
 *  socket file first). Empty UniqueFd + @p error on failure. */
UniqueFd listenUnix(const std::string &path, int backlog,
                    std::string *error);

/** Blocking client connect to @p path. */
UniqueFd connectUnix(const std::string &path, std::string *error);

/** True when @p fd has readable data or EOF within @p timeoutMs. */
bool waitReadable(int fd, int timeoutMs);

/**
 * True when the peer of @p fd has hung up: POLLHUP/POLLERR, or
 * pending EOF (a zero-byte MSG_PEEK read). Non-blocking; safe to
 * call from the monitor thread while no one is reading the socket.
 */
bool peerDisconnected(int fd);

/** Outcome of reading one framed request. */
enum class FrameStatus
{
    /** A complete request was parsed. */
    Ok,
    /** Orderly EOF before any request byte (client done). */
    Closed,
    /** Connection died mid-frame (truncated header or body). */
    Truncated,
    /** Syntactically invalid request line or headers. */
    Malformed,
    /** Content-Length exceeds the server's payload ceiling. */
    TooLarge,
    /** No bytes within the idle timeout. */
    TimedOut,
};

/** One parsed HTTP request. */
struct HttpRequest
{
    std::string method;
    std::string target;
    std::string body;
    /** Parse diagnostic when the status is Malformed/TooLarge. */
    std::string error;
};

/** Hard cap on request-line + header bytes. */
inline constexpr std::size_t kMaxHeaderBytes = 8 * 1024;

/**
 * Reads one request from @p fd. @p maxBodyBytes bounds Content-
 * Length; @p idleTimeoutMs bounds the wait for the first byte (and
 * each subsequent read). Never throws.
 */
FrameStatus readHttpRequest(int fd, HttpRequest &request,
                            std::size_t maxBodyBytes, int idleTimeoutMs);

/**
 * Writes a complete response (status line, Content-Type:
 * application/json unless @p contentType overrides, Content-Length,
 * blank line, body). False when the peer is gone (EPIPE — ignored
 * thanks to the process-wide SIGPIPE policy).
 */
bool writeHttpResponse(int fd, int status, const std::string &body,
                       const char *contentType = "application/json");

/** Standard reason phrase for @p status ("OK", "Bad Request", ...). */
const char *httpStatusText(int status);

/** A client-side view of one response. */
struct HttpResponse
{
    int status = 0;
    std::string body;
    /** Transport diagnostic when the round trip failed. */
    std::string error;
};

/**
 * Client-side response reader: parses one status line + headers +
 * Content-Length body from @p fd. False + @p response.error on
 * transport failure. Usable on its own when the request bytes went
 * out by hand (the chaos suite's hostile frames).
 */
bool readHttpResponse(int fd, HttpResponse &response,
                      int timeoutMs = 30'000);

/**
 * Client half of the protocol: writes one Content-Length-framed
 * request and reads the response. Used by the smoke/chaos/bench
 * clients; the server never calls this. False + @p response.error on
 * transport failure.
 */
bool httpRoundTrip(int fd, const std::string &method,
                   const std::string &target, const std::string &body,
                   HttpResponse &response, int timeoutMs = 30'000);

} // namespace isaria::serve

#endif // ISARIA_SERVE_SOCKET_H
