#ifndef ISARIA_SERVE_SERVER_H
#define ISARIA_SERVE_SERVER_H

/**
 * @file
 * The compile daemon's transport: unix-socket listener, connection
 * threads, compile worker pool, and the monitor thread that turns
 * deadlines, client disconnects, and drain into cancellation.
 *
 * Thread architecture (all cooperating through CompileService):
 *
 *   accept thread      blocks in accept(); one connection thread per
 *                      client (unix sockets, local clients — the
 *                      admission controller, not the thread count, is
 *                      the concurrency bound that matters).
 *   connection thread  frames requests (socket.h), runs the cheap
 *                      intake half (parse + admission), enqueues the
 *                      compile job, waits for its completion, writes
 *                      the response, loops (keep-alive).
 *   compile workers    N threads draining the bounded job queue; each
 *                      runs CompileService::compileAdmitted under the
 *                      request's token.
 *   monitor thread     ~20 ms scan of in-flight requests: trips a
 *                      request's token on deadline expiry or client
 *                      hangup (peerDisconnected — the connection
 *                      thread is parked waiting on the worker, so the
 *                      socket is quiet), and trips every token once a
 *                      drain outlives ServeConfig::drainDeadlineSeconds.
 *
 * Drain (requestStop, or the tool's SIGTERM/SIGINT watcher): admission
 * flips to reject-everything ("draining"), the listener closes,
 * connection threads finish their in-flight request and exit, workers
 * drain the queue — every admitted request still gets its typed
 * response, degraded at worst — and stopAndJoin() writes the final
 * OpenMetrics page.
 *
 * Request isolation: nothing a client sends reaches the server as an
 * exception (framing is classified, parsing returns Result, the
 * compiler absorbs its own failures into the degradation ladder), so
 * one hostile request can neither kill the process nor poison the
 * shared caches.
 */

#include <memory>
#include <string>

#include "serve/service.h"

namespace isaria::serve
{

/** See the file comment. start() → (drain signal →) stopAndJoin(). */
class ServeServer
{
  public:
    /** @p compiler must outlive the server. */
    ServeServer(const IsariaCompiler &compiler, ServeConfig config);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Registers one more target compiler (canonical MachineDesc
     *  name) with the service. Call before start(). */
    void addTarget(const std::string &name,
                   const IsariaCompiler &compiler);

    /** Binds the socket and launches the threads. False + @p error on
     *  bind failure. */
    bool start(std::string *error);

    /** Begins the drain (idempotent, callable from any thread — the
     *  signal watcher calls this). Returns immediately. */
    void requestStop();

    /** requestStop() + joins everything + final metrics flush.
     *  Called by the destructor if the caller didn't. */
    void stopAndJoin();

    /** Requests currently past admission and not yet responded. */
    std::size_t activeRequests() const;

    CompileService &service();
    const ServeConfig &config() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace isaria::serve

#endif // ISARIA_SERVE_SERVER_H
