#ifndef ISARIA_LOWER_LOWER_H
#define ISARIA_LOWER_LOWER_H

/**
 * @file
 * Lowering: from the vector DSL onto the virtual DSP ISA.
 *
 * This is the Diospyros back-end role: `Vec` literals — which the
 * rewrite system treats abstractly — become concrete data movement.
 * A Vec of contiguous elements of one array becomes a vector load; a
 * Vec of constants becomes a constant load; anything else pays one
 * lane insertion per computed element, which is exactly the cost
 * structure the abstract cost model charges.
 *
 * Common subexpressions are emitted once (the extracted term is a
 * DAG), and program outputs are written to the `__out` array, one
 * width-sized chunk per top-level List element.
 */

#include "support/result.h"
#include "term/rec_expr.h"
#include "vm/vm_isa.h"

namespace isaria
{

/** Options for one lowering. */
struct LowerOptions
{
    /** Lane width, derived from the active machine description at
     *  every construction site (MachineDesc::vectorWidth). 0 = unset;
     *  lowering rejects it rather than assuming a target. */
    int width = 0;
    /**
     * Forbid vector instructions: every Vec chunk is computed lane by
     * lane on the scalar path (the unvectorized-clang baseline).
     */
    bool scalarOnly = false;
    /**
     * Number of real (unpadded) output elements; padded lanes beyond
     * this are not stored when a chunk is lowered lane-by-lane.
     * -1 = store everything.
     */
    int totalOutputs = -1;
    /**
     * Top-level chunks that are still raw Vec literals (i.e. the SLP
     * baseline failed to pack them) are computed and stored on the
     * scalar path instead of paying lane inserts plus a vector store.
     */
    bool scalarizeRawChunks = false;
    /**
     * Local value numbering (CSE) during code generation. On by
     * default; the design-ablation bench turns it off to quantify
     * how much the back-end's CSE contributes.
     */
    bool valueNumbering = true;
};

/** Name of the simulator array receiving program outputs. */
SymbolId outputArraySymbol();

/**
 * Lowers a compiled DSL program (a List of vector chunks). Throws
 * FatalError when the term is not lowerable (e.g. a malformed root or
 * an op outside the ISA — possible when a degraded compile emits a
 * partially rewritten program).
 */
VmProgram lowerProgram(const RecExpr &program, const LowerOptions &options);

/** Like lowerProgram, but reports unlowerable terms as a diagnostic
 *  instead of throwing, so callers can degrade (e.g. re-lower the
 *  scalar input). */
Result<VmProgram> tryLowerProgram(const RecExpr &program,
                                  const LowerOptions &options);

} // namespace isaria

#endif // ISARIA_LOWER_LOWER_H
