#include "lower/optimize.h"

#include <algorithm>
#include <vector>

#include "support/panic.h"
#include "vm/machine.h"

namespace isaria
{

namespace
{

/** Register operands read by an instruction, with their class. */
struct Uses
{
    // Indices into sregs (scalar) or vregs (vector); -1 when unused.
    std::int32_t scalar[3] = {-1, -1, -1};
    std::int32_t vector[3] = {-1, -1, -1};
    bool readsDst = false; ///< InsertLane reads and writes its dst.
};

Uses
usesOf(const VmInst &inst)
{
    Uses u;
    bool scalarOperands = vmOpIsScalarCompute(inst.op) ||
                          inst.op == VmOp::StoreScalar ||
                          inst.op == VmOp::InsertLane ||
                          inst.op == VmOp::Splat;
    auto *slot = scalarOperands ? u.scalar : u.vector;
    slot[0] = inst.a;
    slot[1] = inst.b;
    slot[2] = inst.c;
    u.readsDst = inst.op == VmOp::InsertLane;
    return u;
}

/** True when the instruction writes a scalar register. */
bool
defsScalar(const VmInst &inst)
{
    return inst.dst >= 0 && (vmOpIsScalarCompute(inst.op) ||
                             inst.op == VmOp::LoadScalar ||
                             inst.op == VmOp::LoadConstS);
}

bool
defsVector(const VmInst &inst)
{
    return inst.dst >= 0 && !defsScalar(inst);
}

bool
isStore(const VmInst &inst)
{
    return inst.op == VmOp::StoreScalar || inst.op == VmOp::StoreVec;
}

bool
isLoad(const VmInst &inst)
{
    return inst.op == VmOp::LoadScalar || inst.op == VmOp::LoadVec;
}

} // namespace

VmProgram
fuseMultiplyAdd(const VmProgram &program, VmOptStats *stats)
{
    const auto &code = program.code;
    std::size_t n = code.size();

    // Def and use counts for vector registers (the fusion operates on
    // the vector pipeline only).
    std::vector<int> defCount(program.numVectorRegs, 0);
    std::vector<int> useCount(program.numVectorRegs, 0);
    std::vector<std::size_t> defSite(program.numVectorRegs, SIZE_MAX);
    for (std::size_t i = 0; i < n; ++i) {
        const VmInst &inst = code[i];
        if (defsVector(inst)) {
            ++defCount[inst.dst];
            defSite[inst.dst] = i;
        }
        Uses u = usesOf(inst);
        for (std::int32_t r : u.vector) {
            if (r >= 0)
                ++useCount[r];
        }
        if (u.readsDst && inst.dst >= 0)
            ++useCount[inst.dst];
    }

    std::vector<bool> removed(n, false);
    VmProgram out;
    out.width = program.width;
    out.numScalarRegs = program.numScalarRegs;
    out.numVectorRegs = program.numVectorRegs;

    auto singleDefMul = [&](std::int32_t reg, std::size_t before) {
        if (reg < 0 || defCount[reg] != 1 || useCount[reg] != 1)
            return SIZE_MAX;
        std::size_t site = defSite[reg];
        if (site >= before || removed[site] ||
            code[site].op != VmOp::VMul) {
            return SIZE_MAX;
        }
        // The multiplier's operands must not be redefined in between.
        for (std::size_t j = site + 1; j < before; ++j) {
            if (code[j].dst >= 0 && defsVector(code[j]) &&
                (code[j].dst == code[site].a ||
                 code[j].dst == code[site].b)) {
                return SIZE_MAX;
            }
        }
        return site;
    };

    std::vector<VmInst> rewritten(code.begin(), code.end());
    for (std::size_t i = 0; i < n; ++i) {
        VmInst &inst = rewritten[i];
        if (inst.op != VmOp::VAdd)
            continue;
        // x = mul + y   or   x = y + mul.
        for (int operand = 0; operand < 2; ++operand) {
            std::int32_t mulReg = operand == 0 ? inst.a : inst.b;
            std::int32_t other = operand == 0 ? inst.b : inst.a;
            std::size_t site = singleDefMul(mulReg, i);
            if (site == SIZE_MAX)
                continue;
            inst.op = VmOp::VMac;
            inst.a = other;
            inst.b = rewritten[site].a;
            inst.c = rewritten[site].b;
            removed[site] = true;
            if (stats)
                ++stats->fusedMacs;
            break;
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (!removed[i])
            out.code.push_back(rewritten[i]);
    }
    return out;
}

VmProgram
eliminateDeadCode(const VmProgram &program, VmOptStats *stats)
{
    const auto &code = program.code;
    std::size_t n = code.size();
    std::vector<bool> live(n, false);
    std::vector<bool> sLive(program.numScalarRegs, false);
    std::vector<bool> vLive(program.numVectorRegs, false);

    for (std::size_t i = n; i-- > 0;) {
        const VmInst &inst = code[i];
        bool needed = isStore(inst);
        if (!needed && inst.dst >= 0) {
            needed = defsScalar(inst) ? sLive[inst.dst]
                                      : vLive[inst.dst];
        }
        if (!needed)
            continue;
        live[i] = true;
        if (inst.dst >= 0 && !usesOf(inst).readsDst) {
            // A plain definition satisfies the demand above it.
            (defsScalar(inst) ? sLive : vLive)[inst.dst] = false;
        }
        Uses u = usesOf(inst);
        for (std::int32_t r : u.scalar) {
            if (r >= 0)
                sLive[r] = true;
        }
        for (std::int32_t r : u.vector) {
            if (r >= 0)
                vLive[r] = true;
        }
        if (u.readsDst && inst.dst >= 0)
            vLive[inst.dst] = true;
    }

    VmProgram out;
    out.width = program.width;
    out.numScalarRegs = program.numScalarRegs;
    out.numVectorRegs = program.numVectorRegs;
    for (std::size_t i = 0; i < n; ++i) {
        if (live[i])
            out.code.push_back(code[i]);
        else if (stats)
            ++stats->deadRemoved;
    }
    return out;
}

VmProgram
scheduleDualIssue(const VmProgram &program, const LatencyModel &latency,
                  VmOptStats *stats)
{
    const auto &code = program.code;
    std::size_t n = code.size();

    // --- Build the dependency DAG.
    std::vector<std::vector<std::int32_t>> succs(n);
    std::vector<int> pending(n, 0);
    auto edge = [&](std::size_t from, std::size_t to) {
        succs[from].push_back(static_cast<std::int32_t>(to));
        ++pending[to];
    };

    std::vector<std::int32_t> lastScalarDef(program.numScalarRegs, -1);
    std::vector<std::int32_t> lastVectorDef(program.numVectorRegs, -1);
    std::int32_t lastStore = -1;
    std::vector<std::int32_t> loadsSinceStore;

    for (std::size_t i = 0; i < n; ++i) {
        const VmInst &inst = code[i];
        Uses u = usesOf(inst);
        for (std::int32_t r : u.scalar) {
            if (r >= 0 && lastScalarDef[r] >= 0)
                edge(lastScalarDef[r], i);
        }
        for (std::int32_t r : u.vector) {
            if (r >= 0 && lastVectorDef[r] >= 0)
                edge(lastVectorDef[r], i);
        }
        if (u.readsDst && inst.dst >= 0 && lastVectorDef[inst.dst] >= 0)
            edge(lastVectorDef[inst.dst], i);

        // Memory ordering: loads depend on the previous store; stores
        // depend on every load and store since the previous store.
        if (isLoad(inst)) {
            if (lastStore >= 0)
                edge(lastStore, i);
            loadsSinceStore.push_back(static_cast<std::int32_t>(i));
        }
        if (isStore(inst)) {
            if (lastStore >= 0)
                edge(lastStore, i);
            for (std::int32_t load : loadsSinceStore)
                edge(load, i);
            loadsSinceStore.clear();
            lastStore = static_cast<std::int32_t>(i);
        }

        if (inst.dst >= 0) {
            auto &defs = defsScalar(inst) ? lastScalarDef : lastVectorDef;
            // WAW/WAR: order against the previous definition (covers
            // InsertLane chains; SSA code has none).
            if (defs[inst.dst] >= 0 && !u.readsDst)
                edge(defs[inst.dst], i);
            defs[inst.dst] = static_cast<std::int32_t>(i);
        }
    }

    // --- Priorities: longest latency path to any sink.
    std::vector<std::int64_t> priority(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        std::int64_t best = 0;
        for (std::int32_t s : succs[i])
            best = std::max(best, priority[s]);
        priority[i] = best + latency.latencyOf(code[i].op);
    }

    // --- Greedy list scheduling, one compute + one move per step.
    std::vector<std::int32_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (pending[i] == 0)
            ready.push_back(static_cast<std::int32_t>(i));
    }
    auto byPriority = [&](std::int32_t a, std::int32_t b) {
        if (priority[a] != priority[b])
            return priority[a] > priority[b];
        return a < b; // stable tiebreak
    };

    VmProgram out;
    out.width = program.width;
    out.numScalarRegs = program.numScalarRegs;
    out.numVectorRegs = program.numVectorRegs;
    out.code.reserve(n);

    std::size_t moves = 0;
    std::vector<std::int32_t> emittedOrder;
    while (!ready.empty()) {
        std::sort(ready.begin(), ready.end(), byPriority);
        // Pick the best compute and the best move-slot instruction
        // available this round.
        std::int32_t pickCompute = -1, pickMove = -1;
        for (std::int32_t cand : ready) {
            bool move = vmOpIsMoveSlot(code[cand].op);
            if (move && pickMove < 0)
                pickMove = cand;
            if (!move && pickCompute < 0)
                pickCompute = cand;
            if (pickMove >= 0 && pickCompute >= 0)
                break;
        }
        for (std::int32_t pick : {pickMove, pickCompute}) {
            if (pick < 0)
                continue;
            ready.erase(std::find(ready.begin(), ready.end(), pick));
            out.code.push_back(code[pick]);
            emittedOrder.push_back(pick);
            for (std::int32_t s : succs[pick]) {
                if (--pending[s] == 0)
                    ready.push_back(s);
            }
        }
    }
    ISARIA_ASSERT(out.code.size() == n, "scheduler dropped instructions");

    if (stats) {
        for (std::size_t i = 0; i < n; ++i)
            moves += emittedOrder[i] != static_cast<std::int32_t>(i);
        stats->moved += moves;
    }
    return out;
}

VmProgram
optimizeProgram(const VmProgram &program, const LatencyModel &latency,
                VmOptStats *stats)
{
    VmProgram out = fuseMultiplyAdd(program, stats);
    out = eliminateDeadCode(out, stats);
    out = scheduleDualIssue(out, latency, stats);
    return out;
}

} // namespace isaria
