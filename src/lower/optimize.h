#ifndef ISARIA_LOWER_OPTIMIZE_H
#define ISARIA_LOWER_OPTIMIZE_H

/**
 * @file
 * Post-lowering machine-level optimizations for the virtual DSP.
 *
 * These are the classic back-end passes a production toolchain would
 * run after instruction selection, provided as opt-in extensions
 * (they are not part of the paper's pipeline, whose backend work all
 * happens in the e-graph):
 *
 *  - peephole fusion: VMul feeding a single VAdd/VSub becomes
 *    VMac/VMulSub, which helps comparators that select instructions
 *    without an e-graph (the SLP baseline, hand-written code);
 *  - dead-code elimination: results never consumed by a store or a
 *    later instruction are dropped;
 *  - dual-issue list scheduling: independent instructions are
 *    reordered to hide latencies and pair the compute slot with the
 *    load/store/move slot.
 *
 * All passes preserve the program's memory behaviour (stores keep
 * their relative order; every store's operands are computed first).
 */

#include "vm/machine.h"

namespace isaria
{

/** Statistics from one optimization run. */
struct VmOptStats
{
    std::size_t fusedMacs = 0;
    std::size_t deadRemoved = 0;
    std::size_t moved = 0;
};

/** Fuses VMul+VAdd / VMul+VSub pairs into VMac / VMulSub. */
VmProgram fuseMultiplyAdd(const VmProgram &program,
                          VmOptStats *stats = nullptr);

/** Removes instructions whose results are never observed. */
VmProgram eliminateDeadCode(const VmProgram &program,
                            VmOptStats *stats = nullptr);

/**
 * Latency-aware list scheduling for the dual-issue pipeline: greedily
 * picks, at each cycle, the ready instruction with the longest
 * critical path to a store, one per slot.
 */
VmProgram scheduleDualIssue(const VmProgram &program,
                            const LatencyModel &latency = {},
                            VmOptStats *stats = nullptr);

/** The full pipeline: fuse, DCE, schedule. */
VmProgram optimizeProgram(const VmProgram &program,
                          const LatencyModel &latency = {},
                          VmOptStats *stats = nullptr);

} // namespace isaria

#endif // ISARIA_LOWER_OPTIMIZE_H
