#include "lower/lower.h"

#include <map>
#include <unordered_map>

#include "obs/obs.h"
#include "support/panic.h"

namespace isaria
{

SymbolId
outputArraySymbol()
{
    static SymbolId sym = internSymbol("__out");
    return sym;
}

namespace
{

class Lowerer
{
  public:
    Lowerer(const RecExpr &program, const LowerOptions &options)
        : expr_(program), options_(options)
    {
        out_.width = options.width;
    }

    VmProgram
    run()
    {
        const TermNode &root = expr_.root();
        if (root.op != Op::List)
            ISARIA_FATAL("program root must be List");
        int offset = 0;
        for (NodeId chunk : root.children) {
            bool scalarize =
                options_.scalarOnly ||
                (options_.scalarizeRawChunks && isGatherVec(chunk));
            if (scalarize)
                storeChunkScalar(chunk, offset);
            else
                emit(VmInst{VmOp::StoreVec, -1, lowerVector(chunk), -1, -1,
                            outputArraySymbol(), offset, {}});
            offset += options_.width;
        }
        out_.numScalarRegs = nextScalar_;
        out_.numVectorRegs = nextVector_;
        return std::move(out_);
    }

  private:
    void
    emit(VmInst inst)
    {
        out_.code.push_back(std::move(inst));
    }

    /**
     * Emits one instruction through the value-numbering table: if an
     * identical computation (same opcode and operands) was emitted
     * before, its register is reused and nothing is emitted. This is
     * the CSE pass a production back-end would run, and it makes
     * lowering insensitive to how much sharing the term has.
     */
    std::int32_t
    emitNumbered(VmInst inst, bool vector)
    {
        std::vector<std::int64_t> key = {
            static_cast<std::int64_t>(inst.op), inst.a, inst.b, inst.c,
            static_cast<std::int64_t>(inst.arr), inst.imm};
        for (double imm : inst.imms) {
            std::int64_t bits;
            static_assert(sizeof(bits) == sizeof(imm));
            __builtin_memcpy(&bits, &imm, sizeof(bits));
            key.push_back(bits);
        }
        if (options_.valueNumbering) {
            auto it = valueNumbers_.find(key);
            if (it != valueNumbers_.end())
                return it->second;
        }
        std::int32_t dst = vector ? nextVector_++ : nextScalar_++;
        inst.dst = dst;
        emit(std::move(inst));
        if (options_.valueNumbering)
            valueNumbers_.emplace(std::move(key), dst);
        return dst;
    }

    std::int32_t
    lowerScalar(NodeId id)
    {
        auto it = scalarMemo_.find(id);
        if (it != scalarMemo_.end())
            return it->second;
        const TermNode &n = expr_.node(id);
        std::int32_t dst = -1;
        switch (n.op) {
          case Op::Const:
            dst = emitNumbered(
                VmInst{VmOp::LoadConstS, -1, -1, -1, -1, 0, 0,
                       {static_cast<double>(n.payload)}},
                false);
            break;
          case Op::Get:
            dst = emitNumbered(
                VmInst{VmOp::LoadScalar, -1, -1, -1, -1,
                       getArray(n.payload), getIndex(n.payload), {}},
                false);
            break;
          case Op::Symbol:
            dst = emitNumbered(
                VmInst{VmOp::LoadScalar, -1, -1, -1, -1,
                       static_cast<SymbolId>(n.payload), 0, {}},
                false);
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
          case Op::Div: {
            std::int32_t a = lowerScalar(n.children[0]);
            std::int32_t b = lowerScalar(n.children[1]);
            VmOp op = n.op == Op::Add   ? VmOp::SAdd
                      : n.op == Op::Sub ? VmOp::SSub
                      : n.op == Op::Mul ? VmOp::SMul
                                        : VmOp::SDiv;
            dst = emitNumbered(VmInst{op, -1, a, b, -1, 0, 0, {}}, false);
            break;
          }
          case Op::Neg:
          case Op::Sgn:
          case Op::Sqrt: {
            std::int32_t a = lowerScalar(n.children[0]);
            VmOp op = n.op == Op::Neg   ? VmOp::SNeg
                      : n.op == Op::Sgn ? VmOp::SSgn
                                        : VmOp::SSqrt;
            dst = emitNumbered(VmInst{op, -1, a, -1, -1, 0, 0, {}},
                               false);
            break;
          }
          case Op::MulSub: {
            std::int32_t acc = lowerScalar(n.children[0]);
            std::int32_t a = lowerScalar(n.children[1]);
            std::int32_t b = lowerScalar(n.children[2]);
            dst = emitNumbered(
                VmInst{VmOp::SMulSub, -1, acc, a, b, 0, 0, {}}, false);
            break;
          }
          case Op::SqrtSgn: {
            std::int32_t a = lowerScalar(n.children[0]);
            std::int32_t b = lowerScalar(n.children[1]);
            dst = emitNumbered(
                VmInst{VmOp::SSqrtSgn, -1, a, b, -1, 0, 0, {}}, false);
            break;
          }
          default:
            ISARIA_FATAL("scalar lowering hit a non-scalar op");
        }
        scalarMemo_.emplace(id, dst);
        return dst;
    }

    /**
     * True for a raw Vec literal that would cost per-lane moves —
     * i.e. not a contiguous load, constant load, or splat.
     */
    bool
    isGatherVec(NodeId id) const
    {
        const TermNode &n = expr_.node(id);
        if (n.op != Op::Vec)
            return false;
        SymbolId arr;
        std::int32_t base;
        if (isContiguousLoad(n, arr, base))
            return false;
        bool allConst = true;
        bool allSame = true;
        for (NodeId child : n.children) {
            allConst &= expr_.node(child).op == Op::Const;
            allSame &= child == n.children[0];
        }
        return !allConst && !allSame;
    }

    /** True if the Vec node is a contiguous slice of one array. */
    bool
    isContiguousLoad(const TermNode &vec, SymbolId &arr,
                     std::int32_t &base) const
    {
        const TermNode &first = expr_.node(vec.children[0]);
        if (first.op != Op::Get)
            return false;
        arr = getArray(first.payload);
        base = getIndex(first.payload);
        for (std::size_t l = 0; l < vec.children.size(); ++l) {
            const TermNode &lane = expr_.node(vec.children[l]);
            if (lane.op != Op::Get || getArray(lane.payload) != arr ||
                getIndex(lane.payload) != base + static_cast<int>(l)) {
                return false;
            }
        }
        return true;
    }

    std::int32_t
    lowerVec(const TermNode &n)
    {
        ISARIA_ASSERT(static_cast<int>(n.children.size()) ==
                          options_.width,
                      "Vec width mismatch at lowering");

        SymbolId arr;
        std::int32_t base;
        if (isContiguousLoad(n, arr, base)) {
            return emitNumbered(
                VmInst{VmOp::LoadVec, -1, -1, -1, -1, arr, base, {}},
                true);
        }

        // All lanes the same (non-constant) value: a broadcast.
        bool allSame = true;
        for (NodeId child : n.children)
            allSame &= expr_.node(child) == expr_.node(n.children[0]);
        if (allSame && expr_.node(n.children[0]).op != Op::Const &&
            expr_.node(n.children[0]).children.empty()) {
            std::int32_t s = lowerScalar(n.children[0]);
            return emitNumbered(
                VmInst{VmOp::Splat, -1, s, -1, -1, 0, 0, {}}, true);
        }

        // Constant lanes ride along in one LoadConstV; computed lanes
        // are inserted one by one — the lane-move cost the abstract
        // model charges. Lane inserts are read-modify-write, so they
        // bypass value numbering; a structurally identical gather is
        // instead deduplicated via the gather memo.
        std::vector<std::int64_t> gatherKey{-42};
        std::vector<double> constLanes(options_.width, 0.0);
        std::vector<std::pair<int, std::int32_t>> computed;
        for (int l = 0; l < options_.width; ++l) {
            const TermNode &lane = expr_.node(n.children[l]);
            if (lane.op == Op::Const) {
                constLanes[l] = static_cast<double>(lane.payload);
                gatherKey.push_back(~lane.payload);
            } else {
                std::int32_t s = lowerScalar(n.children[l]);
                computed.emplace_back(l, s);
                gatherKey.push_back(s);
            }
        }
        if (options_.valueNumbering) {
            auto it = valueNumbers_.find(gatherKey);
            if (it != valueNumbers_.end())
                return it->second;
        }
        std::int32_t dst = nextVector_++;
        emit(VmInst{VmOp::LoadConstV, dst, -1, -1, -1, 0, 0, constLanes});
        for (auto &[lane, s] : computed)
            emit(VmInst{VmOp::InsertLane, dst, s, -1, -1, 0, lane, {}});
        valueNumbers_.emplace(std::move(gatherKey), dst);
        return dst;
    }

    /** Lowers a vector-sorted node. */
    std::int32_t
    lowerVector(NodeId id)
    {
        auto it = vectorMemo_.find(id);
        if (it != vectorMemo_.end())
            return it->second;
        const TermNode &n = expr_.node(id);
        std::int32_t dst = -1;
        switch (n.op) {
          case Op::Vec:
            dst = lowerVec(n);
            break;
          case Op::VecAdd:
          case Op::VecMinus:
          case Op::VecMul:
          case Op::VecDiv: {
            std::int32_t a = lowerVector(n.children[0]);
            std::int32_t b = lowerVector(n.children[1]);
            VmOp op = n.op == Op::VecAdd     ? VmOp::VAdd
                      : n.op == Op::VecMinus ? VmOp::VSub
                      : n.op == Op::VecMul   ? VmOp::VMul
                                             : VmOp::VDiv;
            dst = emitNumbered(VmInst{op, -1, a, b, -1, 0, 0, {}}, true);
            break;
          }
          case Op::VecNeg:
          case Op::VecSgn:
          case Op::VecSqrt: {
            std::int32_t a = lowerVector(n.children[0]);
            VmOp op = n.op == Op::VecNeg   ? VmOp::VNeg
                      : n.op == Op::VecSgn ? VmOp::VSgn
                                           : VmOp::VSqrt;
            dst = emitNumbered(VmInst{op, -1, a, -1, -1, 0, 0, {}}, true);
            break;
          }
          case Op::VecMAC:
          case Op::VecMulSub: {
            std::int32_t acc = lowerVector(n.children[0]);
            std::int32_t a = lowerVector(n.children[1]);
            std::int32_t b = lowerVector(n.children[2]);
            dst = emitNumbered(
                VmInst{n.op == Op::VecMAC ? VmOp::VMac : VmOp::VMulSub,
                       -1, acc, a, b, 0, 0, {}},
                true);
            break;
          }
          case Op::VecSqrtSgn: {
            std::int32_t a = lowerVector(n.children[0]);
            std::int32_t b = lowerVector(n.children[1]);
            dst = emitNumbered(
                VmInst{VmOp::VSqrtSgn, -1, a, b, -1, 0, 0, {}}, true);
            break;
          }
          case Op::Concat:
            ISARIA_FATAL("Concat reached lowering; the front-end pads "
                         "chunks instead");
          default:
            ISARIA_FATAL("vector lowering hit a non-vector op");
        }
        vectorMemo_.emplace(id, dst);
        return dst;
    }

    /** Scalar-only chunk store for the unvectorized baseline. */
    void
    storeChunkScalar(NodeId chunk, int offset)
    {
        const TermNode &n = expr_.node(chunk);
        ISARIA_ASSERT(n.op == Op::Vec,
                      "scalar-only lowering expects raw Vec chunks");
        for (int l = 0; l < static_cast<int>(n.children.size()); ++l) {
            int element = offset + l;
            if (options_.totalOutputs >= 0 &&
                element >= options_.totalOutputs) {
                continue; // padding lane
            }
            std::int32_t s = lowerScalar(n.children[l]);
            emit(VmInst{VmOp::StoreScalar, -1, s, -1, -1,
                        outputArraySymbol(), element, {}});
        }
    }

    const RecExpr &expr_;
    const LowerOptions &options_;
    VmProgram out_;
    std::int32_t nextScalar_ = 0;
    std::int32_t nextVector_ = 0;
    std::unordered_map<NodeId, std::int32_t> scalarMemo_;
    std::unordered_map<NodeId, std::int32_t> vectorMemo_;
    std::map<std::vector<std::int64_t>, std::int32_t> valueNumbers_;
};

} // namespace

VmProgram
lowerProgram(const RecExpr &program, const LowerOptions &options)
{
    obs::Span span("lower",
                   static_cast<std::int64_t>(program.size()));
    if (options.width < 1) {
        ISARIA_FATAL("LowerOptions.width unset: derive it from the "
                     "machine description");
    }
    Lowerer lowerer(program, options);
    VmProgram out = lowerer.run();
    if (obs::enabled()) {
        obs::counter("lower/instructions",
                     static_cast<std::int64_t>(out.code.size()));
        obs::counter("lower/scalar-regs", out.numScalarRegs);
        obs::counter("lower/vector-regs", out.numVectorRegs);
    }
    return out;
}

Result<VmProgram>
tryLowerProgram(const RecExpr &program, const LowerOptions &options)
{
    try {
        return lowerProgram(program, options);
    } catch (const FatalError &e) {
        return Error{std::string("lowering failed: ") + e.what()};
    }
}

} // namespace isaria
