#include "synth/synthesize.h"

#include <algorithm>
#include <unordered_set>

#include "obs/obs.h"
#include "support/fault.h"
#include "support/panic.h"

namespace isaria
{

namespace
{

/** Scalar wildcard id for lane @p lane of original wildcard @p w. */
std::int32_t
laneScalarId(std::int32_t w, int lane)
{
    return w * 16 + lane;
}

NodeId
generalizeNode(const RecExpr &src, NodeId id,
               const std::vector<Sort> &sorts, int lane, int width,
               RecExpr &out)
{
    const TermNode &n = src.node(id);
    switch (n.op) {
      case Op::Vec: {
        ISARIA_ASSERT(n.children.size() == 1,
                      "generalizing a Vec that is not 1-wide");
        std::vector<NodeId> kids;
        kids.reserve(width);
        for (int l = 0; l < width; ++l) {
            kids.push_back(
                generalizeNode(src, n.children[0], sorts, l, width, out));
        }
        return out.add(Op::Vec, std::move(kids));
      }
      case Op::Wildcard: {
        auto w = static_cast<std::int32_t>(n.payload);
        if (sorts[id] == Sort::Vector)
            return out.addWildcard(w); // whole-vector variable
        ISARIA_ASSERT(lane >= 0, "scalar wildcard outside any Vec");
        return out.addWildcard(laneScalarId(w, lane));
      }
      default: {
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children) {
            kids.push_back(
                generalizeNode(src, child, sorts, lane, width, out));
        }
        return out.add(n.op, std::move(kids), n.payload);
      }
    }
}

/** Canonical key for an unordered candidate pair. */
std::size_t
pairKey(const CandidatePair &pair)
{
    Rule ab{pair.a, pair.b, "", false};
    Rule ba{pair.b, pair.a, "", false};
    return ab.canonical().hash() ^ ba.canonical().hash();
}

struct ScoredCandidate
{
    CandidatePair pair;
    std::size_t score;
    bool dead = false;
};

/**
 * Verification with the synth-verify fault site in front: an injected
 * fault rejects the candidate (the conservative direction — a missing
 * rule only costs optimization quality, an unsound one costs
 * correctness) instead of aborting the pipeline.
 */
Verdict
checkedVerify(const Rule &rule, const VerifyOptions &options,
              SynthReport &report)
{
    try {
        faultPoint(FaultSite::SynthVerify);
        return verifyRule(rule, options);
    } catch (const FaultInjected &) {
        ++report.verifierFaults;
        return Verdict::Rejected;
    }
}

} // namespace

RecExpr
generalizeToWidth(const RecExpr &pattern, int width)
{
    bool hasVecLiteral = false;
    for (NodeId id = 0; id < static_cast<NodeId>(pattern.size()); ++id)
        hasVecLiteral |= pattern.node(id).op == Op::Vec;
    if (!hasVecLiteral)
        return pattern; // scalar or whole-vector rule: nothing to widen
    RecExpr out;
    std::vector<Sort> sorts = pattern.inferSorts();
    generalizeNode(pattern, pattern.rootId(), sorts, /*lane=*/-1, width,
                   out);
    return out;
}

Rule
generalizeRule(const Rule &rule, int width)
{
    Rule out;
    out.lhs = generalizeToWidth(rule.lhs, width);
    out.rhs = generalizeToWidth(rule.rhs, width);
    out.name = rule.name;
    out.verifiedExactly = rule.verifiedExactly;
    return out;
}

SynthReport
synthesizeRules(const IsaSpec &isa, const SynthConfig &config)
{
    SynthReport report;
    Deadline deadline(config.timeoutSeconds);
    Stopwatch watch;
    obs::Span synthSpan("synth/run");

    // --- Phase 1: enumerate candidate pairs over the 1-wide ISA.
    // Enumeration gets a slice of the budget so shrinking always has
    // room to run.
    obs::Span enumSpan("synth/enumerate");
    Deadline enumDeadline(config.timeoutSeconds > 0
                              ? config.timeoutSeconds * config.enumFraction
                              : 0);
    EnumResult enumerated =
        enumerateTerms(isa, config.enumConfig, enumDeadline);
    report.candidatesConsidered = enumerated.candidates.size();
    report.enumerateSeconds = watch.elapsedSeconds();
    watch.reset();
    enumSpan.setValue(
        static_cast<std::int64_t>(report.candidatesConsidered));
    enumSpan.close();
    obs::counter("synth/candidates",
                 static_cast<std::int64_t>(report.candidatesConsidered));

    // Deduplicate candidate pairs and order them smallest-first (the
    // Ruler preference: small rules are more general and derive more).
    // Candidates are split into a vector pool (either side mentions a
    // vector operator) and a scalar pool, processed round-robin so the
    // scalar algebra cannot starve the vectorization rules.
    std::vector<ScoredCandidate> liftPool;
    std::vector<ScoredCandidate> vectorPool;
    std::vector<ScoredCandidate> scalarPool;
    {
        std::unordered_set<std::size_t> seen;
        for (CandidatePair &pair : enumerated.candidates) {
            std::size_t key = pairKey(pair);
            if (!seen.insert(key).second)
                continue;
            // Smaller is better; more wildcards (more generality) is
            // better at equal size, so `(+ ?a 0) ~> ?a` is accepted
            // before its ground instances and prunes them.
            std::size_t size = pair.a.treeSize() + pair.b.treeSize();
            std::size_t generality =
                std::min<std::size_t>(pair.a.wildcardIds().size() +
                                          pair.b.wildcardIds().size(),
                                      15);
            std::size_t score = size * 16 - generality;
            bool liftPair = pair.a.root().op == Op::Vec ||
                            pair.b.root().op == Op::Vec;
            bool vectorPair = pair.a.containsVectorOp() ||
                              pair.b.containsVectorOp();
            auto &pool = liftPair ? liftPool
                         : vectorPair ? vectorPool
                                      : scalarPool;
            pool.push_back({std::move(pair), score, false});
        }
        auto byScore = [](const auto &x, const auto &y) {
            return x.score < y.score;
        };
        std::stable_sort(liftPool.begin(), liftPool.end(), byScore);
        std::stable_sort(vectorPool.begin(), vectorPool.end(), byScore);
        std::stable_sort(scalarPool.begin(), scalarPool.end(), byScore);
    }

    // --- Phase 2: shrink — accept small sound rules, prune the rest
    // by derivability under equality saturation.
    std::vector<CompiledRule> compiled;
    std::size_t liftCursor = 0;
    std::size_t vectorCursor = 0;
    std::size_t scalarCursor = 0;
    std::size_t acceptedSincePrune = 0;

    DspCostModel costModel(config.costParams);
    auto isShortcut = [&](const CandidatePair &pair) {
        if (!config.keepShortcutCandidates)
            return false;
        auto a = static_cast<std::int64_t>(costModel.exprCost(pair.a));
        auto b = static_cast<std::int64_t>(costModel.exprCost(pair.b));
        return std::llabs(a - b) > config.costParams.alpha;
    };

    auto pruneDerivable = [&]() {
        if (compiled.empty() || acceptedSincePrune == 0)
            return;
        acceptedSincePrune = 0;
        obs::Span pruneSpan("synth/prune");
        std::size_t prunedBefore = report.prunedDerivable;
        // Prune a window of upcoming candidates only: the tail gets
        // its turn as the cursor approaches, and the saturation stays
        // small.
        constexpr std::size_t kPruneWindow = 1500;
        EGraph eg;
        std::vector<std::pair<ScoredCandidate *,
                              std::pair<EClassId, EClassId>>> ids;
        auto addWindow = [&](std::vector<ScoredCandidate> &pool,
                             std::size_t cursor) {
            for (std::size_t i = cursor;
                 i < pool.size() && ids.size() < 2 * kPruneWindow; ++i) {
                if (pool[i].dead || isShortcut(pool[i].pair))
                    continue;
                EClassId a = eg.addExpr(skolemize(pool[i].pair.a));
                EClassId b = eg.addExpr(skolemize(pool[i].pair.b));
                ids.emplace_back(&pool[i], std::make_pair(a, b));
            }
        };
        addWindow(liftPool, liftCursor);
        addWindow(vectorPool, vectorCursor);
        addWindow(scalarPool, scalarCursor);
        if (ids.empty())
            return;
        eg.rebuild();
        runEqSat(eg, compiled, config.derivLimits);
        for (auto &[cand, classes] : ids) {
            if (eg.same(classes.first, classes.second)) {
                cand->dead = true;
                ++report.prunedDerivable;
            }
        }
        std::size_t prunedHere = report.prunedDerivable - prunedBefore;
        pruneSpan.setValue(static_cast<std::int64_t>(prunedHere));
        // Shrink-loop visibility: window size and how many candidates
        // the derivability saturation left alive.
        obs::counter("synth/prune/window",
                     static_cast<std::int64_t>(ids.size()));
        obs::counter("synth/prune/survivors",
                     static_cast<std::int64_t>(ids.size() - prunedHere));
    };

    // Verdict tallies for the shrink phase's stats counters.
    std::size_t verdictCounts[3] = {0, 0, 0};

    // Accepts the next live candidate of @p pool; returns false when
    // the pool is exhausted.
    auto acceptOne = [&](std::vector<ScoredCandidate> &pool,
                         std::size_t &cursor) {
        while (cursor < pool.size()) {
            if (deadline.expired()) {
                report.hitDeadline = true;
                return false;
            }
            ScoredCandidate &cand = pool[cursor];
            ++cursor;
            if (cand.dead)
                continue;

            Rule forward{cand.pair.a, cand.pair.b, "", false};
            Verdict verdict = checkedVerify(forward, config.verify,
                                            report);
            ++verdictCounts[static_cast<int>(verdict)];
            if (verdict == Verdict::Rejected) {
                ++report.rejectedUnsound;
                continue;
            }
            forward.verifiedExactly = (verdict == Verdict::Proved);

            Rule backward{cand.pair.b, cand.pair.a, "", false};
            backward.verifiedExactly = forward.verifiedExactly;

            bool any = false;
            for (Rule *rule : {&forward, &backward}) {
                if (!rule->wellFormed() ||
                    report.oneWideRules.size() >= config.maxRules) {
                    continue;
                }
                rule->name =
                    "syn1w-" + std::to_string(report.oneWideRules.size());
                if (report.oneWideRules.add(*rule)) {
                    compiled.emplace_back(*rule);
                    any = true;
                }
            }
            if (any) {
                ++acceptedSincePrune;
                return true;
            }
        }
        return false;
    };

    obs::Span shrinkSpan("synth/shrink");
    bool liftAlive = true;
    bool vectorAlive = true;
    bool scalarAlive = true;
    auto anyAlive = [&] { return liftAlive || vectorAlive || scalarAlive; };
    auto budgetLeft = [&] {
        return report.oneWideRules.size() < config.maxRules;
    };
    while (anyAlive() && budgetLeft() && !report.hitDeadline) {
        pruneDerivable();
        for (int i = 0; i < config.batchSize && budgetLeft() && anyAlive();
             ++i) {
            if (liftAlive)
                liftAlive = acceptOne(liftPool, liftCursor);
            if (vectorAlive && budgetLeft())
                vectorAlive = acceptOne(vectorPool, vectorCursor);
            if (scalarAlive && budgetLeft())
                scalarAlive = acceptOne(scalarPool, scalarCursor);
        }
        if (deadline.expired())
            report.hitDeadline = true;
    }
    report.shrinkSeconds = watch.elapsedSeconds();
    watch.reset();
    shrinkSpan.setValue(
        static_cast<std::int64_t>(report.oneWideRules.size()));
    shrinkSpan.close();
    obs::counter("synth/verified/proved",
                 static_cast<std::int64_t>(
                     verdictCounts[static_cast<int>(Verdict::Proved)]));
    obs::counter("synth/verified/tested",
                 static_cast<std::int64_t>(
                     verdictCounts[static_cast<int>(Verdict::Tested)]));
    obs::counter(
        "synth/verified/rejected",
        static_cast<std::int64_t>(
            verdictCounts[static_cast<int>(Verdict::Rejected)]));
    obs::counter("synth/pruned-derivable",
                 static_cast<std::int64_t>(report.prunedDerivable));

    // --- Phase 3: generalize across lanes to the ISA width, then
    // re-verify every expanded rule (the paper's soundness backstop).
    obs::Span generalizeSpan("synth/generalize");
    int width = isa.vectorWidth();
    for (const Rule &rule : report.oneWideRules.rules()) {
        Rule wide = generalizeRule(rule, width);
        if (!wide.lhs.equalTree(rule.lhs) ||
            !wide.rhs.equalTree(rule.rhs)) {
            Verdict verdict = checkedVerify(wide, config.verify, report);
            if (verdict == Verdict::Rejected) {
                ++report.droppedAtGeneralization;
                continue;
            }
            wide.verifiedExactly = (verdict == Verdict::Proved);
        }
        wide.name = "syn-" + std::to_string(report.rules.size());
        report.rules.add(std::move(wide));
    }
    report.generalizeSeconds = watch.elapsedSeconds();
    generalizeSpan.close();
    obs::counter("synth/rules",
                 static_cast<std::int64_t>(report.rules.size()));

    return report;
}

} // namespace isaria
