#include "synth/synthesize.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/fault.h"
#include "support/hash.h"
#include "support/panic.h"
#include "support/thread_pool.h"

namespace isaria
{

namespace
{

/**
 * Per-lane scalar wildcards get ids in a reserved band far above both
 * the enumeration grammar's scalar ids (0, 1, 2, ...) and the vector
 * wildcard ids (kVectorWildcardBase + v = 1000, 1001, ...). The old
 * encoding `w * 16 + lane` aliased: scalar wildcard 62 at lane 8
 * collided with lane 0 of wildcard 63, and any width > 16 wrapped
 * lanes into the next wildcard's band — either way two unrelated
 * variables silently unified and the generalized rule claimed more
 * than was verified.
 */
constexpr std::int32_t kLaneWildcardBase = 1 << 20;

/** Scalar wildcard id for lane @p lane of original wildcard @p w. */
std::int32_t
laneScalarId(std::int32_t w, int lane, int width)
{
    return kLaneWildcardBase + w * width + lane;
}

NodeId
generalizeNode(const RecExpr &src, NodeId id,
               const std::vector<Sort> &sorts, int lane, int width,
               RecExpr &out)
{
    const TermNode &n = src.node(id);
    switch (n.op) {
      case Op::Vec: {
        ISARIA_ASSERT(n.children.size() == 1,
                      "generalizing a Vec that is not 1-wide");
        std::vector<NodeId> kids;
        kids.reserve(width);
        for (int l = 0; l < width; ++l) {
            kids.push_back(
                generalizeNode(src, n.children[0], sorts, l, width, out));
        }
        return out.add(Op::Vec, std::move(kids));
      }
      case Op::Wildcard: {
        auto w = static_cast<std::int32_t>(n.payload);
        if (sorts[id] == Sort::Vector)
            return out.addWildcard(w); // whole-vector variable
        ISARIA_ASSERT(lane >= 0, "scalar wildcard outside any Vec");
        return out.addWildcard(laneScalarId(w, lane, width));
      }
      default: {
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children) {
            kids.push_back(
                generalizeNode(src, child, sorts, lane, width, out));
        }
        return out.add(n.op, std::move(kids), n.payload);
      }
    }
}

/**
 * Canonical key for an unordered candidate pair: the two directional
 * canonical hashes, sorted, folded with hashCombine. The previous key
 * XORed them, which is order-independent but also self-annihilating —
 * any palindromic pair (a, a-renamed) XORed to the same neighbourhood,
 * and two unrelated pairs whose hashes happened to share the XOR
 * collided silently, dropping a sound candidate before verification.
 */
std::size_t
pairKey(const CandidatePair &pair)
{
    Rule ab{pair.a, pair.b, "", false};
    Rule ba{pair.b, pair.a, "", false};
    std::size_t lo = ab.canonical().hash();
    std::size_t hi = ba.canonical().hash();
    if (lo > hi)
        std::swap(lo, hi);
    std::size_t key = lo;
    hashCombine(key, hi);
    return key;
}

/** Verdict of one speculative verifyRule call. An exception escaping
 *  the worker is parked here and rethrown when the candidate is
 *  consumed in sequential order, so parallel runs fail at the same
 *  candidate the sequential engine would. */
struct VerifyOutcome
{
    Verdict verdict = Verdict::Rejected;
    std::exception_ptr error;
};

struct ScoredCandidate
{
    CandidatePair pair;
    std::size_t score;
    bool dead = false;
    /** A speculative verdict is ready in `outcome`. */
    bool verified = false;
    VerifyOutcome outcome;
};

/**
 * Verification with the synth-verify fault site in front: an injected
 * fault rejects the candidate (the conservative direction — a missing
 * rule only costs optimization quality, an unsound one costs
 * correctness) instead of aborting the pipeline.
 */
Verdict
checkedVerify(const Rule &rule, const VerifyOptions &options,
              SynthReport &report)
{
    try {
        faultPoint(FaultSite::SynthVerify);
        return verifyRule(rule, options);
    } catch (const FaultInjected &) {
        ++report.verifierFaults;
        return Verdict::Rejected;
    }
}

} // namespace

RecExpr
generalizeToWidth(const RecExpr &pattern, int width)
{
    bool hasVecLiteral = false;
    for (NodeId id = 0; id < static_cast<NodeId>(pattern.size()); ++id)
        hasVecLiteral |= pattern.node(id).op == Op::Vec;
    if (!hasVecLiteral)
        return pattern; // scalar or whole-vector rule: nothing to widen
    // Disjointness guard: whole-vector wildcards pass through with
    // their original ids, so every original id must sit strictly below
    // the per-lane band, and the widest per-lane id must not overflow.
    for (std::int32_t w : pattern.wildcardIds()) {
        ISARIA_ASSERT(w >= 0 && w < kLaneWildcardBase,
                      "original wildcard id reaches the per-lane band");
        ISARIA_ASSERT(
            w <= (std::numeric_limits<std::int32_t>::max() -
                  kLaneWildcardBase - (width - 1)) /
                     std::max(width, 1),
            "lane generalization would overflow the wildcard id space");
    }
    RecExpr out;
    std::vector<Sort> sorts = pattern.inferSorts();
    generalizeNode(pattern, pattern.rootId(), sorts, /*lane=*/-1, width,
                   out);
    return out;
}

Rule
generalizeRule(const Rule &rule, int width)
{
    Rule out;
    out.lhs = generalizeToWidth(rule.lhs, width);
    out.rhs = generalizeToWidth(rule.rhs, width);
    out.name = rule.name;
    out.verifiedExactly = rule.verifiedExactly;
    return out;
}

SynthConfig
effectiveSynthConfig(const IsaSpec &isa, SynthConfig config)
{
    config.verify.defaultWidth = isa.vectorWidth();
    return config;
}

SynthReport
synthesizeRules(const IsaSpec &isa, const SynthConfig &rawConfig)
{
    const SynthConfig config = effectiveSynthConfig(isa, rawConfig);
    SynthReport report;
    Deadline deadline(config.timeoutSeconds);
    Stopwatch watch;
    obs::Span synthSpan("synth/run");

    // Worker pool for the two pure hot loops: cvec fingerprinting and
    // candidate verification. Verification is only parallelized when
    // no fault plan is armed — the SynthVerify fault site counts
    // arrival ordinals, and those must match the sequential engine's
    // for fault tests to stay deterministic. Fingerprinting has no
    // fault site and parallelizes unconditionally.
    ThreadPool workers(
        static_cast<unsigned>(resolveEqSatThreads(config.numThreads)));
    const bool parallelVerify =
        workers.threadCount() > 1 && !faultPlanActive();
    report.verifyThreads =
        parallelVerify ? static_cast<int>(workers.threadCount()) : 1;

    // --- Phase 1: enumerate candidate pairs over the 1-wide ISA.
    // Enumeration gets a slice of the budget so shrinking always has
    // room to run.
    obs::Span enumSpan("synth/enumerate");
    Deadline enumDeadline(config.timeoutSeconds > 0
                              ? config.timeoutSeconds * config.enumFraction
                              : 0);
    EnumResult enumerated =
        enumerateTerms(isa, config.enumConfig, enumDeadline, &workers);
    report.candidatesConsidered = enumerated.candidates.size();
    report.enumerateSeconds = watch.elapsedSeconds();
    watch.reset();
    enumSpan.setValue(
        static_cast<std::int64_t>(report.candidatesConsidered));
    enumSpan.close();
    obs::counter("synth/candidates",
                 static_cast<std::int64_t>(report.candidatesConsidered));

    // Deduplicate candidate pairs and order them smallest-first (the
    // Ruler preference: small rules are more general and derive more).
    // Candidates are split into a vector pool (either side mentions a
    // vector operator) and a scalar pool, processed round-robin so the
    // scalar algebra cannot starve the vectorization rules.
    std::vector<ScoredCandidate> liftPool;
    std::vector<ScoredCandidate> vectorPool;
    std::vector<ScoredCandidate> scalarPool;
    {
        std::unordered_set<std::size_t> seen;
        for (CandidatePair &pair : enumerated.candidates) {
            std::size_t key = pairKey(pair);
            if (!seen.insert(key).second) {
                ++report.duplicatePairs;
                continue;
            }
            // Smaller is better; more wildcards (more generality) is
            // better at equal size, so `(+ ?a 0) ~> ?a` is accepted
            // before its ground instances and prunes them.
            std::size_t size = pair.a.treeSize() + pair.b.treeSize();
            std::size_t generality =
                std::min<std::size_t>(pair.a.wildcardIds().size() +
                                          pair.b.wildcardIds().size(),
                                      15);
            std::size_t score = size * 16 - generality;
            bool liftPair = pair.a.root().op == Op::Vec ||
                            pair.b.root().op == Op::Vec;
            bool vectorPair = pair.a.containsVectorOp() ||
                              pair.b.containsVectorOp();
            auto &pool = liftPair ? liftPool
                         : vectorPair ? vectorPool
                                      : scalarPool;
            pool.push_back({std::move(pair), score, false});
        }
        auto byScore = [](const auto &x, const auto &y) {
            return x.score < y.score;
        };
        std::stable_sort(liftPool.begin(), liftPool.end(), byScore);
        std::stable_sort(vectorPool.begin(), vectorPool.end(), byScore);
        std::stable_sort(scalarPool.begin(), scalarPool.end(), byScore);
    }
    obs::counter("synth/duplicate-pairs",
                 static_cast<std::int64_t>(report.duplicatePairs));

    // --- Phase 2: shrink — accept small sound rules, prune the rest
    // by derivability under equality saturation.
    std::vector<CompiledRule> compiled;
    std::size_t liftCursor = 0;
    std::size_t vectorCursor = 0;
    std::size_t scalarCursor = 0;
    std::size_t acceptedSincePrune = 0;

    DspCostModel costModel(config.costParams);
    auto isShortcut = [&](const CandidatePair &pair) {
        if (!config.keepShortcutCandidates)
            return false;
        auto a = static_cast<std::int64_t>(costModel.exprCost(pair.a));
        auto b = static_cast<std::int64_t>(costModel.exprCost(pair.b));
        return std::llabs(a - b) > config.costParams.alpha;
    };

    auto pruneDerivable = [&]() {
        if (compiled.empty() || acceptedSincePrune == 0)
            return;
        acceptedSincePrune = 0;
        obs::Span pruneSpan("synth/prune");
        std::size_t prunedBefore = report.prunedDerivable;
        // Prune a window of upcoming candidates only: the tail gets
        // its turn as the cursor approaches, and the saturation stays
        // small.
        constexpr std::size_t kPruneWindow = 1500;
        EGraph eg;
        std::vector<std::pair<ScoredCandidate *,
                              std::pair<EClassId, EClassId>>> ids;
        auto addWindow = [&](std::vector<ScoredCandidate> &pool,
                             std::size_t cursor) {
            for (std::size_t i = cursor;
                 i < pool.size() && ids.size() < 2 * kPruneWindow; ++i) {
                if (pool[i].dead || isShortcut(pool[i].pair))
                    continue;
                EClassId a = eg.addExpr(skolemize(pool[i].pair.a));
                EClassId b = eg.addExpr(skolemize(pool[i].pair.b));
                ids.emplace_back(&pool[i], std::make_pair(a, b));
            }
        };
        addWindow(liftPool, liftCursor);
        addWindow(vectorPool, vectorCursor);
        addWindow(scalarPool, scalarCursor);
        if (ids.empty())
            return;
        eg.rebuild();
        runEqSat(eg, compiled, config.derivLimits);
        for (auto &[cand, classes] : ids) {
            if (eg.same(classes.first, classes.second)) {
                cand->dead = true;
                ++report.prunedDerivable;
            }
        }
        std::size_t prunedHere = report.prunedDerivable - prunedBefore;
        pruneSpan.setValue(static_cast<std::int64_t>(prunedHere));
        // Shrink-loop visibility: window size and how many candidates
        // the derivability saturation left alive.
        obs::counter("synth/prune/window",
                     static_cast<std::int64_t>(ids.size()));
        obs::counter("synth/prune/survivors",
                     static_cast<std::int64_t>(ids.size() - prunedHere));
    };

    // Verdict tallies for the shrink phase's stats counters.
    std::size_t verdictCounts[3] = {0, 0, 0};

    // Speculatively verifies a window of upcoming live candidates on
    // the worker pool. verifyRule is pure, so an out-of-order verdict
    // is identical to the one the sequential engine would compute at
    // the cursor; decisions (accept/reject, naming, pruning) are still
    // committed strictly in cursor order by acceptOne, which is what
    // keeps the rule set byte-identical at any thread count. Verdicts
    // survive across prune rounds: a candidate killed after its
    // verdict landed is simply never consumed (speculation waste, not
    // a correctness issue).
    auto prefetchVerdicts = [&](std::vector<ScoredCandidate> &cands,
                                std::size_t from) {
        std::vector<ScoredCandidate *> batch;
        std::size_t want =
            std::max<std::size_t>(workers.threadCount() * 4, 16);
        for (std::size_t i = from;
             i < cands.size() && batch.size() < want; ++i) {
            if (!cands[i].dead && !cands[i].verified)
                batch.push_back(&cands[i]);
        }
        if (batch.empty())
            return;
        obs::Span batchSpan("synth/verify-batch",
                            static_cast<std::int64_t>(batch.size()));
        report.prefetchedVerifications += batch.size();
        workers.parallelFor(batch.size(), [&](std::size_t t) {
            ScoredCandidate &c = *batch[t];
            try {
                Rule forward{c.pair.a, c.pair.b, "", false};
                c.outcome.verdict = verifyRule(forward, config.verify);
            } catch (...) {
                c.outcome.error = std::current_exception();
            }
            c.verified = true;
        });
    };

    // Accepts the next live candidate of @p pool; returns false when
    // the pool is exhausted.
    auto acceptOne = [&](std::vector<ScoredCandidate> &pool,
                         std::size_t &cursor) {
        while (cursor < pool.size()) {
            if (deadline.expired()) {
                report.hitDeadline = true;
                return false;
            }
            ScoredCandidate &cand = pool[cursor];
            ++cursor;
            if (cand.dead)
                continue;

            Rule forward{cand.pair.a, cand.pair.b, "", false};
            Verdict verdict;
            if (parallelVerify) {
                if (!cand.verified)
                    prefetchVerdicts(pool, cursor - 1);
                ISARIA_ASSERT(cand.verified,
                              "prefetch missed the cursor candidate");
                if (cand.outcome.error)
                    std::rethrow_exception(cand.outcome.error);
                verdict = cand.outcome.verdict;
            } else {
                verdict = checkedVerify(forward, config.verify, report);
            }
            ++verdictCounts[static_cast<int>(verdict)];
            if (verdict == Verdict::Rejected) {
                ++report.rejectedUnsound;
                continue;
            }
            forward.verifiedExactly = (verdict == Verdict::Proved);

            Rule backward{cand.pair.b, cand.pair.a, "", false};
            backward.verifiedExactly = forward.verifiedExactly;

            bool any = false;
            for (Rule *rule : {&forward, &backward}) {
                if (!rule->wellFormed() ||
                    report.oneWideRules.size() >= config.maxRules) {
                    continue;
                }
                rule->name =
                    "syn1w-" + std::to_string(report.oneWideRules.size());
                if (report.oneWideRules.add(*rule)) {
                    compiled.emplace_back(*rule);
                    any = true;
                }
            }
            if (any) {
                ++acceptedSincePrune;
                return true;
            }
        }
        return false;
    };

    obs::Span shrinkSpan("synth/shrink");
    bool liftAlive = true;
    bool vectorAlive = true;
    bool scalarAlive = true;
    auto anyAlive = [&] { return liftAlive || vectorAlive || scalarAlive; };
    auto budgetLeft = [&] {
        return report.oneWideRules.size() < config.maxRules;
    };
    while (anyAlive() && budgetLeft() && !report.hitDeadline) {
        pruneDerivable();
        for (int i = 0; i < config.batchSize && budgetLeft() && anyAlive();
             ++i) {
            if (liftAlive)
                liftAlive = acceptOne(liftPool, liftCursor);
            if (vectorAlive && budgetLeft())
                vectorAlive = acceptOne(vectorPool, vectorCursor);
            if (scalarAlive && budgetLeft())
                scalarAlive = acceptOne(scalarPool, scalarCursor);
        }
        if (deadline.expired())
            report.hitDeadline = true;
    }
    report.shrinkSeconds = watch.elapsedSeconds();
    watch.reset();
    shrinkSpan.setValue(
        static_cast<std::int64_t>(report.oneWideRules.size()));
    shrinkSpan.close();
    obs::counter("synth/verified/proved",
                 static_cast<std::int64_t>(
                     verdictCounts[static_cast<int>(Verdict::Proved)]));
    obs::counter("synth/verified/tested",
                 static_cast<std::int64_t>(
                     verdictCounts[static_cast<int>(Verdict::Tested)]));
    obs::counter(
        "synth/verified/rejected",
        static_cast<std::int64_t>(
            verdictCounts[static_cast<int>(Verdict::Rejected)]));
    obs::counter("synth/pruned-derivable",
                 static_cast<std::int64_t>(report.prunedDerivable));
    // Always-on verdict tallies (the trace counters above vanish with
    // the session; these feed the service-facing registry).
    static const obs::CounterHandle provedMetric =
        obs::metricCounter("synth/verified/proved");
    static const obs::CounterHandle testedMetric =
        obs::metricCounter("synth/verified/tested");
    static const obs::CounterHandle rejectedMetric =
        obs::metricCounter("synth/verified/rejected");
    obs::metricAdd(provedMetric,
                   verdictCounts[static_cast<int>(Verdict::Proved)]);
    obs::metricAdd(testedMetric,
                   verdictCounts[static_cast<int>(Verdict::Tested)]);
    obs::metricAdd(rejectedMetric,
                   verdictCounts[static_cast<int>(Verdict::Rejected)]);

    // --- Phase 3: generalize across lanes to the ISA width, then
    // re-verify every expanded rule (the paper's soundness backstop).
    // The re-verifications are independent, so the parallel engine
    // computes them in one fan-out and commits acceptance (and the
    // sequential syn-N naming) in rule order.
    obs::Span generalizeSpan("synth/generalize");
    int width = isa.vectorWidth();
    struct WideCandidate
    {
        Rule wide;
        bool needsVerify = false;
        VerifyOutcome outcome;
    };
    std::vector<WideCandidate> wides;
    wides.reserve(report.oneWideRules.size());
    for (const Rule &rule : report.oneWideRules.rules()) {
        WideCandidate wc;
        wc.wide = generalizeRule(rule, width);
        wc.needsVerify = !wc.wide.lhs.equalTree(rule.lhs) ||
                         !wc.wide.rhs.equalTree(rule.rhs);
        wides.push_back(std::move(wc));
    }
    if (parallelVerify) {
        std::vector<WideCandidate *> batch;
        for (WideCandidate &wc : wides)
            if (wc.needsVerify)
                batch.push_back(&wc);
        report.prefetchedVerifications += batch.size();
        workers.parallelFor(batch.size(), [&](std::size_t t) {
            try {
                batch[t]->outcome.verdict =
                    verifyRule(batch[t]->wide, config.verify);
            } catch (...) {
                batch[t]->outcome.error = std::current_exception();
            }
        });
    }
    for (WideCandidate &wc : wides) {
        if (wc.needsVerify) {
            Verdict verdict;
            if (parallelVerify) {
                if (wc.outcome.error)
                    std::rethrow_exception(wc.outcome.error);
                verdict = wc.outcome.verdict;
            } else {
                verdict = checkedVerify(wc.wide, config.verify, report);
            }
            if (verdict == Verdict::Rejected) {
                ++report.droppedAtGeneralization;
                continue;
            }
            wc.wide.verifiedExactly = (verdict == Verdict::Proved);
        }
        wc.wide.name = "syn-" + std::to_string(report.rules.size());
        report.rules.add(std::move(wc.wide));
    }
    report.generalizeSeconds = watch.elapsedSeconds();
    generalizeSpan.close();
    obs::counter("synth/rules",
                 static_cast<std::int64_t>(report.rules.size()));

    return report;
}

} // namespace isaria
