#include "synth/enumerate.h"

#include <exception>
#include <unordered_map>

#include "support/panic.h"
#include "support/thread_pool.h"

namespace isaria
{

namespace
{

/** An enumerated term with its fingerprint and bookkeeping. */
struct TermInfo
{
    RecExpr expr;
    CVec cvec;
    Sort sort;
    int depth;
};

/** Terms whose fingerprints run in one parallel chunk. Large enough
 *  to amortize the fan-out, small enough that the cap counters (only
 *  updated at classification) never lag by much built-but-discarded
 *  work. */
constexpr std::size_t kFingerprintChunk = 256;

class Enumerator
{
  public:
    Enumerator(const IsaSpec &isa, const EnumConfig &config,
               const Deadline &deadline, ThreadPool *workers)
        : isa_(isa), config_(config), deadline_(deadline),
          workers_(workers),
          envs_(makeWildcardEnvs(config.numScalarVars, config.numVectorVars,
                                 /*width=*/1, config.numEnvs, config.seed))
    {}

    EnumResult
    run()
    {
        addAtoms();
        for (int depth = 1; depth <= config_.maxDepth && !stop(); ++depth)
            addLayer(depth);
        result_.classes = classes_.size();
        return std::move(result_);
    }

  private:
    bool
    stop()
    {
        if (deadline_.expired())
            result_.hitDeadline = true;
        return result_.hitDeadline ||
               (scalarCandidates_ >= config_.maxScalarCandidates &&
                vectorCandidates_ >= config_.maxVectorCandidates &&
                liftCandidates_ >= config_.maxLiftCandidates);
    }

    void
    addAtoms()
    {
        for (int s = 0; s < config_.numScalarVars; ++s) {
            RecExpr e;
            e.addWildcard(s);
            consider(std::move(e), 0);
        }
        for (std::int64_t c : config_.constants) {
            RecExpr e;
            e.addConst(c);
            consider(std::move(e), 0);
        }
        for (int v = 0; v < config_.numVectorVars; ++v) {
            RecExpr e;
            e.addWildcard(kVectorWildcardBase + v);
            consider(std::move(e), 0);
        }
        // Atoms are classified unconditionally (the sequential engine
        // never gated them on the deadline); they seed the layer-1
        // representative lists.
        flush(/*checkStop=*/false);
    }

    void
    addLayer(int depth)
    {
        // Snapshot the representative lists: terms created in this
        // layer only become expandable in the next one.
        std::vector<std::size_t> scalars = scalarReps_;
        std::vector<std::size_t> vectors = vectorReps_;

        auto depthOk = [&](std::initializer_list<std::size_t> args) {
            int maxDepth = 0;
            for (std::size_t a : args)
                maxDepth = std::max(maxDepth, terms_[a].depth);
            return maxDepth == depth - 1;
        };

        // Vector-sorted terms first: they are the point of the whole
        // exercise, and the candidate cap must not starve them behind
        // the ocean of scalar identities.
        for (std::size_t s : scalars) {
            if (stop())
                return;
            if (!depthOk({s}))
                continue;
            build(Op::Vec, {s}, depth);
        }
        for (Op op : isa_.vectorOps())
            applyOp(op, vectors, depth);
        for (Op op : isa_.scalarOps())
            applyOp(op, scalars, depth);
        // Drain the chunk so this layer's representatives exist before
        // the next layer snapshots them.
        flush(/*checkStop=*/true);
    }

    void
    applyOp(Op op, const std::vector<std::size_t> &pool, int depth)
    {
        int arity = opInfo(op).arity;
        // Ternary ops get a reduced pool: full cubes are never
        // affordable, and the useful rules involve small operands.
        std::size_t limit = pool.size();
        if (arity >= 3)
            limit = std::min<std::size_t>(limit, config_.maxReps / 8);

        auto within = [&](std::size_t i) { return i < limit; };
        if (arity == 1) {
            for (std::size_t a : pool) {
                if (stop())
                    return;
                if (terms_[a].depth == depth - 1)
                    build(op, {a}, depth);
            }
        } else if (arity == 2) {
            for (std::size_t i = 0; i < pool.size(); ++i) {
                for (std::size_t j = 0; j < pool.size(); ++j) {
                    if (stop())
                        return;
                    std::size_t a = pool[i], b = pool[j];
                    if (std::max(terms_[a].depth, terms_[b].depth) ==
                        depth - 1) {
                        build(op, {a, b}, depth);
                    }
                }
            }
        } else if (arity == 3) {
            for (std::size_t i = 0; within(i); ++i) {
                for (std::size_t j = 0; within(j); ++j) {
                    for (std::size_t k = 0; within(k); ++k) {
                        if (stop())
                            return;
                        std::size_t a = pool[i], b = pool[j], c = pool[k];
                        int d = std::max(terms_[a].depth,
                                         std::max(terms_[b].depth,
                                                  terms_[c].depth));
                        if (d == depth - 1)
                            build(op, {a, b, c}, depth);
                    }
                }
            }
        }
    }

    void
    build(Op op, std::initializer_list<std::size_t> args, int depth)
    {
        RecExpr e;
        std::vector<NodeId> kids;
        kids.reserve(args.size());
        for (std::size_t a : args)
            kids.push_back(e.addSubtree(terms_[a].expr,
                                        terms_[a].expr.rootId()));
        e.add(op, std::move(kids));
        consider(std::move(e), depth);
    }

    /**
     * Queues @p expr for fingerprinting. Fingerprints are pure and
     * computed chunk-at-a-time (in parallel when a pool is attached);
     * classification stays sequential in enumeration order, and the
     * stop predicate is re-evaluated before each classification, so
     * every counter, cap cutoff, candidate and representative is
     * byte-identical to the single-threaded engine. The build loops
     * may overshoot a freshly-reached cap by at most one chunk of
     * discarded work.
     */
    void
    consider(RecExpr expr, int depth)
    {
        pending_.push_back(Pending{std::move(expr), depth});
        if (pending_.size() >= kFingerprintChunk)
            flush(/*checkStop=*/true);
    }

    void
    flush(bool checkStop)
    {
        if (pending_.empty())
            return;
        std::vector<CVec> cvecs(pending_.size());
        std::vector<std::exception_ptr> errors(pending_.size());
        if (workers_ && workers_->threadCount() > 1) {
            workers_->parallelFor(pending_.size(), [&](std::size_t i) {
                try {
                    cvecs[i] = fingerprint(pending_[i].expr, envs_);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        } else {
            for (std::size_t i = 0; i < pending_.size(); ++i)
                cvecs[i] = fingerprint(pending_[i].expr, envs_);
        }
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (checkStop && stop())
                break; // the sequential engine stopped here too
            if (errors[i])
                std::rethrow_exception(errors[i]);
            classify(std::move(pending_[i].expr), std::move(cvecs[i]),
                     pending_[i].depth);
        }
        pending_.clear();
    }

    void
    classify(RecExpr expr, CVec cvec, int depth)
    {
        ++result_.termsEnumerated;
        // Terms with too little defined behaviour (e.g. division by a
        // zero constant) would collide vacuously; drop them.
        int minDefined = std::max(3, config_.numEnvs / 4);
        if (cvecDefinedCount(cvec) < minDefined)
            return;

        Sort sort = cvec.front().sort;
        std::size_t h = cvecHash(cvec);
        auto [it, inserted] = classes_.try_emplace(h, terms_.size());
        if (!inserted) {
            const TermInfo &rep = terms_[it->second];
            if (cvecAgree(rep.cvec, cvec)) {
                // Fingerprint collision with the representative: a
                // candidate rule, not a new class member. Ground
                // pairs (no wildcard on either side) are constant
                // identities that any general rule subsumes — skip.
                if (!rep.expr.wildcardIds().empty() ||
                    !expr.wildcardIds().empty()) {
                    bool lift = rep.expr.root().op == Op::Vec ||
                                expr.root().op == Op::Vec;
                    auto &count = lift ? liftCandidates_
                                  : (sort == Sort::Vector)
                                      ? vectorCandidates_
                                      : scalarCandidates_;
                    auto cap = lift ? config_.maxLiftCandidates
                               : (sort == Sort::Vector)
                                   ? config_.maxVectorCandidates
                                   : config_.maxScalarCandidates;
                    if (count < cap) {
                        ++count;
                        result_.candidates.push_back(
                            CandidatePair{rep.expr, std::move(expr)});
                    }
                }
                return;
            }
            // Genuine hash collision between distinct cvecs: rare;
            // drop the newcomer rather than complicating the index.
            return;
        }

        auto &reps = (sort == Sort::Vector) ? vectorReps_ : scalarReps_;
        bool expandable = reps.size() < config_.maxReps;
        terms_.push_back(TermInfo{std::move(expr), std::move(cvec), sort,
                                  depth});
        if (expandable)
            reps.push_back(terms_.size() - 1);
    }

    /** A term awaiting its (possibly parallel) fingerprint. */
    struct Pending
    {
        RecExpr expr;
        int depth;
    };

    const IsaSpec &isa_;
    const EnumConfig &config_;
    const Deadline &deadline_;
    ThreadPool *workers_;
    std::vector<Env> envs_;
    std::vector<Pending> pending_;
    std::vector<TermInfo> terms_;
    std::vector<std::size_t> scalarReps_;
    std::vector<std::size_t> vectorReps_;
    std::unordered_map<std::size_t, std::size_t> classes_;
    std::size_t scalarCandidates_ = 0;
    std::size_t vectorCandidates_ = 0;
    std::size_t liftCandidates_ = 0;
    EnumResult result_;
};

} // namespace

EnumResult
enumerateTerms(const IsaSpec &isa, const EnumConfig &config,
               const Deadline &deadline, ThreadPool *workers)
{
    Enumerator e(isa, config, deadline, workers);
    return e.run();
}

} // namespace isaria
