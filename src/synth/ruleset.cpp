#include "synth/ruleset.h"

#include <sstream>

#include "support/panic.h"
#include "term/sexpr.h"

namespace isaria
{

bool
RuleSet::add(Rule rule)
{
    if (contains(rule))
        return false;
    hashes_.push_back(rule.hash());
    rules_.push_back(std::move(rule));
    return true;
}

bool
RuleSet::contains(const Rule &rule) const
{
    std::size_t h = rule.hash();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (hashes_[i] == h && rules_[i].sameAs(rule))
            return true;
    }
    return false;
}

std::string
RuleSet::toString() const
{
    std::string out;
    for (const Rule &rule : rules_) {
        out += rule.name.empty() ? "rule" : rule.name;
        out += rule.verifiedExactly ? " [proved]: " : " [tested]: ";
        out += rule.toString();
        out += '\n';
    }
    return out;
}

RuleSet
RuleSet::fromString(const std::string &text)
{
    RuleSet out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto colon = line.find(": ");
        ISARIA_ASSERT(colon != std::string::npos, "bad rule line");
        std::string head = line.substr(0, colon);
        Rule rule = parseRule(line.substr(colon + 2));
        auto bracket = head.find(" [");
        rule.name = head.substr(0, bracket);
        rule.verifiedExactly = head.find("[proved]") != std::string::npos;
        out.add(std::move(rule));
    }
    return out;
}

RecExpr
skolemize(const RecExpr &pattern)
{
    RecExpr out;
    std::vector<NodeId> remap(pattern.size());
    for (NodeId id = 0; id < static_cast<NodeId>(pattern.size()); ++id) {
        const TermNode &n = pattern.node(id);
        if (n.op == Op::Wildcard) {
            std::string name = "$w" + std::to_string(n.payload);
            remap[id] = out.addSymbol(internSymbol(name));
            continue;
        }
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children)
            kids.push_back(remap[child]);
        remap[id] = out.add(n.op, std::move(kids), n.payload);
    }
    return out;
}

} // namespace isaria
