#include "synth/ruleset.h"

#include <fstream>
#include <sstream>

#include "support/fault.h"
#include "support/panic.h"
#include "term/sexpr.h"

namespace isaria
{

bool
RuleSet::add(Rule rule)
{
    if (contains(rule))
        return false;
    hashes_.push_back(rule.hash());
    rules_.push_back(std::move(rule));
    return true;
}

bool
RuleSet::contains(const Rule &rule) const
{
    std::size_t h = rule.hash();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (hashes_[i] == h && rules_[i].sameAs(rule))
            return true;
    }
    return false;
}

std::string
RuleSet::toString() const
{
    std::string out;
    for (const Rule &rule : rules_) {
        out += rule.name.empty() ? "rule" : rule.name;
        out += rule.verifiedExactly ? " [proved]: " : " [tested]: ";
        out += rule.toString();
        out += '\n';
    }
    return out;
}

Result<RuleSet>
RuleSet::parse(const std::string &text)
{
    RuleSet out;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        auto colon = line.find(": ");
        if (colon == std::string::npos) {
            return Error{"rule line has no 'name: ' header", lineNo};
        }
        std::string head = line.substr(0, colon);
        Rule rule;
        try {
            rule = parseRule(line.substr(colon + 2));
        } catch (const FatalError &e) {
            // parseRule/parseSexpr throw on malformed rule text; pin
            // the diagnostic to the offending line.
            return Error{std::string("bad rule: ") + e.what(), lineNo};
        }
        auto bracket = head.find(" [");
        rule.name = head.substr(0, bracket);
        rule.verifiedExactly = head.find("[proved]") != std::string::npos;
        if (!out.add(std::move(rule))) {
            return Error{"duplicate rule (alpha-equivalent rule seen "
                         "earlier in this file)",
                         lineNo};
        }
    }
    return out;
}

RuleSet
RuleSet::fromString(const std::string &text)
{
    Result<RuleSet> parsed = parse(text);
    if (!parsed.ok()) {
        throw FatalError("rules text: " + parsed.error().toString());
    }
    return parsed.take();
}

Result<RuleSet>
loadRuleSetFile(const std::string &path)
{
    try {
        faultPoint(FaultSite::RuleParse);
    } catch (const FaultInjected &e) {
        return Error{std::string(e.what()) + " while loading " + path};
    }
    std::ifstream in(path);
    if (!in) {
        return Error{"cannot open rules file '" + path + "'"};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return Error{"I/O error reading rules file '" + path + "'"};
    }
    Result<RuleSet> parsed = RuleSet::parse(buffer.str());
    if (!parsed.ok()) {
        return Error{path + ": " + parsed.error().message,
                     parsed.error().line};
    }
    return parsed;
}

RecExpr
skolemize(const RecExpr &pattern)
{
    RecExpr out;
    std::vector<NodeId> remap(pattern.size());
    for (NodeId id = 0; id < static_cast<NodeId>(pattern.size()); ++id) {
        const TermNode &n = pattern.node(id);
        if (n.op == Op::Wildcard) {
            std::string name = "$w" + std::to_string(n.payload);
            remap[id] = out.addSymbol(internSymbol(name));
            continue;
        }
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId child : n.children)
            kids.push_back(remap[child]);
        remap[id] = out.add(n.op, std::move(kids), n.payload);
    }
    return out;
}

} // namespace isaria
