#ifndef ISARIA_SYNTH_RULESET_H
#define ISARIA_SYNTH_RULESET_H

/**
 * @file
 * A deduplicated, named collection of rewrite rules.
 */

#include <string>
#include <vector>

#include "support/result.h"
#include "term/pattern.h"

namespace isaria
{

/** An ordered set of rules, deduplicated up to alpha-renaming. */
class RuleSet
{
  public:
    /** Adds @p rule if new; returns true if it was inserted. */
    bool add(Rule rule);

    const std::vector<Rule> &rules() const { return rules_; }
    std::size_t size() const { return rules_.size(); }
    bool empty() const { return rules_.empty(); }

    const Rule &operator[](std::size_t i) const { return rules_[i]; }

    /** True if an alpha-equivalent rule is already present. */
    bool contains(const Rule &rule) const;

    /** Renders one rule per line ("name: lhs ~> rhs"). */
    std::string toString() const;

    /**
     * Parses the toString format (names preserved), rejecting
     * malformed input — truncated s-expressions, garbage lines,
     * missing "~>", duplicate rules — with a diagnostic carrying the
     * 1-based line number of the offending line. Blank lines and
     * lines starting with '#' are skipped.
     */
    static Result<RuleSet> parse(const std::string &text);

    /** Like parse(), but throws FatalError on malformed input (the
     *  legacy trusted-input entry point). */
    static RuleSet fromString(const std::string &text);

  private:
    std::vector<Rule> rules_;
    std::vector<std::size_t> hashes_;
};

/**
 * Loads a rules file (the isaria-*.rules format written by
 * RuleSet::toString). Malformed content and I/O failures come back
 * as a diagnostic naming the path and line, never as an abort — a
 * bad rules file is a user error the pipeline degrades around.
 * Fault-injection site: rule-parse.
 */
Result<RuleSet> loadRuleSetFile(const std::string &path);

/** Replaces wildcards with skolem symbols so terms can enter e-graphs. */
RecExpr skolemize(const RecExpr &pattern);

} // namespace isaria

#endif // ISARIA_SYNTH_RULESET_H
