#ifndef ISARIA_SYNTH_RULESET_H
#define ISARIA_SYNTH_RULESET_H

/**
 * @file
 * A deduplicated, named collection of rewrite rules.
 */

#include <string>
#include <vector>

#include "term/pattern.h"

namespace isaria
{

/** An ordered set of rules, deduplicated up to alpha-renaming. */
class RuleSet
{
  public:
    /** Adds @p rule if new; returns true if it was inserted. */
    bool add(Rule rule);

    const std::vector<Rule> &rules() const { return rules_; }
    std::size_t size() const { return rules_.size(); }
    bool empty() const { return rules_.empty(); }

    const Rule &operator[](std::size_t i) const { return rules_[i]; }

    /** True if an alpha-equivalent rule is already present. */
    bool contains(const Rule &rule) const;

    /** Renders one rule per line ("name: lhs ~> rhs"). */
    std::string toString() const;

    /** Parses the toString format (names preserved). */
    static RuleSet fromString(const std::string &text);

  private:
    std::vector<Rule> rules_;
    std::vector<std::size_t> hashes_;
};

/** Replaces wildcards with skolem symbols so terms can enter e-graphs. */
RecExpr skolemize(const RecExpr &pattern);

} // namespace isaria

#endif // ISARIA_SYNTH_RULESET_H
