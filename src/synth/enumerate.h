#ifndef ISARIA_SYNTH_ENUMERATE_H
#define ISARIA_SYNTH_ENUMERATE_H

/**
 * @file
 * Bottom-up term enumeration with cvec fingerprint classing (§3.1).
 *
 * Terms of the single-lane-reduced DSL are enumerated in layers of
 * increasing depth. Each term is fingerprinted on a battery of
 * environments; terms landing in an existing fingerprint class become
 * candidate rewrite rules against the class representative, while new
 * classes contribute their representative to the next layer — the
 * workset discipline Ruler uses to keep enumeration from exploding.
 */

#include <cstdint>
#include <vector>

#include "interp/cvec.h"
#include "isa/isa_spec.h"
#include "support/timer.h"
#include "term/pattern.h"

namespace isaria
{

class ThreadPool;

/** Enumeration budget and grammar parameters. */
struct EnumConfig
{
    /** Distinct scalar wildcards available to the grammar. */
    int numScalarVars = 3;
    /** Distinct whole-vector wildcards (3 covers ternary VecMAC). */
    int numVectorVars = 3;
    /** Integer literals available to the grammar. */
    std::vector<std::int64_t> constants = {0, 1};
    /** Maximum operator depth. */
    int maxDepth = 3;
    /** Cap on expandable class representatives per sort. */
    std::size_t maxReps = 400;
    /**
     * Caps on candidate pairs gathered, split by sort: the scalar
     * algebra yields orders of magnitude more collisions than the
     * vector fragment and must not starve it. Collection stops at the
     * cap; enumeration continues for the other sort.
     */
    std::size_t maxScalarCandidates = 12000;
    std::size_t maxVectorCandidates = 20000;
    /** Separate cap for *lift* pairs — candidates with a Vec literal
     *  at a root, i.e. the future compilation rules. */
    std::size_t maxLiftCandidates = 15000;
    /** Fingerprint battery size. */
    int numEnvs = 24;
    std::uint64_t seed = 0x15A21Aull;
};

/** A candidate equality discovered by fingerprint collision. */
struct CandidatePair
{
    RecExpr a;
    RecExpr b;
};

/** Result of one enumeration run. */
struct EnumResult
{
    std::vector<CandidatePair> candidates;
    std::size_t termsEnumerated = 0;
    std::size_t classes = 0;
    bool hitDeadline = false;
};

/**
 * Enumerates the single-lane reduction of @p isa (every Vec literal
 * has one lane), collecting candidate pairs until limits or
 * @p deadline. The ISA's vector ops are included; Concat and List are
 * not part of the synthesis grammar (see DESIGN.md).
 *
 * When @p workers is given (and sized above 1), cvec fingerprints are
 * computed in parallel chunks; classification — the only stateful
 * step, and the only one the caps and counters observe — stays
 * sequential in enumeration order, so the result is identical to the
 * single-threaded run at any thread count.
 */
EnumResult enumerateTerms(const IsaSpec &isa, const EnumConfig &config,
                          const Deadline &deadline,
                          ThreadPool *workers = nullptr);

} // namespace isaria

#endif // ISARIA_SYNTH_ENUMERATE_H
