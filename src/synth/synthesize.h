#ifndef ISARIA_SYNTH_SYNTHESIZE_H
#define ISARIA_SYNTH_SYNTHESIZE_H

/**
 * @file
 * The offline rule-synthesis pipeline (Section 3.1).
 *
 * enumerate -> candidate pairs -> shrink (verify + derivability
 * pruning by equality saturation, as in Ruler) -> generalize across
 * vector lanes to the architecture width -> re-verify.
 */

#include "egraph/runner.h"
#include "isa/cost_model.h"
#include "synth/enumerate.h"
#include "synth/ruleset.h"
#include "verify/verifier.h"

namespace isaria
{

/** Budget and knobs for one offline synthesis run. */
struct SynthConfig
{
    EnumConfig enumConfig;
    VerifyOptions verify;
    /** Overall offline wall-clock budget in seconds (<=0 unlimited). */
    double timeoutSeconds = 30;
    /** Fraction of the budget reserved for enumeration; the rest goes
     *  to shrinking and generalization. */
    double enumFraction = 0.35;
    /** Stop after this many accepted (directed) rules. */
    std::size_t maxRules = 600;
    /** Candidates accepted between derivability prunes. */
    int batchSize = 16;
    /**
     * Cost parameters used to spot *shortcut* candidates: a pair
     * whose two sides differ in cost by more than alpha would become
     * a compilation rule, and such shortcuts are kept even when they
     * are derivable from smaller rules — one application of a
     * shortcut replaces a whole chain of rewrites at compile time,
     * which is what keeps saturation tractable (cf. the shortcut-rule
     * discussion in Section 5.2).
     */
    CostParams costParams = {};
    /** Keep shortcut candidates even when derivable (see above).
     *  Disable to reproduce strict Ruler-style minimization in the
     *  ablation bench. */
    bool keepShortcutCandidates = true;
    /** Budgets for each derivability-check saturation. Includes
     *  EqSatLimits::numThreads: the shrinking loop's e-matching runs
     *  on the parallel search engine, and because matches are
     *  thread-count independent, the synthesized ruleset is too. */
    EqSatLimits derivLimits = {.maxNodes = 30'000,
                               .maxIters = 2,
                               .timeoutSeconds = 1.0,
                               .maxMatchesPerRule = 2'000};
    /**
     * Worker threads for candidate verification and cvec
     * fingerprinting (the offline-phase hot loops). 0 = auto: the
     * ISARIA_EQSAT_THREADS environment variable if set, otherwise
     * hardware concurrency; 1 = fully sequential. Verification is
     * pure, so candidates are verified speculatively in batches and
     * their accept/reject decisions committed in the sequential
     * order — the synthesized rule set is byte-identical at any
     * thread count (deadline exits aside, which carry the same
     * wall-clock nondeterminism as the sequential engine). When a
     * fault-injection plan is armed the run drops to the sequential
     * path so the synth-verify site keeps its deterministic arrival
     * ordinals.
     */
    int numThreads = 0;
};

/** Outcome of the offline pipeline. */
struct SynthReport
{
    /** Rules over the single-lane reduction (pre-generalization). */
    RuleSet oneWideRules;
    /** Rules generalized to the ISA's vector width — the compiler's
     *  rule set. */
    RuleSet rules;
    std::size_t candidatesConsidered = 0;
    std::size_t rejectedUnsound = 0;
    std::size_t prunedDerivable = 0;
    std::size_t droppedAtGeneralization = 0;
    /** Candidate pairs dropped as duplicates of an earlier pair
     *  (keyed on the sorted canonical hash pair, collision-free). */
    std::size_t duplicatePairs = 0;
    /** verifyRule calls issued speculatively by the batched parallel
     *  verifier; the consumed subset shows up in the verdict
     *  counters, the rest is parallel slack. */
    std::size_t prefetchedVerifications = 0;
    double enumerateSeconds = 0;
    double shrinkSeconds = 0;
    double generalizeSeconds = 0;
    bool hitDeadline = false;
    /** Verification threads actually used (resolved from numThreads). */
    int verifyThreads = 1;
    /** The report was served from a persistent cache (src/cache/):
     *  no enumeration, verification, or shrinking ran. */
    bool fromCache = false;
    /** Verifier calls lost to injected faults; each rejects its
     *  candidate, so synthesis degrades to a smaller rule set. */
    std::size_t verifierFaults = 0;
};

/** Runs the full offline pipeline for @p isa. */
SynthReport synthesizeRules(const IsaSpec &isa, const SynthConfig &config);

/**
 * The configuration synthesis actually runs under for @p isa:
 * machine-derived fields are forced from the spec — today that is
 * VerifyOptions::defaultWidth, which must equal the ISA's lane width
 * or lane generalization and verification would sample at different
 * widths. Both synthesizeRules() and synthFingerprint() go through
 * this, so the cache key always describes the effective run.
 */
SynthConfig effectiveSynthConfig(const IsaSpec &isa, SynthConfig config);

/**
 * Lane generalization (§3.1): expands every 1-wide Vec literal of the
 * pattern to @p width lanes, renaming the scalar wildcards of each
 * lane to fresh ids (consistently across all Vec literals, so shared
 * wildcards stay shared per lane). Patterns without vector operators
 * pass through unchanged.
 */
RecExpr generalizeToWidth(const RecExpr &pattern, int width);

/** Generalizes both sides of a rule. */
Rule generalizeRule(const Rule &rule, int width);

} // namespace isaria

#endif // ISARIA_SYNTH_SYNTHESIZE_H
