#ifndef ISARIA_FRONTEND_KERNEL_IR_H
#define ISARIA_FRONTEND_KERNEL_IR_H

/**
 * @file
 * A miniature imperative kernel IR and its symbolic evaluator.
 *
 * This plays the role of the Diospyros front-end the paper reuses: DSP
 * kernels are written imperatively (arrays, constant-bound loops,
 * assignments), then *lifted* by symbolic evaluation — loops unrolled,
 * variables resolved — into the pure vector DSL the rewrite system
 * works on (Section 2.1).
 */

#include <memory>
#include <string>
#include <vector>

#include "term/rec_expr.h"

namespace isaria
{

/** Expression of the kernel IR (shared immutable AST). */
struct KExprNode;
using KExpr = std::shared_ptr<const KExprNode>;

struct KExprNode
{
    enum class Kind
    {
        Const, ///< Integer literal.
        Var,   ///< Loop variable.
        Ref,   ///< Array element a[i].
        Add,
        Sub,
        Mul,
        Div,
        Neg,
        Sqrt,
        Sgn,
    };

    Kind kind;
    std::int64_t value = 0;  ///< Const payload.
    std::string name;        ///< Var / Ref array name.
    KExpr a, b;              ///< Operands (b null for unary; for Ref,
                             ///< a is the index expression).
};

KExpr kConst(std::int64_t value);
KExpr kVar(std::string name);
KExpr kRef(std::string array, KExpr index);
KExpr kAdd(KExpr a, KExpr b);
KExpr kSub(KExpr a, KExpr b);
KExpr kMul(KExpr a, KExpr b);
KExpr kDiv(KExpr a, KExpr b);
KExpr kNeg(KExpr a);
KExpr kSqrt(KExpr a);
KExpr kSgn(KExpr a);

/** Statement of the kernel IR. */
struct KStmtNode;
using KStmt = std::shared_ptr<const KStmtNode>;

struct KStmtNode
{
    enum class Kind
    {
        Store, ///< array[index] = value.
        For,   ///< for (var = lo; var < hi; ++var) body.
    };

    Kind kind;
    // Store:
    std::string array;
    KExpr index;
    KExpr value;
    // For:
    std::string var;
    std::int64_t lo = 0, hi = 0;
    std::vector<KStmt> body;
};

KStmt kStore(std::string array, KExpr index, KExpr value);
/** Read-modify-write accumulate: array[index] += value. */
KStmt kAccum(std::string array, KExpr index, KExpr value);
KStmt kFor(std::string var, std::int64_t lo, std::int64_t hi,
           std::vector<KStmt> body);

/** An imperative kernel: declarations plus a statement list. */
struct Kernel
{
    std::string name;
    /** Input arrays (name, length); elements become Get leaves. */
    std::vector<std::pair<std::string, int>> inputs;
    /** Output arrays (name, length), zero-initialized. */
    std::vector<std::pair<std::string, int>> outputs;
    /** Scratch arrays (name, length), zero-initialized. */
    std::vector<std::pair<std::string, int>> scratch;
    std::vector<KStmt> body;

    /** Total output element count (all output arrays, in order). */
    int totalOutputs() const;
};

/**
 * Lifts @p kernel to the vector DSL: symbolic evaluation unrolls
 * every loop, tracks array contents as DSL subexpressions, and packs
 * the output elements into width-@p vectorWidth Vec chunks (padded
 * with zeros) under a top-level List.
 *
 * Trivial algebraic folds (x+0, x*1, x*0) are applied during lifting,
 * as a real front-end's constant folding would.
 */
RecExpr liftKernel(const Kernel &kernel, int vectorWidth);

} // namespace isaria

#endif // ISARIA_FRONTEND_KERNEL_IR_H
