#include "frontend/kernel_ir.h"

#include <unordered_map>

#include "support/panic.h"

namespace isaria
{

namespace
{

KExpr
makeExpr(KExprNode::Kind kind, KExpr a = nullptr, KExpr b = nullptr)
{
    auto node = std::make_shared<KExprNode>();
    node->kind = kind;
    node->a = std::move(a);
    node->b = std::move(b);
    return node;
}

} // namespace

KExpr
kConst(std::int64_t value)
{
    auto node = std::make_shared<KExprNode>();
    node->kind = KExprNode::Kind::Const;
    node->value = value;
    return node;
}

KExpr
kVar(std::string name)
{
    auto node = std::make_shared<KExprNode>();
    node->kind = KExprNode::Kind::Var;
    node->name = std::move(name);
    return node;
}

KExpr
kRef(std::string array, KExpr index)
{
    auto node = std::make_shared<KExprNode>();
    node->kind = KExprNode::Kind::Ref;
    node->name = std::move(array);
    node->a = std::move(index);
    return node;
}

KExpr kAdd(KExpr a, KExpr b)
{ return makeExpr(KExprNode::Kind::Add, std::move(a), std::move(b)); }
KExpr kSub(KExpr a, KExpr b)
{ return makeExpr(KExprNode::Kind::Sub, std::move(a), std::move(b)); }
KExpr kMul(KExpr a, KExpr b)
{ return makeExpr(KExprNode::Kind::Mul, std::move(a), std::move(b)); }
KExpr kDiv(KExpr a, KExpr b)
{ return makeExpr(KExprNode::Kind::Div, std::move(a), std::move(b)); }
KExpr kNeg(KExpr a)
{ return makeExpr(KExprNode::Kind::Neg, std::move(a)); }
KExpr kSqrt(KExpr a)
{ return makeExpr(KExprNode::Kind::Sqrt, std::move(a)); }
KExpr kSgn(KExpr a)
{ return makeExpr(KExprNode::Kind::Sgn, std::move(a)); }

KStmt
kStore(std::string array, KExpr index, KExpr value)
{
    auto node = std::make_shared<KStmtNode>();
    node->kind = KStmtNode::Kind::Store;
    node->array = std::move(array);
    node->index = std::move(index);
    node->value = std::move(value);
    return node;
}

KStmt
kAccum(std::string array, KExpr index, KExpr value)
{
    KExpr read = kRef(array, index);
    return kStore(std::move(array), index, kAdd(read, std::move(value)));
}

KStmt
kFor(std::string var, std::int64_t lo, std::int64_t hi,
     std::vector<KStmt> body)
{
    auto node = std::make_shared<KStmtNode>();
    node->kind = KStmtNode::Kind::For;
    node->var = std::move(var);
    node->lo = lo;
    node->hi = hi;
    node->body = std::move(body);
    return node;
}

int
Kernel::totalOutputs() const
{
    int total = 0;
    for (const auto &[name, size] : outputs)
        total += size;
    return total;
}

namespace
{

/** Symbolic state: every array element is a DSL node id. */
class Lifter
{
  public:
    Lifter(const Kernel &kernel, int width)
        : kernel_(kernel), width_(width)
    {}

    RecExpr
    run()
    {
        // Seed arrays: inputs as Get leaves, outputs/scratch as zero.
        for (const auto &[name, size] : kernel_.inputs) {
            SymbolId sym = internSymbol(name);
            auto &cells = arrays_[name];
            for (int i = 0; i < size; ++i)
                cells.push_back(expr_.addGet(sym, i));
        }
        NodeId zero = expr_.addConst(0);
        for (const auto &[name, size] : kernel_.outputs)
            arrays_[name].assign(size, zero);
        for (const auto &[name, size] : kernel_.scratch)
            arrays_[name].assign(size, zero);

        for (const KStmt &stmt : kernel_.body)
            execStmt(stmt);

        // Gather output elements, chunk into Vec groups, pad with 0.
        std::vector<NodeId> elements;
        for (const auto &[name, size] : kernel_.outputs) {
            const auto &cells = arrays_.at(name);
            elements.insert(elements.end(), cells.begin(), cells.end());
        }
        std::vector<NodeId> chunks;
        for (std::size_t base = 0; base < elements.size();
             base += width_) {
            std::vector<NodeId> lanes;
            for (int l = 0; l < width_; ++l) {
                std::size_t i = base + l;
                lanes.push_back(i < elements.size() ? elements[i] : zero);
            }
            chunks.push_back(expr_.add(Op::Vec, std::move(lanes)));
        }
        expr_.add(Op::List, std::move(chunks));
        return std::move(expr_);
    }

  private:
    void
    execStmt(const KStmt &stmt)
    {
        switch (stmt->kind) {
          case KStmtNode::Kind::Store: {
            std::int64_t index = evalIndex(stmt->index);
            auto it = arrays_.find(stmt->array);
            ISARIA_ASSERT(it != arrays_.end(), "store to unknown array");
            ISARIA_ASSERT(index >= 0 && static_cast<std::size_t>(index) <
                                            it->second.size(),
                          "store out of bounds");
            it->second[index] = evalValue(stmt->value);
            return;
          }
          case KStmtNode::Kind::For: {
            for (std::int64_t i = stmt->lo; i < stmt->hi; ++i) {
                loopVars_[stmt->var] = i;
                for (const KStmt &inner : stmt->body)
                    execStmt(inner);
            }
            loopVars_.erase(stmt->var);
            return;
          }
        }
        ISARIA_PANIC("bad statement kind");
    }

    std::int64_t
    evalIndex(const KExpr &expr)
    {
        switch (expr->kind) {
          case KExprNode::Kind::Const:
            return expr->value;
          case KExprNode::Kind::Var: {
            auto it = loopVars_.find(expr->name);
            ISARIA_ASSERT(it != loopVars_.end(), "unknown loop variable");
            return it->second;
          }
          case KExprNode::Kind::Add:
            return evalIndex(expr->a) + evalIndex(expr->b);
          case KExprNode::Kind::Sub:
            return evalIndex(expr->a) - evalIndex(expr->b);
          case KExprNode::Kind::Mul:
            return evalIndex(expr->a) * evalIndex(expr->b);
          default:
            ISARIA_PANIC("index expression must be affine integer");
        }
    }

    bool
    isConst(NodeId id, std::int64_t value) const
    {
        const TermNode &n = expr_.node(id);
        return n.op == Op::Const && n.payload == value;
    }

    NodeId
    evalValue(const KExpr &expr)
    {
        switch (expr->kind) {
          case KExprNode::Kind::Const:
            return expr_.addConst(expr->value);
          case KExprNode::Kind::Var:
            return expr_.addConst(evalIndex(expr));
          case KExprNode::Kind::Ref: {
            std::int64_t index = evalIndex(expr->a);
            auto it = arrays_.find(expr->name);
            ISARIA_ASSERT(it != arrays_.end(), "read of unknown array");
            ISARIA_ASSERT(index >= 0 && static_cast<std::size_t>(index) <
                                            it->second.size(),
                          "read out of bounds");
            return it->second[index];
          }
          case KExprNode::Kind::Add: {
            NodeId a = evalValue(expr->a);
            NodeId b = evalValue(expr->b);
            if (isConst(a, 0))
                return b;
            if (isConst(b, 0))
                return a;
            return expr_.add(Op::Add, {a, b});
          }
          case KExprNode::Kind::Sub: {
            NodeId a = evalValue(expr->a);
            NodeId b = evalValue(expr->b);
            if (isConst(b, 0))
                return a;
            return expr_.add(Op::Sub, {a, b});
          }
          case KExprNode::Kind::Mul: {
            NodeId a = evalValue(expr->a);
            NodeId b = evalValue(expr->b);
            if (isConst(a, 0) || isConst(b, 0))
                return expr_.addConst(0);
            if (isConst(a, 1))
                return b;
            if (isConst(b, 1))
                return a;
            return expr_.add(Op::Mul, {a, b});
          }
          case KExprNode::Kind::Div:
            return expr_.add(Op::Div,
                             {evalValue(expr->a), evalValue(expr->b)});
          case KExprNode::Kind::Neg:
            return expr_.add(Op::Neg, {evalValue(expr->a)});
          case KExprNode::Kind::Sqrt:
            return expr_.add(Op::Sqrt, {evalValue(expr->a)});
          case KExprNode::Kind::Sgn:
            return expr_.add(Op::Sgn, {evalValue(expr->a)});
        }
        ISARIA_PANIC("bad expression kind");
    }

    const Kernel &kernel_;
    int width_;
    RecExpr expr_;
    std::unordered_map<std::string, std::vector<NodeId>> arrays_;
    std::unordered_map<std::string, std::int64_t> loopVars_;
};

} // namespace

RecExpr
liftKernel(const Kernel &kernel, int vectorWidth)
{
    ISARIA_ASSERT(vectorWidth >= 1, "bad vector width");
    Lifter lifter(kernel, vectorWidth);
    return lifter.run();
}

} // namespace isaria
