#include "frontend/kernels.h"

#include <string>

#include "support/panic.h"

namespace isaria
{

Kernel
make2DConv(int rows, int cols, int krows, int kcols)
{
    ISARIA_ASSERT(rows >= 1 && cols >= 1 && krows >= 1 && kcols >= 1,
                  "bad convolution shape");
    int orows = rows + krows - 1;
    int ocols = cols + kcols - 1;

    Kernel kernel;
    kernel.name = "2d-conv " + std::to_string(rows) + "x" +
                  std::to_string(cols) + " " + std::to_string(krows) + "x" +
                  std::to_string(kcols);
    kernel.inputs = {{"I", rows * cols}, {"F", krows * kcols}};
    kernel.outputs = {{"O", orows * ocols}};

    // Scatter formulation of full convolution: every input pixel
    // contributes to the filter-footprint of output pixels, which
    // needs no boundary conditionals.
    auto r = kVar("r"), c = kVar("c"), i = kVar("i"), j = kVar("j");
    KExpr oIdx = kAdd(kMul(kAdd(r, i), kConst(ocols)), kAdd(c, j));
    KExpr iIdx = kAdd(kMul(r, kConst(cols)), c);
    KExpr fIdx = kAdd(kMul(i, kConst(kcols)), j);
    KStmt inner = kAccum("O", oIdx, kMul(kRef("I", iIdx), kRef("F", fIdx)));
    kernel.body = {kFor(
        "r", 0, rows,
        {kFor("c", 0, cols,
              {kFor("i", 0, krows, {kFor("j", 0, kcols, {inner})})})})};
    return kernel;
}

Kernel
makeMatMul(int n, int m, int k)
{
    Kernel kernel;
    kernel.name = "mat-mul " + std::to_string(n) + "x" + std::to_string(m) +
                  " " + std::to_string(m) + "x" + std::to_string(k);
    kernel.inputs = {{"A", n * m}, {"B", m * k}};
    kernel.outputs = {{"C", n * k}};

    auto i = kVar("i"), j = kVar("j"), l = kVar("l");
    KExpr cIdx = kAdd(kMul(i, kConst(k)), j);
    KExpr aIdx = kAdd(kMul(i, kConst(m)), l);
    KExpr bIdx = kAdd(kMul(l, kConst(k)), j);
    KStmt inner = kAccum("C", cIdx, kMul(kRef("A", aIdx), kRef("B", bIdx)));
    kernel.body = {
        kFor("i", 0, n,
             {kFor("j", 0, k, {kFor("l", 0, m, {inner})})})};
    return kernel;
}

Kernel
makeQProd()
{
    Kernel kernel;
    kernel.name = "q-prod";
    kernel.inputs = {{"P", 4}, {"Q", 4}};
    kernel.outputs = {{"R", 4}};

    auto p = [](int i) { return kRef("P", kConst(i)); };
    auto q = [](int i) { return kRef("Q", kConst(i)); };
    auto mul = [&](int i, int j) { return kMul(p(i), q(j)); };

    // Hamilton product.
    kernel.body = {
        kStore("R", kConst(0),
               kSub(kSub(kSub(mul(0, 0), mul(1, 1)), mul(2, 2)),
                    mul(3, 3))),
        kStore("R", kConst(1),
               kSub(kAdd(kAdd(mul(0, 1), mul(1, 0)), mul(2, 3)),
                    mul(3, 2))),
        kStore("R", kConst(2),
               kAdd(kAdd(kSub(mul(0, 2), mul(1, 3)), mul(2, 0)),
                    mul(3, 1))),
        kStore("R", kConst(3),
               kAdd(kSub(kAdd(mul(0, 3), mul(1, 2)), mul(2, 1)),
                    mul(3, 0))),
    };
    return kernel;
}

Kernel
makeQrD(int n)
{
    ISARIA_ASSERT(n >= 2, "QR needs n >= 2");
    Kernel kernel;
    kernel.name = "qr-decomp " + std::to_string(n) + "x" + std::to_string(n);
    kernel.inputs = {{"A", n * n}};
    kernel.outputs = {{"Q", n * n}, {"R", n * n}};
    kernel.scratch = {{"v", n}, {"t", 1}, {"beta", 1}};

    std::vector<KStmt> &body = kernel.body;
    auto at = [n](const char *arr, int i, int j) {
        return kRef(arr, kConst(i * n + j));
    };
    auto store = [n](const char *arr, int i, int j, KExpr value) {
        return kStore(arr, kConst(i * n + j), std::move(value));
    };

    // R = A; Q = I.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            body.push_back(store("R", i, j, at("A", i, j)));
            if (i == j)
                body.push_back(store("Q", i, j, kConst(1)));
        }
    }

    // Householder reflections, fully unrolled (the paper's pipeline
    // likewise unrolls; see the scalability discussion in §5.1).
    for (int k = 0; k < n - 1; ++k) {
        // normSq = sum_i R[i][k]^2 over i in [k, n).
        KExpr normSq = kMul(at("R", k, k), at("R", k, k));
        for (int i = k + 1; i < n; ++i)
            normSq = kAdd(normSq, kMul(at("R", i, k), at("R", i, k)));
        body.push_back(kStore("t", kConst(0), normSq));

        // alpha = -sgn(R[k][k]) * sqrt(normSq): the paper's custom
        // VecSqrtSgn pattern, sqrt(a) * sign(-b).
        KExpr alpha = kMul(kNeg(kSgn(at("R", k, k))),
                           kSqrt(kRef("t", kConst(0))));

        // v = x - alpha*e1 (stored in scratch v[k..n)).
        body.push_back(kStore("v", kConst(k), kSub(at("R", k, k), alpha)));
        for (int i = k + 1; i < n; ++i)
            body.push_back(kStore("v", kConst(i), at("R", i, k)));

        // beta = 2 / (v . v).
        KExpr vnorm = kMul(kRef("v", kConst(k)), kRef("v", kConst(k)));
        for (int i = k + 1; i < n; ++i) {
            vnorm = kAdd(vnorm,
                         kMul(kRef("v", kConst(i)), kRef("v", kConst(i))));
        }
        body.push_back(kStore("beta", kConst(0), kDiv(kConst(2), vnorm)));

        // R <- (I - beta v v^T) R for columns [k, n).
        for (int j = k; j < n; ++j) {
            KExpr s = kMul(kRef("v", kConst(k)), at("R", k, j));
            for (int i = k + 1; i < n; ++i)
                s = kAdd(s, kMul(kRef("v", kConst(i)), at("R", i, j)));
            body.push_back(kStore("t", kConst(0),
                                  kMul(kRef("beta", kConst(0)), s)));
            for (int i = k; i < n; ++i) {
                body.push_back(store(
                    "R", i, j,
                    kSub(at("R", i, j), kMul(kRef("v", kConst(i)),
                                             kRef("t", kConst(0))))));
            }
        }

        // Q <- Q (I - beta v v^T) for all rows.
        for (int i = 0; i < n; ++i) {
            KExpr s = kMul(at("Q", i, k), kRef("v", kConst(k)));
            for (int j = k + 1; j < n; ++j)
                s = kAdd(s, kMul(at("Q", i, j), kRef("v", kConst(j))));
            body.push_back(kStore("t", kConst(0),
                                  kMul(kRef("beta", kConst(0)), s)));
            for (int j = k; j < n; ++j) {
                body.push_back(store(
                    "Q", i, j,
                    kSub(at("Q", i, j), kMul(kRef("t", kConst(0)),
                                             kRef("v", kConst(j))))));
            }
        }
    }
    return kernel;
}

} // namespace isaria
