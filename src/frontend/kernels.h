#ifndef ISARIA_FRONTEND_KERNELS_H
#define ISARIA_FRONTEND_KERNELS_H

/**
 * @file
 * The benchmark kernels of the paper's evaluation (Section 5):
 * 2D convolution, matrix multiplication, quaternion product, and QR
 * decomposition — the same suite Diospyros uses, inspired by computer
 * vision and machine perception workloads.
 */

#include "frontend/kernel_ir.h"

namespace isaria
{

/**
 * Full 2D convolution: input @p rows x @p cols, filter
 * @p krows x @p kcols, output (rows+krows-1) x (cols+kcols-1).
 * Arrays: I (input), F (filter); output O.
 */
Kernel make2DConv(int rows, int cols, int krows, int kcols);

/** Matrix multiply C = A * B with A: n x m, B: m x k. */
Kernel makeMatMul(int n, int m, int k);

/** Quaternion product r = p * q (4-element Hamilton product). */
Kernel makeQProd();

/**
 * QR decomposition of an n x n matrix A by Householder reflections,
 * emitting Q and R. Uses sqrt, division, and sign — the kernel the
 * paper's ISA-customization study targets (Section 5.4).
 */
Kernel makeQrD(int n);

} // namespace isaria

#endif // ISARIA_FRONTEND_KERNELS_H
