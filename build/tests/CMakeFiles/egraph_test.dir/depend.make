# Empty dependencies file for egraph_test.
# This may be replaced when dependencies are built.
