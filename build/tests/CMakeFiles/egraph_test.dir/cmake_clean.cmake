file(REMOVE_RECURSE
  "CMakeFiles/egraph_test.dir/egraph_test.cpp.o"
  "CMakeFiles/egraph_test.dir/egraph_test.cpp.o.d"
  "egraph_test"
  "egraph_test.pdb"
  "egraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
