file(REMOVE_RECURSE
  "CMakeFiles/phase_test.dir/phase_test.cpp.o"
  "CMakeFiles/phase_test.dir/phase_test.cpp.o.d"
  "phase_test"
  "phase_test.pdb"
  "phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
