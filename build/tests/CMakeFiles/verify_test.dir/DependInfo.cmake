
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/verify_test.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/verify_test.dir/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/isaria_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/isaria_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/isaria_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/isaria_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/isaria_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/isaria_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/isaria_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/isaria_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/isaria_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/isaria_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/isaria_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
