# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/egraph_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/phase_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/lower_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/optimize_test[1]_include.cmake")
