# Empty compiler generated dependencies file for isaria_support.
# This may be replaced when dependencies are built.
