file(REMOVE_RECURSE
  "CMakeFiles/isaria_support.dir/interner.cpp.o"
  "CMakeFiles/isaria_support.dir/interner.cpp.o.d"
  "CMakeFiles/isaria_support.dir/rational.cpp.o"
  "CMakeFiles/isaria_support.dir/rational.cpp.o.d"
  "libisaria_support.a"
  "libisaria_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
