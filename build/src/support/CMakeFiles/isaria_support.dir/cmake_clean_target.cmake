file(REMOVE_RECURSE
  "libisaria_support.a"
)
