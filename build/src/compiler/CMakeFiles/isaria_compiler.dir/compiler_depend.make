# Empty compiler generated dependencies file for isaria_compiler.
# This may be replaced when dependencies are built.
