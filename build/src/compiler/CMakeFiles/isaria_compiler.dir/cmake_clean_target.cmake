file(REMOVE_RECURSE
  "libisaria_compiler.a"
)
