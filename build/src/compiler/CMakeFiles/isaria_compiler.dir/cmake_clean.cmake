file(REMOVE_RECURSE
  "CMakeFiles/isaria_compiler.dir/compiler.cpp.o"
  "CMakeFiles/isaria_compiler.dir/compiler.cpp.o.d"
  "CMakeFiles/isaria_compiler.dir/pipeline.cpp.o"
  "CMakeFiles/isaria_compiler.dir/pipeline.cpp.o.d"
  "libisaria_compiler.a"
  "libisaria_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
