file(REMOVE_RECURSE
  "CMakeFiles/isaria_lower.dir/lower.cpp.o"
  "CMakeFiles/isaria_lower.dir/lower.cpp.o.d"
  "CMakeFiles/isaria_lower.dir/optimize.cpp.o"
  "CMakeFiles/isaria_lower.dir/optimize.cpp.o.d"
  "libisaria_lower.a"
  "libisaria_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
