file(REMOVE_RECURSE
  "libisaria_lower.a"
)
