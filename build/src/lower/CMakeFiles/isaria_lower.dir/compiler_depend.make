# Empty compiler generated dependencies file for isaria_lower.
# This may be replaced when dependencies are built.
