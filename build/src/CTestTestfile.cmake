# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("term")
subdirs("interp")
subdirs("egraph")
subdirs("isa")
subdirs("verify")
subdirs("synth")
subdirs("phase")
subdirs("compiler")
subdirs("frontend")
subdirs("lower")
subdirs("vm")
subdirs("baseline")
