file(REMOVE_RECURSE
  "CMakeFiles/isaria_term.dir/op.cpp.o"
  "CMakeFiles/isaria_term.dir/op.cpp.o.d"
  "CMakeFiles/isaria_term.dir/pattern.cpp.o"
  "CMakeFiles/isaria_term.dir/pattern.cpp.o.d"
  "CMakeFiles/isaria_term.dir/rec_expr.cpp.o"
  "CMakeFiles/isaria_term.dir/rec_expr.cpp.o.d"
  "CMakeFiles/isaria_term.dir/sexpr.cpp.o"
  "CMakeFiles/isaria_term.dir/sexpr.cpp.o.d"
  "libisaria_term.a"
  "libisaria_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
