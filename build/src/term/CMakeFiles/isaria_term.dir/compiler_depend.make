# Empty compiler generated dependencies file for isaria_term.
# This may be replaced when dependencies are built.
