
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/op.cpp" "src/term/CMakeFiles/isaria_term.dir/op.cpp.o" "gcc" "src/term/CMakeFiles/isaria_term.dir/op.cpp.o.d"
  "/root/repo/src/term/pattern.cpp" "src/term/CMakeFiles/isaria_term.dir/pattern.cpp.o" "gcc" "src/term/CMakeFiles/isaria_term.dir/pattern.cpp.o.d"
  "/root/repo/src/term/rec_expr.cpp" "src/term/CMakeFiles/isaria_term.dir/rec_expr.cpp.o" "gcc" "src/term/CMakeFiles/isaria_term.dir/rec_expr.cpp.o.d"
  "/root/repo/src/term/sexpr.cpp" "src/term/CMakeFiles/isaria_term.dir/sexpr.cpp.o" "gcc" "src/term/CMakeFiles/isaria_term.dir/sexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
