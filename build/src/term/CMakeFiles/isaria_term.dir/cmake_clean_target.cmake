file(REMOVE_RECURSE
  "libisaria_term.a"
)
