
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/isaria_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/isaria_vm.dir/machine.cpp.o.d"
  "/root/repo/src/vm/reference.cpp" "src/vm/CMakeFiles/isaria_vm.dir/reference.cpp.o" "gcc" "src/vm/CMakeFiles/isaria_vm.dir/reference.cpp.o.d"
  "/root/repo/src/vm/vm_isa.cpp" "src/vm/CMakeFiles/isaria_vm.dir/vm_isa.cpp.o" "gcc" "src/vm/CMakeFiles/isaria_vm.dir/vm_isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
