# Empty compiler generated dependencies file for isaria_vm.
# This may be replaced when dependencies are built.
