file(REMOVE_RECURSE
  "CMakeFiles/isaria_vm.dir/machine.cpp.o"
  "CMakeFiles/isaria_vm.dir/machine.cpp.o.d"
  "CMakeFiles/isaria_vm.dir/reference.cpp.o"
  "CMakeFiles/isaria_vm.dir/reference.cpp.o.d"
  "CMakeFiles/isaria_vm.dir/vm_isa.cpp.o"
  "CMakeFiles/isaria_vm.dir/vm_isa.cpp.o.d"
  "libisaria_vm.a"
  "libisaria_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
