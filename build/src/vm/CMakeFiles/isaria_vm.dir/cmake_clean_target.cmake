file(REMOVE_RECURSE
  "libisaria_vm.a"
)
