# Empty dependencies file for isaria_frontend.
# This may be replaced when dependencies are built.
