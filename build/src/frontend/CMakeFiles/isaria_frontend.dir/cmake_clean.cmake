file(REMOVE_RECURSE
  "CMakeFiles/isaria_frontend.dir/kernel_ir.cpp.o"
  "CMakeFiles/isaria_frontend.dir/kernel_ir.cpp.o.d"
  "CMakeFiles/isaria_frontend.dir/kernels.cpp.o"
  "CMakeFiles/isaria_frontend.dir/kernels.cpp.o.d"
  "libisaria_frontend.a"
  "libisaria_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
