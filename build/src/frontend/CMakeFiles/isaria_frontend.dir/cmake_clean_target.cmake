file(REMOVE_RECURSE
  "libisaria_frontend.a"
)
