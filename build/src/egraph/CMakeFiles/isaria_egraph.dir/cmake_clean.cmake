file(REMOVE_RECURSE
  "CMakeFiles/isaria_egraph.dir/egraph.cpp.o"
  "CMakeFiles/isaria_egraph.dir/egraph.cpp.o.d"
  "CMakeFiles/isaria_egraph.dir/ematch.cpp.o"
  "CMakeFiles/isaria_egraph.dir/ematch.cpp.o.d"
  "CMakeFiles/isaria_egraph.dir/extract.cpp.o"
  "CMakeFiles/isaria_egraph.dir/extract.cpp.o.d"
  "CMakeFiles/isaria_egraph.dir/rewrite.cpp.o"
  "CMakeFiles/isaria_egraph.dir/rewrite.cpp.o.d"
  "CMakeFiles/isaria_egraph.dir/runner.cpp.o"
  "CMakeFiles/isaria_egraph.dir/runner.cpp.o.d"
  "CMakeFiles/isaria_egraph.dir/union_find.cpp.o"
  "CMakeFiles/isaria_egraph.dir/union_find.cpp.o.d"
  "libisaria_egraph.a"
  "libisaria_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
