
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/egraph/egraph.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/egraph.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/egraph.cpp.o.d"
  "/root/repo/src/egraph/ematch.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/ematch.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/ematch.cpp.o.d"
  "/root/repo/src/egraph/extract.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/extract.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/extract.cpp.o.d"
  "/root/repo/src/egraph/rewrite.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/rewrite.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/rewrite.cpp.o.d"
  "/root/repo/src/egraph/runner.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/runner.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/runner.cpp.o.d"
  "/root/repo/src/egraph/union_find.cpp" "src/egraph/CMakeFiles/isaria_egraph.dir/union_find.cpp.o" "gcc" "src/egraph/CMakeFiles/isaria_egraph.dir/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
