# Empty compiler generated dependencies file for isaria_egraph.
# This may be replaced when dependencies are built.
