file(REMOVE_RECURSE
  "libisaria_egraph.a"
)
