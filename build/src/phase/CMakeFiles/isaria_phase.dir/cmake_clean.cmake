file(REMOVE_RECURSE
  "CMakeFiles/isaria_phase.dir/phase.cpp.o"
  "CMakeFiles/isaria_phase.dir/phase.cpp.o.d"
  "libisaria_phase.a"
  "libisaria_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
