# Empty dependencies file for isaria_phase.
# This may be replaced when dependencies are built.
