file(REMOVE_RECURSE
  "libisaria_phase.a"
)
