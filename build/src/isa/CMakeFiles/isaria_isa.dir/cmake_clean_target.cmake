file(REMOVE_RECURSE
  "libisaria_isa.a"
)
