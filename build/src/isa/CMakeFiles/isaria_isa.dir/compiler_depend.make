# Empty compiler generated dependencies file for isaria_isa.
# This may be replaced when dependencies are built.
