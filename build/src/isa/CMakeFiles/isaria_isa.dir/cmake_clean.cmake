file(REMOVE_RECURSE
  "CMakeFiles/isaria_isa.dir/cost_model.cpp.o"
  "CMakeFiles/isaria_isa.dir/cost_model.cpp.o.d"
  "CMakeFiles/isaria_isa.dir/isa_spec.cpp.o"
  "CMakeFiles/isaria_isa.dir/isa_spec.cpp.o.d"
  "libisaria_isa.a"
  "libisaria_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
