
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cost_model.cpp" "src/isa/CMakeFiles/isaria_isa.dir/cost_model.cpp.o" "gcc" "src/isa/CMakeFiles/isaria_isa.dir/cost_model.cpp.o.d"
  "/root/repo/src/isa/isa_spec.cpp" "src/isa/CMakeFiles/isaria_isa.dir/isa_spec.cpp.o" "gcc" "src/isa/CMakeFiles/isaria_isa.dir/isa_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/isaria_egraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
