
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/enumerate.cpp" "src/synth/CMakeFiles/isaria_synth.dir/enumerate.cpp.o" "gcc" "src/synth/CMakeFiles/isaria_synth.dir/enumerate.cpp.o.d"
  "/root/repo/src/synth/ruleset.cpp" "src/synth/CMakeFiles/isaria_synth.dir/ruleset.cpp.o" "gcc" "src/synth/CMakeFiles/isaria_synth.dir/ruleset.cpp.o.d"
  "/root/repo/src/synth/synthesize.cpp" "src/synth/CMakeFiles/isaria_synth.dir/synthesize.cpp.o" "gcc" "src/synth/CMakeFiles/isaria_synth.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/isaria_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/isaria_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/isaria_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/isaria_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
