file(REMOVE_RECURSE
  "libisaria_synth.a"
)
