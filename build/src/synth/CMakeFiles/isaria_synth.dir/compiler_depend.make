# Empty compiler generated dependencies file for isaria_synth.
# This may be replaced when dependencies are built.
