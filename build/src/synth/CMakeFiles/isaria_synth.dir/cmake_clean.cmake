file(REMOVE_RECURSE
  "CMakeFiles/isaria_synth.dir/enumerate.cpp.o"
  "CMakeFiles/isaria_synth.dir/enumerate.cpp.o.d"
  "CMakeFiles/isaria_synth.dir/ruleset.cpp.o"
  "CMakeFiles/isaria_synth.dir/ruleset.cpp.o.d"
  "CMakeFiles/isaria_synth.dir/synthesize.cpp.o"
  "CMakeFiles/isaria_synth.dir/synthesize.cpp.o.d"
  "libisaria_synth.a"
  "libisaria_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
