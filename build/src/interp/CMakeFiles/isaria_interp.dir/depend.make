# Empty dependencies file for isaria_interp.
# This may be replaced when dependencies are built.
