file(REMOVE_RECURSE
  "libisaria_interp.a"
)
