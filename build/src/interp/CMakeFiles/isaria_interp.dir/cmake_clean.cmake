file(REMOVE_RECURSE
  "CMakeFiles/isaria_interp.dir/cvec.cpp.o"
  "CMakeFiles/isaria_interp.dir/cvec.cpp.o.d"
  "CMakeFiles/isaria_interp.dir/eval.cpp.o"
  "CMakeFiles/isaria_interp.dir/eval.cpp.o.d"
  "CMakeFiles/isaria_interp.dir/value.cpp.o"
  "CMakeFiles/isaria_interp.dir/value.cpp.o.d"
  "libisaria_interp.a"
  "libisaria_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
