
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/cvec.cpp" "src/interp/CMakeFiles/isaria_interp.dir/cvec.cpp.o" "gcc" "src/interp/CMakeFiles/isaria_interp.dir/cvec.cpp.o.d"
  "/root/repo/src/interp/eval.cpp" "src/interp/CMakeFiles/isaria_interp.dir/eval.cpp.o" "gcc" "src/interp/CMakeFiles/isaria_interp.dir/eval.cpp.o.d"
  "/root/repo/src/interp/value.cpp" "src/interp/CMakeFiles/isaria_interp.dir/value.cpp.o" "gcc" "src/interp/CMakeFiles/isaria_interp.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
