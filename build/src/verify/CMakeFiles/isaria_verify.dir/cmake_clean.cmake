file(REMOVE_RECURSE
  "CMakeFiles/isaria_verify.dir/normalizer.cpp.o"
  "CMakeFiles/isaria_verify.dir/normalizer.cpp.o.d"
  "CMakeFiles/isaria_verify.dir/poly.cpp.o"
  "CMakeFiles/isaria_verify.dir/poly.cpp.o.d"
  "CMakeFiles/isaria_verify.dir/verifier.cpp.o"
  "CMakeFiles/isaria_verify.dir/verifier.cpp.o.d"
  "libisaria_verify.a"
  "libisaria_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
