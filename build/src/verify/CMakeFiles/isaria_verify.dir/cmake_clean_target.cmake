file(REMOVE_RECURSE
  "libisaria_verify.a"
)
