
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/normalizer.cpp" "src/verify/CMakeFiles/isaria_verify.dir/normalizer.cpp.o" "gcc" "src/verify/CMakeFiles/isaria_verify.dir/normalizer.cpp.o.d"
  "/root/repo/src/verify/poly.cpp" "src/verify/CMakeFiles/isaria_verify.dir/poly.cpp.o" "gcc" "src/verify/CMakeFiles/isaria_verify.dir/poly.cpp.o.d"
  "/root/repo/src/verify/verifier.cpp" "src/verify/CMakeFiles/isaria_verify.dir/verifier.cpp.o" "gcc" "src/verify/CMakeFiles/isaria_verify.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isaria_support.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/isaria_term.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/isaria_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
