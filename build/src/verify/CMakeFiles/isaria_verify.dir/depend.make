# Empty dependencies file for isaria_verify.
# This may be replaced when dependencies are built.
