file(REMOVE_RECURSE
  "CMakeFiles/isaria_baseline.dir/diospyros.cpp.o"
  "CMakeFiles/isaria_baseline.dir/diospyros.cpp.o.d"
  "CMakeFiles/isaria_baseline.dir/harness.cpp.o"
  "CMakeFiles/isaria_baseline.dir/harness.cpp.o.d"
  "CMakeFiles/isaria_baseline.dir/nature.cpp.o"
  "CMakeFiles/isaria_baseline.dir/nature.cpp.o.d"
  "CMakeFiles/isaria_baseline.dir/slp.cpp.o"
  "CMakeFiles/isaria_baseline.dir/slp.cpp.o.d"
  "libisaria_baseline.a"
  "libisaria_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaria_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
