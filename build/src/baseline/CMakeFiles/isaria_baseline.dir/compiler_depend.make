# Empty compiler generated dependencies file for isaria_baseline.
# This may be replaced when dependencies are built.
