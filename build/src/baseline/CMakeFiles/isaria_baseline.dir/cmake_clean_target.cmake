file(REMOVE_RECURSE
  "libisaria_baseline.a"
)
