# Empty dependencies file for fig5_compile_time.
# This may be replaced when dependencies are built.
