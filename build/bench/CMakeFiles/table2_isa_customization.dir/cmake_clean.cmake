file(REMOVE_RECURSE
  "CMakeFiles/table2_isa_customization.dir/table2_isa_customization.cpp.o"
  "CMakeFiles/table2_isa_customization.dir/table2_isa_customization.cpp.o.d"
  "table2_isa_customization"
  "table2_isa_customization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_isa_customization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
