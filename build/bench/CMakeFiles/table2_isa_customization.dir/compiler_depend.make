# Empty compiler generated dependencies file for table2_isa_customization.
# This may be replaced when dependencies are built.
