file(REMOVE_RECURSE
  "CMakeFiles/fig6_pruning.dir/fig6_pruning.cpp.o"
  "CMakeFiles/fig6_pruning.dir/fig6_pruning.cpp.o.d"
  "fig6_pruning"
  "fig6_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
