# Empty dependencies file for fig6_pruning.
# This may be replaced when dependencies are built.
