file(REMOVE_RECURSE
  "CMakeFiles/fig9_alpha_beta.dir/fig9_alpha_beta.cpp.o"
  "CMakeFiles/fig9_alpha_beta.dir/fig9_alpha_beta.cpp.o.d"
  "fig9_alpha_beta"
  "fig9_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
