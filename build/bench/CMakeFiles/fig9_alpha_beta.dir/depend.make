# Empty dependencies file for fig9_alpha_beta.
# This may be replaced when dependencies are built.
