file(REMOVE_RECURSE
  "CMakeFiles/fig4_kernel_performance.dir/fig4_kernel_performance.cpp.o"
  "CMakeFiles/fig4_kernel_performance.dir/fig4_kernel_performance.cpp.o.d"
  "fig4_kernel_performance"
  "fig4_kernel_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_kernel_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
