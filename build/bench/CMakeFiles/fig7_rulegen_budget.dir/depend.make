# Empty dependencies file for fig7_rulegen_budget.
# This may be replaced when dependencies are built.
