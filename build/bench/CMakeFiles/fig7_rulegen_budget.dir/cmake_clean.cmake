file(REMOVE_RECURSE
  "CMakeFiles/fig7_rulegen_budget.dir/fig7_rulegen_budget.cpp.o"
  "CMakeFiles/fig7_rulegen_budget.dir/fig7_rulegen_budget.cpp.o.d"
  "fig7_rulegen_budget"
  "fig7_rulegen_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rulegen_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
