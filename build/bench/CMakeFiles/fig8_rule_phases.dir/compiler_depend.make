# Empty compiler generated dependencies file for fig8_rule_phases.
# This may be replaced when dependencies are built.
