file(REMOVE_RECURSE
  "CMakeFiles/fig8_rule_phases.dir/fig8_rule_phases.cpp.o"
  "CMakeFiles/fig8_rule_phases.dir/fig8_rule_phases.cpp.o.d"
  "fig8_rule_phases"
  "fig8_rule_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rule_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
