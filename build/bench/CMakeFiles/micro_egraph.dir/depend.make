# Empty dependencies file for micro_egraph.
# This may be replaced when dependencies are built.
