file(REMOVE_RECURSE
  "CMakeFiles/micro_egraph.dir/micro_egraph.cpp.o"
  "CMakeFiles/micro_egraph.dir/micro_egraph.cpp.o.d"
  "micro_egraph"
  "micro_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
