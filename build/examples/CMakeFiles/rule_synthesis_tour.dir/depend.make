# Empty dependencies file for rule_synthesis_tour.
# This may be replaced when dependencies are built.
