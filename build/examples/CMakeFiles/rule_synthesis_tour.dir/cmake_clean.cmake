file(REMOVE_RECURSE
  "CMakeFiles/rule_synthesis_tour.dir/rule_synthesis_tour.cpp.o"
  "CMakeFiles/rule_synthesis_tour.dir/rule_synthesis_tour.cpp.o.d"
  "rule_synthesis_tour"
  "rule_synthesis_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_synthesis_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
