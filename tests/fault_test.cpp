// Tests for the fault-tolerance layer: the deterministic fault-
// injection harness (src/support/fault.h), recoverable rules-file
// loading, resource guards (byte ceiling, cancellation, in-flight
// timeout checks), and the compiler's graceful-degradation ladder —
// including the invariant that no injected fault can make compile()
// abort, and that degraded output is identical at any thread count.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "baseline/diospyros.h"
#include "compiler/compiler.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "frontend/kernels.h"
#include "lower/lower.h"
#include "support/fault.h"
#include "support/timer.h"
#include "synth/ruleset.h"
#include "synth/synthesize.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Arms a fault plan for one test and disarms it on exit. */
struct FaultGuard
{
    explicit FaultGuard(const char *spec)
    {
        auto plan = FaultPlan::parse(spec);
        EXPECT_TRUE(plan.ok()) << spec;
        setFaultPlan(plan.take());
    }
    ~FaultGuard() { clearFaultPlan(); }
};

/** The compact rule system of compiler_test, enough to vectorize. */
RuleSet
miniRules()
{
    RuleSet rules;
    auto add = [&](const char *text) {
        Rule r = parseRule(text);
        r.name = "mini";
        rules.add(std::move(r));
    };
    add("?a ~> (+ ?a 0)");
    add("(+ ?a 0) ~> ?a");
    add("(+ ?a ?b) ~> (+ ?b ?a)");
    add("(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    add("(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3)) ~> "
        "(VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    add("(VecAdd ?a (VecMul ?b ?c)) ~> (VecMAC ?a ?b ?c)");
    add("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)");
    return rules;
}

IsariaCompiler
miniCompiler(CompilerConfig config = {})
{
    return IsariaCompiler(assignPhases(miniRules(), config.costModel),
                          config);
}

/** Section 2.1's running example. */
RecExpr
paperExample()
{
    return parseSexpr(
        "(List (Vec (+ (Get px 0) (Get py 0)) (+ (Get px 1) (Get py 1))"
        " (+ (Get px 2) (Get py 2)) (Get px 3)))");
}

// ---------------------------------------------------------------------
// The fault plan itself.

TEST(Fault, SiteNamesRoundTrip)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        std::string name = faultSiteName(site);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
        auto back = faultSiteFromName(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, site);
    }
    EXPECT_FALSE(faultSiteFromName("no-such-site").has_value());
}

TEST(Fault, PlanParseAcceptsValidSpecs)
{
    auto one = FaultPlan::parse("egraph-alloc:3");
    ASSERT_TRUE(one.ok());
    const auto &alloc =
        one.value().sites[static_cast<std::size_t>(FaultSite::EGraphAlloc)];
    EXPECT_TRUE(alloc.armed);
    EXPECT_EQ(alloc.ordinal, 3u);

    auto multi = FaultPlan::parse("shard-search:1/2@99,rebuild:7");
    ASSERT_TRUE(multi.ok());
    const auto &shard =
        multi.value()
            .sites[static_cast<std::size_t>(FaultSite::ShardSearch)];
    EXPECT_TRUE(shard.armed);
    EXPECT_EQ(shard.ordinal, 0u);
    EXPECT_EQ(shard.numer, 1u);
    EXPECT_EQ(shard.denom, 2u);
    EXPECT_EQ(shard.seed, 99u);
    EXPECT_TRUE(
        multi.value()
            .sites[static_cast<std::size_t>(FaultSite::Rebuild)]
            .armed);
}

TEST(Fault, PlanParseRejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultPlan::parse("no-such-site:1").ok());
    EXPECT_FALSE(FaultPlan::parse("egraph-alloc").ok());
    EXPECT_FALSE(FaultPlan::parse("egraph-alloc:0").ok());
    EXPECT_FALSE(FaultPlan::parse("egraph-alloc:x").ok());
    EXPECT_FALSE(FaultPlan::parse("egraph-alloc:1/0@5").ok());
    EXPECT_FALSE(FaultPlan::parse("egraph-alloc:1/2").ok());
}

TEST(Fault, OrdinalFiresExactlyOnce)
{
    FaultGuard guard("synth-verify:3");
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += faultShouldFire(FaultSite::SynthVerify) ? 1 : 0;
    EXPECT_EQ(fired, 1);
    // Unarmed sites never fire.
    EXPECT_FALSE(faultShouldFire(FaultSite::Rebuild));
}

TEST(Fault, SeededCoinIsDeterministic)
{
    auto run = [] {
        std::string pattern;
        FaultGuard guard("synth-verify:1/3@12345");
        for (int i = 0; i < 64; ++i)
            pattern += faultShouldFire(FaultSite::SynthVerify) ? '1' : '0';
        return pattern;
    };
    std::string first = run();
    EXPECT_EQ(first, run());
    EXPECT_NE(first.find('1'), std::string::npos);
    EXPECT_NE(first.find('0'), std::string::npos);
}

// ---------------------------------------------------------------------
// Recoverable rules loading (satellite: malformed input diagnostics).

TEST(RulesLoading, TruncatedRuleReportsLineNumber)
{
    auto got = RuleSet::parse("good: ?a ~> (+ ?a 0)\n"
                              "bad: (+ ?a ?b) ~> (+ ?a\n");
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().line, 2);
    EXPECT_NE(got.error().message.find("bad rule"), std::string::npos);
    EXPECT_NE(got.error().toString().find("line 2"), std::string::npos);
}

TEST(RulesLoading, GarbageLineReportsLineNumber)
{
    auto got = RuleSet::parse("good: ?a ~> (+ ?a 0)\n"
                              "this is not a rule\n");
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().line, 2);
    EXPECT_NE(got.error().message.find("header"), std::string::npos);

    auto noArrow = RuleSet::parse("head: no arrow here\n");
    ASSERT_FALSE(noArrow.ok());
    EXPECT_EQ(noArrow.error().line, 1);
}

TEST(RulesLoading, DuplicateRuleReportsLineNumber)
{
    auto got = RuleSet::parse("r1: (+ ?a ?b) ~> (+ ?b ?a)\n"
                              "r2: (+ ?x ?y) ~> (+ ?y ?x)\n");
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.error().line, 2);
    EXPECT_NE(got.error().message.find("duplicate"), std::string::npos);
}

TEST(RulesLoading, SkipsCommentsAndBlankLines)
{
    auto got = RuleSet::parse("# a comment\n"
                              "\n"
                              "r1 [proved]: ?a ~> (+ ?a 0)\n");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().size(), 1u);
    EXPECT_TRUE(got.value()[0].verifiedExactly);
}

TEST(RulesLoading, FileErrorsComeBackAsDiagnostics)
{
    auto missing = loadRuleSetFile("/nonexistent/isaria.rules");
    ASSERT_FALSE(missing.ok());
    EXPECT_NE(missing.error().message.find("/nonexistent/isaria.rules"),
              std::string::npos);

    std::string path = testing::TempDir() + "fault_test.rules";
    {
        std::ofstream out(path);
        out << "r1: ?a ~> (+ ?a 0)\nr2: (+ ?a 0) ~> ?a\n";
    }
    auto good = loadRuleSetFile(path);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().size(), 2u);

    {
        std::ofstream out(path);
        out << "r1: ?a ~> (+ ?a 0)\nbroken line\n";
    }
    auto bad = loadRuleSetFile(path);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().line, 2);
    EXPECT_NE(bad.error().message.find(path), std::string::npos);
}

TEST(RulesLoading, InjectedParseFaultIsADiagnosticNotAnAbort)
{
    std::string path = testing::TempDir() + "fault_test_ok.rules";
    {
        std::ofstream out(path);
        out << "r1: ?a ~> (+ ?a 0)\n";
    }
    FaultGuard guard("rule-parse:1");
    auto got = loadRuleSetFile(path);
    ASSERT_FALSE(got.ok());
    EXPECT_NE(got.error().message.find("rule-parse"), std::string::npos);
    // The fault was one-shot: the retry succeeds.
    EXPECT_TRUE(loadRuleSetFile(path).ok());
}

// ---------------------------------------------------------------------
// Resource guards in the saturation runner.

TEST(ResourceGuards, ByteCeilingStopsWithMemLimit)
{
    auto rules = compileRules(miniRules().rules());
    EGraph eg;
    eg.addExpr(paperExample());
    EXPECT_GT(eg.bytesUsed(), 0u);

    EqSatLimits limits;
    limits.maxBytes = 1; // already exceeded by the seed program
    EqSatReport report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::MemLimit);
    EXPECT_EQ(report.iterations, 0);
    EXPECT_GE(report.bytes, 1u);
}

TEST(ResourceGuards, PreCancelledTokenStopsImmediately)
{
    auto rules = compileRules(miniRules().rules());
    EGraph eg;
    eg.addExpr(paperExample());

    CancellationToken token;
    token.cancel();
    EqSatLimits limits;
    limits.cancel = &token;
    EqSatReport report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::Cancelled);
    EXPECT_EQ(report.iterations, 0);
}

// Satellite (a): the wall-clock budget is checked inside shard search
// and the apply loop, so even one enormous iteration cannot overshoot
// a small timeout by much. The bound here is deliberately loose for
// shared CI machines; the acceptance target is ~2x.
TEST(ResourceGuards, TimeoutStopsMidIteration)
{
    auto rules = compileRules(diospyrosHandRules().rules());
    RecExpr program = liftKernel(make2DConv(3, 3, 2, 2), 4);
    EGraph eg;
    eg.addExpr(program);

    EqSatLimits limits;
    limits.maxIters = 50;
    limits.maxNodes = 10'000'000;
    limits.maxSearchStepsPerRule = 1'000'000'000;
    limits.timeoutSeconds = 0.05;

    Stopwatch watch;
    EqSatReport report = runEqSat(eg, rules, limits);
    double elapsed = watch.elapsedSeconds();
    EXPECT_EQ(report.stop, StopReason::TimeLimit);
    EXPECT_LT(elapsed, 0.5) << "50 ms budget overshot to " << elapsed
                            << "s; in-flight checks are not firing";
}

// Extraction is the last unbounded loop after saturation stops, so it
// polls the same ExecControl sources the runner does. A fired token or
// deadline makes extractBest return nullopt within one poll stride
// instead of finishing the fixpoint on a huge e-graph.
TEST(ResourceGuards, CancelledExtractionStopsQuickly)
{
    auto rules = compileRules(diospyrosHandRules().rules());
    RecExpr program = liftKernel(make2DConv(3, 3, 2, 2), 4);
    EGraph eg;
    EClassId root = eg.addExpr(program);
    EqSatLimits limits;
    limits.maxIters = 2;
    limits.maxNodes = 60'000;
    runEqSat(eg, rules, limits);
    DspCostModel cost;

    // Sanity: without a control, extraction completes normally.
    ASSERT_TRUE(extractBest(eg, root, cost).has_value());

    CancellationToken token;
    token.cancel();
    ExecControl viaToken(nullptr, &token);
    Stopwatch watch;
    EXPECT_FALSE(extractBest(eg, root, cost, &viaToken).has_value());
    EXPECT_LT(watch.elapsedSeconds(), 0.5)
        << "cancelled extraction ran to completion anyway";

    Deadline expired(1e-9);
    ExecControl viaDeadline(&expired, nullptr);
    EXPECT_FALSE(extractBest(eg, root, cost, &viaDeadline).has_value());
}

// ---------------------------------------------------------------------
// The compiler's graceful-degradation ladder.

TEST(Degradation, MemLimitCompileDegradesToBestSoFar)
{
    CompilerConfig config;
    config.withMemLimitBytes(1);
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = paperExample();
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);

    // Nothing fit under the ceiling, so best-so-far is the input.
    EXPECT_EQ(printSexpr(out), printSexpr(p));
    EXPECT_TRUE(stats.ranOutOfMemory);
    EXPECT_EQ(stats.degradation, DegradeLevel::BestSoFar);
    EXPECT_FALSE(stats.degradeEvents.empty());
    EXPECT_NE(stats.toString().find("degraded: best-so-far"),
              std::string::npos);
}

TEST(Degradation, CancelledCompileReturnsBestSoFar)
{
    CancellationToken token;
    token.cancel();
    CompilerConfig config;
    config.withCancellation(&token);
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = paperExample();
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);

    EXPECT_EQ(printSexpr(out), printSexpr(p));
    EXPECT_EQ(stats.degradation, DegradeLevel::BestSoFar);
    EXPECT_EQ(stats.loopIterations, 1);
}

TEST(Degradation, FaultFreeRunsAreClean)
{
    IsariaCompiler compiler = miniCompiler();
    CompileStats stats;
    RecExpr out = compiler.compile(paperExample(), &stats);
    EXPECT_TRUE(out.containsVectorOp());
    EXPECT_EQ(stats.degradation, DegradeLevel::None);
    EXPECT_EQ(stats.faultsInjected, 0);
    EXPECT_TRUE(stats.degradeEvents.empty());
    EXPECT_EQ(stats.toString().find("degraded"), std::string::npos);
}

// Satellite (d): no fault site reachable from compile() can abort it;
// every injected fault still yields a lowerable List program.
TEST(Degradation, ChaosNeverAbortsCompile)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        std::string spec = std::string(faultSiteName(site)) + ":1";
        FaultGuard guard(spec.c_str());

        IsariaCompiler compiler = miniCompiler();
        RecExpr p = paperExample();
        CompileStats stats;
        RecExpr out = compiler.compile(p, &stats);

        EXPECT_FALSE(printSexpr(out).empty()) << spec;
        LowerOptions options;
        options.width = 4;
        options.scalarizeRawChunks = true;
        EXPECT_TRUE(tryLowerProgram(out, options).ok()) << spec;

        // Sites on the compile path must have been absorbed as a
        // recorded degradation; the synthesis/loading sites simply
        // never arrive here. The metrics sampling point runs once per
        // saturation iteration, so it is a compile-path site too.
        if (site == FaultSite::EGraphAlloc ||
            site == FaultSite::ShardSearch ||
            site == FaultSite::Rebuild ||
            site == FaultSite::EGraphMetrics) {
            EXPECT_NE(stats.degradation, DegradeLevel::None) << spec;
        } else {
            EXPECT_EQ(stats.degradation, DegradeLevel::None) << spec;
        }
    }
}

TEST(Degradation, ChaosStormStillEmitsARunnableProgram)
{
    // All compile-path sites armed at once, with seeded coins, over a
    // few different seeds: compile() must always emit a lowerable
    // program no matter which combination of faults fires.
    for (std::uint64_t seed : {7u, 99u, 12345u}) {
        std::string spec = "egraph-alloc:1/16@" + std::to_string(seed) +
                           ",shard-search:1/4@" + std::to_string(seed) +
                           ",rebuild:1/3@" + std::to_string(seed);
        FaultGuard guard(spec.c_str());
        IsariaCompiler compiler = miniCompiler();
        CompileStats stats;
        RecExpr out = compiler.compile(paperExample(), &stats);
        LowerOptions options;
        options.width = 4;
        options.scalarizeRawChunks = true;
        EXPECT_TRUE(tryLowerProgram(out, options).ok()) << spec;
    }
}

// Satellite (d): a fault-injected compile produces the identical
// fallback program at any thread count — an interrupted iteration is
// abandoned wholesale, so the surviving e-graph does not depend on
// which thread hit the fault first.
TEST(Degradation, DegradedOutputIsThreadCountIndependent)
{
    for (const char *spec :
         {"shard-search:1", "rebuild:1", "egraph-alloc:5"}) {
        auto runAt = [&](int threads) {
            FaultGuard guard(spec);
            CompilerConfig config;
            config.withEqSatThreads(threads);
            IsariaCompiler compiler = miniCompiler(config);
            CompileStats stats;
            RecExpr out = compiler.compile(paperExample(), &stats);
            EXPECT_NE(stats.degradation, DegradeLevel::None) << spec;
            return printSexpr(out);
        };
        std::string sequential = runAt(1);
        std::string parallel = runAt(4);
        EXPECT_EQ(sequential, parallel) << spec;
    }
}

TEST(Degradation, ArmedFaultPlanKeepsBackoffSchedulerDeterministic)
{
    // The backoff scheduler's ban decisions are ordinal-based (per
    // iteration, per rule); a fault plan that let different thread
    // counts abandon different iterations would desync those ordinals
    // between runs. The runner therefore drops to one search thread
    // whenever a plan is armed (the sequential-fallback pattern rule
    // synthesis uses), so the banned-rule schedule — and the degraded
    // output — is identical whatever --eqsat-threads asked for.
    auto runAt = [&](int threads) {
        FaultGuard guard("shard-search:2");
        auto rules = compileRules(miniRules().rules());
        EGraph eg;
        EClassId root = eg.addExpr(paperExample());
        EqSatLimits limits;
        limits.maxIters = 6;
        limits.numThreads = threads;
        limits.scheduler = EqSatScheduler::Backoff;
        limits.schedMatchLimit = 4;
        limits.schedBanLength = 2;
        EqSatReport report = runEqSat(eg, rules, limits);
        EXPECT_EQ(report.threads, 1)
            << "armed plan must force the sequential fallback";
        DspCostModel cost;
        auto best = extractBest(eg, root, cost);
        EXPECT_TRUE(best.has_value());
        return std::make_tuple(report.stop, report.iterations,
                               report.schedBans,
                               report.schedSkippedSearches,
                               report.ruleApplied,
                               report.ruleBannedIters,
                               best ? printSexpr(best->expr)
                                    : std::string());
    };
    auto sequential = runAt(1);
    auto parallel = runAt(4);
    EXPECT_EQ(sequential, parallel);
}

TEST(Fault, SnapshotRestoreFaultLeavesGraphIntact)
{
    // The egraph-snapshot-restore site fires before restore() mutates
    // anything, so a failed rollback leaves the mutated graph — and
    // the outstanding snapshot — exactly as they were; the retry then
    // completes the rollback.
    FaultGuard guard("egraph-snapshot-restore:1");
    EGraph eg;
    eg.addExpr(parseSexpr("(+ fa fb)"));
    eg.rebuild();
    std::size_t snapNodes = eg.numNodes();
    eg.snapshot();
    eg.addExpr(parseSexpr("(* fa fb)"));
    eg.rebuild();
    std::size_t mutatedNodes = eg.numNodes();

    EXPECT_THROW(eg.restore(), FaultInjected);
    EXPECT_TRUE(eg.snapshotActive());
    EXPECT_EQ(eg.numNodes(), mutatedNodes);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());

    eg.restore(); // the ordinal was one-shot
    EXPECT_FALSE(eg.snapshotActive());
    EXPECT_EQ(eg.numNodes(), snapNodes);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
}

TEST(Degradation, SpeculativeCompileAbsorbsRestoreFault)
{
    // With speculation on, the terminating (non-improving) round is
    // rolled back via restore(); an injected restore fault must be
    // absorbed as a degradation — keeping best-so-far — not abort.
    FaultGuard guard("egraph-snapshot-restore:1");
    CompilerConfig config;
    config.speculation = true;
    IsariaCompiler compiler = miniCompiler(config);
    CompileStats stats;
    RecExpr out = compiler.compile(paperExample(), &stats);

    EXPECT_EQ(stats.faultsInjected, 1);
    EXPECT_NE(stats.degradation, DegradeLevel::None);
    EXPECT_TRUE(out.containsVectorOp());
    LowerOptions options;
    options.width = 4;
    options.scalarizeRawChunks = true;
    EXPECT_TRUE(tryLowerProgram(out, options).ok());
}

// ---------------------------------------------------------------------
// Boundaries outside the compiler.

TEST(Boundaries, TryLowerReportsUnlowerableTerms)
{
    RecExpr notAList = parseSexpr("(+ (Get a 0) (Get b 0))");
    LowerOptions notAListOptions;
    notAListOptions.width = 4;
    auto got = tryLowerProgram(notAList, notAListOptions);
    ASSERT_FALSE(got.ok());
    EXPECT_NE(got.error().message.find("lowering failed"),
              std::string::npos);
}

TEST(Boundaries, InjectedVerifierFaultsShrinkNotAbortSynthesis)
{
    FaultGuard guard("synth-verify:1/2@4242");
    IsaSpec isa;
    SynthConfig config;
    config.timeoutSeconds = 10;
    config.maxRules = 60;
    config.enumConfig.maxDepth = 2;
    config.enumConfig.maxReps = 40;
    config.enumConfig.maxScalarCandidates = 800;
    config.enumConfig.maxVectorCandidates = 1200;
    config.enumConfig.maxLiftCandidates = 1200;
    SynthReport report = synthesizeRules(isa, config);
    EXPECT_GT(report.verifierFaults, 0u);
    // Degraded, not dead: the pipeline still runs to completion.
    for (const Rule &rule : report.rules.rules())
        EXPECT_TRUE(rule.wellFormed());
}

} // namespace
} // namespace isaria
