// Differential tests for the extraction engines: the worklist engine
// (parent-indexed dependency propagation) must agree with the
// reference global-sweep fixpoint — on cost, on the extracted term,
// and on the term's independently recomputed cost — for randomized
// e-graphs and for every examples/ kernel. Also covers the dependency
// index's (graphId, generation) cache across mutations and graphs.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "baseline/diospyros.h"
#include "baseline/harness.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "isa/cost_model.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Simple additive cost: every node costs 1 + sum of children. */
class UnitCost : public CostFn
{
  public:
    std::uint64_t
    nodeCost(Op, std::int64_t,
             std::span<const std::uint64_t> childCosts) const override
    {
        std::uint64_t c = 1;
        for (std::uint64_t child : childCosts)
            c = satAddCost(c, child);
        return c;
    }
};

/**
 * Independently recomputes the cost of an extracted term: bottom-up
 * over the flat node list (children precede parents), so shared
 * subterms are counted once per use, matching extraction semantics.
 */
std::uint64_t
termCost(const RecExpr &expr, const CostFn &cost)
{
    std::vector<std::uint64_t> costs(expr.size());
    std::vector<std::uint64_t> childCosts;
    for (std::size_t i = 0; i < expr.size(); ++i) {
        const TermNode &node = expr.node(static_cast<NodeId>(i));
        childCosts.clear();
        for (NodeId child : node.children)
            childCosts.push_back(costs[child]);
        costs[i] = cost.nodeCost(node.op, node.payload, childCosts);
    }
    return costs.back();
}

/**
 * The differential oracle: both engines must agree on whether a term
 * exists, on its cost, and — thanks to the shared canonical selection
 * pass — on the term itself. The reported cost must also match the
 * term's independently recomputed cost.
 */
void
expectEnginesAgree(const EGraph &eg, EClassId root, const CostFn &cost)
{
    Extractor worklist(ExtractorKind::Worklist);
    Extractor fixpoint(ExtractorKind::Fixpoint);
    auto fast = worklist.extract(eg, root, cost);
    auto ref = fixpoint.extract(eg, root, cost);
    ASSERT_EQ(fast.has_value(), ref.has_value());
    if (!fast)
        return;
    EXPECT_EQ(fast->cost, ref->cost);
    EXPECT_EQ(printSexpr(fast->expr), printSexpr(ref->expr));
    EXPECT_EQ(termCost(fast->expr, cost), fast->cost);
    EXPECT_EQ(termCost(ref->expr, cost), ref->cost);
}

/** A random leaf-heavy expression over {+, *, neg, symbols, consts}. */
NodeId
randomExpr(RecExpr &expr, std::mt19937 &rng, int depth)
{
    static const char *const kSyms[] = {"a", "b", "c", "d", "e", "f"};
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 4);
    switch (pick(rng)) {
    case 0:
        return expr.addSymbol(kSyms[rng() % 6]);
    case 1:
        return expr.addConst(static_cast<std::int64_t>(rng() % 5));
    case 2:
        return expr.add(Op::Neg, {randomExpr(expr, rng, depth - 1)});
    case 3: {
        NodeId a = randomExpr(expr, rng, depth - 1);
        NodeId b = randomExpr(expr, rng, depth - 1);
        return expr.add(Op::Add, {a, b});
    }
    default: {
        NodeId a = randomExpr(expr, rng, depth - 1);
        NodeId b = randomExpr(expr, rng, depth - 1);
        return expr.add(Op::Mul, {a, b});
    }
    }
}

TEST(ExtractDifferential, RandomizedGraphsWithRandomMerges)
{
    // Random expression forests with random merges layered on top:
    // merges create multi-node classes, congruence cascades, and —
    // because merged classes can reference each other — cycles, so
    // both the finite-cost and the nullopt (all-cyclic) paths of both
    // engines are exercised. Seeded: failures reproduce.
    UnitCost unit;
    DspCostModel dsp;
    std::mt19937 rng(0xC0FFEE);
    for (int trial = 0; trial < 25; ++trial) {
        EGraph eg;
        std::vector<EClassId> roots;
        for (int i = 0; i < 6; ++i) {
            RecExpr expr;
            randomExpr(expr, rng, 4);
            roots.push_back(eg.addExpr(expr));
        }
        std::uniform_int_distribution<std::size_t> pickRoot(
            0, roots.size() - 1);
        for (int m = 0; m < 4; ++m)
            eg.merge(roots[pickRoot(rng)], roots[pickRoot(rng)]);
        eg.rebuild();
        for (EClassId root : roots) {
            expectEnginesAgree(eg, root, unit);
            expectEnginesAgree(eg, root, dsp);
        }
    }
}

TEST(ExtractDifferential, RandomizedSaturatedGraphs)
{
    // Saturation-produced graphs (the shape the compiler extracts
    // from): dense classes, heavy sharing, cycles from commutativity.
    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(* ?a ?b) ~> (* ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(neg (neg ?a)) ~> ?a"),
        parseRule("(+ ?a 0) ~> ?a"),
    });
    UnitCost unit;
    DspCostModel dsp;
    std::mt19937 rng(0xFEED);
    for (int trial = 0; trial < 8; ++trial) {
        RecExpr expr;
        randomExpr(expr, rng, 5);
        EGraph eg;
        EClassId root = eg.addExpr(expr);
        EqSatLimits limits;
        limits.maxIters = 4;
        limits.maxNodes = 5'000;
        runEqSat(eg, rules, limits);
        expectEnginesAgree(eg, root, unit);
        expectEnginesAgree(eg, root, dsp);
    }
}

TEST(ExtractDifferential, EveryExampleKernelAgrees)
{
    // Every kernel family the examples/ explorer exposes, saturated
    // with the Diospyros hand rules under compiler-scale budgets.
    auto rules = compileRules(diospyrosHandRules().rules());
    DspCostModel dsp;
    const KernelSpec specs[] = {
        KernelSpec::conv2d(4, 4, 3, 3),
        KernelSpec::matmul(2, 2, 2),
        KernelSpec::qprod(),
        KernelSpec::qrd(3),
    };
    for (const KernelSpec &spec : specs) {
        SCOPED_TRACE(spec.label());
        KernelHarness harness(spec);
        EGraph eg;
        EClassId root = eg.addExpr(harness.scalarProgram());
        EqSatLimits limits;
        limits.maxIters = 3;
        limits.maxNodes = 40'000;
        runEqSat(eg, rules, limits);
        expectEnginesAgree(eg, root, dsp);
    }
}

TEST(ExtractDifferential, WorklistMatchesOneShotWrapper)
{
    // extractBest() is a fresh worklist engine; a reused Extractor
    // must return the same result from its cached index.
    UnitCost unit;
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (* a b) (neg (+ a 0)))"));
    Extractor extractor;
    auto first = extractor.extract(eg, root, unit);
    auto wrapper = extractBest(eg, root, unit);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(wrapper.has_value());
    EXPECT_EQ(first->cost, wrapper->cost);
    EXPECT_EQ(printSexpr(first->expr), printSexpr(wrapper->expr));

    // Second call on the unchanged graph hits the cached index.
    auto second = extractor.extract(eg, root, unit);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->cost, second->cost);
    EXPECT_EQ(printSexpr(first->expr), printSexpr(second->expr));
}

TEST(ExtractDifferential, IndexCacheSurvivesMutationAndGraphSwap)
{
    // The dependency index is keyed on (graphId, generation): a
    // structural mutation must invalidate it, and pointing the same
    // Extractor at a different graph must never serve stale state —
    // even when the graphs are superficially similar.
    UnitCost unit;
    Extractor extractor;

    EGraph first;
    EClassId firstRoot = first.addExpr(parseSexpr("(+ a (* b c))"));
    auto beforeMutation = extractor.extract(first, firstRoot, unit);
    ASSERT_TRUE(beforeMutation.has_value());

    // Mutate: give the root's class a cheaper equivalent.
    EClassId cheap = first.addExpr(parseSexpr("x"));
    first.merge(firstRoot, cheap);
    first.rebuild();
    auto afterMutation = extractor.extract(first, firstRoot, unit);
    ASSERT_TRUE(afterMutation.has_value());
    EXPECT_LT(afterMutation->cost, beforeMutation->cost);
    EXPECT_EQ(printSexpr(afterMutation->expr), "x");

    // Swap graphs: same extractor, different e-graph.
    EGraph second;
    EClassId secondRoot = second.addExpr(parseSexpr("(neg (neg y))"));
    auto swapped = extractor.extract(second, secondRoot, unit);
    ASSERT_TRUE(swapped.has_value());
    expectEnginesAgree(second, secondRoot, unit);
}

TEST(ExtractDifferential, ControlledAndUncontrolledRunsAgree)
{
    // The interrupt poll must not change results: extraction with a
    // live (never-firing) control walks the same strides as without.
    UnitCost unit;
    EGraph eg;
    EClassId root =
        eg.addExpr(parseSexpr("(+ (* a (+ b c)) (neg (* b (+ a c))))"));
    CancellationToken token;
    ExecControl control(nullptr, &token);
    for (ExtractorKind kind :
         {ExtractorKind::Worklist, ExtractorKind::Fixpoint}) {
        Extractor plain(kind);
        Extractor guarded(kind);
        auto without = plain.extract(eg, root, unit);
        auto with = guarded.extract(eg, root, unit, &control);
        ASSERT_TRUE(without.has_value());
        ASSERT_TRUE(with.has_value());
        EXPECT_EQ(without->cost, with->cost);
        EXPECT_EQ(printSexpr(without->expr), printSexpr(with->expr));
    }
}

} // namespace
} // namespace isaria
