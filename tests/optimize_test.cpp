// Tests for the post-lowering machine optimizations: MAC fusion,
// dead-code elimination, and dual-issue list scheduling.

#include <gtest/gtest.h>

#include "frontend/kernels.h"
#include "lower/lower.h"
#include "lower/optimize.h"
#include "support/rng.h"
#include "vm/machine.h"
#include "vm/reference.h"

namespace isaria
{
namespace
{

VmInst
inst(VmOp op, std::int32_t dst = -1, std::int32_t a = -1,
     std::int32_t b = -1, std::int32_t c = -1, SymbolId arr = 0,
     std::int32_t imm = 0, std::vector<double> imms = {})
{
    return VmInst{op, dst, a, b, c, arr, imm, std::move(imms)};
}

std::size_t
countOp(const VmProgram &p, VmOp op)
{
    std::size_t n = 0;
    for (const VmInst &i : p.code)
        n += i.op == op;
    return n;
}

VmProgram
mulAddProgram()
{
    VmProgram p;
    p.width = 4;
    p.numVectorRegs = 4;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstV, 0, -1, -1, -1, 0, 0, {1, 2, 3, 4}),
        inst(VmOp::LoadConstV, 1, -1, -1, -1, 0, 0, {5, 6, 7, 8}),
        inst(VmOp::VMul, 2, 0, 1),
        inst(VmOp::VAdd, 3, 2, 0),
        inst(VmOp::StoreVec, -1, 3, -1, -1, out, 0),
    };
    return p;
}

TEST(Fusion, MulAddBecomesMac)
{
    VmOptStats stats;
    VmProgram fused = fuseMultiplyAdd(mulAddProgram(), &stats);
    EXPECT_EQ(stats.fusedMacs, 1u);
    EXPECT_EQ(countOp(fused, VmOp::VMul), 0u);
    EXPECT_EQ(countOp(fused, VmOp::VMac), 1u);
    // Semantics preserved.
    auto before = runProgram(mulAddProgram(), {});
    auto after = runProgram(fused, {});
    EXPECT_EQ(before.memory.at(internSymbol("__out")),
              after.memory.at(internSymbol("__out")));
}

TEST(Fusion, MultiUseMulIsNotFused)
{
    VmProgram p = mulAddProgram();
    // Add a second use of the multiply's result.
    p.numVectorRegs = 5;
    p.code.push_back(inst(VmOp::VAdd, 4, 2, 2));
    p.code.push_back(inst(VmOp::StoreVec, -1, 4, -1, -1,
                          internSymbol("__out"), 4));
    VmOptStats stats;
    VmProgram fused = fuseMultiplyAdd(p, &stats);
    EXPECT_EQ(stats.fusedMacs, 0u);
    EXPECT_EQ(countOp(fused, VmOp::VMul), 1u);
}

TEST(Dce, RemovesUnusedLoads)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 2;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {1}),
        inst(VmOp::LoadConstS, 1, -1, -1, -1, 0, 0, {2}), // dead
        inst(VmOp::StoreScalar, -1, 0, -1, -1, out, 0),
    };
    VmOptStats stats;
    VmProgram clean = eliminateDeadCode(p, &stats);
    EXPECT_EQ(stats.deadRemoved, 1u);
    EXPECT_EQ(clean.code.size(), 2u);
}

TEST(Dce, KeepsInsertLaneChains)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 1;
    p.numVectorRegs = 1;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {9}),
        inst(VmOp::LoadConstV, 0, -1, -1, -1, 0, 0, {0, 0, 0, 0}),
        inst(VmOp::InsertLane, 0, 0, -1, -1, 0, 2),
        inst(VmOp::StoreVec, -1, 0, -1, -1, out, 0),
    };
    VmProgram clean = eliminateDeadCode(p);
    EXPECT_EQ(clean.code.size(), 4u);
    auto run = runProgram(clean, {});
    EXPECT_DOUBLE_EQ(run.memory.at(out)[2], 9.0);
}

TEST(Schedule, PreservesStoreOrderAndSemantics)
{
    // Stores to overlapping locations must keep their order.
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 2;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {1}),
        inst(VmOp::LoadConstS, 1, -1, -1, -1, 0, 0, {2}),
        inst(VmOp::StoreScalar, -1, 0, -1, -1, out, 0),
        inst(VmOp::StoreScalar, -1, 1, -1, -1, out, 0), // overwrites
    };
    VmProgram sched = scheduleDualIssue(p);
    auto run = runProgram(sched, {});
    EXPECT_DOUBLE_EQ(run.memory.at(out)[0], 2.0);
}

TEST(Schedule, RespectsStoreLoadDependencies)
{
    // A load after a store to the same array must see the stored
    // value (the Nature padded-buffer pattern).
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 2;
    SymbolId buf = internSymbol("schedBuf");
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {7}),
        inst(VmOp::StoreScalar, -1, 0, -1, -1, buf, 3),
        inst(VmOp::LoadScalar, 1, -1, -1, -1, buf, 3),
        inst(VmOp::StoreScalar, -1, 1, -1, -1, out, 0),
    };
    VmProgram sched = scheduleDualIssue(p);
    auto run = runProgram(sched, {});
    EXPECT_DOUBLE_EQ(run.memory.at(out)[0], 7.0);
}

TEST(Schedule, DoesNotSlowDownKernels)
{
    // Scheduling the lowered 4x4 matmul must not increase cycles.
    RecExpr program = liftKernel(makeMatMul(4, 4, 4), 4);
    VmMemory mem;
    Rng rng(11);
    std::vector<double> cells(16);
    for (double &c : cells)
        c = static_cast<double>(rng.nextInRange(-9, 9));
    mem[internSymbol("A")] = cells;
    mem[internSymbol("B")] = cells;

    LowerOptions options;
    options.width = 4;
    options.scalarOnly = true;
    options.totalOutputs = 16;
    VmProgram base = lowerProgram(program, options);
    VmProgram optimized = optimizeProgram(base);

    auto a = runProgram(base, mem);
    auto b = runProgram(optimized, mem);
    EXPECT_LE(b.cycles, a.cycles);
    EXPECT_EQ(maxAbsDiff(a.memory.at(outputArraySymbol()),
                         b.memory.at(outputArraySymbol())),
              0.0);
}

/** Property sweep: full pipeline on random lowered programs. */
class OptimizeProperty : public ::testing::TestWithParam<int>
{};

TEST_P(OptimizeProperty, PipelinePreservesKernelSemantics)
{
    int seed = GetParam();
    Kernel kernel = (seed % 3 == 0)   ? make2DConv(3, 3, 2, 2)
                    : (seed % 3 == 1) ? makeMatMul(3, 3, 3)
                                      : makeQProd();
    RecExpr program = liftKernel(kernel, 4);
    VmMemory mem;
    Rng rng(seed * 31 + 7);
    for (const auto &[name, size] : kernel.inputs) {
        std::vector<double> cells(size);
        for (double &c : cells)
            c = static_cast<double>(rng.nextInRange(-40, 40)) / 8.0;
        mem[internSymbol(name)] = cells;
    }
    auto ref = evalProgramDoubles(program, mem);

    LowerOptions options;
    options.width = 4;
    options.scalarizeRawChunks = true;
    options.totalOutputs = kernel.totalOutputs();
    VmOptStats stats;
    VmProgram optimized =
        optimizeProgram(lowerProgram(program, options), {}, &stats);
    auto run = runProgram(optimized, mem);
    const auto &got = run.memory.at(outputArraySymbol());
    for (int i = 0; i < kernel.totalOutputs(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperty,
                         ::testing::Range(0, 12));

} // namespace
} // namespace isaria
