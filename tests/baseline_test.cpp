// Tests for the comparator implementations: SLP, Nature, and the
// experiment harness.

#include <gtest/gtest.h>

#include "baseline/harness.h"
#include "baseline/nature.h"
#include "baseline/slp.h"
#include "term/sexpr.h"
#include "vm/reference.h"

namespace isaria
{
namespace
{

TEST(Slp, PacksIsomorphicLanes)
{
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get sa 0) (Get sb 0)) (+ (Get sa 1) (Get sb 1))"
        " (+ (Get sa 2) (Get sb 2)) (+ (Get sa 3) (Get sb 3))))");
    RecExpr packed = slpVectorize(p);
    EXPECT_EQ(printSexpr(packed),
              "(List (VecAdd (Vec (Get sa 0) (Get sa 1) (Get sa 2) "
              "(Get sa 3)) (Vec (Get sb 0) (Get sb 1) (Get sb 2) "
              "(Get sb 3))))");
}

TEST(Slp, PacksNestedIsomorphicTrees)
{
    RecExpr p = parseSexpr(
        "(List (Vec (* (+ (Get sc 0) 1) 2) (* (+ (Get sc 1) 1) 2)"
        " (* (+ (Get sc 2) 1) 2) (* (+ (Get sc 3) 1) 2)))");
    RecExpr packed = slpVectorize(p);
    const TermNode &chunk = packed.node(packed.root().children[0]);
    EXPECT_EQ(chunk.op, Op::VecMul);
}

TEST(Slp, FailsOnIrregularLanes)
{
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get sd 0) 1) (* (Get sd 1) 2) (Get sd 2) 0))");
    RecExpr packed = slpVectorize(p);
    const TermNode &chunk = packed.node(packed.root().children[0]);
    EXPECT_EQ(chunk.op, Op::Vec); // unchanged raw chunk
}

TEST(Slp, PreservesSemantics)
{
    RecExpr p = parseSexpr(
        "(List (Vec (* (Get se 0) (Get se 4)) (* (Get se 1) (Get se 5))"
        " (* (Get se 2) (Get se 6)) (* (Get se 3) (Get se 7))))");
    RecExpr packed = slpVectorize(p);
    VmMemory mem;
    mem[internSymbol("se")] = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(maxAbsDiff(evalProgramDoubles(p, mem),
                         evalProgramDoubles(packed, mem)),
              0.0);
}

TEST(Nature, SupportsOnlyLibraryShapes)
{
    EXPECT_TRUE(natureMatMul(4, 4, 4).has_value());
    EXPECT_TRUE(natureMatMul(6, 6, 8).has_value());
    EXPECT_FALSE(natureMatMul(3, 3, 3).has_value());
    EXPECT_TRUE(nature2DConv(8, 8, 3, 3).has_value());
    EXPECT_FALSE(nature2DConv(4, 4, 3, 3).has_value());
    EXPECT_TRUE(natureQProd().has_value());
    EXPECT_TRUE(natureQrD(4).has_value());
    EXPECT_FALSE(natureQrD(3).has_value());
}

TEST(Harness, ScalarBaselineIsCorrectByConstruction)
{
    for (const KernelSpec &spec :
         {KernelSpec::conv2d(3, 3, 2, 2), KernelSpec::matmul(3, 3, 3),
          KernelSpec::qprod(), KernelSpec::qrd(3)}) {
        KernelHarness h(spec);
        RunOutcome base = h.runScalarBaseline();
        EXPECT_TRUE(base.correct) << spec.label();
        EXPECT_GT(base.cycles, 0u);
    }
}

TEST(Harness, SlpIsCorrectEverywhere)
{
    for (const KernelSpec &spec :
         {KernelSpec::conv2d(3, 3, 2, 2), KernelSpec::matmul(4, 4, 4),
          KernelSpec::qprod(), KernelSpec::qrd(3)}) {
        KernelHarness h(spec);
        EXPECT_TRUE(h.runSlp().correct) << spec.label();
    }
}

TEST(Harness, NatureIsCorrectWhereSupported)
{
    for (const KernelSpec &spec :
         {KernelSpec::conv2d(8, 8, 2, 2), KernelSpec::conv2d(8, 8, 3, 3),
          KernelSpec::matmul(4, 4, 4), KernelSpec::matmul(8, 8, 8),
          KernelSpec::qprod(), KernelSpec::qrd(4)}) {
        KernelHarness h(spec);
        RunOutcome nature = h.runNature();
        ASSERT_TRUE(nature.supported) << spec.label();
        EXPECT_TRUE(nature.correct)
            << spec.label() << " err=" << nature.maxError;
    }
}

TEST(Harness, SlpBeatsScalarOnRegularMatMul)
{
    KernelHarness h(KernelSpec::matmul(4, 4, 4));
    RunOutcome base = h.runScalarBaseline();
    RunOutcome slp = h.runSlp();
    EXPECT_LT(slp.cycles, base.cycles);
}

TEST(Harness, NatureBeatsScalarOnSupportedShapes)
{
    KernelHarness h(KernelSpec::matmul(8, 8, 8));
    RunOutcome base = h.runScalarBaseline();
    RunOutcome nature = h.runNature();
    EXPECT_LT(nature.cycles * 2, base.cycles);
}

TEST(Harness, SuiteMatchesPaperLadder)
{
    auto suite = defaultSuite();
    EXPECT_GE(suite.size(), 14u);
    int conv = 0, matmul = 0, qprod = 0, qrd = 0;
    for (const KernelSpec &spec : suite) {
        switch (spec.family) {
          case KernelSpec::Family::Conv2D: ++conv; break;
          case KernelSpec::Family::MatMul: ++matmul; break;
          case KernelSpec::Family::QProd: ++qprod; break;
          case KernelSpec::Family::QrD: ++qrd; break;
        }
    }
    EXPECT_GE(conv, 6);
    EXPECT_GE(matmul, 4);
    EXPECT_EQ(qprod, 1);
    EXPECT_EQ(qrd, 2);
}

TEST(Harness, LabelsAreHumanReadable)
{
    EXPECT_EQ(KernelSpec::conv2d(8, 8, 3, 3).label(), "2DConv 8x8 3x3");
    EXPECT_EQ(KernelSpec::matmul(4, 4, 4).label(), "MatMul 4x4x4");
    EXPECT_EQ(KernelSpec::qrd(3).label(), "QrD 3x3");
    EXPECT_EQ(KernelSpec::qprod().label(), "QProd");
}

TEST(Harness, DeterministicInputs)
{
    KernelHarness a(KernelSpec::qprod());
    KernelHarness b(KernelSpec::qprod());
    EXPECT_EQ(a.runScalarBaseline().cycles, b.runScalarBaseline().cycles);
}

} // namespace
} // namespace isaria
