// Tests for lowering DSL programs onto the virtual DSP ISA.

#include <gtest/gtest.h>

#include "lower/lower.h"
#include "term/sexpr.h"
#include "vm/machine.h"
#include "vm/reference.h"

namespace isaria
{
namespace
{

std::size_t
countOp(const VmProgram &p, VmOp op)
{
    std::size_t n = 0;
    for (const VmInst &inst : p.code)
        n += inst.op == op;
    return n;
}

// The hand-written programs in this file are all 4-lane; lowering
// requires an explicit width (it no longer has a baked-in default).
LowerOptions
width4()
{
    LowerOptions options;
    options.width = 4;
    return options;
}

TEST(Lower, ContiguousVecBecomesVectorLoad)
{
    RecExpr p = parseSexpr(
        "(List (Vec (Get lA 0) (Get lA 1) (Get lA 2) (Get lA 3)))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::LoadVec), 1u);
    EXPECT_EQ(countOp(vm, VmOp::InsertLane), 0u);
}

TEST(Lower, NonContiguousVecGathers)
{
    RecExpr p = parseSexpr(
        "(List (Vec (Get lA 0) (Get lA 2) (Get lA 1) (Get lA 3)))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::LoadVec), 0u);
    EXPECT_EQ(countOp(vm, VmOp::InsertLane), 4u);
}

TEST(Lower, ConstantVecIsOneLoad)
{
    RecExpr p = parseSexpr("(List (Vec 1 2 3 4))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::LoadConstV), 1u);
    EXPECT_EQ(vm.code.size(), 2u); // load + store
}

TEST(Lower, VectorOpsMapOneToOne)
{
    RecExpr p = parseSexpr(
        "(List (VecMAC (Vec 0 0 0 0) (Vec (Get lB 0) (Get lB 1) (Get lB 2)"
        " (Get lB 3)) (Vec 2 2 2 2)))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::VMac), 1u);
}

TEST(Lower, ValueNumberingDeduplicatesAcrossChunks)
{
    // The same vector load appears in two chunks: must be emitted once.
    RecExpr p = parseSexpr(
        "(List (VecAdd (Vec (Get lC 0) (Get lC 1) (Get lC 2) (Get lC 3))"
        " (Vec 1 1 1 1))"
        " (VecMul (Vec (Get lC 0) (Get lC 1) (Get lC 2) (Get lC 3))"
        " (Vec 2 2 2 2)))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::LoadVec), 1u);
}

TEST(Lower, ValueNumberingDeduplicatesScalarExpressions)
{
    // (a+b) used in two separate chunk trees with no structural
    // sharing in the RecExpr.
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get lD 0) (Get lD 1)) 0 0 0)"
        " (Vec (* (+ (Get lD 0) (Get lD 1)) (Get lD 2)) 0 0 0))");
    LowerOptions options;
    options.width = 4;
    options.scalarOnly = true;
    VmProgram vm = lowerProgram(p, options);
    EXPECT_EQ(countOp(vm, VmOp::SAdd), 1u);
}

TEST(Lower, ScalarOnlyUsesNoVectorInstructions)
{
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get lE 0) 1) (* (Get lE 1) 2) 0 0))");
    LowerOptions options;
    options.width = 4;
    options.scalarOnly = true;
    options.totalOutputs = 2;
    VmProgram vm = lowerProgram(p, options);
    EXPECT_EQ(vm.numVectorRegs, 0);
    // Padding lanes beyond totalOutputs are not stored.
    EXPECT_EQ(countOp(vm, VmOp::StoreScalar), 2u);
}

TEST(Lower, SplatForUniformLanes)
{
    RecExpr e;
    NodeId g = e.addGet(internSymbol("lF"), 0);
    NodeId vec = e.add(Op::Vec, {g, g, g, g});
    e.add(Op::List, {vec});
    VmProgram vm = lowerProgram(e, width4());
    EXPECT_EQ(countOp(vm, VmOp::Splat), 1u);
}

TEST(Lower, ScalarizeRawChunksLeavesRealVectorsAlone)
{
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get lG 0) 1) (Get lG 1) 0 0)"
        " (Vec (Get lG 4) (Get lG 5) (Get lG 6) (Get lG 7)))");
    LowerOptions options;
    options.width = 4;
    options.scalarizeRawChunks = true;
    options.totalOutputs = 8;
    VmProgram vm = lowerProgram(p, options);
    // First chunk is a gather -> scalarized; second is contiguous ->
    // vector load + vector store.
    EXPECT_EQ(countOp(vm, VmOp::LoadVec), 1u);
    EXPECT_EQ(countOp(vm, VmOp::StoreVec), 1u);
    EXPECT_GE(countOp(vm, VmOp::StoreScalar), 2u);
}

TEST(Lower, EndToEndMatchesReference)
{
    RecExpr p = parseSexpr(
        "(List (VecMAC (Vec (Get lH 0) (Get lH 1) (Get lH 2) (Get lH 3))"
        " (Vec (Get lH 4) (Get lH 5) (Get lH 6) (Get lH 7))"
        " (Vec 3 3 3 3))"
        " (Vec (sqrt (Get lH 0)) (sgn (Get lH 1)) (/ 1 (Get lH 2)) 0))");
    VmMemory mem;
    mem[internSymbol("lH")] = {4, -2, 8, 1, 0.5, 1.5, -2.5, 3.5};
    auto ref = evalProgramDoubles(p, mem);
    VmProgram vm = lowerProgram(p, width4());
    auto run = runProgram(vm, mem);
    const auto &got = run.memory.at(outputArraySymbol());
    ASSERT_GE(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-12) << "lane " << i;
}

TEST(Lower, CustomInstructionsLower)
{
    RecExpr p = parseSexpr(
        "(List (VecMulSub (Vec 1 1 1 1) (Vec 2 2 2 2) (Vec 3 3 3 3))"
        " (VecSqrtSgn (Vec 4 4 4 4) (Vec -1 -1 -1 -1)))");
    VmProgram vm = lowerProgram(p, width4());
    EXPECT_EQ(countOp(vm, VmOp::VMulSub), 1u);
    EXPECT_EQ(countOp(vm, VmOp::VSqrtSgn), 1u);
    auto run = runProgram(vm, {});
    const auto &out = run.memory.at(outputArraySymbol());
    EXPECT_DOUBLE_EQ(out[0], 1 - 2 * 3);
    EXPECT_DOUBLE_EQ(out[4], 2.0); // sqrt(4)*sign(1)
}

} // namespace
} // namespace isaria
