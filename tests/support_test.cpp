// Unit tests for the support module: rationals, rng, interner,
// thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/interner.h"
#include "support/rational.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace isaria
{
namespace
{

TEST(Rational, DefaultIsZero)
{
    Rational r;
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, MakeNormalizes)
{
    Rational r = Rational::make(6, -4);
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
}

TEST(Rational, MakeZeroDenIsInvalid)
{
    EXPECT_FALSE(Rational::make(1, 0).valid());
}

TEST(Rational, Arithmetic)
{
    Rational half = Rational::make(1, 2);
    Rational third = Rational::make(1, 3);
    EXPECT_EQ(half + third, Rational::make(5, 6));
    EXPECT_EQ(half - third, Rational::make(1, 6));
    EXPECT_EQ(half * third, Rational::make(1, 6));
    EXPECT_EQ(half / third, Rational::make(3, 2));
    EXPECT_EQ(-half, Rational::make(-1, 2));
}

TEST(Rational, DivisionByZeroInvalid)
{
    EXPECT_FALSE((Rational(1) / Rational(0)).valid());
}

TEST(Rational, InvalidPropagates)
{
    Rational bad = Rational::invalid();
    EXPECT_FALSE((bad + Rational(1)).valid());
    EXPECT_FALSE((Rational(1) * bad).valid());
    EXPECT_FALSE((-bad).valid());
    EXPECT_FALSE(bad.sgn().valid());
    EXPECT_FALSE(bad.sqrt().valid());
}

TEST(Rational, InvalidNeverEqual)
{
    Rational bad = Rational::invalid();
    EXPECT_FALSE(bad == bad);
    EXPECT_FALSE(bad == Rational(0));
}

TEST(Rational, Sgn)
{
    EXPECT_EQ(Rational(5).sgn(), Rational(1));
    EXPECT_EQ(Rational(-5).sgn(), Rational(-1));
    EXPECT_EQ(Rational(0).sgn(), Rational(0));
    EXPECT_EQ(Rational::make(-3, 7).sgn(), Rational(-1));
}

TEST(Rational, SqrtPerfectSquares)
{
    EXPECT_EQ(Rational(9).sqrt(), Rational(3));
    EXPECT_EQ(Rational(0).sqrt(), Rational(0));
    EXPECT_EQ(Rational::make(9, 4).sqrt(), Rational::make(3, 2));
}

TEST(Rational, SqrtIrrationalOrNegativeInvalid)
{
    EXPECT_FALSE(Rational(2).sqrt().valid());
    EXPECT_FALSE(Rational(-4).sqrt().valid());
    EXPECT_FALSE(Rational::make(1, 3).sqrt().valid());
}

TEST(Rational, OverflowBecomesInvalid)
{
    Rational big(INT64_MAX - 1);
    EXPECT_FALSE((big * Rational(4)).valid());
    EXPECT_FALSE((big + big).valid());
    // Near-overflow values still work.
    EXPECT_EQ(Rational(INT64_MAX / 2) + Rational(INT64_MAX / 2),
              Rational(INT64_MAX - 1));
}

TEST(Rational, Ordering)
{
    EXPECT_TRUE(Rational::make(1, 3) < Rational::make(1, 2));
    EXPECT_TRUE(Rational(-1) < Rational(0));
    EXPECT_FALSE(Rational(2) < Rational(2));
}

TEST(Rational, ToString)
{
    EXPECT_EQ(Rational(7).toString(), "7");
    EXPECT_EQ(Rational::make(-1, 2).toString(), "-1/2");
    EXPECT_EQ(Rational::invalid().toString(), "#undef");
}

TEST(Rational, HashConsistentWithEquality)
{
    EXPECT_EQ(Rational::make(2, 4).hash(), Rational::make(1, 2).hash());
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Interner, RoundTrip)
{
    SymbolId a = internSymbol("alpha");
    SymbolId b = internSymbol("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(internSymbol("alpha"), a);
    EXPECT_EQ(symbolName(a), "alpha");
    EXPECT_EQ(symbolName(b), "beta");
}

TEST(Timer, DeadlineUnlimitedNeverExpires)
{
    Deadline d = Deadline::unlimited();
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingSeconds(), 1e9);
}

TEST(Timer, DeadlineExpires)
{
    Deadline d(1e-9);
    // Burn a little time.
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    EXPECT_TRUE(d.expired());
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        constexpr std::size_t kTasks = 10'000;
        std::vector<std::atomic<int>> hits(kTasks);
        pool.parallelFor(kTasks,
                         [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kTasks; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> sum{0};
    for (int job = 0; job < 50; ++job) {
        pool.parallelFor(100, [&](std::size_t i) {
            sum.fetch_add(static_cast<std::int64_t>(i));
        });
    }
    EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPool, StealsUnevenWork)
{
    // One chunk gets nearly all the work; stealing must still finish
    // every task (and a 1-task job runs inline).
    ThreadPool pool(3);
    std::atomic<std::size_t> done{0};
    pool.parallelFor(1, [&](std::size_t) { done.fetch_add(1); });
    pool.parallelFor(2, [&](std::size_t i) {
        if (i == 0) {
            volatile int spin = 0;
            for (int k = 0; k < 2'000'000; ++k)
                spin += k;
        }
        done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), 3u);
}

TEST(ThreadPool, DefaultThreadsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

/** Property sweep: field axioms on a grid of small rationals. */
class RationalFieldTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(RationalFieldTest, RingAxioms)
{
    auto [ai, bi] = GetParam();
    Rational a = Rational::make(ai, 3);
    Rational b = Rational::make(bi, 2);
    Rational c = Rational::make(ai + bi, 5);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalFieldTest,
                         ::testing::Combine(::testing::Range(-4, 5),
                                            ::testing::Range(-4, 5)));

} // namespace
} // namespace isaria
