// Tests for the parallel e-matching engine: thread-count determinism,
// step-budget slicing, and the incrementally-maintained e-graph
// indexes and counters that the saturation loop relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/diospyros.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "frontend/kernels.h"
#include "isa/cost_model.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Saturates a fresh e-graph over @p program and extracts the best. */
std::string
saturateAndExtract(const RecExpr &program,
                   const std::vector<CompiledRule> &rules,
                   EqSatLimits limits, int threads,
                   EqSatReport *reportOut = nullptr)
{
    limits.numThreads = threads;
    EGraph eg;
    EClassId root = eg.addExpr(program);
    EqSatReport report = runEqSat(eg, rules, limits);
    if (reportOut)
        *reportOut = report;
    DspCostModel cost;
    auto best = extractBest(eg, root, cost);
    EXPECT_TRUE(best.has_value());
    return best ? printSexpr(best->expr) : std::string();
}

TEST(ParallelEqSat, ThreadCountResolution)
{
    EXPECT_EQ(resolveEqSatThreads(1), 1);
    EXPECT_EQ(resolveEqSatThreads(5), 5);
    EXPECT_GE(resolveEqSatThreads(0), 1);
}

TEST(ParallelEqSat, DeterministicOnSeedKernel)
{
    // The end-to-end guarantee: saturating the same kernel with 1
    // and N search threads yields byte-identical extractions and the
    // same e-graph statistics.
    auto rules = compileRules(diospyrosHandRules().rules());
    RecExpr program = liftKernel(make2DConv(3, 3, 2, 2), 4);
    EqSatLimits limits;
    limits.maxIters = 3;
    limits.maxNodes = 40'000;

    EqSatReport seqReport;
    std::string seq =
        saturateAndExtract(program, rules, limits, 1, &seqReport);
    ASSERT_FALSE(seq.empty());
    for (int threads : {2, 4, 8}) {
        EqSatReport parReport;
        std::string par = saturateAndExtract(program, rules, limits,
                                             threads, &parReport);
        EXPECT_EQ(seq, par) << "threads=" << threads;
        EXPECT_EQ(seqReport.nodes, parReport.nodes);
        EXPECT_EQ(seqReport.classes, parReport.classes);
        EXPECT_EQ(seqReport.iterations, parReport.iterations);
        EXPECT_EQ(parReport.threads, threads);
    }
}

TEST(ParallelEqSat, DeterministicUnderBindingBudgets)
{
    // Assoc+comm blowup with tight match and step budgets: the
    // budget slicing must be thread-count independent too.
    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(+ ?a (+ ?b ?c)) ~> (+ (+ ?a ?b) ?c)"),
    });
    RecExpr program =
        parseSexpr("(+ a (+ b (+ c (+ d (+ e (+ f g))))))");
    EqSatLimits limits;
    limits.maxIters = 4;
    limits.maxNodes = 3'000;
    limits.maxMatchesPerRule = 300;
    limits.maxMatchesPerClass = 4;
    limits.maxSearchStepsPerRule = 2'000;

    EqSatReport seqReport;
    std::string seq =
        saturateAndExtract(program, rules, limits, 1, &seqReport);
    for (int threads : {3, 6}) {
        EqSatReport parReport;
        std::string par = saturateAndExtract(program, rules, limits,
                                             threads, &parReport);
        EXPECT_EQ(seq, par) << "threads=" << threads;
        EXPECT_EQ(seqReport.nodes, parReport.nodes);
        EXPECT_EQ(seqReport.classes, parReport.classes);
    }
}

TEST(ParallelEqSat, StepBudgetExhaustsMidClass)
{
    // Merge many additions into one class so a single class holds
    // multiple matching e-nodes; a small step budget must cut the
    // search inside that class, deterministically, and the matches it
    // does return must be a prefix of the unbudgeted matches.
    EGraph eg;
    std::vector<EClassId> roots;
    for (int i = 0; i < 8; ++i) {
        RecExpr e;
        NodeId a = e.addGet(internSymbol("sb"), 2 * i);
        NodeId b = e.addGet(internSymbol("sb"), 2 * i + 1);
        e.add(Op::Add, {a, b});
        roots.push_back(eg.addExpr(e));
    }
    for (std::size_t i = 1; i < roots.size(); ++i)
        eg.merge(roots[0], roots[i]);
    eg.rebuild();
    EClassId cls = eg.find(roots[0]);
    ASSERT_EQ(eg.eclass(cls).nodes.size(), 8u);

    CompiledPattern pat(parseSexpr("(+ ?a ?b)"));
    std::vector<PatternMatch> all;
    pat.searchClass(eg, cls, all, 100);
    ASSERT_EQ(all.size(), 8u);

    std::vector<PatternMatch> some;
    std::size_t steps = 5; // each emitted match costs one Bind dispatch
    pat.searchClass(eg, cls, some, 100, &steps);
    EXPECT_GT(some.size(), 0u);
    EXPECT_LT(some.size(), 8u);
    for (std::size_t i = 0; i < some.size(); ++i) {
        EXPECT_EQ(some[i].root, all[i].root);
        EXPECT_EQ(some[i].bindings, all[i].bindings);
    }

    // Budget zero finds nothing at all.
    std::vector<PatternMatch> none;
    std::size_t zero = 0;
    pat.searchClass(eg, cls, none, 100, &zero);
    EXPECT_TRUE(none.empty());
}

TEST(ParallelEqSat, IncrementalCountersMatchSlowScans)
{
    // Merge-heavy saturation: the O(1) counters must track the
    // ground-truth O(n) scans through adds, merges, and rebuilds.
    EGraph eg;
    eg.addExpr(parseSexpr("(+ (* a b) (+ (* b a) (+ a (+ b a))))"));
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
    EXPECT_EQ(eg.numClasses(), eg.numClassesSlow());

    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(* ?a ?b) ~> (* ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
    });
    EqSatLimits limits;
    limits.maxIters = 5;
    runEqSat(eg, rules, limits);
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
    EXPECT_EQ(eg.numClasses(), eg.numClassesSlow());

    // Manual congruence-heavy merges on top.
    EClassId x = eg.addExpr(parseSexpr("(neg a)"));
    EClassId y = eg.addExpr(parseSexpr("(neg b)"));
    eg.merge(eg.addExpr(parseSexpr("a")), eg.addExpr(parseSexpr("b")));
    eg.rebuild();
    EXPECT_TRUE(eg.same(x, y));
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
    EXPECT_EQ(eg.numClasses(), eg.numClassesSlow());
}

TEST(ParallelEqSat, OpIndexMatchesExhaustiveScan)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ (* a b) (neg (+ c (* a c))))"));
    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(* ?a ?b) ~> (* ?b ?a)"),
        parseRule("(neg (neg ?a)) ~> ?a"),
    });
    EqSatLimits limits;
    limits.maxIters = 4;
    runEqSat(eg, rules, limits);

    for (Op op : {Op::Add, Op::Mul, Op::Neg, Op::Symbol, Op::Vec}) {
        std::set<EClassId> expected;
        for (EClassId id : eg.canonicalClasses()) {
            for (const ENode &node : eg.eclass(id).nodes) {
                if (node.op == op)
                    expected.insert(id);
            }
        }
        OpClassesView got = eg.classesWithOp(op);
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
        EXPECT_EQ(std::set<EClassId>(got.begin(), got.end()), expected)
            << "op index diverged for " << opInfo(op).name;
        // Every listed id must be canonical.
        for (EClassId id : got)
            EXPECT_EQ(eg.find(id), id);
    }
}

// ---------------------------------------------------------------------
// The backoff rule scheduler.

/** Explosive assoc/comm mixed with a directed simplification: the
 *  shape the backoff scheduler exists for. */
std::vector<CompiledRule>
backoffRules()
{
    return compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(+ ?a 0) ~> ?a"),
    });
}

TEST(BackoffScheduler, NameRoundTrip)
{
    for (EqSatScheduler s :
         {EqSatScheduler::Simple, EqSatScheduler::Backoff}) {
        auto back = eqSatSchedulerFromName(eqSatSchedulerName(s));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(eqSatSchedulerFromName("no-such-policy").has_value());
}

TEST(BackoffScheduler, BansExplosiveRulesAndRecords)
{
    RecExpr program =
        parseSexpr("(+ a (+ b (+ c (+ d (+ e (+ f (+ g 0)))))))");
    EqSatLimits limits;
    limits.maxIters = 8;
    limits.maxNodes = 20'000;
    limits.scheduler = EqSatScheduler::Backoff;
    limits.schedMatchLimit = 8; // tiny: the comm/assoc rules must trip
    limits.schedBanLength = 2;

    auto rules = backoffRules();
    EGraph eg;
    EClassId root = eg.addExpr(program);
    EqSatReport report = runEqSat(eg, rules, limits);

    EXPECT_GT(report.schedBans, 0u);
    EXPECT_GT(report.schedSkippedSearches, 0u);
    EXPECT_GT(report.schedThrottledMatches, 0u);
    ASSERT_EQ(report.ruleApplied.size(), rules.size());
    ASSERT_EQ(report.ruleBannedIters.size(), rules.size());
    // The explosive rules (0: comm, 1: assoc) get banned; every rule
    // still applies at least once before its first ban.
    EXPECT_GT(report.ruleBannedIters[0] + report.ruleBannedIters[1], 0u);

    DspCostModel cost;
    auto best = extractBest(eg, root, cost);
    ASSERT_TRUE(best.has_value());
}

TEST(BackoffScheduler, SimpleSchedulerReportsNoActivity)
{
    RecExpr program = parseSexpr("(+ a (+ b (+ c 0)))");
    EqSatLimits limits;
    limits.maxIters = 4;
    EGraph eg;
    eg.addExpr(program);
    EqSatReport report = runEqSat(eg, backoffRules(), limits);
    EXPECT_EQ(report.schedBans, 0u);
    EXPECT_EQ(report.schedSkippedSearches, 0u);
    EXPECT_EQ(report.schedThrottledMatches, 0u);
}

TEST(BackoffScheduler, DeterministicAcrossThreadCounts)
{
    // The ISSUE's headline guarantee: scheduling decisions are made
    // from the deterministically merged match counts, so the backoff
    // run is byte-identical at any thread count — extracted term,
    // iteration count, and every per-rule counter.
    RecExpr program = liftKernel(make2DConv(3, 3, 2, 2), 4);
    auto rules = compileRules(diospyrosHandRules().rules());
    EqSatLimits limits;
    limits.maxIters = 4;
    limits.maxNodes = 40'000;
    limits.scheduler = EqSatScheduler::Backoff;
    limits.schedMatchLimit = 64;
    limits.schedBanLength = 2;

    EqSatReport seqReport;
    std::string seq =
        saturateAndExtract(program, rules, limits, 1, &seqReport);
    ASSERT_FALSE(seq.empty());
    for (int threads : {2, 4}) {
        EqSatReport parReport;
        std::string par = saturateAndExtract(program, rules, limits,
                                             threads, &parReport);
        EXPECT_EQ(seq, par) << "threads=" << threads;
        EXPECT_EQ(seqReport.nodes, parReport.nodes);
        EXPECT_EQ(seqReport.classes, parReport.classes);
        EXPECT_EQ(seqReport.iterations, parReport.iterations);
        EXPECT_EQ(seqReport.schedBans, parReport.schedBans);
        EXPECT_EQ(seqReport.schedSkippedSearches,
                  parReport.schedSkippedSearches);
        EXPECT_EQ(seqReport.schedThrottledMatches,
                  parReport.schedThrottledMatches);
        EXPECT_EQ(seqReport.ruleApplied, parReport.ruleApplied);
        EXPECT_EQ(seqReport.ruleBannedIters, parReport.ruleBannedIters);
    }
}

TEST(BackoffScheduler, UnbansBeforeDeclaringSaturation)
{
    // A quiet iteration while rules sit banned is NOT saturation: the
    // scheduler must lift the bans and re-try before stopping. With a
    // generous iteration budget the backoff run must reach the same
    // saturated e-graph as the simple scheduler.
    RecExpr program = parseSexpr("(+ a (+ b (+ c 0)))");
    auto rules = backoffRules();

    EqSatLimits simple;
    simple.maxIters = 40;
    EGraph simpleEg;
    EClassId simpleRoot = simpleEg.addExpr(program);
    EqSatReport simpleReport = runEqSat(simpleEg, rules, simple);
    ASSERT_EQ(simpleReport.stop, StopReason::Saturated);

    EqSatLimits backoff = simple;
    backoff.scheduler = EqSatScheduler::Backoff;
    backoff.schedMatchLimit = 2;
    backoff.schedBanLength = 3;
    EGraph backoffEg;
    EClassId backoffRoot = backoffEg.addExpr(program);
    EqSatReport backoffReport = runEqSat(backoffEg, rules, backoff);
    EXPECT_EQ(backoffReport.stop, StopReason::Saturated);
    EXPECT_GT(backoffReport.schedBans, 0u);

    // Same fixpoint: node/class counts and the extracted term agree.
    EXPECT_EQ(simpleEg.numNodes(), backoffEg.numNodes());
    EXPECT_EQ(simpleEg.numClasses(), backoffEg.numClasses());
    DspCostModel cost;
    auto simpleBest = extractBest(simpleEg, simpleRoot, cost);
    auto backoffBest = extractBest(backoffEg, backoffRoot, cost);
    ASSERT_TRUE(simpleBest.has_value());
    ASSERT_TRUE(backoffBest.has_value());
    EXPECT_EQ(printSexpr(simpleBest->expr), printSexpr(backoffBest->expr));
    EXPECT_EQ(simpleBest->cost, backoffBest->cost);
}

TEST(ParallelEqSat, FrozenFindAgreesWithFind)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(+ x (neg y))"));
    EClassId b = eg.addExpr(parseSexpr("(+ y (neg x))"));
    EClassId x = eg.addExpr(parseSexpr("x"));
    EClassId y = eg.addExpr(parseSexpr("y"));
    eg.merge(a, b);
    eg.merge(x, y);
    eg.rebuild();
    for (EClassId id : {a, b, x, y}) {
        EXPECT_EQ(eg.findFrozen(id), eg.find(id));
        EXPECT_EQ(&eg.eclassFrozen(id), &eg.eclass(id));
    }
}

} // namespace
} // namespace isaria
