// Arena memory subsystem and e-graph snapshot/restore tests.
//
// The differential oracle here is the contract ISSUE'd for speculative
// compilation: snapshot -> mutate (saturate / merge / rebuild) ->
// restore must yield a graph structurally identical to the snapshot
// state — same node/class counts, same accounted bytes, same
// extraction results, same per-class fingerprints — at 1 and 4
// threads, with the arena on and off. The arena reuse/growth tests
// double as the ASan target (build with ISARIA_SANITIZE=address).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "egraph/extract.h"
#include "egraph/runner.h"
#include "support/arena.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

// ---------------------------------------------------------------------
// Arena unit tests.

TEST(Arena, BumpAllocationAndChunkGrowth)
{
    Arena arena;
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    EXPECT_EQ(arena.numChunks(), 0u);

    // Fill well past the first 4KiB chunk.
    for (int i = 0; i < 1000; ++i) {
        auto *p = arena.allocateArray<std::uint64_t>(8);
        p[0] = static_cast<std::uint64_t>(i); // must be writable
        EXPECT_EQ(p[0], static_cast<std::uint64_t>(i));
    }
    EXPECT_GE(arena.bytesAllocated(), 1000u * 8 * sizeof(std::uint64_t));
    EXPECT_GT(arena.numChunks(), 1u);
    EXPECT_EQ(arena.allocations(), 1000u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesAllocated());
}

TEST(Arena, OversizeAllocationGetsDedicatedChunk)
{
    Arena arena;
    const std::size_t big = 4u << 20; // 4 MiB > kMaxChunkBytes
    auto *p = static_cast<std::byte *>(arena.allocate(big, 16));
    ASSERT_NE(p, nullptr);
    p[0] = std::byte{1};
    p[big - 1] = std::byte{2}; // whole span must be addressable
    EXPECT_GE(arena.bytesReserved(), big);
}

TEST(Arena, MarkReleaseRewindsAndRetainsChunks)
{
    Arena arena;
    (void)arena.allocate(512, 8);
    Arena::Mark m = arena.mark();
    std::uint64_t bytesAtMark = arena.bytesAllocated();

    for (int i = 0; i < 500; ++i)
        (void)arena.allocate(256, 8);
    std::size_t chunksGrown = arena.numChunks();
    std::uint64_t chunkAllocs = arena.chunkAllocations();
    EXPECT_GT(arena.bytesAllocated(), bytesAtMark);

    arena.release(m);
    EXPECT_EQ(arena.bytesAllocated(), bytesAtMark);
    // Chunks are retained for reuse, not freed.
    EXPECT_EQ(arena.numChunks(), chunksGrown);

    // Refilling the same volume reuses the retained chunks: no new
    // chunk allocations (this is the reuse loop ASan must bless).
    for (int i = 0; i < 500; ++i)
        (void)arena.allocate(256, 8);
    EXPECT_EQ(arena.chunkAllocations(), chunkAllocs);
}

TEST(Arena, AllocatedBeforeClassifiesPointers)
{
    Arena arena;
    void *before = arena.allocate(64, 8);
    Arena::Mark m = arena.mark();
    void *after = arena.allocate(64, 8);
    int stackVar = 0;

    EXPECT_TRUE(arena.allocatedBefore(before, m));
    EXPECT_FALSE(arena.allocatedBefore(after, m));
    EXPECT_FALSE(arena.allocatedBefore(&stackVar, m));
}

TEST(Arena, ArenaVectorGrowTruncateReset)
{
    Arena arena;
    ArenaVector<std::uint32_t> v;
    EXPECT_TRUE(v.empty());
    for (std::uint32_t i = 0; i < 1000; ++i)
        v.push_back(arena, i);
    ASSERT_EQ(v.size(), 1000u);
    for (std::uint32_t i = 0; i < 1000; ++i)
        EXPECT_EQ(v[i], i);

    v.truncate(10);
    EXPECT_EQ(v.size(), 10u);
    EXPECT_EQ(v[9], 9u);

    // Growth abandons old blocks inside the arena; after a wholesale
    // reset the vector must forget its (now dangling) buffer.
    arena.reset();
    v.resetStorage();
    EXPECT_TRUE(v.empty());
    v.push_back(arena, 7u);
    EXPECT_EQ(v[0], 7u);
}

TEST(Arena, PoolRecyclesExactSizeBlocks)
{
    ArenaPool pool;
    void *a = pool.allocate(48);
    pool.deallocate(a, 48);
    // Same-size request must come from the free list, not the bump
    // frontier.
    EXPECT_EQ(pool.allocate(48), a);
    // Different size misses the bucket.
    EXPECT_NE(pool.allocate(64), a);
}

TEST(Arena, PoolDisabledRoutesToHeap)
{
    ArenaPool pool;
    pool.enabled = false;
    void *p = pool.allocate(32);
    ASSERT_NE(p, nullptr);
    pool.deallocate(p, 32);
    EXPECT_EQ(pool.arena.bytesAllocated(), 0u);
    EXPECT_TRUE(pool.freeBySize.empty());
}

TEST(Arena, PoolDropFreeBlocksAtOrAfterMark)
{
    ArenaPool pool;
    void *keep = pool.allocate(40);
    Arena::Mark m = pool.arena.mark();
    void *drop = pool.allocate(40);
    pool.deallocate(keep, 40);
    pool.deallocate(drop, 40);
    ASSERT_EQ(pool.freeBySize[40].size(), 2u);

    pool.dropFreeBlocksAtOrAfter(m);
    // The post-mark block would dangle after release(m); it must be
    // gone from the free list while the pre-mark block stays.
    ASSERT_EQ(pool.freeBySize[40].size(), 1u);
    EXPECT_EQ(pool.freeBySize[40][0], keep);
    pool.arena.release(m);
    EXPECT_EQ(pool.allocate(40), keep);
}

TEST(Arena, ChildArraySpillOwnership)
{
    Arena arena;
    std::vector<EClassId> ids = {1, 2, 3, 4, 5, 6, 7};
    ChildArray wide;
    wide.assignArena(arena, ids.data(), ids.size());
    EXPECT_TRUE(wide.spilled());
    EXPECT_TRUE(wide.arenaOwned());
    ASSERT_EQ(wide.size(), 7u);
    EXPECT_EQ(wide[6], 7u);

    // Copies always own their storage (plain heap spill).
    ChildArray copy = wide;
    EXPECT_TRUE(copy.spilled());
    EXPECT_FALSE(copy.arenaOwned());
    EXPECT_TRUE(copy == wide);

    // Growth from an arena-owned buffer lands on the heap and leaves
    // the arena block behind — no delete of arena memory.
    wide.push_back(8);
    EXPECT_FALSE(wide.arenaOwned());
    EXPECT_EQ(wide.size(), 8u);
    EXPECT_EQ(wide[7], 8u);

    // Inline-sized assignArena stays inline (no spill at all).
    ChildArray small;
    small.assignArena(arena, ids.data(), 3);
    EXPECT_FALSE(small.spilled());
    EXPECT_FALSE(small.arenaOwned());
}

// ---------------------------------------------------------------------
// Snapshot/restore differential oracle.

/** Simple additive cost: every node costs 1 + sum of children. */
class UnitCost : public CostFn
{
  public:
    std::uint64_t
    nodeCost(Op, std::int64_t,
             std::span<const std::uint64_t> childCosts) const override
    {
        std::uint64_t c = 1;
        for (std::uint64_t child : childCosts)
            c = satAddCost(c, child);
        return c;
    }
};

/**
 * A canonical, order-independent structural fingerprint: every
 * canonical class with its node multiset, children resolved to
 * canonical ids. Two graphs with equal fingerprints are structurally
 * identical (same classes, same membership).
 */
std::string
graphFingerprint(const EGraph &eg)
{
    std::vector<EClassId> roots = eg.canonicalClasses();
    std::sort(roots.begin(), roots.end());
    std::ostringstream out;
    for (EClassId root : roots) {
        std::vector<std::string> nodes;
        for (const ENode &node : eg.eclass(root).nodes) {
            std::ostringstream n;
            n << static_cast<int>(node.op) << ':' << node.payload << '(';
            for (EClassId child : node.children)
                n << eg.find(child) << ',';
            n << ')';
            nodes.push_back(n.str());
        }
        std::sort(nodes.begin(), nodes.end());
        out << root << '{';
        for (const std::string &n : nodes)
            out << n << ' ';
        out << "}\n";
    }
    return out.str();
}

/** Explosive AC ruleset (the §2.2 blowup) used as the mutation. */
std::vector<CompiledRule>
acRules()
{
    return compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(* ?a ?b) ~> (* ?b ?a)"),
    });
}

struct SnapshotState
{
    std::size_t numNodes, numClasses, numIds, bytesUsed;
    std::string fingerprint;
    std::string bestExpr;
    std::uint64_t bestCost;
};

SnapshotState
captureState(const EGraph &eg, EClassId root)
{
    UnitCost cost;
    auto best = extractBest(eg, eg.find(root), cost);
    EXPECT_TRUE(best.has_value());
    return SnapshotState{eg.numNodes(),  eg.numClasses(),
                         eg.numIds(),    eg.bytesUsed(),
                         graphFingerprint(eg),
                         best ? printSexpr(best->expr) : "",
                         best ? best->cost : 0};
}

void
expectStateEqual(const SnapshotState &a, const SnapshotState &b)
{
    EXPECT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.numClasses, b.numClasses);
    EXPECT_EQ(a.numIds, b.numIds);
    EXPECT_EQ(a.bytesUsed, b.bytesUsed);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.bestExpr, b.bestExpr);
    EXPECT_EQ(a.bestCost, b.bestCost);
}

/** snapshot -> saturate -> restore must be a structural no-op. */
void
runSaturationDifferential(int numThreads)
{
    EGraph eg;
    EClassId root =
        eg.addExpr(parseSexpr("(* (+ a (+ b (+ c d))) (+ e f))"));
    eg.rebuild();
    SnapshotState before = captureState(eg, root);
    ASSERT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());

    eg.snapshot();
    EXPECT_TRUE(eg.snapshotActive());

    EqSatLimits limits;
    limits.maxIters = 4;
    limits.maxNodes = 20'000;
    limits.numThreads = numThreads;
    runEqSat(eg, acRules(), limits);
    EXPECT_GT(eg.numNodes(), before.numNodes); // mutation really ran

    eg.restore();
    EXPECT_FALSE(eg.snapshotActive());
    expectStateEqual(captureState(eg, root), before);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
    EXPECT_EQ(eg.numClasses(), eg.numClassesSlow());
}

TEST(Snapshot, SaturationDifferentialSingleThread)
{
    runSaturationDifferential(1);
}

TEST(Snapshot, SaturationDifferentialFourThreads)
{
    runSaturationDifferential(4);
}

TEST(Snapshot, SaturationDifferentialArenaDisabled)
{
    // The same oracle with the arena A/B switch off: snapshot/restore
    // must be correct in pure-heap mode too.
    setenv("ISARIA_EGRAPH_ARENA", "0", 1);
    EGraph heapGraph;
    unsetenv("ISARIA_EGRAPH_ARENA");
    ASSERT_FALSE(heapGraph.arenaStats().arenaEnabled);

    EClassId root = heapGraph.addExpr(parseSexpr("(+ (+ p q) (+ r s))"));
    heapGraph.rebuild();
    SnapshotState before = captureState(heapGraph, root);

    heapGraph.snapshot();
    EqSatLimits limits;
    limits.maxIters = 3;
    runEqSat(heapGraph, acRules(), limits);
    heapGraph.restore();

    expectStateEqual(captureState(heapGraph, root), before);
    EXPECT_EQ(heapGraph.bytesUsed(), heapGraph.bytesUsedSlow());
}

TEST(Snapshot, MergeAndRebuildDifferential)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(* (neg x) (neg y))"));
    EClassId x = eg.addExpr(parseSexpr("x"));
    EClassId y = eg.addExpr(parseSexpr("y"));
    eg.rebuild();
    SnapshotState before = captureState(eg, root);

    eg.snapshot();
    // Congruence collapse: x=y makes (neg x)=(neg y), and the
    // surviving class holds duplicate (* n n) parents to dedup.
    eg.merge(x, y);
    eg.rebuild();
    EXPECT_LT(eg.numClasses(), before.numClasses);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());

    eg.restore();
    expectStateEqual(captureState(eg, root), before);
    EXPECT_FALSE(eg.same(x, y));
}

TEST(Snapshot, WideNodeDifferential)
{
    // Nodes with > 4 children exercise the arena spill path in every
    // copy the e-graph stores (members, memo keys, parents).
    EGraph eg;
    RecExpr e;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 8; ++i)
        leaves.push_back(e.addGet(internSymbol("w"), i));
    e.add(Op::Vec, leaves);
    EClassId root = eg.addExpr(e);
    eg.rebuild();
    SnapshotState before = captureState(eg, root);
    ASSERT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());

    eg.snapshot();
    EClassId g0 = eg.addExpr(parseSexpr("(Get w 0)"));
    EClassId g1 = eg.addExpr(parseSexpr("(Get w 1)"));
    eg.merge(g0, g1); // dirties the wide parent
    eg.rebuild();
    eg.restore();

    expectStateEqual(captureState(eg, root), before);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
}

TEST(Snapshot, RepeatedCyclesReuseArena)
{
    // The chunk-reuse loop: after the first cycle warms the arena,
    // later cycles must not allocate new chunks, and every cycle must
    // restore to the identical state. (ASan builds verify the reuse
    // never touches freed memory.)
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (+ a b) (+ c d))"));
    eg.rebuild();
    SnapshotState before = captureState(eg, root);

    EqSatLimits limits;
    limits.maxIters = 3;
    std::uint64_t chunksAfterWarmup = 0;
    for (int cycle = 0; cycle < 5; ++cycle) {
        eg.snapshot();
        runEqSat(eg, acRules(), limits);
        eg.restore();
        expectStateEqual(captureState(eg, root), before);
        std::uint64_t chunks = eg.arenaStats().chunkAllocations;
        if (cycle == 0)
            chunksAfterWarmup = chunks;
        else if (eg.arenaStats().arenaEnabled)
            EXPECT_EQ(chunks, chunksAfterWarmup);
    }
    EGraphArenaStats stats = eg.arenaStats();
    EXPECT_EQ(stats.snapshots, 5u);
    EXPECT_EQ(stats.restores, 5u);

    // The graph stays fully usable after the cycles.
    EClassId more = eg.addExpr(parseSexpr("(* (+ a b) 2)"));
    eg.rebuild();
    UnitCost cost;
    EXPECT_TRUE(extractBest(eg, eg.find(more), cost).has_value());
}

TEST(Snapshot, DiscardKeepsMutatedState)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ m n)"));
    eg.rebuild();
    eg.snapshot();
    std::size_t beforeNodes = eg.numNodes();
    eg.addExpr(parseSexpr("(* m n)"));
    eg.discardSnapshot();
    EXPECT_FALSE(eg.snapshotActive());
    EXPECT_GT(eg.numNodes(), beforeNodes);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
}

TEST(Snapshot, NewSnapshotReplacesOutstanding)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ u v)"));
    eg.rebuild();
    eg.snapshot();
    eg.addExpr(parseSexpr("(* u v)"));
    eg.rebuild();
    SnapshotState second = captureState(eg, root);

    eg.snapshot(); // replaces the first snapshot
    eg.addExpr(parseSexpr("(neg u)"));
    eg.rebuild();
    eg.restore(); // rolls back to the *second* snapshot only
    expectStateEqual(captureState(eg, root), second);
    EXPECT_EQ(eg.classesWithOp(Op::Mul).size(), 1u);
    EXPECT_EQ(eg.classesWithOp(Op::Neg).size(), 0u);
}

TEST(Snapshot, RestoreBumpsGeneration)
{
    // Derived caches key on (graphId, generation); a restore changes
    // the structure, so it must look like a fresh mutation to them.
    EGraph eg;
    eg.addExpr(parseSexpr("(+ g h)"));
    eg.rebuild();
    eg.snapshot();
    std::uint64_t gen = eg.generation();
    eg.addExpr(parseSexpr("(* g h)"));
    eg.restore();
    EXPECT_GT(eg.generation(), gen);
}

TEST(Snapshot, DeterministicReplayAfterRestore)
{
    // Saturating, restoring, and saturating again must land on the
    // same graph both times — restore leaves no hidden state behind.
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (+ a b) (+ c d))"));
    eg.rebuild();

    EqSatLimits limits;
    limits.maxIters = 3;
    eg.snapshot();
    runEqSat(eg, acRules(), limits);
    SnapshotState firstRun = captureState(eg, root);
    eg.restore();

    eg.snapshot();
    runEqSat(eg, acRules(), limits);
    expectStateEqual(captureState(eg, root), firstRun);
    eg.discardSnapshot();
}

TEST(Snapshot, CopyIsIndependentOfSnapshots)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (neg k) k)"));
    eg.rebuild();
    eg.snapshot();

    EGraph copy = eg; // fresh pool, no snapshot carried over
    EXPECT_FALSE(copy.snapshotActive());
    EXPECT_NE(copy.graphId(), eg.graphId());
    expectStateEqual(captureState(copy, root), captureState(eg, root));

    // Mutating and restoring the original never touches the copy.
    eg.addExpr(parseSexpr("(* k k)"));
    eg.restore();
    EXPECT_EQ(copy.bytesUsed(), copy.bytesUsedSlow());
    EXPECT_EQ(copy.classesWithOp(Op::Mul).size(), 0u);
}

} // namespace
} // namespace isaria
