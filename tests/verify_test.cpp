// Unit tests for the soundness verifier: polynomial normalization,
// lane projection, and sampling.

#include <gtest/gtest.h>

#include <map>

#include "term/sexpr.h"
#include "verify/normalizer.h"
#include "verify/verifier.h"

namespace isaria
{
namespace
{

TEST(Poly, ConstantsAndAtoms)
{
    Poly zero = Poly::constant(Rational(0));
    EXPECT_TRUE(zero.isZero());
    Poly one = Poly::constant(Rational(1));
    EXPECT_EQ(one.asConstant(), Rational(1));
    Poly x = Poly::atom(0);
    EXPECT_FALSE(x.asConstant().has_value());
}

TEST(Poly, RingIdentities)
{
    Poly x = Poly::atom(0);
    Poly y = Poly::atom(1);
    // (x + y)^2 == x^2 + 2xy + y^2
    Poly lhs = x.plus(y).times(x.plus(y));
    Poly two = Poly::constant(Rational(2));
    Poly rhs = x.times(x).plus(two.times(x).times(y)).plus(y.times(y));
    EXPECT_TRUE(lhs == rhs);
    // x - x == 0
    EXPECT_TRUE(x.minus(x).isZero());
}

TEST(Poly, DistinctPolysDiffer)
{
    Poly x = Poly::atom(0);
    Poly y = Poly::atom(1);
    EXPECT_FALSE(x.times(y) == x.plus(y));
}

TEST(Poly, CollectAtoms)
{
    Poly p = Poly::atom(3).times(Poly::atom(7)).plus(Poly::atom(3));
    std::set<AtomId> atoms;
    p.collectAtoms(atoms);
    EXPECT_EQ(atoms, (std::set<AtomId>{3, 7}));
}

TEST(Normalizer, ProvesRingIdentities)
{
    EXPECT_TRUE(polyProveEqual(parseSexpr("(+ ?a ?b)"),
                               parseSexpr("(+ ?b ?a)")));
    EXPECT_TRUE(polyProveEqual(parseSexpr("(* ?a (+ ?b ?c))"),
                               parseSexpr("(+ (* ?a ?b) (* ?a ?c))")));
    EXPECT_TRUE(polyProveEqual(parseSexpr("(- ?a ?a)"), parseSexpr("0")));
    EXPECT_TRUE(polyProveEqual(parseSexpr("(neg (neg ?a))"),
                               parseSexpr("?a")));
    EXPECT_TRUE(polyProveEqual(parseSexpr("(mulsub ?x ?a ?b)"),
                               parseSexpr("(- ?x (* ?a ?b))")));
}

TEST(Normalizer, RefutesNonIdentities)
{
    EXPECT_FALSE(polyProveEqual(parseSexpr("(+ ?a ?a)"),
                                parseSexpr("(* ?a ?a)")));
    // Shared wildcard table: ?a and ?b must mean the same variables
    // on both sides.
    std::map<std::string, std::int32_t> names;
    RecExpr lhs = parseSexpr("(- ?a ?b)", names);
    RecExpr rhs = parseSexpr("(- ?b ?a)", names);
    EXPECT_FALSE(polyProveEqual(lhs, rhs));
}

TEST(Normalizer, OpaqueSqrtSgn)
{
    std::map<std::string, std::int32_t> names;
    // Identical opaque applications prove equal.
    EXPECT_TRUE(polyProveEqual(
        parseSexpr("(* (sqrt ?a) (sgn ?b))", names),
        parseSexpr("(* (sgn ?b) (sqrt ?a))", names)));
    // sqrtsgn expands to its definition.
    EXPECT_TRUE(polyProveEqual(
        parseSexpr("(sqrtsgn ?a ?b)", names),
        parseSexpr("(* (sqrt ?a) (sgn (neg ?b)))", names)));
    // Distinct arguments stay distinct.
    EXPECT_FALSE(polyProveEqual(parseSexpr("(sqrt ?a)", names),
                                parseSexpr("(sqrt ?b)", names)));
}

TEST(Normalizer, TotalityRestrictionOnDivision)
{
    // (a*b)/b equals a only modulo definedness — must NOT poly-prove,
    // or congruence in the e-graph collapses classes via b = 0.
    std::map<std::string, std::int32_t> n1;
    EXPECT_FALSE(polyProveEqual(parseSexpr("(/ (* ?a ?b) ?b)", n1),
                                parseSexpr("?a", n1)));
    std::map<std::string, std::int32_t> n2;
    EXPECT_FALSE(polyProveEqual(parseSexpr("(* ?a (/ ?b ?a))", n2),
                                parseSexpr("?b", n2)));
    // Division by a nonzero constant is total and still proves.
    std::map<std::string, std::int32_t> n3;
    EXPECT_TRUE(polyProveEqual(parseSexpr("(/ ?a 1)", n3),
                               parseSexpr("?a", n3)));
}

TEST(Normalizer, OpaqueErasureRejected)
{
    // (* (sqrt a) 0) = 0 only where sqrt(a) is defined; erasing the
    // opaque atom must not poly-prove.
    EXPECT_FALSE(polyProveEqual(parseSexpr("(* (sqrt ?a) 0)"),
                                parseSexpr("0")));
}

TEST(Projection, ScalarPassThrough)
{
    auto p = projectLane(parseSexpr("(+ ?a (* ?b 2))"), 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->equalTree(parseSexpr("(+ ?a (* ?b 2))")));
}

TEST(Projection, VecSelectsLane)
{
    RecExpr e = parseSexpr("(VecAdd (Vec ?a ?b) (Vec ?c ?d))");
    auto lane0 = projectLane(e, 0);
    auto lane1 = projectLane(e, 1);
    ASSERT_TRUE(lane0 && lane1);
    EXPECT_EQ(printSexpr(*lane0), "(+ ?w0 ?w2)");
    EXPECT_EQ(printSexpr(*lane1), "(+ ?w1 ?w3)");
}

TEST(Projection, MacExpands)
{
    RecExpr e = parseSexpr("(VecMAC (Vec ?x) (Vec ?y) (Vec ?z))");
    auto lane = projectLane(e, 0);
    ASSERT_TRUE(lane.has_value());
    EXPECT_TRUE(lane->equalTree(parseSexpr("(+ ?x (* ?y ?z))")));
}

TEST(Projection, VectorWildcardGetsLaneVariable)
{
    RecExpr e = parseSexpr("(VecAdd ?u ?v)");
    auto lane0 = projectLane(e, 0);
    auto lane1 = projectLane(e, 1);
    ASSERT_TRUE(lane0 && lane1);
    // Different lanes must yield different scalar variables.
    EXPECT_FALSE(lane0->equalTree(*lane1));
}

TEST(Projection, OutOfRangeLaneFails)
{
    RecExpr e = parseSexpr("(Vec ?a ?b)");
    EXPECT_FALSE(projectLane(e, 2).has_value());
}

TEST(UniformWidth, Detection)
{
    EXPECT_EQ(uniformVecWidth(parseSexpr("(VecAdd (Vec ?a ?b) ?v)")), 2);
    EXPECT_EQ(uniformVecWidth(parseSexpr("(VecAdd ?u ?v)")),
              std::nullopt);
    EXPECT_EQ(uniformVecWidth(
                  parseSexpr("(Concat (Vec ?a ?b) (Vec ?c ?d ?e))")),
              std::nullopt);
}

TEST(Verify, ProvesLaneWiseVectorRules)
{
    Rule r = parseRule("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)");
    EXPECT_EQ(verifyRule(r), Verdict::Proved);
    Rule mac = parseRule("(VecAdd ?a (VecMul ?b ?c)) ~> (VecMAC ?a ?b ?c)");
    EXPECT_EQ(verifyRule(mac), Verdict::Proved);
}

TEST(Verify, ProvesCompileRules)
{
    Rule r = parseRule(
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1)) ~> "
        "(VecAdd (Vec ?a0 ?a1) (Vec ?b0 ?b1))");
    EXPECT_EQ(verifyRule(r), Verdict::Proved);
}

TEST(Verify, RejectsUnsoundRules)
{
    EXPECT_EQ(verifyRule(parseRule("(+ ?a ?b) ~> (* ?a ?b)")),
              Verdict::Rejected);
    EXPECT_EQ(verifyRule(parseRule("(VecAdd ?a ?b) ~> (VecMinus ?a ?b)")),
              Verdict::Rejected);
    // sqrt(a*a) = a fails on negatives.
    EXPECT_EQ(verifyRule(parseRule("(sqrt (* ?a ?a)) ~> ?a")),
              Verdict::Rejected);
}

TEST(Verify, RejectsDefinednessMismatch)
{
    // x/x = 1 fails at x = 0: the sampler sees the mismatch.
    EXPECT_EQ(verifyRule(parseRule("(/ ?a ?a) ~> 1")), Verdict::Rejected);
}

TEST(Verify, TestsSgnIdentitiesBySampling)
{
    // sgn(-x) = -sgn(x) is true but opaque to the normalizer.
    Rule r = parseRule("(sgn (neg ?a)) ~> (neg (sgn ?a))");
    EXPECT_EQ(verifyRule(r), Verdict::Tested);
}

TEST(Verify, DivisionRulesTestedNotProved)
{
    Rule r = parseRule("(/ (/ ?a ?b) ?c) ~> (/ ?a (* ?b ?c))");
    Verdict v = verifyRule(r);
    EXPECT_EQ(v, Verdict::Tested);
}

/** Parameterized sweep: lane-wise op/scalar-counterpart coherence. */
class LaneProjectionTest : public ::testing::TestWithParam<int>
{};

TEST_P(LaneProjectionTest, CompileRulesProveAtEveryWidth)
{
    int width = GetParam();
    // Build (Vec (+ a_i b_i) ...) ~> (VecAdd (Vec a...) (Vec b...)).
    RecExpr lhs, rhs;
    std::vector<NodeId> lanes;
    for (int l = 0; l < width; ++l) {
        NodeId a = lhs.addWildcard(2 * l);
        NodeId b = lhs.addWildcard(2 * l + 1);
        lanes.push_back(lhs.add(Op::Add, {a, b}));
    }
    lhs.add(Op::Vec, std::move(lanes));
    std::vector<NodeId> va, vb;
    for (int l = 0; l < width; ++l)
        va.push_back(rhs.addWildcard(2 * l));
    NodeId vecA = rhs.add(Op::Vec, std::move(va));
    for (int l = 0; l < width; ++l)
        vb.push_back(rhs.addWildcard(2 * l + 1));
    NodeId vecB = rhs.add(Op::Vec, std::move(vb));
    rhs.add(Op::VecAdd, {vecA, vecB});
    Rule rule{std::move(lhs), std::move(rhs), "sweep", false};
    EXPECT_EQ(verifyRule(rule), Verdict::Proved);
}

INSTANTIATE_TEST_SUITE_P(Widths, LaneProjectionTest,
                         ::testing::Values(1, 2, 3, 4, 8));

} // namespace
} // namespace isaria
