// Tests for cost-based phase discovery (Section 3.2).

#include <gtest/gtest.h>

#include "isa/cost_model.h"
#include "isa/isa_spec.h"
#include "phase/phase.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

DspCostModel
model()
{
    return DspCostModel(CostParams{});
}

TEST(CostModel, LeafCosts)
{
    DspCostModel m = model();
    EXPECT_EQ(m.exprCost(parseSexpr("7")), m.params().leaf);
    EXPECT_EQ(m.exprCost(parseSexpr("(Get a 3)")), m.params().leaf);
    EXPECT_EQ(m.exprCost(parseSexpr("?x")), m.params().leaf);
}

TEST(CostModel, ScalarOpsCostMoreThanVectorOps)
{
    DspCostModel m = model();
    std::uint64_t scalarAdd = m.exprCost(parseSexpr("(+ ?a ?b)"));
    std::uint64_t vectorAdd = m.exprCost(parseSexpr("(VecAdd ?a ?b)"));
    EXPECT_GT(scalarAdd, vectorAdd);
    // Beta sits between the two rule aggregates (Section 3.2).
    EXPECT_GT(2 * static_cast<std::int64_t>(scalarAdd),
              m.params().beta);
    EXPECT_LE(2 * static_cast<std::int64_t>(vectorAdd),
              m.params().beta);
}

TEST(CostModel, VecLiteralChargesLaneMoves)
{
    DspCostModel m = model();
    std::uint64_t leaves = m.exprCost(
        parseSexpr("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"));
    std::uint64_t computed = m.exprCost(
        parseSexpr("(Vec (+ ?a ?b) (+ ?c ?d) (+ ?e ?f) (+ ?g ?h))"));
    // A vector of leaves is a load; computed lanes pay per-lane moves.
    EXPECT_LT(leaves, 10u);
    EXPECT_GT(computed, leaves + 4 * m.params().laneMove);
}

TEST(CostModel, StrictMonotonicity)
{
    // Definition 2: every term costs strictly more than any of its
    // direct subterms.
    DspCostModel m = model();
    const char *terms[] = {
        "(+ ?a ?b)",
        "(Vec ?a ?b ?c ?d)",
        "(VecMAC ?x ?y ?z)",
        "(sqrt (+ ?a 1))",
        "(VecAdd (Vec ?a ?b ?c ?d) (VecMul ?u ?v))",
        "(List (Vec ?a ?b ?c ?d))",
        "(Concat ?u ?v)",
        "(sqrtsgn ?a ?b)",
        "(mulsub ?x ?a ?b)",
    };
    for (const char *text : terms) {
        RecExpr e = parseSexpr(text);
        std::uint64_t total = m.exprCost(e);
        for (NodeId child : e.root().children) {
            EXPECT_LT(m.exprCost(e.subExpr(child)), total) << text;
        }
    }
}

TEST(Phase, CompilationRulesHaveLargeDifferential)
{
    Rule compile = parseRule(
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    EXPECT_EQ(phaseOf(compile, model()), Phase::Compilation);
}

TEST(Phase, ScalarRulesAreExpansion)
{
    EXPECT_EQ(phaseOf(parseRule("(+ ?a ?b) ~> (+ ?b ?a)"), model()),
              Phase::Expansion);
    EXPECT_EQ(phaseOf(parseRule("?a ~> (+ ?a 0)"), model()),
              Phase::Expansion);
    EXPECT_EQ(phaseOf(parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
                      model()),
              Phase::Expansion);
}

TEST(Phase, VectorRulesAreOptimization)
{
    EXPECT_EQ(phaseOf(parseRule("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)"),
                      model()),
              Phase::Optimization);
    EXPECT_EQ(phaseOf(
                  parseRule("(VecAdd ?a (VecMul ?b ?c)) ~> "
                            "(VecMAC ?a ?b ?c)"),
                  model()),
              Phase::Optimization);
}

TEST(Phase, NestedVecRuleIsExpansion)
{
    // The paper's Section 3.2 example: a rule with VecAdd on both
    // sides that actually rewrites a scalar inside an inner Vec
    // literal must land in expansion, not optimization — the
    // syntactic strawman gets this wrong, the cost-based assignment
    // right.
    Rule nested = parseRule(
        "(VecAdd (Vec (+ ?a ?b) ?c ?d ?e) ?v) ~> "
        "(VecAdd (Vec (+ ?b ?a) ?c ?d ?e) ?v)");
    EXPECT_EQ(phaseOf(nested, model()), Phase::Expansion);
}

TEST(Phase, AssignPartitionsEverything)
{
    RuleSet rules;
    rules.add(parseRule("(+ ?a ?b) ~> (+ ?b ?a)"));
    rules.add(parseRule("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)"));
    rules.add(parseRule(
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3)) ~> "
        "(VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))"));
    PhasedRules phased = assignPhases(rules, model());
    EXPECT_EQ(phased.all.size(), 3u);
    EXPECT_EQ(phased.countOf(Phase::Expansion), 1u);
    EXPECT_EQ(phased.countOf(Phase::Optimization), 1u);
    EXPECT_EQ(phased.countOf(Phase::Compilation), 1u);
    EXPECT_EQ(phased.ofPhase(Phase::Expansion).size(), 1u);
}

TEST(Phase, CsvHasHeaderAndRows)
{
    RuleSet rules;
    rules.add(parseRule("(+ ?a ?b) ~> (+ ?b ?a)"));
    PhasedRules phased = assignPhases(rules, model());
    std::string csv = phased.toCsv();
    EXPECT_NE(csv.find("name,phase,aggregate_cost,cost_differential"),
              std::string::npos);
    EXPECT_NE(csv.find("expansion"), std::string::npos);
}

TEST(Phase, AlphaBetaExtremesCollapsePhases)
{
    // Very large alpha and tiny beta push everything into expansion;
    // huge beta pushes the residue into optimization — the paper's
    // limit behaviour (Section 3.2).
    CostParams params;
    params.alpha = 1'000'000;
    params.beta = -1;
    DspCostModel extreme(params);
    EXPECT_EQ(phaseOf(parseRule("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)"),
                      extreme),
              Phase::Expansion);
    params.beta = 1'000'000;
    DspCostModel extreme2(params);
    EXPECT_EQ(phaseOf(parseRule("(+ ?a ?b) ~> (+ ?b ?a)"), extreme2),
              Phase::Optimization);
}

TEST(IsaSpecTest, CustomInstructionToggles)
{
    // Pin the machine explicitly: this test is about the Fusion
    // custom-op toggles, not the session default target.
    IsaSpec base(MachineDesc::fusionG3());
    EXPECT_FALSE(base.opEnabled(Op::VecMulSub));
    EXPECT_FALSE(base.opEnabled(Op::SqrtSgn));
    EXPECT_TRUE(base.opEnabled(Op::VecMAC));
    EXPECT_EQ(base.name(), "fusion-g3-w4");

    IsaConfig config;
    config.enableMulSub = true;
    config.enableSqrtSgn = true;
    IsaSpec custom(config);
    EXPECT_TRUE(custom.opEnabled(Op::VecMulSub));
    EXPECT_TRUE(custom.opEnabled(Op::VecSqrtSgn));
    EXPECT_EQ(custom.name(), "fusion-g3-w4+mulsub+sqrtsgn");
    EXPECT_GT(custom.scalarOps().size(), base.scalarOps().size());
    EXPECT_GT(custom.vectorOps().size(), base.vectorOps().size());
}

} // namespace
} // namespace isaria
