// Tests for the kernel IR, symbolic lifting, and benchmark kernels.

#include <gtest/gtest.h>

#include "frontend/kernels.h"
#include "interp/eval.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

TEST(KernelIr, LiftSimpleStore)
{
    Kernel k;
    k.name = "copy2";
    k.inputs = {{"src", 2}};
    k.outputs = {{"dst", 2}};
    k.body = {
        kStore("dst", kConst(0), kRef("src", kConst(1))),
        kStore("dst", kConst(1), kRef("src", kConst(0))),
    };
    RecExpr p = liftKernel(k, 4);
    // One chunk (2 outputs padded to 4 lanes with zeros).
    EXPECT_EQ(printSexpr(p),
              "(List (Vec (Get src 1) (Get src 0) 0 0))");
}

TEST(KernelIr, LoopsUnroll)
{
    Kernel k;
    k.name = "scale";
    k.inputs = {{"x", 4}};
    k.outputs = {{"y", 4}};
    k.body = {kFor("i", 0, 4,
                   {kStore("y", kVar("i"),
                           kMul(kRef("x", kVar("i")), kConst(2)))})};
    RecExpr p = liftKernel(k, 4);
    EXPECT_EQ(p.root().children.size(), 1u);
    Env env;
    env.arrays[internSymbol("x")] = {Rational(1), Rational(2),
                                     Rational(3), Rational(4)};
    Value v = evalProgram(p, env)[0];
    EXPECT_EQ(v.lanes[2], Rational(6));
}

TEST(KernelIr, NestedLoopsAndAccumulation)
{
    Kernel k;
    k.name = "rowsum";
    k.inputs = {{"m", 6}};
    k.outputs = {{"s", 2}};
    k.body = {kFor(
        "i", 0, 2,
        {kFor("j", 0, 3,
              {kAccum("s", kVar("i"),
                      kRef("m", kAdd(kMul(kVar("i"), kConst(3)),
                                     kVar("j"))))})})};
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("m")] = {Rational(1), Rational(2), Rational(3),
                                     Rational(10), Rational(20),
                                     Rational(30)};
    Value v = evalProgram(p, env)[0];
    EXPECT_EQ(v.lanes[0], Rational(6));
    EXPECT_EQ(v.lanes[1], Rational(60));
}

TEST(KernelIr, AlgebraicFoldsDuringLift)
{
    Kernel k;
    k.name = "folds";
    k.inputs = {{"x", 1}};
    k.outputs = {{"y", 1}};
    // y[0] = 0 + x[0]*1  — should lift to just (Get x 0).
    k.body = {kStore("y", kConst(0),
                     kAdd(kConst(0), kMul(kRef("x", kConst(0)),
                                          kConst(1))))};
    RecExpr p = liftKernel(k, 4);
    EXPECT_EQ(printSexpr(p), "(List (Vec (Get x 0) 0 0 0))");
}

TEST(KernelIr, PaddingToWidth)
{
    Kernel k;
    k.name = "five";
    k.inputs = {{"x", 5}};
    k.outputs = {{"y", 5}};
    k.body = {kFor("i", 0, 5,
                   {kStore("y", kVar("i"), kRef("x", kVar("i")))})};
    RecExpr p = liftKernel(k, 4);
    // 5 outputs -> 2 chunks, 3 zero lanes of padding.
    EXPECT_EQ(p.root().children.size(), 2u);
    EXPECT_EQ(k.totalOutputs(), 5);
}

TEST(Kernels, Conv2DShape)
{
    Kernel k = make2DConv(3, 3, 2, 2);
    EXPECT_EQ(k.totalOutputs(), 16);
    RecExpr p = liftKernel(k, 4);
    EXPECT_EQ(p.root().children.size(), 4u);
}

TEST(Kernels, Conv2DSemantics)
{
    // 1x1 filter of value 2: output = 2 * input.
    Kernel k = make2DConv(2, 2, 1, 1);
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("I")] = {Rational(1), Rational(2), Rational(3),
                                     Rational(4)};
    env.arrays[internSymbol("F")] = {Rational(2)};
    Value v = evalProgram(p, env)[0];
    EXPECT_EQ(v.lanes[0], Rational(2));
    EXPECT_EQ(v.lanes[3], Rational(8));
}

TEST(Kernels, ConvFullAgainstHand)
{
    // 2x2 input, 2x2 filter, full conv -> 3x3 output; check center:
    // O[1][1] = I00*F11 + I01*F10 + I10*F01 + I11*F00.
    Kernel k = make2DConv(2, 2, 2, 2);
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("I")] = {Rational(1), Rational(2), Rational(3),
                                     Rational(4)};
    env.arrays[internSymbol("F")] = {Rational(5), Rational(6), Rational(7),
                                     Rational(8)};
    auto vals = evalProgram(p, env);
    // Flatten chunks.
    std::vector<Rational> flat;
    for (const Value &v : vals)
        flat.insert(flat.end(), v.lanes.begin(), v.lanes.end());
    // O[1][1] is element 4 of the 3x3 output.
    EXPECT_EQ(flat[4], Rational(1 * 8 + 2 * 7 + 3 * 6 + 4 * 5));
}

TEST(Kernels, MatMulSemantics)
{
    Kernel k = makeMatMul(2, 2, 2);
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("A")] = {Rational(1), Rational(2), Rational(3),
                                     Rational(4)};
    env.arrays[internSymbol("B")] = {Rational(5), Rational(6), Rational(7),
                                     Rational(8)};
    Value v = evalProgram(p, env)[0];
    // C = [[19 22],[43 50]].
    EXPECT_EQ(v.lanes[0], Rational(19));
    EXPECT_EQ(v.lanes[1], Rational(22));
    EXPECT_EQ(v.lanes[2], Rational(43));
    EXPECT_EQ(v.lanes[3], Rational(50));
}

TEST(Kernels, QProdIdentityQuaternion)
{
    Kernel k = makeQProd();
    RecExpr p = liftKernel(k, 4);
    Env env;
    // p = identity (1,0,0,0), q arbitrary: r must equal q.
    env.arrays[internSymbol("P")] = {Rational(1), Rational(0), Rational(0),
                                     Rational(0)};
    env.arrays[internSymbol("Q")] = {Rational(2), Rational(3), Rational(4),
                                     Rational(5)};
    Value v = evalProgram(p, env)[0];
    EXPECT_EQ(v.lanes[0], Rational(2));
    EXPECT_EQ(v.lanes[1], Rational(3));
    EXPECT_EQ(v.lanes[2], Rational(4));
    EXPECT_EQ(v.lanes[3], Rational(5));
}

TEST(Kernels, QProdNonCommutative)
{
    Kernel k = makeQProd();
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("P")] = {Rational(0), Rational(1), Rational(0),
                                     Rational(0)};
    env.arrays[internSymbol("Q")] = {Rational(0), Rational(0), Rational(1),
                                     Rational(0)};
    // i * j = k.
    Value v = evalProgram(p, env)[0];
    EXPECT_EQ(v.lanes[0], Rational(0));
    EXPECT_EQ(v.lanes[3], Rational(1));
}

TEST(Kernels, QrDUsesDivSqrtSgn)
{
    Kernel k = makeQrD(3);
    RecExpr p = liftKernel(k, 4);
    bool hasDiv = false, hasSqrt = false, hasSgn = false;
    for (NodeId id = 0; id < static_cast<NodeId>(p.size()); ++id) {
        hasDiv |= p.node(id).op == Op::Div;
        hasSqrt |= p.node(id).op == Op::Sqrt;
        hasSgn |= p.node(id).op == Op::Sgn;
    }
    EXPECT_TRUE(hasDiv);
    EXPECT_TRUE(hasSqrt);
    EXPECT_TRUE(hasSgn);
    EXPECT_EQ(k.totalOutputs(), 18);
}

TEST(Kernels, QrDReconstructsA)
{
    // Evaluate QR over doubles via the reference path is done in the
    // integration tests; here check the exact-rational diagonal case,
    // where Householder reduces to sign flips.
    Kernel k = makeQrD(2);
    RecExpr p = liftKernel(k, 4);
    Env env;
    env.arrays[internSymbol("A")] = {Rational(3), Rational(0), Rational(4),
                                     Rational(0)};
    auto vals = evalProgram(p, env);
    std::vector<Rational> flat;
    for (const Value &v : vals)
        flat.insert(flat.end(), v.lanes.begin(), v.lanes.end());
    // Output layout: Q (4), then R (4). Column (3,4) has norm 5.
    // R[0][0] = -sgn(3)*5 = -5.
    EXPECT_EQ(flat[4], Rational(-5));
    // Q * R == A: check A[0][0] = Q00*R00 + Q01*R10 (R10 == 0).
    EXPECT_EQ(flat[0] * flat[4], Rational(3));
}

/** Property sweep: conv output counts across shapes. */
class ConvShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ConvShapeTest, OutputSizeIsFullConvolution)
{
    auto [n, kk] = GetParam();
    Kernel k = make2DConv(n, n, kk, kk);
    EXPECT_EQ(k.totalOutputs(), (n + kk - 1) * (n + kk - 1));
    RecExpr p = liftKernel(k, 4);
    std::size_t chunks = (k.totalOutputs() + 3) / 4;
    EXPECT_EQ(p.root().children.size(), chunks);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvShapeTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 6),
                                            ::testing::Values(1, 2, 3)));

} // namespace
} // namespace isaria
