// Property-based differential tests: randomly generated programs
// pushed through saturation, extraction, and lowering must preserve
// semantics. These are the repository's strongest guards against
// unsound rules, e-graph bugs, and lowering bugs.

#include <gtest/gtest.h>

#include "baseline/diospyros.h"
#include "compiler/compiler.h"
#include "interp/eval.h"
#include "lower/lower.h"
#include "support/rng.h"
#include "term/sexpr.h"
#include "vm/reference.h"

namespace isaria
{
namespace
{

/** Generates a random scalar expression over (Get arr 0..7). */
NodeId
randomScalar(RecExpr &e, Rng &rng, SymbolId arr, int depth)
{
    if (depth == 0 || rng.nextBelow(4) == 0) {
        if (rng.nextBelow(4) == 0)
            return e.addConst(rng.nextInRange(-2, 2));
        return e.addGet(arr, static_cast<std::int32_t>(rng.nextBelow(8)));
    }
    switch (rng.nextBelow(5)) {
      case 0:
        return e.add(Op::Add, {randomScalar(e, rng, arr, depth - 1),
                               randomScalar(e, rng, arr, depth - 1)});
      case 1:
        return e.add(Op::Sub, {randomScalar(e, rng, arr, depth - 1),
                               randomScalar(e, rng, arr, depth - 1)});
      case 2:
        return e.add(Op::Mul, {randomScalar(e, rng, arr, depth - 1),
                               randomScalar(e, rng, arr, depth - 1)});
      case 3:
        return e.add(Op::Neg, {randomScalar(e, rng, arr, depth - 1)});
      default:
        return e.add(Op::Mul, {randomScalar(e, rng, arr, depth - 1),
                               e.addConst(rng.nextInRange(-3, 3))});
    }
}

/** A random 1-chunk program (4 lanes of random scalar expressions). */
RecExpr
randomProgram(std::uint64_t seed, SymbolId arr, int depth = 3)
{
    Rng rng(seed);
    RecExpr e;
    std::vector<NodeId> lanes;
    for (int l = 0; l < 4; ++l)
        lanes.push_back(randomScalar(e, rng, arr, depth));
    NodeId vec = e.add(Op::Vec, std::move(lanes));
    e.add(Op::List, {vec});
    return e;
}

VmMemory
randomInputs(std::uint64_t seed, SymbolId arr)
{
    Rng rng(seed * 7 + 1);
    std::vector<double> cells(8);
    for (double &c : cells)
        c = static_cast<double>(rng.nextInRange(-50, 50)) / 8.0;
    VmMemory mem;
    mem[arr] = cells;
    return mem;
}

class DifferentialTest : public ::testing::TestWithParam<int>
{};

TEST_P(DifferentialTest, EqSatWithHandRulesPreservesSemantics)
{
    std::uint64_t seed = GetParam();
    SymbolId arr = internSymbol("prop");
    RecExpr program = randomProgram(seed, arr);
    VmMemory mem = randomInputs(seed, arr);
    auto before = evalProgramDoubles(program, mem);

    // Saturate with the curated rule set and extract the cheapest.
    EGraph eg;
    EClassId root = eg.addExpr(program);
    auto rules = compileRules(diospyrosHandRules().rules());
    EqSatLimits limits;
    limits.maxIters = 4;
    limits.maxNodes = 30'000;
    runEqSat(eg, rules, limits);
    DspCostModel cost;
    auto best = extractBest(eg, root, cost);
    ASSERT_TRUE(best.has_value());

    auto after = evalProgramDoubles(best->expr, mem);
    EXPECT_LT(maxAbsDiff(before, after), 1e-9) << "seed " << seed;
}

TEST_P(DifferentialTest, LoweringPreservesSemantics)
{
    std::uint64_t seed = GetParam() + 1000;
    SymbolId arr = internSymbol("prop2");
    RecExpr program = randomProgram(seed, arr);
    VmMemory mem = randomInputs(seed, arr);
    auto ref = evalProgramDoubles(program, mem);

    for (bool scalarOnly : {false, true}) {
        LowerOptions options;
        options.width = 4;
        options.scalarOnly = scalarOnly;
        VmProgram code = lowerProgram(program, options);
        auto run = runProgram(code, mem);
        const auto &got = run.memory.at(outputArraySymbol());
        ASSERT_GE(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_NEAR(got[i], ref[i], 1e-9)
                << "seed " << seed << " scalarOnly " << scalarOnly
                << " lane " << i;
        }
    }
}

TEST_P(DifferentialTest, CompileThenLowerPreservesSemantics)
{
    std::uint64_t seed = GetParam() + 2000;
    SymbolId arr = internSymbol("prop3");
    RecExpr program = randomProgram(seed, arr, /*depth=*/2);
    VmMemory mem = randomInputs(seed, arr);
    auto ref = evalProgramDoubles(program, mem);

    static IsariaCompiler dios = makeDiospyrosCompiler();
    RecExpr compiled = dios.compile(program);
    LowerOptions options;
    options.width = 4;
    options.scalarizeRawChunks = true;
    VmProgram code = lowerProgram(compiled, options);
    auto run = runProgram(code, mem);
    const auto &got = run.memory.at(outputArraySymbol());
    ASSERT_GE(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(1, 25));

/** Extraction optimality on saturated e-graphs: the extracted cost is
 *  a true lower bound over re-extraction after more iterations. */
TEST(ExtractionProperty, MoreSaturationNeverRaisesBestCost)
{
    SymbolId arr = internSymbol("prop4");
    for (int seed = 1; seed < 8; ++seed) {
        RecExpr program = randomProgram(seed + 3000, arr);
        auto rules = compileRules(diospyrosHandRules().rules());
        DspCostModel cost;
        std::uint64_t last = UINT64_MAX;
        for (int iters = 1; iters <= 3; ++iters) {
            EGraph eg;
            EClassId root = eg.addExpr(program);
            EqSatLimits limits;
            limits.maxIters = iters;
            limits.maxNodes = 40'000;
            runEqSat(eg, rules, limits);
            auto best = extractBest(eg, root, cost);
            ASSERT_TRUE(best.has_value());
            EXPECT_LE(best->cost, last) << "seed " << seed;
            last = best->cost;
        }
    }
}

} // namespace
} // namespace isaria
