// Unit tests for the term module: ops, RecExpr, s-expressions, patterns.

#include <gtest/gtest.h>

#include "support/panic.h"
#include "term/op.h"
#include "term/pattern.h"
#include "term/rec_expr.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

TEST(Op, MetadataConsistency)
{
    EXPECT_EQ(opInfo(Op::Add).name, "+");
    EXPECT_EQ(opInfo(Op::Add).arity, 2);
    EXPECT_EQ(opInfo(Op::Vec).arity, -1);
    EXPECT_EQ(opInfo(Op::VecMAC).arity, 3);
    EXPECT_EQ(opInfo(Op::Vec).resultSort, Sort::Vector);
    EXPECT_EQ(opInfo(Op::Vec).childSort, Sort::Scalar);
}

TEST(Op, NameLookup)
{
    EXPECT_EQ(opFromName("VecAdd"), Op::VecAdd);
    EXPECT_EQ(opFromName("+"), Op::Add);
    EXPECT_EQ(opFromName("nonsense"), Op::NumOps);
}

TEST(Op, ScalarVectorCounterparts)
{
    EXPECT_EQ(scalarCounterpart(Op::VecAdd), Op::Add);
    EXPECT_EQ(vectorCounterpart(Op::Add), Op::VecAdd);
    EXPECT_EQ(scalarCounterpart(Op::VecMAC), Op::NumOps);
    EXPECT_EQ(vectorCounterpart(Op::SqrtSgn), Op::VecSqrtSgn);
    // Round trip over all lane-wise ops that have a scalar form.
    for (int i = 0; i < static_cast<int>(Op::NumOps); ++i) {
        Op op = static_cast<Op>(i);
        Op sc = scalarCounterpart(op);
        if (sc != Op::NumOps)
            EXPECT_EQ(vectorCounterpart(sc), op);
    }
}

TEST(RecExpr, BuildAndInspect)
{
    RecExpr e;
    NodeId x = e.addSymbol("x");
    NodeId one = e.addConst(1);
    NodeId sum = e.add(Op::Add, {x, one});
    EXPECT_EQ(e.size(), 3u);
    EXPECT_EQ(e.rootId(), sum);
    EXPECT_EQ(e.root().op, Op::Add);
    EXPECT_EQ(e.treeSize(), 3u);
}

TEST(RecExpr, GetPayloadPacking)
{
    SymbolId arr = internSymbol("arr");
    std::int64_t p = packGet(arr, 42);
    EXPECT_EQ(getArray(p), arr);
    EXPECT_EQ(getIndex(p), 42);
}

TEST(RecExpr, SubExprExtraction)
{
    RecExpr e = parseSexpr("(+ (* a b) c)");
    NodeId mul = e.root().children[0];
    RecExpr sub = e.subExpr(mul);
    EXPECT_EQ(printSexpr(sub), "(* a b)");
}

TEST(RecExpr, TreeEqualityIgnoresLayout)
{
    RecExpr a = parseSexpr("(+ x y)");
    // Build the same tree with extra unused nodes in the node list.
    RecExpr b;
    b.addConst(99); // dead node
    NodeId x = b.addSymbol("x");
    NodeId y = b.addSymbol("y");
    b.add(Op::Add, {x, y});
    EXPECT_TRUE(a.equalTree(b));
    EXPECT_EQ(a.treeHash(), b.treeHash());
}

TEST(RecExpr, InferSorts)
{
    RecExpr e = parseSexpr("(VecAdd (Vec ?a ?b) ?v)");
    auto sorts = e.inferSorts();
    EXPECT_EQ(sorts[e.rootId()], Sort::Vector);
    const TermNode &root = e.root();
    NodeId vec = root.children[0];
    NodeId v = root.children[1];
    EXPECT_EQ(sorts[vec], Sort::Vector);
    EXPECT_EQ(sorts[v], Sort::Vector);
    for (NodeId lane : e.node(vec).children)
        EXPECT_EQ(sorts[lane], Sort::Scalar);
}

TEST(RecExpr, WildcardIdsPreorder)
{
    RecExpr e = parseSexpr("(+ (* ?b ?a) ?b)");
    auto ids = e.wildcardIds();
    ASSERT_EQ(ids.size(), 2u);
    // ?b first (id 0 from parser), then ?a.
    EXPECT_EQ(ids[0], 0);
    EXPECT_EQ(ids[1], 1);
}

TEST(RecExpr, ContainsVectorOp)
{
    EXPECT_FALSE(parseSexpr("(+ x (* y z))").containsVectorOp());
    EXPECT_TRUE(parseSexpr("(Vec x y)").containsVectorOp());
    EXPECT_TRUE(parseSexpr("(VecAdd ?a ?b)").containsVectorOp());
}

TEST(Sexpr, RoundTrip)
{
    const char *cases[] = {
        "(+ x y)",
        "(VecMAC ?w0 ?w1 ?w2)",
        "(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))",
        "(List (Vec 1 2) (VecAdd (Vec x 0) (Vec 0 y)))",
        "(sqrtsgn (Get m 5) -3)",
        "(neg (sgn (sqrt x)))",
    };
    for (const char *text : cases) {
        RecExpr e = parseSexpr(text);
        EXPECT_EQ(printSexpr(e), text);
    }
}

TEST(Sexpr, NegativeConstants)
{
    RecExpr e = parseSexpr("(+ -5 3)");
    EXPECT_EQ(e.node(e.root().children[0]).payload, -5);
}

TEST(Sexpr, SubIsBinaryMinus)
{
    RecExpr e = parseSexpr("(- x y)");
    EXPECT_EQ(e.root().op, Op::Sub);
}

TEST(Pattern, AlphaCanonicalize)
{
    RecExpr a = parseSexpr("(+ ?p ?q)");
    RecExpr b = parseSexpr("(+ ?z ?y)");
    EXPECT_TRUE(alphaCanonicalize(a).equalTree(alphaCanonicalize(b)));
    RecExpr c = parseSexpr("(+ ?p ?p)");
    EXPECT_FALSE(alphaCanonicalize(a).equalTree(alphaCanonicalize(c)));
}

TEST(Pattern, Instantiate)
{
    RecExpr pat = parseSexpr("(+ ?a (* ?a ?b))");
    std::map<std::int32_t, RecExpr> subst;
    subst.emplace(0, parseSexpr("x"));
    subst.emplace(1, parseSexpr("(+ y 1)"));
    RecExpr got = instantiate(pat, subst);
    EXPECT_TRUE(got.equalTree(parseSexpr("(+ x (* x (+ y 1)))")));
}

TEST(Pattern, ParseRuleSharedWildcards)
{
    Rule r = parseRule("(+ ?b ?a) ~> (+ ?a ?b)");
    EXPECT_TRUE(r.wellFormed());
    // lhs wildcards are (?b=0, ?a=1); rhs must reuse the same ids.
    EXPECT_EQ(r.rhs.wildcardIds(), (std::vector<std::int32_t>{1, 0}));
}

TEST(Pattern, ParseRuleRejectsUnboundRhs)
{
    // A user error (bad rule text), so it must be recoverable: a
    // FatalError for boundary code to catch, not an abort.
    EXPECT_THROW((void)parseRule("(+ ?a 0) ~> (+ ?a ?b)"), FatalError);
}

TEST(Pattern, RuleCanonicalEquality)
{
    Rule a = parseRule("(+ ?x ?y) ~> (+ ?y ?x)");
    Rule b = parseRule("(+ ?p ?q) ~> (+ ?q ?p)");
    EXPECT_TRUE(a.sameAs(b));
    EXPECT_EQ(a.hash(), b.hash());
    Rule c = parseRule("(+ ?x ?y) ~> (+ ?x ?y)");
    EXPECT_FALSE(a.sameAs(c));
}

TEST(Pattern, RuleToStringStable)
{
    Rule a = parseRule("(* ?k ?j) ~> (* ?j ?k)");
    EXPECT_EQ(a.toString(), "(* ?w0 ?w1) ~> (* ?w1 ?w0)");
}

} // namespace
} // namespace isaria
