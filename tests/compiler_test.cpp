// Tests for the compile-time scheduler (Fig. 3) with a small
// hand-written phased rule system, so behaviour is deterministic and
// independent of synthesis.

#include <gtest/gtest.h>

#include "baseline/diospyros.h"
#include "compiler/compiler.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** A compact rule system good enough to vectorize simple programs. */
RuleSet
miniRules()
{
    RuleSet rules;
    auto add = [&](const char *text) {
        Rule r = parseRule(text);
        r.name = "mini";
        rules.add(std::move(r));
    };
    add("?a ~> (+ ?a 0)");
    add("(+ ?a 0) ~> ?a");
    add("(+ ?a ?b) ~> (+ ?b ?a)");
    add("(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    add("(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3)) ~> "
        "(VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    add("(VecAdd ?a (VecMul ?b ?c)) ~> (VecMAC ?a ?b ?c)");
    add("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)");
    return rules;
}

IsariaCompiler
miniCompiler(CompilerConfig config = {})
{
    return IsariaCompiler(assignPhases(miniRules(), config.costModel),
                          config);
}

TEST(Compiler, VectorizesThePaperExample)
{
    // Section 2.1's running example: three adds and a ragged lane.
    IsariaCompiler compiler = miniCompiler();
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get px 0) (Get py 0)) (+ (Get px 1) (Get py 1))"
        " (+ (Get px 2) (Get py 2)) (Get px 3)))");
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);
    EXPECT_LT(stats.finalCost, stats.initialCost);
    EXPECT_TRUE(out.containsVectorOp());
    // The known-best form: one VecAdd of a contiguous load and a
    // zero-padded load.
    EXPECT_EQ(printSexpr(out),
              "(List (VecAdd (Vec (Get px 0) (Get px 1) (Get px 2) "
              "(Get px 3)) (Vec (Get py 0) (Get py 1) (Get py 2) 0)))");
}

TEST(Compiler, FusesMac)
{
    IsariaCompiler compiler = miniCompiler();
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get pa 0) (* (Get pb 0) (Get pc 0)))"
        " (+ (Get pa 1) (* (Get pb 1) (Get pc 1)))"
        " (+ (Get pa 2) (* (Get pb 2) (Get pc 2)))"
        " (+ (Get pa 3) (* (Get pb 3) (Get pc 3)))))");
    RecExpr out = compiler.compile(p);
    bool hasMac = false;
    for (NodeId id = 0; id < static_cast<NodeId>(out.size()); ++id)
        hasMac |= out.node(id).op == Op::VecMAC;
    EXPECT_TRUE(hasMac);
}

TEST(Compiler, StatsArepopulated)
{
    IsariaCompiler compiler = miniCompiler();
    RecExpr p = parseSexpr("(List (Vec (+ ?x 0) 0 0 0))");
    // Wildcards cannot enter an e-graph; use concrete terms.
    p = parseSexpr("(List (Vec (+ (Get ps 0) (Get ps 1)) 0 0 0))");
    CompileStats stats;
    compiler.compile(p, &stats);
    EXPECT_GT(stats.eqsatCalls, 0);
    EXPECT_GT(stats.loopIterations, 0);
    EXPECT_GT(stats.peakNodes, 0u);
    EXPECT_EQ(stats.reports.size(),
              static_cast<std::size_t>(stats.eqsatCalls));
    EXPECT_GT(stats.seconds, 0.0);
}

TEST(Compiler, IdempotentOnAlreadyVectorizedInput)
{
    IsariaCompiler compiler = miniCompiler();
    RecExpr p = parseSexpr(
        "(List (VecAdd (Vec (Get pv 0) (Get pv 1) (Get pv 2) (Get pv 3))"
        " (Vec (Get pw 0) (Get pw 1) (Get pw 2) (Get pw 3))))");
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);
    EXPECT_EQ(stats.finalCost, stats.initialCost);
    EXPECT_TRUE(out.equalTree(p));
}

TEST(Compiler, NoPhasesModeRunsSingleSaturation)
{
    CompilerConfig config;
    config.phasing = false;
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get pq 0) (Get pr 0)) (+ (Get pq 1) (Get pr 1))"
        " (+ (Get pq 2) (Get pr 2)) (+ (Get pq 3) (Get pr 3))))");
    CompileStats stats;
    compiler.compile(p, &stats);
    EXPECT_EQ(stats.eqsatCalls, 1);
    EXPECT_EQ(stats.loopIterations, 0);
}

TEST(Compiler, NoPruningModeKeepsOneEGraph)
{
    CompilerConfig config;
    config.pruning = false;
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get pm 0) (Get pn 0)) (+ (Get pm 1) (Get pn 1))"
        " (+ (Get pm 2) (Get pn 2)) (Get pm 3)))");
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);
    EXPECT_LT(stats.finalCost, stats.initialCost);
    EXPECT_TRUE(out.containsVectorOp());
}

TEST(Compiler, RespectsNodeBudgetAsMemoryLimit)
{
    CompilerConfig config;
    config.expansionLimits.maxNodes = 200;
    config.compilationLimits.maxNodes = 200;
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get pz 0) (Get pz 1)) (+ (Get pz 2) (Get pz 3))"
        " (+ (Get pz 4) (Get pz 5)) (+ (Get pz 6) (Get pz 7))))");
    CompileStats stats;
    compiler.compile(p, &stats);
    for (const EqSatReport &r : stats.reports)
        EXPECT_LE(r.nodes, 3000u); // budget + one apply round of slack
}

TEST(Compiler, SpeculativeNeverWorseThanPlain)
{
    // The rollback guarantee: with speculation on, a round that fails
    // to improve is rolled back and compilation stops at the best
    // program so far — so the result can never be worse than the
    // non-speculative compile.
    RecExpr examples[] = {
        parseSexpr(
            "(List (Vec (+ (Get sx 0) (Get sy 0)) (+ (Get sx 1) (Get sy 1))"
            " (+ (Get sx 2) (Get sy 2)) (Get sx 3)))"),
        parseSexpr(
            "(List (Vec (+ (Get sa 0) (* (Get sb 0) (Get sc 0)))"
            " (+ (Get sa 1) (* (Get sb 1) (Get sc 1)))"
            " (+ (Get sa 2) (* (Get sb 2) (Get sc 2)))"
            " (+ (Get sa 3) (* (Get sb 3) (Get sc 3)))))"),
    };
    for (const RecExpr &p : examples) {
        CompileStats plain;
        miniCompiler().compile(p, &plain);

        CompilerConfig config;
        config.speculation = true;
        CompileStats spec;
        RecExpr out = miniCompiler(config).compile(p, &spec);
        EXPECT_LE(spec.finalCost, plain.finalCost);
        EXPECT_LE(spec.finalCost, spec.initialCost);
        EXPECT_TRUE(out.containsVectorOp());
    }
}

TEST(Compiler, SpeculativeRollsBackNonImprovingRound)
{
    // An already-vectorized input gives the speculative loop nothing
    // to improve: the first round must be rolled back (counted in
    // stats) and the input returned untouched.
    CompilerConfig config;
    config.speculation = true;
    IsariaCompiler compiler = miniCompiler(config);
    RecExpr p = parseSexpr(
        "(List (VecAdd (Vec (Get sv 0) (Get sv 1) (Get sv 2) (Get sv 3))"
        " (Vec (Get sw 0) (Get sw 1) (Get sw 2) (Get sw 3))))");
    CompileStats stats;
    RecExpr out = compiler.compile(p, &stats);
    EXPECT_EQ(stats.finalCost, stats.initialCost);
    EXPECT_GE(stats.speculativeRollbacks, 1);
    EXPECT_TRUE(out.equalTree(p));
}

TEST(Diospyros, HandRulesAreSoundAndWellFormed)
{
    RuleSet rules = diospyrosHandRules();
    EXPECT_GE(rules.size(), 25u);
    for (const Rule &rule : rules.rules())
        EXPECT_TRUE(rule.wellFormed()) << rule.toString();
}

TEST(Diospyros, CompilerVectorizesRegularChunk)
{
    IsariaCompiler dios = makeDiospyrosCompiler();
    RecExpr p = parseSexpr(
        "(List (Vec (+ (Get da 0) (Get db 0)) (+ (Get da 1) (Get db 1))"
        " (+ (Get da 2) (Get db 2)) (+ (Get da 3) (Get db 3))))");
    CompileStats stats;
    RecExpr out = dios.compile(p, &stats);
    EXPECT_TRUE(out.containsVectorOp());
    EXPECT_LT(stats.finalCost, stats.initialCost);
}

} // namespace
} // namespace isaria
