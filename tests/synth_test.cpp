// Tests for the offline rule-synthesis pipeline: enumeration,
// shrinking, and lane generalization.

#include <gtest/gtest.h>

#include <set>

#include "support/thread_pool.h"
#include "synth/synthesize.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Small, fast synthesis configuration shared by the tests. */
SynthConfig
quickConfig()
{
    SynthConfig config;
    config.timeoutSeconds = 10;
    config.maxRules = 150;
    config.enumConfig.maxDepth = 2;
    config.enumConfig.maxReps = 80;
    config.enumConfig.maxScalarCandidates = 2000;
    config.enumConfig.maxVectorCandidates = 3000;
    config.enumConfig.maxLiftCandidates = 3000;
    return config;
}

TEST(Ruleset, AddDeduplicates)
{
    RuleSet set;
    EXPECT_TRUE(set.add(parseRule("(+ ?a ?b) ~> (+ ?b ?a)")));
    EXPECT_FALSE(set.add(parseRule("(+ ?x ?y) ~> (+ ?y ?x)")));
    EXPECT_TRUE(set.add(parseRule("(* ?a ?b) ~> (* ?b ?a)")));
    EXPECT_EQ(set.size(), 2u);
}

TEST(Ruleset, SerializationRoundTrip)
{
    RuleSet set;
    Rule a = parseRule("(+ ?a 0) ~> ?a");
    a.name = "id-add";
    a.verifiedExactly = true;
    set.add(a);
    Rule b = parseRule("(VecAdd ?a ?b) ~> (VecAdd ?b ?a)");
    b.name = "vec-comm";
    set.add(b);
    RuleSet back = RuleSet::fromString(set.toString());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "id-add");
    EXPECT_TRUE(back[0].verifiedExactly);
    EXPECT_FALSE(back[1].verifiedExactly);
    EXPECT_TRUE(back[0].sameAs(a));
    EXPECT_TRUE(back[1].sameAs(b));
}

TEST(Skolemize, ReplacesWildcardsWithSymbols)
{
    RecExpr ground = skolemize(parseSexpr("(+ ?a (* ?b ?a))"));
    for (NodeId id = 0; id < static_cast<NodeId>(ground.size()); ++id)
        EXPECT_NE(ground.node(id).op, Op::Wildcard);
    // Shared wildcards become the same symbol.
    const TermNode &root = ground.root();
    NodeId a1 = root.children[0];
    NodeId mul = root.children[1];
    NodeId a2 = ground.node(mul).children[1];
    EXPECT_EQ(ground.node(a1).payload, ground.node(a2).payload);
}

TEST(Enumerate, FindsCoreCandidates)
{
    IsaSpec isa;
    EnumConfig config;
    config.maxDepth = 2;
    config.maxReps = 60;
    config.maxScalarCandidates = 3000;
    config.maxVectorCandidates = 3000;
    config.maxLiftCandidates = 3000;
    EnumResult result = enumerateTerms(isa, config, Deadline::unlimited());
    EXPECT_GT(result.candidates.size(), 100u);

    // The commutativity collision must be among the candidates.
    bool foundComm = false;
    Rule comm = parseRule("(+ ?a ?b) ~> (+ ?b ?a)");
    for (const CandidatePair &pair : result.candidates) {
        Rule got{pair.a, pair.b, "", false};
        if (got.sameAs(comm) || got.sameAs(Rule{pair.b, pair.a, "", false}))
            foundComm = foundComm || got.sameAs(comm);
        Rule rev{pair.b, pair.a, "", false};
        foundComm = foundComm || rev.sameAs(comm);
    }
    EXPECT_TRUE(foundComm);
}

TEST(Enumerate, GroundPairsAreSkipped)
{
    IsaSpec isa;
    EnumConfig config;
    config.maxDepth = 2;
    config.maxReps = 40;
    EnumResult result = enumerateTerms(isa, config, Deadline::unlimited());
    for (const CandidatePair &pair : result.candidates) {
        EXPECT_TRUE(!pair.a.wildcardIds().empty() ||
                    !pair.b.wildcardIds().empty());
    }
}

TEST(Generalize, ScalarRulePassesThrough)
{
    RecExpr p = parseSexpr("(+ ?a ?b)");
    EXPECT_TRUE(generalizeToWidth(p, 4).equalTree(p));
}

TEST(Generalize, WholeVectorRulePassesThrough)
{
    RecExpr p = parseSexpr("(VecAdd ?u ?v)");
    EXPECT_TRUE(generalizeToWidth(p, 4).equalTree(p));
}

TEST(Generalize, ExpandsVecLanes)
{
    Rule narrow = parseRule(
        "(Vec (+ ?a ?b)) ~> (VecAdd (Vec ?a) (Vec ?b))");
    Rule wide = generalizeRule(narrow, 4);
    // Shape: 4 lanes with fresh per-lane wildcards, shared per lane
    // across both sides.
    Rule expected = parseRule(
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    EXPECT_TRUE(wide.sameAs(expected));
    EXPECT_EQ(verifyRule(wide), Verdict::Proved);
}

TEST(Generalize, MacCompileRule)
{
    Rule narrow = parseRule(
        "(Vec (+ ?a (* ?b ?c))) ~> (VecMAC (Vec ?a) (Vec ?b) (Vec ?c))");
    Rule wide = generalizeRule(narrow, 2);
    Rule expected = parseRule(
        "(Vec (+ ?a0 (* ?b0 ?c0)) (+ ?a1 (* ?b1 ?c1))) ~> "
        "(VecMAC (Vec ?a0 ?a1) (Vec ?b0 ?b1) (Vec ?c0 ?c1))");
    EXPECT_TRUE(wide.sameAs(expected));
}

// Regression for the wildcard-aliasing bug: the old per-lane encoding
// (w * 16 + lane) wrapped into the next wildcard's band at width > 16
// — lane 17 of ?0 collided with lane 1 of ?1, silently unifying
// unrelated variables — and could even reach the whole-vector
// wildcard ids. The fixed encoding keeps every (wildcard, lane) pair
// distinct at any width, so each side of a 3-variable rule carries
// exactly 3 * width distinct per-lane wildcards.
TEST(Generalize, LaneIdsStayDistinctAtEveryWidth)
{
    Rule narrow = parseRule(
        "(Vec (+ ?a (* ?b ?c))) ~> (VecMAC (Vec ?a) (Vec ?b) (Vec ?c))");
    for (int width : {4, 16, 32}) {
        Rule wide = generalizeRule(narrow, width);
        std::vector<std::int32_t> lhsIds = wide.lhs.wildcardIds();
        std::vector<std::int32_t> rhsIds = wide.rhs.wildcardIds();
        std::set<std::int32_t> lhs(lhsIds.begin(), lhsIds.end());
        std::set<std::int32_t> rhs(rhsIds.begin(), rhsIds.end());
        EXPECT_EQ(lhs.size(), static_cast<std::size_t>(3 * width))
            << "width " << width << ": lane wildcards aliased";
        EXPECT_EQ(lhs, rhs) << "width " << width;
        EXPECT_TRUE(wide.wellFormed());
    }
    // Sampled verification still proves the widened rule (small
    // battery: 32-lane vectors are expensive to evaluate).
    VerifyOptions options;
    options.samples = 24;
    EXPECT_EQ(verifyRule(generalizeRule(narrow, 32), options),
              Verdict::Proved);
}

// A whole-vector wildcard passing through generalization verbatim must
// never collide with the fresh per-lane ids of a Vec literal in the
// same pattern.
TEST(Generalize, VectorWildcardsStayDisjointFromLaneIds)
{
    Rule narrow =
        parseRule("(VecAdd ?v (Vec (* ?a ?b))) ~> "
                  "(VecAdd ?v (VecMul (Vec ?a) (Vec ?b)))");
    for (int width : {4, 16, 32}) {
        Rule wide = generalizeRule(narrow, width);
        std::vector<std::int32_t> ids = wide.lhs.wildcardIds();
        std::set<std::int32_t> distinct(ids.begin(), ids.end());
        // ?v plus width lanes each of ?a and ?b.
        EXPECT_EQ(distinct.size(), static_cast<std::size_t>(2 * width + 1))
            << "width " << width;
        EXPECT_TRUE(wide.wellFormed());
    }
}

TEST(Enumerate, ParallelFingerprintingMatchesSequential)
{
    IsaSpec isa;
    EnumConfig config;
    config.maxDepth = 2;
    config.maxReps = 60;
    config.maxScalarCandidates = 1500;
    config.maxVectorCandidates = 2000;
    config.maxLiftCandidates = 2000;
    EnumResult seq = enumerateTerms(isa, config, Deadline::unlimited());
    ThreadPool pool(4);
    EnumResult par =
        enumerateTerms(isa, config, Deadline::unlimited(), &pool);
    EXPECT_EQ(seq.termsEnumerated, par.termsEnumerated);
    EXPECT_EQ(seq.classes, par.classes);
    ASSERT_EQ(seq.candidates.size(), par.candidates.size());
    for (std::size_t i = 0; i < seq.candidates.size(); ++i) {
        EXPECT_TRUE(seq.candidates[i].a.equalTree(par.candidates[i].a));
        EXPECT_TRUE(seq.candidates[i].b.equalTree(par.candidates[i].b));
    }
}

TEST(Synthesize, ProducesSoundUsefulRules)
{
    IsaSpec isa;
    SynthReport report = synthesizeRules(isa, quickConfig());
    EXPECT_GT(report.rules.size(), 40u);

    // Every emitted rule is well-formed and re-verifies.
    VerifyOptions strict;
    strict.samples = 256;
    strict.seed = 0xFEEDFACE; // independent of the synthesis seed
    for (const Rule &rule : report.rules.rules()) {
        EXPECT_TRUE(rule.wellFormed());
        EXPECT_NE(verifyRule(rule, strict), Verdict::Rejected)
            << rule.toString();
    }

    // The identity-padding rule pair of Section 2.1 must be present.
    EXPECT_TRUE(report.rules.contains(parseRule("?a ~> (+ ?a 0)")));
    EXPECT_TRUE(report.rules.contains(parseRule("(+ ?a 0) ~> ?a")));
}

TEST(Synthesize, EmitsVectorizationRules)
{
    IsaSpec isa;
    SynthConfig config = quickConfig();
    config.timeoutSeconds = 20;
    config.enumConfig.maxDepth = 3;
    SynthReport report = synthesizeRules(isa, config);

    // The per-op compile rule for addition, at width 4.
    Rule compileAdd = parseRule(
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) ~> "
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))");
    EXPECT_TRUE(report.rules.contains(compileAdd));
}

TEST(Synthesize, RespectsRuleBudget)
{
    IsaSpec isa;
    SynthConfig config = quickConfig();
    config.maxRules = 30;
    SynthReport report = synthesizeRules(isa, config);
    EXPECT_LE(report.oneWideRules.size(), 30u);
}

// The tentpole determinism guarantee: verification is pure and
// decisions commit in cursor order, so the synthesized rule set is
// byte-identical at any thread count. Run with no wall-clock deadline
// so the only nondeterminism source (deadline exits) is off.
TEST(Synthesize, ByteIdenticalAcrossThreadCounts)
{
    IsaSpec isa;
    SynthConfig config;
    config.timeoutSeconds = 0; // unlimited: determinism must be exact
    config.maxRules = 40;
    config.enumConfig.maxDepth = 2;
    config.enumConfig.maxReps = 40;
    config.enumConfig.maxScalarCandidates = 500;
    config.enumConfig.maxVectorCandidates = 700;
    config.enumConfig.maxLiftCandidates = 700;

    config.numThreads = 1;
    SynthReport sequential = synthesizeRules(isa, config);
    EXPECT_EQ(sequential.verifyThreads, 1);

    config.numThreads = 4;
    SynthReport parallel = synthesizeRules(isa, config);
    EXPECT_EQ(parallel.verifyThreads, 4);

    EXPECT_EQ(sequential.oneWideRules.toString(),
              parallel.oneWideRules.toString());
    EXPECT_EQ(sequential.rules.toString(), parallel.rules.toString());
    EXPECT_EQ(sequential.candidatesConsidered,
              parallel.candidatesConsidered);
    EXPECT_EQ(sequential.rejectedUnsound, parallel.rejectedUnsound);
    EXPECT_EQ(sequential.prunedDerivable, parallel.prunedDerivable);
    EXPECT_EQ(sequential.duplicatePairs, parallel.duplicatePairs);
    EXPECT_EQ(sequential.droppedAtGeneralization,
              parallel.droppedAtGeneralization);
    // The parallel engine actually took the speculative path (the
    // 1-thread run verifies inline and never prefetches).
    EXPECT_GT(parallel.prefetchedVerifications, 0u);
    EXPECT_EQ(sequential.prefetchedVerifications, 0u);
}

TEST(Synthesize, CustomInstructionsEnterTheRuleset)
{
    IsaConfig ic;
    ic.enableSqrtSgn = true;
    IsaSpec isa(ic);
    SynthConfig config = quickConfig();
    config.timeoutSeconds = 15;
    SynthReport report = synthesizeRules(isa, config);
    bool mentionsSqrtSgn = false;
    for (const Rule &rule : report.rules.rules()) {
        for (NodeId id = 0;
             id < static_cast<NodeId>(rule.lhs.size()); ++id) {
            Op op = rule.lhs.node(id).op;
            mentionsSqrtSgn |= op == Op::SqrtSgn || op == Op::VecSqrtSgn;
        }
        for (NodeId id = 0;
             id < static_cast<NodeId>(rule.rhs.size()); ++id) {
            Op op = rule.rhs.node(id).op;
            mentionsSqrtSgn |= op == Op::SqrtSgn || op == Op::VecSqrtSgn;
        }
    }
    EXPECT_TRUE(mentionsSqrtSgn);
}

} // namespace
} // namespace isaria
