// Tests for the virtual DSP: functional semantics and cycle model.

#include <gtest/gtest.h>

#include <cmath>

#include "vm/machine.h"
#include "vm/reference.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

VmInst
inst(VmOp op, std::int32_t dst = -1, std::int32_t a = -1,
     std::int32_t b = -1, std::int32_t c = -1, SymbolId arr = 0,
     std::int32_t imm = 0, std::vector<double> imms = {})
{
    return VmInst{op, dst, a, b, c, arr, imm, std::move(imms)};
}

TEST(Machine, ScalarArithmetic)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 3;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {6}),
        inst(VmOp::LoadConstS, 1, -1, -1, -1, 0, 0, {2}),
        inst(VmOp::SDiv, 2, 0, 1),
        inst(VmOp::StoreScalar, -1, 2, -1, -1, out, 0),
    };
    auto r = runProgram(p, {});
    EXPECT_DOUBLE_EQ(r.memory.at(out)[0], 3.0);
}

TEST(Machine, VectorLaneSemantics)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 1;
    p.numVectorRegs = 3;
    SymbolId in = internSymbol("vmIn");
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadVec, 0, -1, -1, -1, in, 0),
        inst(VmOp::LoadConstV, 1, -1, -1, -1, 0, 0, {10, 20, 30, 40}),
        inst(VmOp::VAdd, 2, 0, 1),
        inst(VmOp::StoreVec, -1, 2, -1, -1, out, 0),
    };
    VmMemory mem;
    mem[in] = {1, 2, 3, 4};
    auto r = runProgram(p, mem);
    EXPECT_DOUBLE_EQ(r.memory.at(out)[0], 11.0);
    EXPECT_DOUBLE_EQ(r.memory.at(out)[3], 44.0);
}

TEST(Machine, MacAndMulSub)
{
    VmProgram p;
    p.width = 4;
    p.numVectorRegs = 5;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstV, 0, -1, -1, -1, 0, 0, {1, 1, 1, 1}),
        inst(VmOp::LoadConstV, 1, -1, -1, -1, 0, 0, {2, 3, 4, 5}),
        inst(VmOp::LoadConstV, 2, -1, -1, -1, 0, 0, {10, 10, 10, 10}),
        inst(VmOp::VMac, 3, 0, 1, 2),
        inst(VmOp::VMulSub, 4, 0, 1, 2),
        inst(VmOp::StoreVec, -1, 3, -1, -1, out, 0),
        inst(VmOp::StoreVec, -1, 4, -1, -1, out, 4),
    };
    auto r = runProgram(p, {});
    EXPECT_DOUBLE_EQ(r.memory.at(out)[0], 21.0);
    EXPECT_DOUBLE_EQ(r.memory.at(out)[4], -19.0);
}

TEST(Machine, SplatAndInsert)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 2;
    p.numVectorRegs = 1;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {7}),
        inst(VmOp::Splat, 0, 0),
        inst(VmOp::LoadConstS, 1, -1, -1, -1, 0, 0, {9}),
        inst(VmOp::InsertLane, 0, 1, -1, -1, 0, 2),
        inst(VmOp::StoreVec, -1, 0, -1, -1, out, 0),
    };
    p.numVectorRegs = 1;
    auto r = runProgram(p, {});
    EXPECT_DOUBLE_EQ(r.memory.at(out)[0], 7.0);
    EXPECT_DOUBLE_EQ(r.memory.at(out)[2], 9.0);
    EXPECT_DOUBLE_EQ(r.memory.at(out)[3], 7.0);
}

TEST(Machine, SqrtSgnInstruction)
{
    VmProgram p;
    p.width = 4;
    p.numScalarRegs = 3;
    SymbolId out = internSymbol("__out");
    p.code = {
        inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {9}),
        inst(VmOp::LoadConstS, 1, -1, -1, -1, 0, 0, {5}),
        inst(VmOp::SSqrtSgn, 2, 0, 1),
        inst(VmOp::StoreScalar, -1, 2, -1, -1, out, 0),
    };
    auto r = runProgram(p, {});
    EXPECT_DOUBLE_EQ(r.memory.at(out)[0], -3.0);
}

TEST(Cycles, IndependentScalarOpsSerializeOnScalarFpu)
{
    // The scalar FPU is non-pipelined: two independent adds cost
    // about twice one add.
    auto mk = [&](int n) {
        VmProgram p;
        p.width = 4;
        p.numScalarRegs = n + 1;
        p.code.push_back(
            inst(VmOp::LoadConstS, 0, -1, -1, -1, 0, 0, {1}));
        for (int i = 0; i < n; ++i)
            p.code.push_back(inst(VmOp::SAdd, i + 1, 0, 0));
        return runProgram(p, {}).cycles;
    };
    std::uint64_t one = mk(1);
    std::uint64_t four = mk(4);
    EXPECT_GE(four, one + 3 * LatencyModel{}.scalarAlu);
}

TEST(Cycles, IndependentVectorOpsPipeline)
{
    auto mk = [&](int n) {
        VmProgram p;
        p.width = 4;
        p.numVectorRegs = n + 1;
        p.code.push_back(
            inst(VmOp::LoadConstV, 0, -1, -1, -1, 0, 0, {1, 1, 1, 1}));
        for (int i = 0; i < n; ++i)
            p.code.push_back(inst(VmOp::VAdd, i + 1, 0, 0));
        return runProgram(p, {}).cycles;
    };
    // Pipelined: four independent vector adds cost ~3 extra cycles.
    EXPECT_LE(mk(4), mk(1) + 4);
}

TEST(Cycles, DependentChainPaysLatency)
{
    auto mk = [&](int n) {
        VmProgram p;
        p.width = 4;
        p.numVectorRegs = n + 1;
        p.code.push_back(
            inst(VmOp::LoadConstV, 0, -1, -1, -1, 0, 0, {1, 1, 1, 1}));
        for (int i = 0; i < n; ++i)
            p.code.push_back(inst(VmOp::VAdd, i + 1, i, i));
        return runProgram(p, {}).cycles;
    };
    int lat = LatencyModel{}.vectorAlu;
    EXPECT_GE(mk(6), mk(2) + 4 * lat);
}

TEST(Cycles, DualIssueOverlapsMovesAndCompute)
{
    // A load stream and an independent vector compute stream should
    // overlap almost completely.
    SymbolId in = internSymbol("vmIn2");
    VmProgram loads;
    loads.width = 4;
    loads.numVectorRegs = 16;
    loads.code.push_back(
        inst(VmOp::LoadConstV, 8, -1, -1, -1, 0, 0, {1, 1, 1, 1}));
    for (int i = 0; i < 8; ++i)
        loads.code.push_back(inst(VmOp::LoadVec, i, -1, -1, -1, in, 0));
    VmProgram mixed = loads;
    for (int i = 0; i < 6; ++i)
        mixed.code.push_back(inst(VmOp::VAdd, 9 + i, 8, 8));
    VmMemory mem;
    mem[in] = {1, 2, 3, 4};
    std::uint64_t a = runProgram(loads, mem).cycles;
    std::uint64_t b = runProgram(mixed, mem).cycles;
    // The compute stream issues in the shadow of the load stream.
    EXPECT_LE(b, a + 4);
}

TEST(Reference, MatchesMachineOnPrograms)
{
    RecExpr p = parseSexpr(
        "(List (VecMAC (Vec 1 1 1 1) (Vec (Get rI 0) (Get rI 1) (Get rI 2)"
        " (Get rI 3)) (Vec 2 2 2 2)))");
    VmMemory mem;
    mem[internSymbol("rI")] = {1, 2, 3, 4};
    auto ref = evalProgramDoubles(p, mem);
    ASSERT_EQ(ref.size(), 4u);
    EXPECT_DOUBLE_EQ(ref[0], 3.0);
    EXPECT_DOUBLE_EQ(ref[3], 9.0);
}

TEST(Reference, MaxAbsDiff)
{
    EXPECT_EQ(maxAbsDiff({1, 2}, {1, 2}), 0.0);
    EXPECT_EQ(maxAbsDiff({1, 2}, {1, 2.5}), 0.5);
    EXPECT_TRUE(std::isinf(maxAbsDiff({1}, {1, 2})));
}

TEST(VmIsaTest, SlotClassification)
{
    EXPECT_TRUE(vmOpIsMoveSlot(VmOp::LoadVec));
    EXPECT_TRUE(vmOpIsMoveSlot(VmOp::Splat));
    EXPECT_TRUE(vmOpIsMoveSlot(VmOp::StoreVec));
    EXPECT_TRUE(vmOpIsScalarCompute(VmOp::SMulSub));
    EXPECT_TRUE(vmOpIsVectorCompute(VmOp::VSqrtSgn));
    EXPECT_FALSE(vmOpIsVectorCompute(VmOp::LoadConstV));
}

TEST(VmIsaTest, ProgramPrinting)
{
    VmProgram p;
    p.width = 4;
    p.numVectorRegs = 1;
    p.code = {inst(VmOp::LoadVec, 0, -1, -1, -1, internSymbol("A"), 4)};
    std::string text = p.toString();
    EXPECT_NE(text.find("ldv"), std::string::npos);
    EXPECT_NE(text.find("A[4]"), std::string::npos);
}

} // namespace
} // namespace isaria
