// Tests for the always-on metrics tier (src/obs/metrics.h): the
// HdrHistogram-style bucket layout, quantile relative-error bound
// (adversarially), thread-shard merge determinism, the OpenMetrics
// exporter (checked with an in-test parser, not substrings), the
// kill switch / reset semantics, and the invariant that metrics-on
// and metrics-off runs produce byte-identical extractions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/diospyros.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "frontend/kernels.h"
#include "isa/cost_model.h"
#include "obs/metrics.h"
#include "phase/phase.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Restores the kill switch no matter how the test exits. */
struct MetricsEnabledGuard
{
    bool saved = obs::metricsEnabled();
    ~MetricsEnabledGuard() { obs::setMetricsEnabled(saved); }
};

// ---------------------------------------------------------------------
// Bucket layout.

TEST(MetricsBuckets, LayoutIsExhaustivelyConsistent)
{
    // Every bucket round-trips through its own bounds, bounds are
    // contiguous, and lows are strictly increasing.
    for (std::uint32_t b = 0; b < obs::kHistogramBuckets; ++b) {
        std::uint64_t lo = obs::histogramBucketLow(b);
        std::uint64_t hi = obs::histogramBucketHigh(b);
        EXPECT_LE(lo, hi) << "bucket " << b;
        EXPECT_EQ(obs::histogramBucket(lo), b);
        EXPECT_EQ(obs::histogramBucket(hi), b);
        if (b + 1 < obs::kHistogramBuckets) {
            EXPECT_EQ(hi + 1, obs::histogramBucketLow(b + 1))
                << "gap after bucket " << b;
        } else {
            EXPECT_EQ(hi, ~std::uint64_t{0});
        }
    }
}

TEST(MetricsBuckets, BoundaryValues)
{
    // The exact region is identity.
    for (std::uint64_t v = 0; v < obs::kHistogramExactLimit; ++v)
        EXPECT_EQ(obs::histogramBucket(v), v);
    // First logarithmic bucket starts exactly at the exact limit.
    EXPECT_EQ(obs::histogramBucket(32), 32u);
    EXPECT_EQ(obs::histogramBucketLow(32), 32u);
    // Either side of a power of two lands in adjacent octaves.
    EXPECT_EQ(obs::histogramBucket(63) + 1, obs::histogramBucket(64));
    EXPECT_EQ(obs::histogramBucket(127) + 1, obs::histogramBucket(128));
    // The top of the range is representable.
    EXPECT_EQ(obs::histogramBucket(~std::uint64_t{0}),
              obs::kHistogramBuckets - 1);
    EXPECT_EQ(obs::histogramBucket(std::uint64_t{1} << 63),
              obs::kHistogramBuckets - obs::kHistogramSubBuckets);
}

// ---------------------------------------------------------------------
// Quantile relative error, adversarially.

/** The true nearest-rank order statistic with the summary's rank
 *  convention (rank = floor(q*count), clamped to [1, count]). */
std::uint64_t
trueQuantile(std::vector<std::uint64_t> values, double q)
{
    std::sort(values.begin(), values.end());
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(values.size()));
    rank = std::clamp<std::uint64_t>(rank, 1, values.size());
    return values[rank - 1];
}

/** Records @p values into a fresh histogram and checks every
 *  requested quantile against the documented 1/32 relative bound. */
void
checkQuantiles(const char *name,
               const std::vector<std::uint64_t> &values)
{
    obs::HistogramHandle h = obs::metricHistogram(name);
    for (std::uint64_t v : values)
        obs::metricRecord(h, v);
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::MetricValue *m = snap.find(name);
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->histogram.count, values.size());
    for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
        std::uint64_t truth = trueQuantile(values, q);
        std::uint64_t est = m->histogram.quantile(q);
        std::uint64_t err = est > truth ? est - truth : truth - est;
        // Bucket width is at most low/16, the midpoint is within half
        // a width, so the estimate is within 1/32 (+1 for integer
        // midpoint rounding) of the true order statistic.
        EXPECT_LE(err * 32, truth + 32)
            << name << " q=" << q << " est=" << est
            << " truth=" << truth;
    }
}

TEST(MetricsQuantiles, AdversarialDistributions)
{
    // Mass piled exactly on bucket boundaries — the worst case for a
    // midpoint estimator.
    std::vector<std::uint64_t> boundaries;
    for (std::uint32_t b = 20; b < 400; b += 7)
        boundaries.push_back(obs::histogramBucketLow(b));
    checkQuantiles("mtest/q/boundaries", boundaries);

    // Geometric spread across many octaves.
    std::vector<std::uint64_t> geometric;
    for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v *= 3)
        geometric.push_back(v);
    checkQuantiles("mtest/q/geometric", geometric);

    // Heavy cluster + far outlier: quantiles below the tail must not
    // be dragged toward it.
    std::vector<std::uint64_t> outlier(999, 1000);
    outlier.push_back(std::uint64_t{1} << 40);
    checkQuantiles("mtest/q/outlier", outlier);

    // All-identical: every quantile is exact (clamped to min==max).
    checkQuantiles("mtest/q/constant",
                   std::vector<std::uint64_t>(100, 123456789));

    // Small exact-region values: zero error there.
    std::vector<std::uint64_t> tiny;
    for (std::uint64_t i = 0; i < 320; ++i)
        tiny.push_back(i % obs::kHistogramExactLimit);
    checkQuantiles("mtest/q/tiny", tiny);
}

TEST(MetricsQuantiles, OrderedAndWithinRange)
{
    obs::HistogramHandle h = obs::metricHistogram("mtest/q/ordered");
    for (std::uint64_t v = 1; v <= 10000; ++v)
        obs::metricRecord(h, v * 37);
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::MetricValue *m = snap.find("mtest/q/ordered");
    ASSERT_NE(m, nullptr);
    const obs::HistogramSummary &s = m->histogram;
    std::uint64_t last = s.min;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        std::uint64_t est = s.quantile(q);
        EXPECT_GE(est, last) << "q=" << q;
        EXPECT_LE(est, s.max);
        last = est;
    }
}

// ---------------------------------------------------------------------
// Merge across thread shards.

TEST(MetricsShards, MergeIsExactAndDeterministic)
{
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 1000;
    obs::HistogramHandle h = obs::metricHistogram("mtest/shard/hist");
    obs::CounterHandle c = obs::metricCounter("mtest/shard/count");

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::uint64_t i = 1; i <= kPerThread; ++i) {
                obs::metricRecord(h, i * (t + 1));
                obs::metricAdd(c, 1);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::MetricValue *hist = snap.find("mtest/shard/hist");
    const obs::MetricValue *count = snap.find("mtest/shard/count");
    ASSERT_NE(hist, nullptr);
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->counter, kThreads * kPerThread);
    EXPECT_EQ(hist->histogram.count, kThreads * kPerThread);
    EXPECT_EQ(hist->histogram.min, 1u);
    EXPECT_EQ(hist->histogram.max, kPerThread * kThreads);
    // sum = (1+2+3+4) * (1 + 2 + ... + kPerThread)
    EXPECT_EQ(hist->histogram.sum,
              10 * kPerThread * (kPerThread + 1) / 2);

    // Writers are quiescent, so the merge is exact and two snapshots
    // agree bucket for bucket.
    obs::MetricsSnapshot again = obs::snapshotMetrics();
    const obs::MetricValue *hist2 = again.find("mtest/shard/hist");
    ASSERT_NE(hist2, nullptr);
    EXPECT_EQ(hist->histogram.buckets, hist2->histogram.buckets);

    // The merged distribution matches the same values recorded from a
    // single thread.
    obs::HistogramHandle ref = obs::metricHistogram("mtest/shard/ref");
    for (int t = 0; t < kThreads; ++t)
        for (std::uint64_t i = 1; i <= kPerThread; ++i)
            obs::metricRecord(ref, i * (t + 1));
    obs::MetricsSnapshot refSnap = obs::snapshotMetrics();
    const obs::MetricValue *refv = refSnap.find("mtest/shard/ref");
    ASSERT_NE(refv, nullptr);
    EXPECT_EQ(refv->histogram.buckets, hist->histogram.buckets);
    EXPECT_EQ(refv->histogram.quantile(0.5),
              hist->histogram.quantile(0.5));
}

// ---------------------------------------------------------------------
// OpenMetrics export, checked by parsing.

struct OmSample
{
    std::string name;
    std::string le; // bucket label, "" for plain samples
    double value = 0;
};

/** Parses an OpenMetrics page into samples; fails the test on any
 *  malformed line. Returns false on parse failure. */
bool
parseOpenMetrics(const std::string &page, std::vector<OmSample> &out,
                 std::string &error)
{
    std::istringstream lines(page);
    std::string line;
    std::string last;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            error = "blank line";
            return false;
        }
        last = line;
        if (line[0] == '#') {
            if (line.rfind("# TYPE ", 0) != 0 &&
                line.rfind("# UNIT ", 0) != 0 && line != "# EOF") {
                error = "unknown comment: " + line;
                return false;
            }
            continue;
        }
        OmSample sample;
        std::size_t space = line.rfind(' ');
        if (space == std::string::npos) {
            error = "no value: " + line;
            return false;
        }
        try {
            sample.value = std::stod(line.substr(space + 1));
        } catch (...) {
            error = "bad value: " + line;
            return false;
        }
        std::string name = line.substr(0, space);
        std::size_t brace = name.find('{');
        if (brace != std::string::npos) {
            std::string labels = name.substr(brace);
            name = name.substr(0, brace);
            if (labels.rfind("{le=\"", 0) != 0 ||
                labels.back() != '}') {
                error = "bad labels: " + line;
                return false;
            }
            sample.le = labels.substr(5, labels.size() - 7);
        }
        for (char ch : name) {
            bool ok = (ch >= 'a' && ch <= 'z') ||
                      (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' ||
                      ch == ':';
            if (!ok) {
                error = "bad name char: " + line;
                return false;
            }
        }
        sample.name = name;
        out.push_back(std::move(sample));
    }
    if (last != "# EOF") {
        error = "missing # EOF terminator";
        return false;
    }
    return true;
}

TEST(MetricsExport, OpenMetricsPageParses)
{
    obs::CounterHandle c = obs::metricCounter("mtest/om/adds");
    obs::GaugeHandle g = obs::metricGauge("mtest/om-gauge");
    obs::HistogramHandle h = obs::metricHistogram("mtest/om/lat_ns");
    obs::metricAdd(c, 7);
    obs::metricSet(g, -3);
    for (std::uint64_t v = 1; v <= 500; ++v)
        obs::metricRecord(h, v * v);

    std::ostringstream page;
    obs::exportOpenMetrics(obs::snapshotMetrics(), page);

    std::vector<OmSample> samples;
    std::string error;
    ASSERT_TRUE(parseOpenMetrics(page.str(), samples, error)) << error;

    // Slash and dash both sanitize to '_', under the isaria_ prefix.
    bool sawCounter = false, sawGauge = false;
    for (const OmSample &s : samples) {
        if (s.name == "isaria_mtest_om_adds_total") {
            sawCounter = true;
            EXPECT_EQ(s.value, 7);
        }
        if (s.name == "isaria_mtest_om_gauge") {
            sawGauge = true;
            EXPECT_EQ(s.value, -3);
        }
    }
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawGauge);

    // Histogram series: cumulative, ordered le bounds, +Inf == count,
    // and _count consistent.
    std::vector<OmSample> buckets;
    double histCount = -1;
    for (const OmSample &s : samples) {
        if (s.name == "isaria_mtest_om_lat_ns_bucket")
            buckets.push_back(s);
        if (s.name == "isaria_mtest_om_lat_ns_count")
            histCount = s.value;
    }
    ASSERT_GE(buckets.size(), 2u);
    EXPECT_EQ(histCount, 500);
    double lastCumulative = 0;
    std::uint64_t lastLe = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const OmSample &b = buckets[i];
        EXPECT_GE(b.value, lastCumulative) << "bucket " << i;
        lastCumulative = b.value;
        if (i + 1 == buckets.size()) {
            EXPECT_EQ(b.le, "+Inf");
            EXPECT_EQ(b.value, histCount);
        } else {
            std::uint64_t le = std::stoull(b.le);
            EXPECT_GT(le, lastLe) << "bucket " << i;
            lastLe = le;
        }
    }
}

// ---------------------------------------------------------------------
// Kill switch, reset, gauges, timer.

TEST(MetricsRegistry, KillSwitchStopsRecording)
{
    MetricsEnabledGuard guard;
    obs::CounterHandle c = obs::metricCounter("mtest/kill/count");
    obs::HistogramHandle h = obs::metricHistogram("mtest/kill/hist");
    obs::GaugeHandle g = obs::metricGauge("mtest/kill/gauge");

    obs::setMetricsEnabled(true);
    obs::metricAdd(c, 5);
    obs::setMetricsEnabled(false);
    EXPECT_FALSE(obs::metricsEnabled());
    obs::metricAdd(c, 100);
    obs::metricRecord(h, 42);
    obs::metricSet(g, 9);
    {
        obs::ScopedHistogramTimer timer(h);
    }
    obs::setMetricsEnabled(true);

    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    EXPECT_EQ(snap.find("mtest/kill/count")->counter, 5u);
    EXPECT_EQ(snap.find("mtest/kill/hist")->histogram.count, 0u);
    EXPECT_EQ(snap.find("mtest/kill/gauge")->gauge, 0);
}

TEST(MetricsRegistry, ResetZeroesButHandlesSurvive)
{
    obs::CounterHandle c = obs::metricCounter("mtest/reset/count");
    obs::HistogramHandle h = obs::metricHistogram("mtest/reset/hist");
    obs::metricAdd(c, 3);
    obs::metricRecord(h, 1000);

    obs::resetMetrics();
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    EXPECT_EQ(snap.find("mtest/reset/count")->counter, 0u);
    EXPECT_EQ(snap.find("mtest/reset/hist")->histogram.count, 0u);

    // Handles from before the reset still record.
    obs::metricAdd(c, 2);
    obs::metricRecord(h, 64);
    snap = obs::snapshotMetrics();
    EXPECT_EQ(snap.find("mtest/reset/count")->counter, 2u);
    EXPECT_EQ(snap.find("mtest/reset/hist")->histogram.count, 1u);
    EXPECT_EQ(snap.find("mtest/reset/hist")->histogram.min, 64u);
}

/** One metric's current merged value, via a properly scoped
 *  snapshot. */
obs::MetricValue
lookupMetric(const char *name)
{
    obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::MetricValue *m = snap.find(name);
    EXPECT_NE(m, nullptr) << name;
    return m ? *m : obs::MetricValue{};
}

TEST(MetricsRegistry, GaugeSetAndMaxSemantics)
{
    obs::GaugeHandle g = obs::metricGauge("mtest/gauge/hwm");
    obs::metricMax(g, -7); // first observation wins even if negative
    EXPECT_EQ(lookupMetric("mtest/gauge/hwm").gauge, -7);
    obs::metricMax(g, 12);
    obs::metricMax(g, 3); // lower: ignored
    EXPECT_EQ(lookupMetric("mtest/gauge/hwm").gauge, 12);
    obs::metricSet(g, 1); // set overrides unconditionally
    EXPECT_EQ(lookupMetric("mtest/gauge/hwm").gauge, 1);
}

TEST(MetricsRegistry, RegistrationIsIdempotent)
{
    obs::CounterHandle a = obs::metricCounter("mtest/idem/count");
    obs::CounterHandle b = obs::metricCounter("mtest/idem/count");
    EXPECT_EQ(a.slot, b.slot);
    obs::metricAdd(a, 1);
    obs::metricAdd(b, 1);
    EXPECT_EQ(lookupMetric("mtest/idem/count").counter, 2u);
}

TEST(MetricsRegistry, ScopedTimerRecordsOneSample)
{
    obs::HistogramHandle h = obs::metricHistogram("mtest/timer/ns");
    std::uint64_t before = lookupMetric("mtest/timer/ns").histogram.count;
    {
        obs::ScopedHistogramTimer timer(h);
    }
    EXPECT_EQ(lookupMetric("mtest/timer/ns").histogram.count,
              before + 1);
}

TEST(MetricsExport, JsonBlockIsWellFormed)
{
    obs::CounterHandle c = obs::metricCounter("mtest/json/c");
    obs::HistogramHandle h = obs::metricHistogram("mtest/json/h");
    obs::metricAdd(c);
    obs::metricRecord(h, 100);

    std::string json = obs::metricsJson(obs::snapshotMetrics());
    // Structural spot checks; the full parse runs in obs_test's JSON
    // validator over StatsReport::toJson, which embeds this block.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
    EXPECT_NE(json.find("\"mtest/json/c\":"), std::string::npos);
    EXPECT_NE(json.find("\"mtest/json/h\":{\"count\":"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics must not perturb results.

std::string
saturateAndExtract(const RecExpr &program,
                   const std::vector<CompiledRule> &rules, int threads)
{
    EqSatLimits limits;
    limits.maxIters = 3;
    limits.maxNodes = 40'000;
    limits.numThreads = threads;
    EGraph eg;
    EClassId root = eg.addExpr(program);
    runEqSat(eg, rules, limits);
    DspCostModel cost;
    auto best = extractBest(eg, root, cost);
    EXPECT_TRUE(best.has_value());
    return best ? printSexpr(best->expr) : std::string();
}

TEST(MetricsDeterminism, MetricsOnAndOffAreByteIdentical)
{
    MetricsEnabledGuard guard;
    auto rules = compileRules(diospyrosHandRules().rules());
    RecExpr program = liftKernel(make2DConv(3, 3, 2, 2), 4);

    for (int threads : {1, 4}) {
        obs::setMetricsEnabled(false);
        std::string off = saturateAndExtract(program, rules, threads);

        obs::setMetricsEnabled(true);
        std::uint64_t itersBefore = 0;
        {
            obs::MetricsSnapshot snap = obs::snapshotMetrics();
            if (const obs::MetricValue *m = snap.find("eqsat/iters"))
                itersBefore = m->counter;
        }
        std::string on = saturateAndExtract(program, rules, threads);

        EXPECT_EQ(on, off) << "threads=" << threads;
        // The metrics-on run actually recorded the saturation.
        obs::MetricsSnapshot snap = obs::snapshotMetrics();
        const obs::MetricValue *m = snap.find("eqsat/iters");
        ASSERT_NE(m, nullptr);
        EXPECT_GT(m->counter, itersBefore);
    }
}

} // namespace
} // namespace isaria
