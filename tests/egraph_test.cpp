// Unit tests for the e-graph library: hashcons, congruence, matching,
// saturation, extraction.

#include <gtest/gtest.h>

#include <set>

#include "egraph/ematch.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

/** Simple additive cost: every node costs 1 + sum of children. */
class UnitCost : public CostFn
{
  public:
    std::uint64_t
    nodeCost(Op, std::int64_t,
             std::span<const std::uint64_t> childCosts) const override
    {
        std::uint64_t c = 1;
        for (std::uint64_t child : childCosts)
            c = satAddCost(c, child);
        return c;
    }
};

TEST(EGraph, HashConsDedup)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(+ x y)"));
    EClassId b = eg.addExpr(parseSexpr("(+ x y)"));
    EXPECT_EQ(eg.find(a), eg.find(b));
    // x, y, (+ x y) = 3 classes.
    EXPECT_EQ(eg.numClasses(), 3u);
    EXPECT_EQ(eg.numNodes(), 3u);
}

TEST(BindingVec, GrowthPastInlineCapacityKeepsBindings)
{
    // Regression: reserve() once reset size_ while spilling to the
    // heap, so the 17th push_back silently discarded the first 16
    // bindings. Push well past the inline capacity (through two
    // doublings) and check every element survives each growth.
    BindingVec v;
    const std::uint32_t n = BindingVec::kInlineCapacity * 3;
    for (std::uint32_t i = 0; i < n; ++i) {
        v.push_back(static_cast<EClassId>(i + 100));
        ASSERT_EQ(v.size(), i + 1u);
        for (std::uint32_t j = 0; j <= i; ++j)
            ASSERT_EQ(v[j], static_cast<EClassId>(j + 100));
    }

    // Copy and move of a heap-backed vector preserve contents too.
    BindingVec copy(v);
    EXPECT_TRUE(copy == v);
    BindingVec moved(std::move(copy));
    EXPECT_TRUE(moved == v);
    EXPECT_EQ(moved.size(), static_cast<std::size_t>(n));

    // An explicit oversized reserve (the non-doubling growth path)
    // also keeps existing bindings.
    BindingVec w;
    for (std::uint32_t i = 0; i < 5; ++i)
        w.push_back(static_cast<EClassId>(i));
    w.reserve(BindingVec::kInlineCapacity * 4);
    ASSERT_EQ(w.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(w[i], static_cast<EClassId>(i));
}

TEST(EGraph, DistinctTermsDistinctClasses)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(+ x y)"));
    EClassId b = eg.addExpr(parseSexpr("(+ y x)"));
    EXPECT_NE(eg.find(a), eg.find(b));
}

TEST(EGraph, OpIndexViewValidWhileGraphUnchanged)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x y)"));
    OpClassesView view = eg.classesWithOp(Op::Add);
    ASSERT_EQ(view.size(), 1u);
    // Reads and lookups that don't mutate keep the view alive.
    EXPECT_EQ(eg.find(view[0]), view[0]);
    EXPECT_FALSE(view.empty());
    // Re-adding an existing term is not a structural mutation.
    eg.addExpr(parseSexpr("(+ x y)"));
    EXPECT_EQ(view.size(), 1u);
}

TEST(EGraphDeathTest, OpIndexViewDiesAfterInvalidation)
{
    // classesWithOp used to hand out a bare reference documented as
    // "valid until the next add/merge" with nothing enforcing it; the
    // generation-checked view turns that latent use-after-invalidate
    // into a loud assert.
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x y)"));
    OpClassesView stale = eg.classesWithOp(Op::Add);
    eg.addExpr(parseSexpr("(* x y)")); // structural mutation
    EXPECT_DEATH((void)stale.size(),
                 "op-index view used after invalidation");

    OpClassesView staleMerge = eg.classesWithOp(Op::Add);
    eg.merge(eg.addExpr(parseSexpr("x")), eg.addExpr(parseSexpr("y")));
    EXPECT_DEATH((void)staleMerge.begin(),
                 "op-index view used after invalidation");
}

TEST(EGraph, MergeJoinsClasses)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("x"));
    EClassId b = eg.addExpr(parseSexpr("y"));
    EXPECT_TRUE(eg.merge(a, b));
    EXPECT_FALSE(eg.merge(a, b));
    EXPECT_TRUE(eg.same(a, b));
}

TEST(EGraph, CongruenceClosure)
{
    // Merging x = y must make f(x) = f(y) after rebuild.
    EGraph eg;
    EClassId fx = eg.addExpr(parseSexpr("(neg x)"));
    EClassId fy = eg.addExpr(parseSexpr("(neg y)"));
    EClassId x = eg.addExpr(parseSexpr("x"));
    EClassId y = eg.addExpr(parseSexpr("y"));
    EXPECT_FALSE(eg.same(fx, fy));
    eg.merge(x, y);
    eg.rebuild();
    EXPECT_TRUE(eg.same(fx, fy));
}

TEST(EGraph, NestedCongruence)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(* (neg x) 2)"));
    EClassId b = eg.addExpr(parseSexpr("(* (neg y) 2)"));
    eg.merge(eg.addExpr(parseSexpr("x")), eg.addExpr(parseSexpr("y")));
    eg.rebuild();
    EXPECT_TRUE(eg.same(a, b));
}

TEST(EGraph, PayloadsKeepClassesApart)
{
    EGraph eg;
    EClassId c1 = eg.addExpr(parseSexpr("1"));
    EClassId c2 = eg.addExpr(parseSexpr("2"));
    EXPECT_FALSE(eg.same(c1, c2));
    EClassId g0 = eg.addExpr(parseSexpr("(Get a 0)"));
    EClassId g1 = eg.addExpr(parseSexpr("(Get a 1)"));
    EXPECT_FALSE(eg.same(g0, g1));
}

TEST(EMatch, LiteralPattern)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x y)"));
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(+ x y)"));
    auto matches = pat.search(eg, 100);
    ASSERT_EQ(matches.size(), 1u);
}

TEST(EMatch, WildcardBindsAnyClass)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ (neg a) (neg b))"));
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(neg ?t)"));
    auto matches = pat.search(eg, 100);
    EXPECT_EQ(matches.size(), 2u);
}

TEST(EMatch, NonlinearPatternRequiresSameClass)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x x)"));
    eg.addExpr(parseSexpr("(+ x y)"));
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(+ ?t ?t)"));
    auto matches = pat.search(eg, 100);
    ASSERT_EQ(matches.size(), 1u);
}

TEST(EMatch, MatchLimitRespected)
{
    EGraph eg;
    for (int i = 0; i < 10; ++i) {
        RecExpr e;
        e.add(Op::Neg, {e.addGet(internSymbol("arr"), i)});
        eg.addExpr(e);
    }
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(neg ?t)"));
    auto matches = pat.search(eg, 3);
    EXPECT_EQ(matches.size(), 3u);
}

TEST(Rewrite, CommutativityCreatesEquivalence)
{
    EGraph eg;
    EClassId lhs = eg.addExpr(parseSexpr("(+ p q)"));
    EClassId target = eg.addExpr(parseSexpr("(+ q p)"));
    eg.rebuild();
    std::vector<CompiledRule> rules =
        compileRules({parseRule("(+ ?a ?b) ~> (+ ?b ?a)")});
    EqSatLimits limits;
    auto report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::Saturated);
    EXPECT_TRUE(eg.same(lhs, target));
}

TEST(Rewrite, AssociativitySaturates)
{
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(+ (+ x y) z)"));
    EClassId b = eg.addExpr(parseSexpr("(+ x (+ y z))"));
    eg.rebuild();
    auto rules = compileRules({
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
    });
    EqSatLimits limits;
    runEqSat(eg, rules, limits);
    EXPECT_TRUE(eg.same(a, b));
}

TEST(Rewrite, VectorizationExample)
{
    // The paper's Section 2.1 example: (Vec (+ a b) (+ c d)) can be
    // compiled to a VecAdd of two Vec literals.
    EGraph eg;
    EClassId scalar = eg.addExpr(
        parseSexpr("(Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1)))"));
    EClassId vectorized = eg.addExpr(parseSexpr(
        "(VecAdd (Vec (Get x 0) (Get x 1)) (Vec (Get y 0) (Get y 1)))"));
    eg.rebuild();
    auto rules = compileRules({parseRule(
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1)) ~> "
        "(VecAdd (Vec ?a0 ?a1) (Vec ?b0 ?b1))")});
    EqSatLimits limits;
    runEqSat(eg, rules, limits);
    EXPECT_TRUE(eg.same(scalar, vectorized));
}

TEST(Runner, NodeLimitStops)
{
    EGraph eg;
    // Assoc + comm over a chain of adds explodes combinatorially —
    // the NP-complete AC-matching blowup the paper discusses (§2.2).
    eg.addExpr(parseSexpr("(+ a (+ b (+ c (+ d (+ e f)))))"));
    eg.rebuild();
    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(+ ?a (+ ?b ?c)) ~> (+ (+ ?a ?b) ?c)"),
    });
    EqSatLimits limits;
    limits.maxNodes = 50;
    limits.maxIters = 1000;
    auto report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::NodeLimit);
    EXPECT_GE(report.nodes, 50u);
}

TEST(Runner, IdentityPaddingRuleSaturatesViaHashCons)
{
    // `?a ~> (+ ?a 0)` looks infinitely applicable, but in an e-graph
    // the new node lands in the same class and hash-conses away.
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x y)"));
    eg.rebuild();
    auto rules = compileRules({parseRule("?a ~> (+ ?a 0)")});
    EqSatLimits limits;
    limits.maxIters = 50;
    auto report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::Saturated);
    EXPECT_LT(report.nodes, 20u);
}

TEST(Runner, IterLimitStops)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ x y)"));
    eg.rebuild();
    auto rules = compileRules({parseRule("?a ~> (+ ?a 0)")});
    EqSatLimits limits;
    limits.maxIters = 2;
    limits.maxNodes = 1'000'000;
    auto report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::IterLimit);
    EXPECT_EQ(report.iterations, 2);
}

TEST(Runner, SaturationOnFiniteSpace)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ (+ a b) (+ c d))"));
    eg.rebuild();
    auto rules = compileRules({parseRule("(+ ?a ?b) ~> (+ ?b ?a)")});
    EqSatLimits limits;
    auto report = runEqSat(eg, rules, limits);
    EXPECT_EQ(report.stop, StopReason::Saturated);
}

TEST(EMatch, PerClassCapStillCoversAllClasses)
{
    // Regression: a small per-class cap must not starve later classes
    // (and the cap arithmetic must not overflow with the default
    // unlimited per-class value).
    EGraph eg;
    for (int i = 0; i < 6; ++i) {
        RecExpr e;
        NodeId a = e.addGet(internSymbol("pcc"), 2 * i);
        NodeId b = e.addGet(internSymbol("pcc"), 2 * i + 1);
        e.add(Op::Add, {a, b});
        eg.addExpr(e);
    }
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(+ ?a ?b)"));
    auto matches = pat.search(eg, 1000, /*maxMatchesPerClass=*/1);
    EXPECT_EQ(matches.size(), 6u);
    // And the class roots must all be distinct.
    std::set<EClassId> roots;
    for (const PatternMatch &m : matches)
        roots.insert(m.root);
    EXPECT_EQ(roots.size(), 6u);
}

TEST(EMatch, PerClassCapClampedAgainstGlobalBudget)
{
    // Regression for the cap arithmetic in CompiledPattern::search:
    // when the per-class allowance meets or exceeds the remaining
    // global budget, the cap must clamp to the remainder — one class
    // must never push the total past maxMatches, and a large
    // per-class value must not overflow.
    EGraph eg;
    std::vector<EClassId> classRoots;
    for (int c = 0; c < 3; ++c) {
        std::vector<EClassId> members;
        for (int i = 0; i < 4; ++i) {
            RecExpr e;
            NodeId a = e.addGet(internSymbol("cap"), 100 * c + 2 * i);
            NodeId b = e.addGet(internSymbol("cap"), 100 * c + 2 * i + 1);
            e.add(Op::Add, {a, b});
            members.push_back(eg.addExpr(e));
        }
        for (std::size_t i = 1; i < members.size(); ++i)
            eg.merge(members[0], members[i]);
        classRoots.push_back(members[0]);
    }
    eg.rebuild();

    CompiledPattern pat(parseSexpr("(+ ?a ?b)"));
    // 12 matches exist (4 per class).
    EXPECT_EQ(pat.search(eg, 1000).size(), 12u);
    // Per-class cap larger than the whole budget: global cap rules.
    EXPECT_EQ(pat.search(eg, 3, /*maxMatchesPerClass=*/100).size(), 3u);
    // Unlimited per-class value must not overflow the cap arithmetic.
    EXPECT_EQ(pat.search(eg, 5).size(), 5u);
    // Small per-class cap spreads matches across classes: 2+2+1.
    auto spread = pat.search(eg, 5, /*maxMatchesPerClass=*/2);
    ASSERT_EQ(spread.size(), 5u);
    std::set<EClassId> roots;
    for (const PatternMatch &m : spread)
        roots.insert(m.root);
    EXPECT_EQ(roots.size(), 3u);
}

TEST(EMatch, StepBudgetBoundsBacktracking)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (+ a b) (+ c d))"));
    eg.rebuild();
    CompiledPattern pat(parseSexpr("(+ (+ ?a ?b) (+ ?c ?d))"));
    std::vector<PatternMatch> out;
    std::size_t steps = 1; // far too few to finish matching
    pat.searchClass(eg, root, out, 100, &steps);
    EXPECT_TRUE(out.empty());
    std::size_t plenty = 100000;
    pat.searchClass(eg, root, out, 100, &plenty);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Runner, WildcardRootedRuleAppliesEverywhere)
{
    // The op-indexed search special-cases wildcard-rooted patterns;
    // they must still reach every class.
    EGraph eg;
    EClassId a = eg.addExpr(parseSexpr("(* wr1 wr2)"));
    eg.rebuild();
    std::size_t before = eg.numClasses();
    auto rules = compileRules({parseRule("?a ~> (+ ?a 0)")});
    EqSatLimits limits;
    limits.maxIters = 1;
    runEqSat(eg, rules, limits);
    // Every original class gained an Add node; at least the constant
    // class 0 is new.
    EXPECT_GT(eg.numClasses(), before);
    bool rootHasAdd = false;
    for (const ENode &node : eg.eclass(eg.find(a)).nodes)
        rootHasAdd |= node.op == Op::Add;
    EXPECT_TRUE(rootHasAdd);
}

TEST(Extract, PicksCheapestRepresentative)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ (+ x 0) 0)"));
    eg.rebuild();
    auto rules = compileRules({parseRule("(+ ?a 0) ~> ?a")});
    EqSatLimits limits;
    runEqSat(eg, rules, limits);
    UnitCost cost;
    auto got = extractBest(eg, root, cost);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(printSexpr(got->expr), "x");
    EXPECT_EQ(got->cost, 1u);
}

TEST(Extract, HandlesCyclicClasses)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(+ x 0)"));
    eg.rebuild();
    // Create a cycle: (+ x 0) = x, so the class of x contains a node
    // whose child is the class itself.
    auto rules = compileRules({
        parseRule("(+ ?a 0) ~> ?a"),
        parseRule("?a ~> (+ ?a 0)"),
    });
    EqSatLimits limits;
    limits.maxIters = 3;
    runEqSat(eg, rules, limits);
    UnitCost cost;
    auto got = extractBest(eg, root, cost);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(printSexpr(got->expr), "x");
}

TEST(Extract, SharedSubtermsCountedPerUse)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(* (+ a b) (+ a b))"));
    eg.rebuild();
    UnitCost cost;
    auto got = extractBest(eg, root, cost);
    ASSERT_TRUE(got.has_value());
    // Tree cost: 7 (mul + two adds + four leaves).
    EXPECT_EQ(got->cost, 7u);
    // But the RecExpr is DAG-shared: 4 distinct nodes.
    EXPECT_EQ(got->expr.size(), 4u);
}

TEST(EGraph, BytesUsedExactAfterDedup)
{
    // Regression: dedupNodesInPlace used to refund only sizeof(ENode)
    // per dropped duplicate, leaking the spill-children bytes from the
    // accounting. Force duplicate wide nodes via congruence collapse
    // and check the incremental counter against a full recount.
    EGraph eg;
    RecExpr e1, e2;
    std::vector<NodeId> kids1, kids2;
    for (int i = 0; i < 6; ++i) {
        kids1.push_back(e1.addGet(internSymbol("bu"), i));
        // Same node except the last child, which will be merged in.
        kids2.push_back(e2.addGet(internSymbol("bu"), i == 5 ? 6 : i));
    }
    e1.add(Op::Vec, kids1);
    e2.add(Op::Vec, kids2);
    EClassId v1 = eg.addExpr(e1);
    EClassId v2 = eg.addExpr(e2);
    EClassId g5 = eg.addExpr(parseSexpr("(Get bu 5)"));
    EClassId g6 = eg.addExpr(parseSexpr("(Get bu 6)"));
    ASSERT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());

    // (Get bu 5) = (Get bu 6) makes the two wide Vec nodes congruent:
    // their classes merge and one duplicate wide node is dropped.
    eg.merge(g5, g6);
    eg.rebuild();
    EXPECT_TRUE(eg.same(v1, v2));
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
}

TEST(EGraph, BytesUsedExactThroughSaturation)
{
    EGraph eg;
    eg.addExpr(parseSexpr("(+ (+ ba bb) (* bc (+ bd be)))"));
    eg.rebuild();
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
    auto rules = compileRules({
        parseRule("(+ ?a ?b) ~> (+ ?b ?a)"),
        parseRule("(+ (+ ?a ?b) ?c) ~> (+ ?a (+ ?b ?c))"),
        parseRule("(* ?a (+ ?b ?c)) ~> (+ (* ?a ?b) (* ?a ?c))"),
    });
    EqSatLimits limits;
    limits.maxIters = 4;
    limits.maxNodes = 20'000;
    runEqSat(eg, rules, limits);
    EXPECT_EQ(eg.bytesUsed(), eg.bytesUsedSlow());
    EXPECT_EQ(eg.numNodes(), eg.numNodesSlow());
    EXPECT_EQ(eg.numClasses(), eg.numClassesSlow());
}

TEST(Extract, EmptyClassImpossible)
{
    EGraph eg;
    EClassId root = eg.addExpr(parseSexpr("(sqrt x)"));
    eg.rebuild();
    UnitCost cost;
    EXPECT_TRUE(extractBest(eg, root, cost).has_value());
}

} // namespace
} // namespace isaria
