// Unit tests for the interpreter: the executable ISA specification.

#include <gtest/gtest.h>

#include "interp/cvec.h"
#include "interp/eval.h"
#include "term/sexpr.h"

namespace isaria
{
namespace
{

Env
basicEnv()
{
    Env env;
    env.scalars[internSymbol("x")] = Rational(3);
    env.scalars[internSymbol("y")] = Rational(-2);
    env.arrays[internSymbol("a")] = {Rational(10), Rational(20),
                                     Rational(30), Rational(40)};
    return env;
}

Rational
evalScalar(const char *text, const Env &env)
{
    Value v = evalTerm(parseSexpr(text), env);
    EXPECT_TRUE(v.isScalar());
    return v.lanes[0];
}

TEST(Eval, Leaves)
{
    Env env = basicEnv();
    EXPECT_EQ(evalScalar("7", env), Rational(7));
    EXPECT_EQ(evalScalar("x", env), Rational(3));
    EXPECT_EQ(evalScalar("(Get a 2)", env), Rational(30));
}

TEST(Eval, UnknownSymbolUndefined)
{
    Env env;
    EXPECT_FALSE(evalScalar("zzz_undefined_sym", env).valid());
}

TEST(Eval, GetOutOfBoundsUndefined)
{
    Env env = basicEnv();
    EXPECT_FALSE(evalScalar("(Get a 99)", env).valid());
    EXPECT_FALSE(evalScalar("(Get missing 0)", env).valid());
}

TEST(Eval, ScalarArithmetic)
{
    Env env = basicEnv();
    EXPECT_EQ(evalScalar("(+ x y)", env), Rational(1));
    EXPECT_EQ(evalScalar("(- x y)", env), Rational(5));
    EXPECT_EQ(evalScalar("(* x y)", env), Rational(-6));
    EXPECT_EQ(evalScalar("(/ x y)", env), Rational::make(-3, 2));
    EXPECT_EQ(evalScalar("(neg x)", env), Rational(-3));
    EXPECT_EQ(evalScalar("(sgn y)", env), Rational(-1));
    EXPECT_EQ(evalScalar("(sqrt 9)", env), Rational(3));
}

TEST(Eval, CustomScalarInstructions)
{
    Env env = basicEnv();
    // mulsub acc a b = acc - a*b = 3 - (-2*3) = 9.
    EXPECT_EQ(evalScalar("(mulsub x y x)", env), Rational(9));
    // sqrtsgn a b = sqrt(a)*sgn(-b) = sqrt(9)*sgn(2) = 3.
    EXPECT_EQ(evalScalar("(sqrtsgn 9 y)", env), Rational(3));
    EXPECT_EQ(evalScalar("(sqrtsgn 9 x)", env), Rational(-3));
    EXPECT_EQ(evalScalar("(sqrtsgn 9 0)", env), Rational(0));
}

TEST(Eval, DivisionByZeroUndefined)
{
    Env env = basicEnv();
    EXPECT_FALSE(evalScalar("(/ x 0)", env).valid());
}

TEST(Eval, VecConstruction)
{
    Env env = basicEnv();
    Value v = evalTerm(parseSexpr("(Vec x y 1 (Get a 0))"), env);
    ASSERT_TRUE(v.isVector());
    ASSERT_EQ(v.width(), 4u);
    EXPECT_EQ(v.lanes[0], Rational(3));
    EXPECT_EQ(v.lanes[1], Rational(-2));
    EXPECT_EQ(v.lanes[2], Rational(1));
    EXPECT_EQ(v.lanes[3], Rational(10));
}

TEST(Eval, Concat)
{
    Env env = basicEnv();
    Value v = evalTerm(parseSexpr("(Concat (Vec 1 2) (Vec 3 4))"), env);
    ASSERT_EQ(v.width(), 4u);
    EXPECT_EQ(v.lanes[3], Rational(4));
}

TEST(Eval, LaneWiseOps)
{
    Env env;
    auto vec = [&](const char *t) { return evalTerm(parseSexpr(t), env); };
    Value add = vec("(VecAdd (Vec 1 2) (Vec 10 20))");
    EXPECT_EQ(add.lanes[0], Rational(11));
    EXPECT_EQ(add.lanes[1], Rational(22));
    Value mac = vec("(VecMAC (Vec 1 1) (Vec 2 3) (Vec 4 5))");
    EXPECT_EQ(mac.lanes[0], Rational(9));
    EXPECT_EQ(mac.lanes[1], Rational(16));
    Value msub = vec("(VecMulSub (Vec 1 1) (Vec 2 3) (Vec 4 5))");
    EXPECT_EQ(msub.lanes[0], Rational(-7));
    EXPECT_EQ(msub.lanes[1], Rational(-14));
    Value vneg = vec("(VecNeg (Vec 1 -2))");
    EXPECT_EQ(vneg.lanes[1], Rational(2));
    Value vss = vec("(VecSqrtSgn (Vec 4 9) (Vec -1 1))");
    EXPECT_EQ(vss.lanes[0], Rational(2));
    EXPECT_EQ(vss.lanes[1], Rational(-3));
}

TEST(Eval, WidthMismatchUndefined)
{
    Env env;
    Value v = evalTerm(parseSexpr("(VecAdd (Vec 1 2) (Vec 1 2 3))"), env);
    EXPECT_TRUE(v.fullyUndefined());
}

TEST(Eval, SortMismatchUndefined)
{
    Env env;
    // Scalar op applied to a vector-valued wildcard.
    env.wildcards[0] = Value::vector({Rational(1), Rational(2)});
    RecExpr e = parseSexpr("(+ ?a 1)");
    Value v = evalTerm(e, env);
    EXPECT_FALSE(v.fullyDefined());
}

TEST(Eval, UndefinedLanePropagatesThroughVectorOps)
{
    Env env;
    Value v = evalTerm(parseSexpr("(VecDiv (Vec 1 2) (Vec 0 2))"), env);
    EXPECT_FALSE(v.lanes[0].valid());
    EXPECT_EQ(v.lanes[1], Rational(1));
}

TEST(Eval, ProgramListEvaluation)
{
    Env env = basicEnv();
    auto vals = evalProgram(
        parseSexpr("(List (Vec x y) (VecAdd (Vec 1 1) (Vec 2 2)))"), env);
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0].lanes[0], Rational(3));
    EXPECT_EQ(vals[1].lanes[0], Rational(3));
}

TEST(Eval, WildcardBinding)
{
    Env env;
    env.wildcards[0] = Value::scalar(Rational(5));
    env.wildcards[kVectorWildcardBase] =
        Value::vector({Rational(1), Rational(2)});
    EXPECT_EQ(evalTerm(parseSexpr("(* ?a ?a)"), env).lanes[0],
              Rational(25));
    RecExpr vpat;
    vpat.add(Op::VecNeg, {vpat.addWildcard(kVectorWildcardBase)});
    Value v = evalTerm(vpat, env);
    EXPECT_EQ(v.lanes[0], Rational(-1));
    EXPECT_EQ(v.lanes[1], Rational(-2));
}

TEST(CVecTest, EnvsDeterministic)
{
    auto a = makeWildcardEnvs(3, 2, 4, 16, 99);
    auto b = makeWildcardEnvs(3, 2, 4, 16, 99);
    ASSERT_EQ(a.size(), 16u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (const auto &[wid, val] : a[i].wildcards)
            EXPECT_TRUE(val.agreesWith(b[i].wildcards.at(wid)));
    }
}

TEST(CVecTest, SystematicFirstEnvs)
{
    auto envs = makeWildcardEnvs(2, 0, 1, 8, 1);
    EXPECT_EQ(envs[0].wildcards.at(0).lanes[0], Rational(0));
    EXPECT_EQ(envs[1].wildcards.at(0).lanes[0], Rational(1));
    EXPECT_EQ(envs[2].wildcards.at(1).lanes[0], Rational(-1));
}

TEST(CVecTest, EquivalentTermsAgree)
{
    auto envs = makeWildcardEnvs(2, 0, 1, 24, 7);
    CVec a = fingerprint(parseSexpr("(+ ?w0 ?w1)"), envs);
    CVec b = fingerprint(parseSexpr("(+ ?w1 ?w0)"), envs);
    EXPECT_TRUE(cvecAgree(a, b));
    EXPECT_EQ(cvecHash(a), cvecHash(b));
}

TEST(CVecTest, DistinctTermsDisagree)
{
    auto envs = makeWildcardEnvs(2, 0, 1, 24, 7);
    CVec a = fingerprint(parseSexpr("(+ ?w0 ?w1)"), envs);
    CVec b = fingerprint(parseSexpr("(* ?w0 ?w1)"), envs);
    EXPECT_FALSE(cvecAgree(a, b));
}

TEST(CVecTest, XPlusXvsXTimesXDistinguished)
{
    // The classic trap: x+x == x*x at x in {0, 2}.
    auto envs = makeWildcardEnvs(1, 0, 1, 24, 7);
    CVec a = fingerprint(parseSexpr("(+ ?w0 ?w0)"), envs);
    CVec b = fingerprint(parseSexpr("(* ?w0 ?w0)"), envs);
    EXPECT_FALSE(cvecAgree(a, b));
}

TEST(CVecTest, DefinedCount)
{
    auto envs = makeWildcardEnvs(1, 0, 1, 16, 7);
    CVec total = fingerprint(parseSexpr("(+ ?w0 1)"), envs);
    EXPECT_EQ(cvecDefinedCount(total), 16);
    CVec partial = fingerprint(parseSexpr("(/ 1 ?w0)"), envs);
    EXPECT_LT(cvecDefinedCount(partial), 16);
    EXPECT_GT(cvecDefinedCount(partial), 0);
}

} // namespace
} // namespace isaria
