// Retargeting tests: the machine description is the single source of
// truth for lane width, op set, cost table, and timing — and every
// layer above it (synthesis, phase discovery, the cache fingerprint,
// lowering, the simulator, the differential oracle) follows it with
// zero code changes.
//
// The suite proves the ISSUE's bugfix three ways:
//   1. identity — machine names and synthesis fingerprints are
//      distinct whenever any retargeting-relevant field differs
//      (width alone, op set alone, cost table alone);
//   2. isolation — a rule cache warmed for one machine never serves
//      another (cross-contamination);
//   3. behaviour — for every benchmark kernel and both shipped
//      targets, generated-compiler output stays differentially equal
//      to scalar reference, at 1 and at 4 eqsat threads.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "baseline/harness.h"
#include "cache/rule_cache.h"
#include "compiler/pipeline.h"
#include "isa/machine_desc.h"

namespace isaria
{
namespace
{

/** Small synthesis budget shared by the cache tests here. */
SynthConfig
tinySynth()
{
    SynthConfig config;
    config.timeoutSeconds = 0;
    config.maxRules = 25;
    config.enumConfig.maxDepth = 2;
    config.enumConfig.maxReps = 30;
    config.enumConfig.maxScalarCandidates = 300;
    config.enumConfig.maxVectorCandidates = 400;
    config.enumConfig.maxLiftCandidates = 400;
    return config;
}

std::string
scratchDir(const std::string &name)
{
    std::string dir =
        testing::TempDir() + "isaria_retarget_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** One generated compiler per shipped target, synthesized once. */
const GeneratedCompiler &
compilerForMachine(const MachineDesc &machine)
{
    static std::vector<std::pair<std::string, GeneratedCompiler>> done;
    for (const auto &[name, gen] : done)
        if (name == machine.name())
            return gen;
    SynthConfig synth = synthConfigFor(machine);
    synth.timeoutSeconds = 20;
    done.emplace_back(machine.name(),
                      generateCompiler(IsaSpec(machine), synth,
                                       compilerConfigFor(machine)));
    return done.back().second;
}

// ---------------------------------------------------------------------
// 1. Identity: names and fingerprints.

TEST(RetargetIdentity, WidthAloneChangesNameAndFingerprint)
{
    // The original bug: a width-8 variant of the same family used to
    // collide with the width-4 spec in every name-keyed artifact
    // (cache entries, reports, bench sidecars).
    MachineDesc narrow = MachineDesc::fusionG3();
    MachineDesc wide = MachineDesc::fusionG3();
    wide.vectorWidth = 8;

    EXPECT_NE(narrow.name(), wide.name());
    EXPECT_NE(narrow.name().find("-w4"), std::string::npos);
    EXPECT_NE(wide.name().find("-w8"), std::string::npos);

    SynthConfig config = tinySynth();
    EXPECT_NE(synthFingerprint(IsaSpec(narrow), config),
              synthFingerprint(IsaSpec(wide), config));
}

TEST(RetargetIdentity, OpSetAloneChangesNameAndFingerprint)
{
    MachineDesc base = MachineDesc::fusionG3();
    MachineDesc mulsub = MachineDesc::fusionG3(/*mulSub=*/true);
    MachineDesc nomac = MachineDesc::fusionG3();
    nomac.enableVecMac = false;

    EXPECT_NE(base.name(), mulsub.name());
    EXPECT_NE(base.name(), nomac.name());

    SynthConfig config = tinySynth();
    std::uint64_t baseFp = synthFingerprint(IsaSpec(base), config);
    EXPECT_NE(baseFp, synthFingerprint(IsaSpec(mulsub), config));
    EXPECT_NE(baseFp, synthFingerprint(IsaSpec(nomac), config));
}

TEST(RetargetIdentity, CostTableAloneChangesFingerprint)
{
    // Cost drives phase discovery, so two machines that differ only
    // in the cost table must not share cached rule sets — even though
    // their names (family + width + op set) coincide.
    MachineDesc base = MachineDesc::fusionG3();
    MachineDesc pricier = MachineDesc::fusionG3();
    pricier.cost.laneMove += 1;

    EXPECT_EQ(base.name(), pricier.name());
    SynthConfig config = tinySynth();
    EXPECT_NE(synthFingerprint(IsaSpec(base), config),
              synthFingerprint(IsaSpec(pricier), config));
}

TEST(RetargetIdentity, LatencyTableChangesFingerprint)
{
    MachineDesc base = MachineDesc::fusionG3();
    MachineDesc singleIssue = MachineDesc::fusionG3();
    singleIssue.latency.dualIssue = false;
    SynthConfig config = tinySynth();
    EXPECT_NE(synthFingerprint(IsaSpec(base), config),
              synthFingerprint(IsaSpec(singleIssue), config));
}

TEST(RetargetIdentity, ShippedTargetsAreDistinct)
{
    ASSERT_GE(knownMachines().size(), 2u);
    SynthConfig config = tinySynth();
    std::uint64_t fusion =
        synthFingerprint(IsaSpec(MachineDesc::fusionG3()), config);
    std::uint64_t rvv =
        synthFingerprint(IsaSpec(MachineDesc::rvv8()), config);
    EXPECT_NE(fusion, rvv);
    EXPECT_EQ(MachineDesc::rvv8().name(), "rvv-w8+mulsub");
    EXPECT_EQ(MachineDesc::fusionG3().name(), "fusion-g3-w4");
}

TEST(RetargetIdentity, RegistryResolvesCanonicalNamesAndAliases)
{
    for (const MachineDesc &m : knownMachines()) {
        auto found = machineByName(m.name());
        ASSERT_TRUE(found.has_value()) << m.name();
        EXPECT_EQ(found->name(), m.name());
    }
    ASSERT_TRUE(machineByName("rvv8").has_value());
    EXPECT_EQ(machineByName("rvv8")->name(), "rvv-w8+mulsub");
    ASSERT_TRUE(machineByName("fusion").has_value());
    EXPECT_EQ(machineByName("fusion")->name(), "fusion-g3-w4");
    EXPECT_FALSE(machineByName("vax-11").has_value());
}

// ---------------------------------------------------------------------
// 2. Isolation: the rule cache never cross-serves machines.

TEST(RetargetCache, WarmEntryForOneMachineMissesForAnother)
{
    RuleCache cache(scratchDir("cross"));
    SynthConfig config = tinySynth();
    IsaSpec fusion((MachineDesc::fusionG3()));
    IsaSpec rvv((MachineDesc::rvv8()));

    SynthReport cold = synthesizeRulesCached(fusion, config, cache);
    EXPECT_FALSE(cold.fromCache);
    // Same machine, same config: warm.
    EXPECT_TRUE(
        synthesizeRulesCached(fusion, config, cache).fromCache);
    // Other machine, same config: the warm fusion entry must not
    // leak — this is a fresh synthesis, then its own warm hit.
    SynthReport other = synthesizeRulesCached(rvv, config, cache);
    EXPECT_FALSE(other.fromCache);
    EXPECT_TRUE(synthesizeRulesCached(rvv, config, cache).fromCache);
}

// ---------------------------------------------------------------------
// 3. Behaviour: the per-target differential oracle.

/** Compiles and differentially checks every benchmark kernel for
 *  @p machine at 1 and 4 eqsat threads. */
void
runSuiteOracle(const MachineDesc &machine)
{
    const GeneratedCompiler &gen = compilerForMachine(machine);
    for (int threads : {1, 4}) {
        CompilerConfig cc = compilerConfigFor(machine);
        cc.withEqSatThreads(threads);
        // Bound each saturation and the improve loop so the whole
        // ladder stays inside the ctest timeout; a budget-cut compile
        // still has to be correct.
        for (EqSatLimits *limits :
             {&cc.expansionLimits, &cc.compilationLimits,
              &cc.optLimits}) {
            if (limits->timeoutSeconds <= 0 ||
                limits->timeoutSeconds > 1.5)
                limits->timeoutSeconds = 1.5;
        }
        if (cc.maxLoopIterations <= 0 || cc.maxLoopIterations > 4)
            cc.maxLoopIterations = 4;
        IsariaCompiler compiler(gen.phased, cc);
        for (const KernelSpec &spec : defaultSuite()) {
            KernelHarness h(spec, machine);
            RunOutcome out = h.runCompiler(compiler);
            EXPECT_TRUE(out.correct)
                << machine.name() << " " << spec.label() << " threads="
                << threads << " err=" << out.maxError;
        }
    }
}

TEST(RetargetOracle, FusionSuiteIsDifferentiallyCorrect)
{
    runSuiteOracle(MachineDesc::fusionG3());
}

TEST(RetargetOracle, RvvSuiteIsDifferentiallyCorrect)
{
    runSuiteOracle(MachineDesc::rvv8());
}

TEST(RetargetOracle, LoweredWidthFollowsTheMachine)
{
    for (const MachineDesc &machine : knownMachines()) {
        KernelHarness h(KernelSpec::matmul(2, 2, 2), machine);
        LowerOptions options;
        options.width = machine.vectorWidth;
        options.totalOutputs = h.kernel().totalOutputs();
        options.scalarizeRawChunks = true;
        VmProgram program = lowerProgram(h.scalarProgram(), options);
        EXPECT_EQ(program.width, machine.vectorWidth)
            << machine.name();
        EXPECT_TRUE(h.runProgramChecked(program).correct)
            << machine.name();
    }
}

} // namespace
} // namespace isaria
